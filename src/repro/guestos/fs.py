"""A minimal disk-backed guest filesystem.

Targets that persist state across requests (FTP uploads, mail spools,
databases) are exactly the cases where the paper's snapshot approach
shines: AFLNet needs user-written cleanup scripts to roll such state
back, while a VM snapshot resets it for free.  This filesystem stores
file content on the :class:`~repro.vm.disk.EmulatedDisk` (exercising
the sector-overlay snapshot path) and metadata in a kernel component
that is serialized to guest memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.guestos.errors import Errno, GuestError
from repro.vm.disk import SECTOR_SIZE, EmulatedDisk


@dataclass
class FsNode:  # nyx: state[memory]
    """Metadata for one file: its size and the sectors holding it."""

    path: str
    size: int = 0
    sectors: List[int] = field(default_factory=list)


@dataclass
class FileSystem:  # nyx: state[memory]
    """Pure-state filesystem metadata (content lives on the disk)."""

    nodes: Dict[str, FsNode] = field(default_factory=dict)
    next_sector: int = 16  # low sectors reserved for "boot blocks"
    free_sectors: List[int] = field(default_factory=list)

    # The disk is a host-side object; callers pass it in.  Keeping it
    # out of the dataclass keeps FileSystem picklable.

    def exists(self, path: str) -> bool:
        return path in self.nodes

    def listdir(self, prefix: str) -> List[str]:
        """All paths under a directory prefix."""
        if not prefix.endswith("/"):
            prefix += "/"
        return sorted(p for p in self.nodes if p.startswith(prefix))

    def create(self, path: str) -> FsNode:
        if path in self.nodes:
            raise GuestError(Errno.EEXIST, path)
        node = FsNode(path)
        self.nodes[path] = node
        return node

    def _alloc_sector(self, disk: EmulatedDisk) -> int:
        if self.free_sectors:
            return self.free_sectors.pop()
        if self.next_sector >= disk.num_sectors:
            raise GuestError(Errno.ENOSPC, "disk full")
        sector = self.next_sector
        self.next_sector += 1
        return sector

    def write_file(self, disk: EmulatedDisk, path: str, data: bytes,
                   append: bool = False) -> int:
        """Write (or append) ``data``; returns bytes written."""
        node = self.nodes.get(path)
        if node is None:
            node = self.create(path)
        if not append:
            self.free_sectors.extend(node.sectors)
            node.sectors = []
            node.size = 0
        offset = node.size
        end = offset + len(data)
        needed = -(-end // SECTOR_SIZE)
        while len(node.sectors) < needed:
            node.sectors.append(self._alloc_sector(disk))
        pos = offset
        view = memoryview(data)
        while view:
            idx, s_off = divmod(pos, SECTOR_SIZE)
            chunk = min(len(view), SECTOR_SIZE - s_off)
            sector = node.sectors[idx]
            old = disk.read_sector(sector)
            disk.write_sector(
                sector, old[:s_off] + bytes(view[:chunk]) + old[s_off + chunk:])
            view = view[chunk:]
            pos += chunk
        node.size = max(node.size, end)
        return len(data)

    def read_file(self, disk: EmulatedDisk, path: str) -> bytes:
        node = self.nodes.get(path)
        if node is None:
            raise GuestError(Errno.ENOENT, path)
        out = bytearray()
        remaining = node.size
        for sector in node.sectors:
            take = min(remaining, SECTOR_SIZE)
            out += disk.read_sector(sector)[:take]
            remaining -= take
            if remaining <= 0:
                break
        return bytes(out)

    def unlink(self, path: str) -> None:
        node = self.nodes.pop(path, None)
        if node is None:
            raise GuestError(Errno.ENOENT, path)
        self.free_sectors.extend(node.sectors)

    def file_size(self, path: str) -> int:
        node = self.nodes.get(path)
        if node is None:
            raise GuestError(Errno.ENOENT, path)
        return node.size
