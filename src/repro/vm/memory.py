"""Paged guest physical memory with hardware-style dirty logging.

This module substitutes for the VM physical memory managed by KVM in
the paper.  Two dirty-tracking structures are maintained side by side,
exactly as §2.3 describes:

* a **dirty bitmap** with one byte per page ("for some reason, KVM uses
  1 byte in the bitmap for each page"), and
* Nyx's **dirty-page stack**, which records each page the first time it
  is dirtied so a reset never needs to scan the whole bitmap.

Pages are immutable ``bytes`` objects; an all-zero page is shared via a
sentinel, which is the Python analogue of lazily allocated guest
memory.  Copying a page reference is our copy-on-write primitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

PAGE_SIZE = 4096

_ZERO_PAGE = bytes(PAGE_SIZE)


class MemoryError_(Exception):
    """Raised on out-of-range guest physical accesses."""


class GuestMemory:  # nyx: allow[reset]
    """Guest physical memory: a page array plus dirty logging.

    Reset-lint suppression: the page array and dirty log *are* the
    snapshot substrate — the SnapshotManager rewrites pages and drains
    the dirty log on every restore; there is nothing above it to reset
    through.

    Parameters
    ----------
    size_bytes:
        Total guest physical memory.  Rounded up to whole pages.
    """

    def __init__(self, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ValueError("memory size must be positive")
        self.num_pages = -(-size_bytes // PAGE_SIZE)
        self.size_bytes = self.num_pages * PAGE_SIZE
        self._pages: List[bytes] = [_ZERO_PAGE] * self.num_pages
        #: KVM-style dirty bitmap, one byte per page.
        self.dirty_bitmap = bytearray(self.num_pages)
        #: Nyx-style stack of pages dirtied since the last flush.
        self.dirty_stack: List[int] = []
        #: Count of pages ever dirtied (statistics only).
        self.total_dirtied = 0

    # -- raw page access -------------------------------------------------

    def page(self, index: int) -> bytes:
        """Return the current content of page ``index``."""
        self._check_page(index)
        return self._pages[index]

    def set_page(self, index: int, content: bytes, *, log: bool = True) -> None:
        """Replace page ``index``; marks it dirty unless ``log`` is False.

        Restores pass ``log=False`` — resetting a page must not make it
        appear dirty again, or the next reset would do wasted work.
        """
        self._check_page(index)
        if len(content) != PAGE_SIZE:
            raise ValueError("page content must be exactly PAGE_SIZE bytes")
        self._pages[index] = content
        if log:
            self.mark_dirty(index)

    def pages_snapshot(self) -> List[bytes]:
        """Shallow copy of the page array (CoW view of all memory)."""
        return list(self._pages)

    def page_identities(self) -> List[int]:
        """``id()`` of every page object currently mapped.

        Pages shared with a root snapshot (or the zero-page sentinel)
        alias the same objects, so unique-id counting across a fleet of
        machines measures the true memory footprint of §5.3's shared
        root snapshots.
        """
        return [id(p) for p in self._pages]

    # -- byte-granular access ---------------------------------------------

    def read(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes starting at guest physical ``addr``."""
        self._check_range(addr, length)
        if length == 0:
            return b""
        out = bytearray()
        remaining = length
        offset = addr
        while remaining:
            page_idx, page_off = divmod(offset, PAGE_SIZE)
            chunk = min(remaining, PAGE_SIZE - page_off)
            out += self._pages[page_idx][page_off:page_off + chunk]
            offset += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` at guest physical ``addr``, dirtying pages."""
        self._check_range(addr, len(data))
        offset = addr
        view = memoryview(data)
        while view:
            page_idx, page_off = divmod(offset, PAGE_SIZE)
            chunk = min(len(view), PAGE_SIZE - page_off)
            old = self._pages[page_idx]
            new = old[:page_off] + bytes(view[:chunk]) + old[page_off + chunk:]
            self._pages[page_idx] = new
            self.mark_dirty(page_idx)
            view = view[chunk:]
            offset += chunk

    # -- dirty logging -----------------------------------------------------

    def mark_dirty(self, index: int) -> None:
        """Record a write to page ``index``.

        The stack only records the *first* write since the last flush —
        the bitmap byte acts as the dedup filter, mirroring how Nyx's
        KVM extension maintains its stack.
        """
        if not self.dirty_bitmap[index]:
            self.dirty_bitmap[index] = 1
            self.dirty_stack.append(index)
            self.total_dirtied += 1

    @property
    def dirty_count(self) -> int:
        """Number of distinct pages dirtied since the last flush."""
        return len(self.dirty_stack)

    def take_dirty(self) -> List[int]:
        """Pop and return all dirty pages, clearing the log (Nyx path).

        This is O(number of dirty pages): the stack is drained and only
        the bitmap bytes it names are cleared.
        """
        pages = self.dirty_stack
        self.dirty_stack = []
        bitmap = self.dirty_bitmap
        for idx in pages:
            bitmap[idx] = 0
        return pages

    def scan_bitmap(self) -> List[int]:
        """Scan the whole bitmap for dirty pages (Agamotto path).

        O(total pages) regardless of how few are dirty — this is the
        cost asymmetry Figure 6 of the paper measures.  The log is
        cleared as a side effect, like ``take_dirty``.
        """
        pages = [i for i, b in enumerate(self.dirty_bitmap) if b]
        self.dirty_stack = []
        for idx in pages:
            self.dirty_bitmap[idx] = 0
        return pages

    def clear_dirty_log(self) -> None:
        """Drop all dirty state without reporting it."""
        self.take_dirty()

    # -- validation --------------------------------------------------------

    def _check_page(self, index: int) -> None:
        if not 0 <= index < self.num_pages:
            raise MemoryError_(
                "page %d out of range (memory has %d pages)" % (index, self.num_pages)
            )

    def _check_range(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size_bytes:
            raise MemoryError_(
                "access [%#x, +%d) outside guest memory of %d bytes"
                % (addr, length, self.size_bytes)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "GuestMemory(%d pages, %d dirty)" % (self.num_pages, self.dirty_count)


@dataclass(frozen=True)
class Region:
    """A page-aligned allocation of guest physical memory."""

    start_page: int
    num_pages: int

    @property
    def start_addr(self) -> int:
        return self.start_page * PAGE_SIZE

    @property
    def size(self) -> int:
        return self.num_pages * PAGE_SIZE


class RegionAllocator:  # nyx: allow[reset]
    """Bump allocator handing out page-aligned regions of guest memory.

    The guest OS stores every piece of mutable state (process control
    blocks, socket buffers, target state machines) in regions, so that
    whole-VM snapshots of the page array genuinely capture and restore
    guest state.  The bump pointer itself is part of guest state and is
    saved/restored through :meth:`state` / :meth:`set_state` — the
    reset-lint suppression above records that
    ``Kernel.reload_from_memory`` restores it on every snapshot
    restore, just not through a method name the lint recognises.
    """

    def __init__(self, memory: GuestMemory, first_page: int = 0) -> None:
        self._memory = memory
        self._next_page = first_page

    def alloc(self, nbytes: int) -> Region:
        """Allocate a region large enough for ``nbytes``."""
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        npages = -(-nbytes // PAGE_SIZE)
        if self._next_page + npages > self._memory.num_pages:
            raise MemoryError_(
                "guest out of memory: need %d pages, %d free"
                % (npages, self._memory.num_pages - self._next_page)
            )
        region = Region(self._next_page, npages)
        self._next_page += npages
        return region

    def write_blob(self, region: Region, blob: bytes) -> None:
        """Store ``blob`` (length-prefixed) into ``region``."""
        framed = len(blob).to_bytes(8, "little") + blob
        if len(framed) > region.size:
            raise MemoryError_(
                "blob of %d bytes does not fit region of %d bytes"
                % (len(blob), region.size)
            )
        self._memory.write(region.start_addr, framed)

    def read_blob(self, region: Region) -> bytes:
        """Read back a blob previously stored with :meth:`write_blob`."""
        length = int.from_bytes(self._memory.read(region.start_addr, 8), "little")
        if length > region.size - 8:
            raise MemoryError_("corrupt blob header in region %r" % (region,))
        return self._memory.read(region.start_addr + 8, length)

    def state(self) -> int:
        """The bump pointer, for inclusion in snapshotted state."""
        return self._next_page

    def set_state(self, next_page: int) -> None:
        """Restore the bump pointer from a snapshot."""
        self._next_page = next_page

    @property
    def pages_used(self) -> int:
        return self._next_page

    def writes_fit(self, blob_len: int, region: Optional[Region]) -> bool:
        """Whether a blob of ``blob_len`` fits ``region`` (None = no)."""
        return region is not None and blob_len + 8 <= region.size


def pages_for(nbytes: int) -> int:
    """Number of pages needed to hold ``nbytes``."""
    return -(-nbytes // PAGE_SIZE)


def iter_page_chunks(data: bytes) -> Iterable[bytes]:
    """Yield PAGE_SIZE chunks of ``data``, zero-padding the last one."""
    for off in range(0, len(data), PAGE_SIZE):
        chunk = data[off:off + PAGE_SIZE]
        if len(chunk) < PAGE_SIZE:
            chunk = chunk + bytes(PAGE_SIZE - len(chunk))
        yield chunk
