"""Smoke tests: the example scripts parse and their helpers work.

The examples' full campaigns run for tens of seconds; tests exercise
their building blocks with tiny budgets instead.
"""

import ast
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def test_all_examples_parse():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 4, "at least quickstart + three scenarios"
    for script in scripts:
        ast.parse(script.read_text(), filename=str(script))


def test_examples_have_docstrings_and_main():
    for script in sorted(EXAMPLES.glob("*.py")):
        tree = ast.parse(script.read_text())
        assert ast.get_docstring(tree), "%s needs a docstring" % script.name
        names = {node.name for node in tree.body
                 if isinstance(node, ast.FunctionDef)}
        assert "main" in names, "%s needs a main()" % script.name


def test_pcap_example_pipeline():
    """The pcap example's pipeline, end to end, without the campaign."""
    sys.path.insert(0, str(EXAMPLES))
    try:
        import pcap_to_seeds
        blob = pcap_to_seeds.fabricate_capture()
        seed = pcap_to_seeds.capture_to_seed(blob)
        assert seed.num_packets >= 6
    finally:
        sys.path.pop(0)
        sys.modules.pop("pcap_to_seeds", None)


@pytest.mark.slow
def test_quickstart_runs_end_to_end():
    """Actually execute the quickstart (seconds, not minutes)."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert "execs" in result.stdout
