"""Tests for attack-surface configuration and hook classification."""

from repro.emu.interceptor import Interceptor
from repro.emu.surface import AttackSurface, SurfaceMode
from repro.guestos.kernel import Kernel
from repro.guestos.sockets import SockDomain, SockType
from repro.vm.machine import Machine

from tests.helpers import EchoServer


class TestAttackSurface:
    def test_explicit_addresses(self):
        surface = AttackSurface.tcp_server(80, 443)
        assert surface.matches(80, seen_any=False)
        assert surface.matches(443, seen_any=True)
        assert not surface.matches(8080, seen_any=False)

    def test_auto_mode_hooks_first_only(self):
        surface = AttackSurface()
        assert surface.matches(1234, seen_any=False)
        assert not surface.matches(1234, seen_any=True)

    def test_factory_helpers(self):
        assert AttackSurface.udp_server(53).datagram
        assert AttackSurface.unix_server("/run/x.sock").addresses == \
            ["/run/x.sock"]
        assert AttackSurface.tcp_client(3306).mode is SurfaceMode.CLIENT


class TestSurfaceClassification:
    def test_auto_mode_hooks_first_bind(self):
        machine = Machine(memory_bytes=16 * 1024 * 1024)
        kernel = Kernel(machine)
        interceptor = Interceptor(kernel, AttackSurface())  # auto
        kernel.spawn(EchoServer(7))
        kernel.spawn(EchoServer(8))
        kernel.run()
        # Only the first bound port became the surface.
        assert len(interceptor.listener_sids) == 1

    def test_non_surface_ports_ignored(self):
        machine = Machine(memory_bytes=16 * 1024 * 1024)
        kernel = Kernel(machine)
        interceptor = Interceptor(kernel, AttackSurface.tcp_server(7))
        kernel.spawn(EchoServer(9))  # binds a non-surface port
        kernel.run()
        assert not interceptor.listener_sids

    def test_dgram_sockets_classified_separately(self):
        machine = Machine(memory_bytes=16 * 1024 * 1024)
        kernel = Kernel(machine)
        interceptor = Interceptor(kernel, AttackSurface.udp_server(53))
        proc = kernel.spawn(EchoServer(900))
        kernel.run()
        api = kernel.api_for(proc.pid)
        fd = api.socket(SockDomain.INET, SockType.DGRAM)
        api.bind(fd, 53)
        assert len(interceptor.dgram_sids) == 1
        assert not interceptor.listener_sids
