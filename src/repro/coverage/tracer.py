"""``sys.settrace``-based edge tracer for guest target code.

This is the reproduction's stand-in for AFL compile-time
instrumentation (§4.5): instead of instrumenting basic blocks at
compile time, we trace line events of the target's *actual Python
code* and fold ``(previous site, current site)`` transitions into a
sparse AFL-style trace, using AFL's ``cur ^ (prev >> 1)`` edge formula.

Only code whose filename matches the configured path fragments is
traced, so the kernel, fuzzer and harness never pollute coverage —
the analogue of only instrumenting the target binary.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Optional, Tuple

from repro.coverage.bitmap import MAP_SIZE

#: Path fragments identifying "instrumented" code.  The Mario *engine*
#: is deliberately absent: like IJON's original experiment, game
#: progress feedback comes from the IJON state annotation, not from
#: line coverage of the physics loop (and tracing 2,000 frames of
#: physics per execution would dominate host time).
DEFAULT_TRACED_FRAGMENTS = ("/repro/targets/", "/repro/mario/target")

#: Bitmap region where IJON state annotations land (distinct from the
#: hash range used by code edges only probabilistically, like IJON).
IJON_BASE = 0xF000


def _stable_site(text: str) -> int:
    """FNV-1a site hash, stable across processes.

    Built-in ``hash`` of strings is randomized per process and ``id()``
    is a memory address: deriving edge indices from either makes two
    same-seed campaign runs disagree on their coverage maps (the
    determinism self-lint's NYX02x family exists to keep exactly this
    class of leak out of the fuzzer).
    """
    value = 0x811C9DC5
    for byte in text.encode():
        value = ((value ^ byte) * 0x01000193) & 0xFFFFFFFF
    return value


class EdgeTracer:
    """Collects sparse edge traces from traced module code."""

    def __init__(self, traced_fragments: Tuple[str, ...] = DEFAULT_TRACED_FRAGMENTS,
                 map_size: int = MAP_SIZE) -> None:
        self.traced_fragments = traced_fragments
        self.map_size = map_size
        #: Sparse trace of the current execution: edge index -> count.
        self.trace: Dict[int, int] = {}
        self._prev_site = 0
        #: Per-code-object cache: id(code) -> stable site base for
        #: traced code, None for untraced.  (id() is only the cache
        #: key — sites themselves come from :func:`_stable_site`.)
        self._code_cache: Dict[int, Optional[int]] = {}
        self._depth = 0

    # -- per-test lifecycle --------------------------------------------------

    def begin(self) -> None:
        """Reset the trace for a new test case."""
        self.trace = {}
        self._prev_site = 0

    def take_trace(self) -> Dict[int, int]:
        """Return the sparse trace collected since :meth:`begin`."""
        return self.trace

    def ijon_set(self, slot: int) -> None:
        """IJON-style state feedback: mark a state slot as reached.

        Mirrors IJON-SET/IJON-MAX: the annotated state value selects a
        bitmap entry, so novel states look like novel edges to the
        fuzzer's novelty check.
        """
        edge = (IJON_BASE + slot) % self.map_size
        trace = self.trace
        trace[edge] = trace.get(edge, 0) + 1

    # -- execution wrapper --------------------------------------------------

    def run(self, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` with tracing enabled.

        Re-entrant: nested calls keep the existing trace hook.
        """
        if self._depth == 0:
            sys.settrace(self._global_trace)
        self._depth += 1
        try:
            fn(*args)
        finally:
            self._depth -= 1
            if self._depth == 0:
                sys.settrace(None)

    # -- trace hooks -----------------------------------------------------------

    def _code_site(self, code) -> Optional[int]:
        """Stable site base for a code object (None = not traced)."""
        key = id(code)
        try:
            return self._code_cache[key]
        except KeyError:
            filename = code.co_filename
            if any(fragment in filename
                   for fragment in self.traced_fragments):
                site = _stable_site("%s:%s:%d" % (filename, code.co_name,
                                                  code.co_firstlineno))
            else:
                site = None
            self._code_cache[key] = site
            return site

    def _global_trace(self, frame, event, arg) -> Optional[Callable]:
        if event == "call":
            site = self._code_site(frame.f_code)
            if site is not None:
                # Record the call edge itself, then trace lines inside.
                self._hit(site)
                return self._local_trace
        return None

    def _local_trace(self, frame, event, arg) -> Optional[Callable]:
        if event == "line":
            base = self._code_cache.get(id(frame.f_code))
            if base is not None:
                self._hit((base * 33 + frame.f_lineno) & 0xFFFFFFFF)
        return self._local_trace

    def _hit(self, site: int) -> None:
        site &= 0xFFFFFFFF
        edge = (site ^ (self._prev_site >> 1)) % self.map_size
        self._prev_site = site
        trace = self.trace
        trace[edge] = trace.get(edge, 0) + 1
