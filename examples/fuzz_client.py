#!/usr/bin/env python3
"""The §5.4 case study: fuzzing a network *client* (MySQL).

Role reversal: the target connects out and the fuzzer plays the
server.  The client-mode attack surface hooks the outgoing connection
during startup; every test case then feeds mutated server packets
(greeting, auth result, result sets) to the client's parser.

"Performing these steps yields an out-of-bound read on the current
version of the client after a few minutes of fuzzing on 52 cores."

Run:  python examples/fuzz_client.py
"""

from repro import PROFILES, build_campaign


def main() -> None:
    profile = PROFILES["mysql-client"]
    print("Target: mysql(1) — client-mode fuzzing, fuzzer plays the server")
    handles = build_campaign(profile, policy="balanced", seed=3,
                             time_budget=120.0, max_execs=3000)
    stats = handles.fuzzer.run_campaign()
    print(stats.summary())
    for bug, record in sorted(handles.fuzzer.crashes.records.items()):
        print("  found %-35s at t=%.2fs (%s)"
              % (bug, record.found_at, record.report.detail))
        print("  triggering input: %d ops, %d payload bytes"
              % (len(record.input.ops), record.input.total_payload_bytes()))
    if not handles.fuzzer.crashes.records:
        print("  no crash this run — try more seeds/budget")


if __name__ == "__main__":
    main()
