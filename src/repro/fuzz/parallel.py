"""Parallel multi-instance campaigns over one shared root snapshot.

The paper's §6 scalability result — "80 instances of Nyx-Net only
require about 2x the memory of a single instance" — rests on sharing
the root snapshot between instances (§5.3).  This module builds that
orchestration layer:

* **One golden boot.**  The target boots exactly once; every worker VM
  :meth:`~repro.vm.machine.Machine.adopt_root`\\ s the golden root
  image as CoW page references instead of re-booting, and copies the
  golden interceptor's boot-time surface tables (guest socket ids are
  part of the adopted memory image, so they match verbatim).

* **Deterministic interleaving.**  Workers run round-robin time slices
  on the sim clock: the scheduler always steps the worker whose clock
  is furthest behind, for a slice length drawn from a campaign-level
  :class:`DeterministicRandom`.  Same seed and worker count → the
  exact same interleaving, which the determinism tests pin down to
  byte-identical aggregate stats and corpus contents.

* **AFL-style corpus sync.**  Every ``sync_interval`` sim seconds each
  worker exports its new-coverage entries (with traces); a merged
  campaign-level bitmap decides which are *globally* new, and only
  those are broadcast to the peers via
  :meth:`~repro.fuzz.queue.Corpus.import_foreign`.  Importers fold the
  entry's trace into their own map so known behaviour is not
  rediscovered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.coverage.bitmap import CoverageMap
from repro.coverage.backends import make_tracer
from repro.emu.interceptor import Interceptor
from repro.faults import FaultInjector, FaultPlan
from repro.fuzz.executor import NyxExecutor
from repro.fuzz.fuzzer import FuzzerConfig, NyxNetFuzzer
from repro.fuzz.stats import AggregateStats, CampaignStats
from repro.guestos.kernel import Kernel
from repro.sim.rng import DeterministicRandom
from repro.targets.base import TargetProfile
from repro.vm.machine import Machine, unique_page_footprint

#: Per-worker RNG seeds derive from the campaign seed through this
#: multiplier (golden-ratio hash constant) so workers explore
#: different trajectories without any shared-stream coupling.
_WORKER_SEED_STRIDE = 0x9E3779B1


@dataclass
class ParallelConfig:
    """Tunables for a parallel campaign."""

    workers: int = 2
    policy: str = "balanced"
    seed: int = 0
    #: Per-worker sim-time budget (workers run concurrently, so this
    #: is also the campaign's wall sim time).
    time_budget: float = 60.0
    #: Campaign-wide cap on total executions across all workers.
    max_total_execs: Optional[int] = None
    iterations_per_snapshot: int = 50
    #: Sim seconds between corpus sync rounds.
    sync_interval: float = 5.0
    #: Max scheduling iterations per time slice (actual length is
    #: drawn uniformly from [1, slice_max_steps] per slice).
    slice_max_steps: int = 3
    memory_bytes: int = 64 * 1024 * 1024
    asan: bool = True
    #: Fault-injection rate (0 disables).  Each worker derives its own
    #: :class:`FaultPlan` from the campaign seed, so the whole fleet's
    #: faults replay bit-identically for the same seed.
    fault_rate: float = 0.0
    #: Per-exec watchdog budget in simulated seconds (None disables).
    exec_timeout: Optional[float] = None
    #: Consecutive step() failures a worker survives before it is
    #: retired and the campaign continues at reduced worker count.
    max_worker_retries: int = 3
    #: Sim seconds charged to a failed worker before its next slice
    #: (doubles per consecutive failure — exponential backoff).
    failure_backoff: float = 0.5
    #: Step failures attributable to the same corpus entry before that
    #: entry is quarantined fleet-wide.
    quarantine_threshold: int = 2
    #: Coverage tracer backend for every worker ("auto" resolves
    #: per interpreter; backends are byte-equivalent).
    coverage_backend: str = "auto"
    #: Pages of simulated OS/page-cache image written into the golden
    #: VM before the root capture.  The lean simulated guest boots into
    #: only a handful of pages; a real VM image is megabytes, and the
    #: §6 footprint claim compares worker churn against *that*.  0 =
    #: measure the bare boot image.
    image_pages: int = 0


@dataclass
class WorkerHandle:
    """One fuzzing instance inside a parallel campaign."""

    worker_id: int
    machine: Machine
    kernel: Kernel
    interceptor: Interceptor
    executor: NyxExecutor
    fuzzer: NyxNetFuzzer
    #: Corpus-id watermark: entries below this id were already
    #: considered by a previous sync round.
    synced_id: int = 0
    done: bool = False
    #: Supervision state: consecutive step() failures, and whether the
    #: worker was permanently retired after exhausting its retries.
    consecutive_failures: int = 0
    retired: bool = False


class ParallelCampaign:
    """N fuzzer instances sharing one root snapshot and a corpus."""

    def __init__(self, profile: TargetProfile, config: ParallelConfig,
                 seeds=None) -> None:
        if config.workers < 1:
            raise ValueError("a campaign needs at least one worker")
        self.profile = profile
        self.config = config
        self.rng = DeterministicRandom(config.seed)
        #: Campaign-level merged bitmap: the arbiter of what is
        #: *globally* new during corpus sync.
        self.global_coverage = CoverageMap()
        #: (sim time, merged edges) sampled at every sync round.
        self.coverage_series: List[Tuple[float, int]] = []
        self._seeds = seeds if seeds is not None else profile.seeds()
        #: Spec used to validate/repair entries crossing workers during
        #: corpus sync (network targets all speak the default spec).
        from repro.spec.nodes import default_network_spec
        self.spec = default_network_spec()

        # One golden boot; workers adopt its root snapshot.
        from repro.fuzz.campaign import boot_target
        golden_machine, golden_kernel, golden_interceptor = boot_target(
            profile, asan=config.asan, memory_bytes=config.memory_bytes)
        if config.image_pages:
            self._bake_image(golden_machine, config.image_pages)
        self.golden = (golden_machine, golden_kernel, golden_interceptor)
        self.root = golden_machine.snapshots.root

        self.workers: List[WorkerHandle] = [
            self._spawn_worker(i) for i in range(config.workers)]
        self._finished = False
        self._started = False
        #: Sim time of the next corpus sync round (advances by
        #: ``sync_interval``; part of the resumable state).
        self._next_sync = config.sync_interval
        #: Step failures attributed to a corpus entry, keyed by its
        #: coverage checksum (the cross-worker identity).
        self._entry_failures: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # fleet construction
    # ------------------------------------------------------------------

    @staticmethod
    def _bake_image(machine: Machine, image_pages: int) -> None:
        """Write a deterministic OS-image pattern into the top pages of
        guest memory and re-capture the root so it is part of the
        shared image.  The top of memory is never reached by the
        guest's bump allocator, so the pattern is inert ballast."""
        from repro.vm.memory import PAGE_SIZE
        top = machine.memory.num_pages
        first = max(0, top - image_pages)
        for idx in range(first, top):
            machine.memory.write(idx * PAGE_SIZE, b"%016d" % idx)
        machine.capture_root()

    def _spawn_worker(self, worker_id: int) -> WorkerHandle:
        """Bring up one instance from the shared root, without booting.

        The kernel must exist before ``adopt_root``: adoption fires the
        restore callbacks, which rebuild the kernel's host-side object
        graph from the adopted memory image.  The kernel's directory
        region is the first allocation on a fresh machine, so its
        location matches the golden image by construction.
        """
        config = self.config
        machine = Machine(memory_bytes=config.memory_bytes)
        kernel = Kernel(machine)
        interceptor = Interceptor(kernel, self.profile.surface())
        machine.adopt_root(self.root)
        interceptor.adopt_surface_state(self.golden[2])

        tracer = make_tracer(config.coverage_backend)
        executor = NyxExecutor(machine, kernel, interceptor, tracer,
                               exec_timeout=config.exec_timeout)
        if config.fault_rate != 0.0:  # negatives rejected by FaultPlan
            plan = FaultPlan.for_campaign(
                config.seed, config.fault_rate).for_worker(worker_id)
            injector = FaultInjector(plan)
            interceptor.injector = injector
            machine.snapshots.injector = injector
        worker_seed = (config.seed
                       + (worker_id + 1) * _WORKER_SEED_STRIDE) % (1 << 31)
        fuzzer_config = FuzzerConfig(
            policy=config.policy, seed=worker_seed,
            time_budget=config.time_budget,
            iterations_per_snapshot=config.iterations_per_snapshot)
        fuzzer = NyxNetFuzzer(executor, [s.copy() for s in self._seeds],
                              fuzzer_config)
        fuzzer.stats.target_name = self.profile.name
        fuzzer.stats.fuzzer_name = "nyx-net-%s.w%02d" % (config.policy,
                                                         worker_id)
        return WorkerHandle(worker_id, machine, kernel, interceptor,
                            executor, fuzzer)

    # ------------------------------------------------------------------
    # the campaign loop
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin every worker and run the seed sync round (idempotent).

        Seed imports already produced coverage: one sync up front means
        no worker wastes its budget rediscovering the seed corpus.  On
        resume this is skipped via the restored ``_started`` flag.
        """
        if self._started:
            return
        self._started = True
        for worker in self.workers:
            try:
                worker.fuzzer.begin_campaign()
            except Exception:
                self._handle_worker_failure(worker)
        self._sync_corpora()

    def run(self, controller=None) -> Optional[AggregateStats]:
        """Run every worker to its budget, syncing corpora as we go.

        ``controller`` (the campaign durability layer) may observe
        slice boundaries via ``after_slice(campaign, worker)`` and
        request a graceful stop via ``should_stop()`` — in which case
        the campaign returns ``None`` *without* finishing, every worker
        parked at a step boundary, ready to be checkpointed and later
        resumed.
        """
        if self._finished:
            raise RuntimeError("campaign already ran")
        self.start()
        while True:
            if controller is not None and controller.should_stop():
                return None
            live = [w for w in self.workers if not w.done]
            if not live or self._total_execs_capped():
                break
            now = min(w.fuzzer.clock.now for w in live)
            if now >= self._next_sync:
                self._sync_corpora()
                self._next_sync += self.config.sync_interval
            # Step the worker furthest behind on the sim clock: a
            # discrete-event round-robin that keeps instances tightly
            # interleaved without any host-side concurrency.
            worker = min(live, key=lambda w: (w.fuzzer.clock.now,
                                              w.worker_id))
            slice_steps = 1 + self.rng.randrange(self.config.slice_max_steps)
            for _ in range(slice_steps):
                if self._total_execs_capped():
                    break
                try:
                    alive = worker.fuzzer.step()
                except Exception:
                    # Supervision: one bad step never kills the
                    # campaign.  The worker is reset, backed off, and
                    # retried; the entry it was fuzzing is a suspect.
                    self._handle_worker_failure(worker)
                    break
                worker.consecutive_failures = 0
                if not alive:
                    worker.done = True
                    break
            if controller is not None:
                controller.after_slice(self, worker)
        return self.finish()

    def finish(self) -> AggregateStats:
        """Final sync, stamp every worker's stats, roll up."""
        self._sync_corpora()
        for worker in self.workers:
            worker.fuzzer.finish_campaign()
        self._finished = True
        return self.aggregate()

    # ------------------------------------------------------------------
    # durability (checkpoint/resume)
    # ------------------------------------------------------------------

    #: Version stamp of the checkpointed fleet state.
    #: 2: the _finished latch joined the capture set (NYX060 fix).
    STATE_FORMAT = 2

    def snapshot_state(self) -> dict:
        """Full resumable fleet state, valid at a slice boundary.

        Covers the campaign RNG (slice lengths), the merged coverage
        arbiter, the sync schedule, fleet-wide quarantine tallies and
        every worker's fuzzer state plus supervision counters.  The
        caller pickles the dict immediately.
        """
        return {
            "format": self.STATE_FORMAT,
            "started": self._started,
            "finished": self._finished,
            "rng": self.rng.getstate(),
            "global_coverage": self.global_coverage.snapshot_state(),
            "coverage_series": list(self.coverage_series),
            "entry_failures": dict(self._entry_failures),
            "next_sync": self._next_sync,
            "workers": [{
                "fuzzer": w.fuzzer.snapshot_state(),
                "synced_id": w.synced_id,
                "done": w.done,
                "consecutive_failures": w.consecutive_failures,
                "retired": w.retired,
            } for w in self.workers],
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a checkpointed fleet state on a freshly built fleet."""
        if state.get("format") != self.STATE_FORMAT:
            raise ValueError("incompatible parallel checkpoint format %r "
                             "(this build speaks %d)"
                             % (state.get("format"), self.STATE_FORMAT))
        if len(state["workers"]) != len(self.workers):
            raise ValueError(
                "checkpoint has %d workers, campaign has %d"
                % (len(state["workers"]), len(self.workers)))
        self._started = bool(state["started"])
        self._finished = bool(state["finished"])
        self.rng.setstate(state["rng"])
        self.global_coverage.restore_state(state["global_coverage"])
        self.coverage_series = [tuple(p) for p in state["coverage_series"]]
        self._entry_failures = dict(state["entry_failures"])
        self._next_sync = float(state["next_sync"])
        for worker, saved in zip(self.workers, state["workers"]):
            worker.fuzzer.restore_state(saved["fuzzer"])
            worker.synced_id = int(saved["synced_id"])
            worker.done = bool(saved["done"])
            worker.consecutive_failures = int(saved["consecutive_failures"])
            worker.retired = bool(saved["retired"])

    # ------------------------------------------------------------------
    # worker supervision
    # ------------------------------------------------------------------

    def _handle_worker_failure(self, worker: WorkerHandle) -> None:
        """Contain one worker exception: count it, suspect the entry
        being fuzzed, reset the VM to the root, charge backoff, and
        retire the worker once its retry budget is spent."""
        config = self.config
        worker.fuzzer.stats.worker_failures += 1
        worker.consecutive_failures += 1
        self._suspect_entry(worker)
        # Backoff doubles per consecutive failure, charged to the
        # worker's own sim clock so the round-robin naturally deprives
        # a flapping worker of slices.
        worker.fuzzer.clock.charge(
            config.failure_backoff * (2 ** (worker.consecutive_failures - 1)))
        if worker.consecutive_failures > config.max_worker_retries:
            worker.done = True
            worker.retired = True
            return
        # Self-heal the VM: drop any incremental snapshot and rewind to
        # the (immutable) root, rebuilding guest state from memory.
        try:
            worker.machine.snapshots.discard_incremental()
            worker.executor._suffix = None
            worker.machine.restore_root()
        except Exception:
            # Even the root restore failed: this instance is beyond
            # saving.  Retire it; the campaign continues without it.
            worker.done = True
            worker.retired = True

    def _suspect_entry(self, worker: WorkerHandle) -> None:
        """Blame the entry the failing worker was fuzzing; quarantine
        it fleet-wide once it crosses the threshold."""
        entry = worker.fuzzer.last_entry
        if entry is None or entry.checksum is None:
            return
        key = entry.checksum
        self._entry_failures[key] = self._entry_failures.get(key, 0) + 1
        if self._entry_failures[key] < self.config.quarantine_threshold:
            return
        removed = 0
        for peer in self.workers:
            removed += peer.fuzzer.corpus.remove_by_checksum(key)
            if peer.fuzzer.last_entry is not None and \
                    peer.fuzzer.last_entry.checksum == key:
                peer.fuzzer.last_entry = None
        if removed:
            worker.fuzzer.stats.quarantined_inputs += 1

    def retired_workers(self) -> List[int]:
        """Worker ids retired by the supervisor (diagnostics)."""
        return [w.worker_id for w in self.workers if w.retired]

    def _total_execs_capped(self) -> bool:
        cap = self.config.max_total_execs
        return cap is not None and self.total_execs() >= cap

    def total_execs(self) -> int:
        return sum(w.fuzzer.stats.execs for w in self.workers)

    # ------------------------------------------------------------------
    # corpus sync
    # ------------------------------------------------------------------

    def _sync_corpora(self) -> int:
        """One AFL-style sync round; returns entries broadcast.

        Each worker's entries since its watermark are checked against
        the campaign's merged bitmap; only entries whose trace still
        contains a globally-new edge are broadcast to the peers.
        """
        broadcast: List[Tuple[int, object]] = []
        for worker in self.workers:
            fresh = worker.fuzzer.export_new_entries(worker.synced_id)
            worker.synced_id = worker.fuzzer.corpus.next_id
            for entry in fresh:
                if not entry.trace:
                    continue
                verdict = self.global_coverage.has_new_bits(entry.trace)
                if verdict == CoverageMap.NEW_EDGE:
                    broadcast.append((worker.worker_id, entry))
        for origin, entry in broadcast:
            for worker in self.workers:
                if worker.worker_id != origin:
                    worker.fuzzer.absorb_foreign([entry], spec=self.spec)
        now = max(w.fuzzer.clock.now for w in self.workers)
        edges = self.global_coverage.edge_count()
        if not self.coverage_series or self.coverage_series[-1][1] != edges:
            self.coverage_series.append((now, edges))
        return len(broadcast)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def aggregate(self) -> AggregateStats:
        """Roll per-worker stats up into the campaign-level view."""
        parts = [w.fuzzer.stats for w in self.workers]
        merged = CampaignStats.merge(
            parts,
            fuzzer_name="nyx-net-%s-x%d" % (self.config.policy,
                                            len(self.workers)),
            target_name=self.profile.name,
            coverage_series=self.coverage_series)
        return AggregateStats(merged=merged, workers=parts)

    def unique_page_footprint(self) -> Dict[str, float]:
        """Fleet memory accounting for the §6 scalability claim.

        ``single`` is the unique-page footprint of one instance (the
        root image); ``total`` counts distinct page objects across the
        whole fleet plus the shared root.  The paper's claim is
        ``ratio`` ≈ 2 even for 80 instances.
        """
        single = len({id(p) for p in self.root.pages})
        total = unique_page_footprint(
            (w.machine for w in self.workers), roots=(self.root,))
        return {"single": single, "total": total,
                "ratio": total / single if single else 0.0}

    def corpus_digest(self) -> List[List[bytes]]:
        """Serialized corpus contents per worker, for bit-identity
        checks across same-seed runs."""
        from repro.spec.bytecode import SpecError, serialize
        from repro.spec.nodes import default_network_spec
        spec = default_network_spec()
        digest: List[List[bytes]] = []
        for worker in self.workers:
            blobs: List[bytes] = []
            for entry in worker.fuzzer.corpus.entries:
                try:
                    blobs.append(serialize(spec, entry.input.ops))
                except SpecError:
                    blobs.append(b"<foreign-spec>")
            digest.append(blobs)
        return digest
