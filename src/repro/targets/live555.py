"""live555: an RTSP media streaming server.

RTSP request parsing (OPTIONS/DESCRIBE/SETUP/PLAY/PAUSE/TEARDOWN) with
CSeq tracking, session ids and transport header parsing.  The planted
bug is the Table 1 style crash every fuzzer finds: a stack-ish buffer
overflow when an overlong header value is copied into a fixed-size
field during DESCRIBE handling.
"""

from __future__ import annotations

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashKind
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 8554

#: The fixed buffer live555 copies the request URL into.
URL_BUF = 48


class Live555Server(MessageServer):
    name = "live555"
    port = PORT
    startup_cost = 0.05
    parse_cost = 3e-9

    def __init__(self) -> None:
        super().__init__()
        self.next_session = 0x1000
        self.streams = {"/stream0": "H264", "/audio": "AAC"}

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        conn.buffer += data
        # RTSP requests end with an empty line.
        while b"\r\n\r\n" in conn.buffer:
            idx = conn.buffer.find(b"\r\n\r\n")
            request, conn.buffer = conn.buffer[:idx], conn.buffer[idx + 4:]
            self._request(api, conn, request)

    def _request(self, api, conn: ConnCtx, request: bytes) -> None:
        lines = request.split(b"\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith(b"RTSP/"):
            self.reply(api, conn, b"RTSP/1.0 400 Bad Request\r\n\r\n")
            return
        method, url, _version = parts
        # The planted overflow: the URL is strcpy'd into a fixed-size
        # stack buffer while building the stream name (Table 1: every
        # fuzzer crashes live555).
        if len(url) > URL_BUF:
            self.crash(CrashKind.SEGV, "live555-url-overflow",
                       "request URL of %d bytes" % len(url))
        headers = {}
        for line in lines[1:]:
            key, sep, value = line.partition(b":")
            if sep:
                headers[key.strip().upper()] = value.strip()
        cseq = headers.get(b"CSEQ", b"0")
        if not cseq.isdigit():
            self.reply(api, conn, b"RTSP/1.0 400 Bad Request\r\n\r\n")
            return
        handler = {
            b"OPTIONS": self._options,
            b"DESCRIBE": self._describe,
            b"SETUP": self._setup,
            b"PLAY": self._play,
            b"PAUSE": self._pause,
            b"TEARDOWN": self._teardown,
            b"GET_PARAMETER": self._get_parameter,
        }.get(method.upper())
        if handler is None:
            self._respond(api, conn, cseq, b"405 Method Not Allowed")
            return
        handler(api, conn, cseq, url, headers)

    def _respond(self, api, conn: ConnCtx, cseq: bytes, status: bytes,
                 extra: bytes = b"", body: bytes = b"") -> None:
        response = b"RTSP/1.0 %s\r\nCSeq: %s\r\n%s" % (status, cseq, extra)
        if body:
            response += b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
        else:
            response += b"\r\n"
        self.reply(api, conn, response)

    def _options(self, api, conn, cseq, url, headers) -> None:
        self._respond(api, conn, cseq, b"200 OK",
                      b"Public: OPTIONS, DESCRIBE, SETUP, PLAY, PAUSE, "
                      b"TEARDOWN\r\n")

    def _describe(self, api, conn, cseq, url, headers) -> None:
        accept = headers.get(b"ACCEPT", b"application/sdp")
        if b"sdp" not in accept:
            self._respond(api, conn, cseq, b"406 Not Acceptable")
            return
        path = url.split(b"rtsp://", 1)[-1]
        path = b"/" + path.split(b"/", 1)[1] if b"/" in path else b"/stream0"
        codec = self.streams.get(path.decode("latin1"))
        if codec is None:
            self._respond(api, conn, cseq, b"404 Not Found")
            return
        sdp = (b"v=0\r\no=- 0 0 IN IP4 127.0.0.1\r\ns=%s\r\n"
               b"m=video 0 RTP/AVP 96\r\n" % codec.encode())
        self._respond(api, conn, cseq, b"200 OK",
                      b"Content-Type: application/sdp\r\n", body=sdp)

    def _setup(self, api, conn, cseq, url, headers) -> None:
        transport = headers.get(b"TRANSPORT", b"")
        if b"RTP/AVP" not in transport:
            self._respond(api, conn, cseq, b"461 Unsupported Transport")
            return
        interleaved = b"interleaved=" in transport
        self.next_session += 1
        conn.vars["session"] = self.next_session
        conn.vars["playing"] = False
        mode = b"RTP/AVP/TCP;interleaved=0-1" if interleaved \
            else b"RTP/AVP;unicast;client_port=50000-50001"
        self._respond(api, conn, cseq, b"200 OK",
                      b"Transport: %s\r\nSession: %08X\r\n"
                      % (mode, self.next_session))

    def _require_session(self, api, conn, cseq, headers) -> bool:
        session = headers.get(b"SESSION", b"")
        want = b"%08X" % conn.vars.get("session", 0)
        if not conn.vars.get("session") or session != want:
            self._respond(api, conn, cseq, b"454 Session Not Found")
            return False
        return True

    def _play(self, api, conn, cseq, url, headers) -> None:
        if not self._require_session(api, conn, cseq, headers):
            return
        conn.vars["playing"] = True
        api.cpu(5e-6)  # start streaming machinery
        self._respond(api, conn, cseq, b"200 OK",
                      b"Range: npt=0.000-\r\nSession: %08X\r\n"
                      % conn.vars["session"])

    def _pause(self, api, conn, cseq, url, headers) -> None:
        if not self._require_session(api, conn, cseq, headers):
            return
        conn.vars["playing"] = False
        self._respond(api, conn, cseq, b"200 OK")

    def _teardown(self, api, conn, cseq, url, headers) -> None:
        if not self._require_session(api, conn, cseq, headers):
            return
        conn.vars.pop("session", None)
        self._respond(api, conn, cseq, b"200 OK")

    def _get_parameter(self, api, conn, cseq, url, headers) -> None:
        self._respond(api, conn, cseq, b"200 OK")


DICTIONARY = [b"OPTIONS ", b"DESCRIBE ", b"SETUP ", b"PLAY ", b"TEARDOWN ",
              b"rtsp://127.0.0.1/stream0", b"CSeq: ", b"Accept: ",
              b"Transport: RTP/AVP", b"Session: ", b"RTSP/1.0", b"\r\n\r\n"]


def _req(method: bytes, url: bytes, cseq: int, *headers: bytes) -> bytes:
    lines = [b"%s %s RTSP/1.0" % (method, url), b"CSeq: %d" % cseq]
    lines.extend(headers)
    return b"\r\n".join(lines) + b"\r\n\r\n"


def make_seeds():
    spec = default_network_spec()
    url = b"rtsp://127.0.0.1:8554/stream0"
    seeds = []
    for packets in (
        [_req(b"OPTIONS", url, 1),
         _req(b"DESCRIBE", url, 2, b"Accept: application/sdp")],
        [_req(b"OPTIONS", url, 1),
         _req(b"DESCRIBE", url, 2, b"Accept: application/sdp"),
         _req(b"SETUP", url + b"/track1", 3,
              b"Transport: RTP/AVP;unicast;client_port=50000-50001")],
        [_req(b"DESCRIBE", b"rtsp://127.0.0.1:8554/audio", 1,
              b"Accept: application/sdp"),
         _req(b"SETUP", b"rtsp://127.0.0.1:8554/audio", 2,
              b"Transport: RTP/AVP/TCP;interleaved=0-1"),
         _req(b"GET_PARAMETER", url, 3)],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for packet in packets:
            builder.packet(con, packet)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="live555",
    protocol="rtsp",
    make_program=Live555Server,
    surface_factory=lambda: AttackSurface.tcp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.05,
    libpreeny_compatible=False,
    planted_bugs=("segv:live555-url-overflow",),
    notes="Overlong-URL stack overflow; all fuzzers find it (Table 1).",
)
