"""Super Mario Bros. substrate (§5.3, Table 4, Figure 2).

A deterministic tile-based platformer with SMB-style physics —
including the **wall-jump glitch** that lets Nyx-Net solve level 2-1,
which "the authors of IJON believed to be unsolvable".  The game runs
as a guest program consuming button-frame packets, so the same
Nyx-Net fuzzer (and its snapshot policies) drive it unchanged; IJON's
max-x state feedback is exposed through the coverage bitmap exactly
like IJON's own LLVM pass does.

The engine module is deliberately *not* line-traced (see
:data:`repro.coverage.tracer.DEFAULT_TRACED_FRAGMENTS`): like IJON's
original experiment, progress feedback comes from the max-x state
annotation, not from code coverage of the physics loop.
"""

from repro.mario.engine import (Buttons, GameState, Level, MarioEngine,
                                FRAME_DT)
from repro.mario.levels import load_level, LEVEL_NAMES
from repro.mario.target import MarioTarget, mario_profile
from repro.mario.solver import solve_level, SolveResult

__all__ = ["Buttons", "GameState", "Level", "MarioEngine", "FRAME_DT",
           "load_level", "LEVEL_NAMES", "MarioTarget", "mario_profile",
           "solve_level", "SolveResult"]
