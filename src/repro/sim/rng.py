"""Deterministic randomness for reproducible fuzzing campaigns.

Every stochastic decision in the fuzzer (mutation choice, snapshot
placement, havoc stacking) draws from a :class:`DeterministicRandom`
seeded per campaign.  Campaign results are therefore exactly
reproducible, which the test suite relies on.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRandom(random.Random):
    """A :class:`random.Random` with a few fuzzing-specific helpers."""

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.random() < probability

    def pick(self, items: Sequence[T]) -> T:
        """Choose one element of a non-empty sequence."""
        if not items:
            raise IndexError("cannot pick from an empty sequence")
        return items[self.randrange(len(items))]

    def biased_index(self, length: int, towards_end: bool = True) -> int:
        """Pick an index of ``range(length)`` biased towards the end.

        Used by snapshot placement: later packet indices retain more of
        the prefix-skipping benefit (§3.4).
        """
        if length <= 0:
            raise IndexError("cannot index an empty range")
        a = self.randrange(length)
        b = self.randrange(length)
        return max(a, b) if towards_end else min(a, b)

    def some_bytes(self, length: int) -> bytes:
        """Random byte string of the given length.

        One bulk ``getrandbits`` draw instead of a Python loop, while
        consuming the underlying Mersenne-Twister stream exactly like
        ``length`` separate ``getrandbits(8)`` calls did: each byte
        draw consumes one 32-bit MT output word and keeps its top 8
        bits, so the batched draw takes ``32 * length`` bits and keeps
        every fourth byte (little-endian word order puts each word's
        top byte at offset 3).  Seed streams — and therefore whole
        campaigns — replay byte-identically across the change.
        """
        if length <= 0:
            return b""
        words = self.getrandbits(32 * length)
        return words.to_bytes(4 * length, "little")[3::4]

    def shuffled(self, items: Sequence[T]) -> List[T]:
        """Return a shuffled copy without mutating the input."""
        out = list(items)
        self.shuffle(out)
        return out
