"""The hypercall interface between the in-guest agent and the fuzzer.

"Hypercalls are like syscalls but for VMs: they leave the VM context
and pass the control to the hypervisor" (§2.3).  The agent (our
emulation layer, :mod:`repro.emu.interceptor`) uses them to drive the
fuzzing cycle: announce readiness, request snapshots, report test-case
completion and panics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict


class Hypercall(enum.Enum):
    """Hypercall numbers understood by the (simulated) hypervisor."""

    #: Agent is ready; the hypervisor should take the root snapshot.
    READY_AND_SNAPSHOT = "ready_and_snapshot"
    #: Take the secondary (incremental) snapshot right now (§4.3's
    #: special "snapshot" opcode lands here).
    CREATE_INCREMENTAL = "create_incremental"
    #: The test case finished cleanly.
    RELEASE = "release"
    #: The guest observed a crash in the target.
    PANIC = "panic"
    #: The target performed an operation the emulation cannot satisfy
    #: (used for diagnostics, mirrors Nyx's abort hypercall).
    ABORT = "abort"


class HypercallError(Exception):
    """Raised when the guest issues a hypercall the host cannot honor."""


@dataclass
class HypercallEvent:
    """A single hypercall as observed by the hypervisor."""

    call: Hypercall
    payload: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HypercallEvent(%s, %r)" % (self.call.value, self.payload)
