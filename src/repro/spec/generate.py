"""Generative input synthesis from a specification.

Nyx's original mode is *purely generative* (§2.2): with no seeds at
all, the fuzzer emits random — but well-typed — opcode sequences from
the spec.  The generator respects the affine rules: borrows pick any
live value of the right edge type, consumes use a value up, and nodes
whose operands cannot be satisfied are not eligible.

Used as the empty-seed fallback of the campaign loop and available
standalone for spec authors (`generate_input`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.rng import DeterministicRandom
from repro.spec.bytecode import Op, validate
from repro.spec.nodes import NodeType, Spec
from repro.spec.types import ByteVec, DataType, U8, U16, U32


def _random_value(dtype: DataType, rng: DeterministicRandom):
    if isinstance(dtype, ByteVec):
        length = rng.randrange(0, 48)
        return rng.some_bytes(length)
    if isinstance(dtype, U8):
        return rng.randrange(256)
    if isinstance(dtype, U16):
        return rng.randrange(1 << 16)
    if isinstance(dtype, U32):
        return rng.getrandbits(32)
    raise TypeError("no generator for data type %r" % dtype)


def generate_input(spec: Spec, rng: DeterministicRandom,
                   max_ops: int = 12,
                   dictionary: Optional[List[bytes]] = None) -> List[Op]:
    """Emit a random well-typed op sequence of up to ``max_ops`` ops.

    ``dictionary`` tokens, when given, are used for byte-vector fields
    half the time — random bytes alone rarely form protocol keywords.
    """
    ops: List[Op] = []
    # Live values: (value index, edge name); consumed ones are removed.
    live: List[tuple] = []
    value_count = 0
    for _ in range(max_ops):
        eligible = [node for node in spec.node_types
                    if _satisfiable(node, live)]
        if not eligible:
            break
        node = rng.pick(eligible)
        refs = []
        used = set()
        possible = True
        for edge in list(node.borrows) + list(node.consumes):
            candidates = [idx for idx, name in live
                          if name == edge.name and idx not in used]
            if not candidates:
                possible = False
                break
            ref = rng.pick(candidates)
            used.add(ref)
            refs.append(ref)
        if not possible:
            continue
        # Consumed values leave the live set (affine use).
        n_borrows = len(node.borrows)
        for ref in refs[n_borrows:]:
            live = [(idx, name) for idx, name in live if idx != ref]
        args = []
        for dtype in node.data:
            if (dictionary and isinstance(dtype, ByteVec)
                    and rng.chance(0.5)):
                args.append(bytes(rng.pick(dictionary)))
            else:
                args.append(_random_value(dtype, rng))
        ops.append(Op(node.name, tuple(refs), tuple(args)))
        for edge in node.outputs:
            live.append((value_count, edge.name))
            value_count += 1
    validate(spec, ops)
    return ops


def _satisfiable(node: NodeType, live: List[tuple]) -> bool:
    """Whether the live value pool can feed this node's operands."""
    needed: dict = {}
    for edge in list(node.borrows) + list(node.consumes):
        needed[edge.name] = needed.get(edge.name, 0) + 1
    for name, count in needed.items():
        if sum(1 for _idx, live_name in live if live_name == name) < count:
            return False
    return True
