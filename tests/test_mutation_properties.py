"""Property-based tests on the mutation engine's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.input import packets_input
from repro.fuzz.mutators import MutationEngine, _digit_runs
from repro.sim.rng import DeterministicRandom
from repro.spec.bytecode import validate
from repro.spec.nodes import default_network_spec

SPEC = default_network_spec()

payloads_strategy = st.lists(st.binary(max_size=120), min_size=1, max_size=12)
dict_strategy = st.lists(st.binary(min_size=1, max_size=16), max_size=4)


@given(payloads_strategy, st.integers(0, 2**31), dict_strategy)
@settings(max_examples=120, deadline=None)
def test_children_always_validate(payloads, seed, dictionary):
    """Any mutated child remains a well-typed op sequence: the fuzzer
    never produces inputs the bytecode serializer would reject."""
    parent = packets_input(payloads)
    engine = MutationEngine(DeterministicRandom(seed), dictionary)
    for _ in range(5):
        child = engine.mutate(parent)
        validate(SPEC, child.ops)


@given(payloads_strategy, st.integers(0, 2**31),
       st.integers(0, 12), dict_strategy)
@settings(max_examples=120, deadline=None)
def test_prefix_immutable_under_from_index(payloads, seed, from_index,
                                           dictionary):
    """Suffix fuzzing may never rewrite ops before the snapshot point
    (§4.3: 'the fuzzer continues fuzzing starting from the next packet
    only')."""
    parent = packets_input(payloads)
    engine = MutationEngine(DeterministicRandom(seed), dictionary)
    child = engine.mutate(parent, from_index=from_index)
    bound = min(from_index, len(parent.ops))
    for i in range(bound):
        assert child.ops[i].node == parent.ops[i].node
        assert child.ops[i].args == parent.ops[i].args


@given(payloads_strategy, st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_splice_children_validate(payloads, seed):
    parent = packets_input(payloads)
    donor = packets_input([b"donor-1", b"donor-2", b"donor-3"])
    engine = MutationEngine(DeterministicRandom(seed))
    for _ in range(5):
        child = engine.mutate(parent, splice_donor=donor)
        validate(SPEC, child.ops)


@given(st.binary(max_size=60))
@settings(max_examples=80)
def test_digit_runs_are_exact(data):
    runs = _digit_runs(bytearray(data))
    covered = set()
    for start, end in runs:
        assert start < end
        assert all(0x30 <= data[i] <= 0x39 for i in range(start, end))
        # maximal: neighbors are not digits
        if start > 0:
            assert not 0x30 <= data[start - 1] <= 0x39
        if end < len(data):
            assert not 0x30 <= data[end] <= 0x39
        covered.update(range(start, end))
    for i, byte in enumerate(data):
        if 0x30 <= byte <= 0x39:
            assert i in covered


@given(payloads_strategy, st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_mutation_is_pure_wrt_parent(payloads, seed):
    parent = packets_input(payloads)
    snapshot = [(op.node, op.refs, op.args) for op in parent.ops]
    engine = MutationEngine(DeterministicRandom(seed), [b"TOK"])
    for _ in range(10):
        engine.mutate(parent)
    assert [(op.node, op.refs, op.args) for op in parent.ops] == snapshot
