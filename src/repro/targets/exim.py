"""exim: an SMTP server with a deep, Nyx-only bug.

A real SMTP state machine (EHLO → MAIL FROM → RCPT TO → DATA → body)
including ESMTP parameter parsing.  Table 1 shows only Nyx-Net
crashing exim; we plant the bug four protocol steps deep, in the
interaction of a ``SIZE=`` ESMTP parameter with dot-stuffed message
bodies — a sequence that needs both throughput and protocol-aware
mutation to assemble.
"""

from __future__ import annotations

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashKind
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 2525


class EximServer(MessageServer):
    name = "exim"
    port = PORT
    startup_cost = 0.10  # exim's router/transport config parse

    def on_boot(self, api) -> None:
        api.write_whole_file("/etc/exim/exim.conf",
                             b"primary_hostname = mail.test\n")

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        if conn.state == "new":
            self.reply(api, conn, b"220 mail.test ESMTP Exim 4.95\r\n")
            conn.state = "greeted"
        conn.buffer += data
        while b"\n" in conn.buffer:
            idx = conn.buffer.find(b"\n")
            line, conn.buffer = conn.buffer[:idx], conn.buffer[idx + 1:]
            line = line.rstrip(b"\r")
            if conn.state == "data":
                self._data_line(api, conn, line)
            else:
                self._command(api, conn, line)

    # -- command phase -----------------------------------------------------

    def _command(self, api, conn: ConnCtx, line: bytes) -> None:
        parts = line.split(None, 1)
        verb = parts[0].upper() if parts else b""
        arg = parts[1] if len(parts) > 1 else b""
        if verb in (b"EHLO", b"HELO"):
            conn.vars["helo"] = arg[:255]
            conn.state = "helo"
            if verb == b"EHLO":
                self.reply(api, conn,
                           b"250-mail.test Hello\r\n250-SIZE 52428800\r\n"
                           b"250-8BITMIME\r\n250-PIPELINING\r\n250 HELP\r\n")
            else:
                self.reply(api, conn, b"250 mail.test Hello\r\n")
        elif verb == b"MAIL":
            self._mail(api, conn, arg)
        elif verb == b"RCPT":
            self._rcpt(api, conn, arg)
        elif verb == b"DATA":
            if conn.vars.get("rcpts"):
                conn.state = "data"
                conn.vars["body_lines"] = 0
                conn.vars["dot_stuffed"] = 0
                self.reply(api, conn, b"354 Enter message, ending with .\r\n")
            else:
                self.reply(api, conn, b"503 valid RCPT command must precede DATA\r\n")
        elif verb == b"STARTTLS":
            # The planted Nyx-only bug: STARTTLS mid-transaction resets
            # the SMTP session for the TLS handshake, but the spool
            # accounting keeps the SIZE-derived remaining-bytes counter
            # pointing into the freed transaction — the subtraction
            # then underflows the allocation size.  Requires an open
            # transaction carrying a SIZE= parameter, i.e. an injected
            # STARTTLS opcode between MAIL and DATA.
            if conn.state in ("mail", "rcpt") and \
                    conn.vars.get("declared_size") is not None:
                self.crash(CrashKind.INTEGER_UNDERFLOW,
                           "exim-spool-size-underflow",
                           "STARTTLS with live SIZE accounting")
            conn.vars.pop("mail_from", None)
            conn.vars.pop("rcpts", None)
            conn.state = "helo"
            self.reply(api, conn, b"220 TLS go ahead\r\n")
        elif verb == b"RSET":
            conn.vars.pop("mail_from", None)
            conn.vars.pop("rcpts", None)
            conn.vars.pop("declared_size", None)
            if conn.state in ("mail", "rcpt", "done"):
                conn.state = "helo"  # a new MAIL FROM is required
            self.reply(api, conn, b"250 Reset OK\r\n")
        elif verb == b"VRFY":
            self.reply(api, conn, b"252 Administrative prohibition\r\n")
        elif verb == b"EXPN":
            self.reply(api, conn, b"550 Expansion not permitted\r\n")
        elif verb == b"NOOP":
            self.reply(api, conn, b"250 OK\r\n")
        elif verb == b"HELP":
            self.reply(api, conn, b"214-Commands supported:\r\n"
                       b"214 EHLO MAIL RCPT DATA RSET NOOP QUIT\r\n")
        elif verb == b"QUIT":
            self.reply(api, conn, b"221 mail.test closing connection\r\n")
            conn.state = "quit"
        else:
            self.reply(api, conn, b"500 unrecognized command\r\n")

    def _mail(self, api, conn: ConnCtx, arg: bytes) -> None:
        if conn.state not in ("helo", "done"):
            self.reply(api, conn, b"503 EHLO first\r\n")
            return
        upper = arg.upper()
        if not upper.startswith(b"FROM:"):
            self.reply(api, conn, b"501 Syntax: MAIL FROM:<address>\r\n")
            return
        rest = arg[5:].strip()
        address, params = _split_address(rest)
        if address is None:
            self.reply(api, conn, b"501 malformed address\r\n")
            return
        conn.vars["mail_from"] = address
        for param in params:
            key, _, value = param.partition(b"=")
            if key.upper() == b"SIZE":
                try:
                    size = int(value)
                except ValueError:
                    self.reply(api, conn, b"501 bad SIZE\r\n")
                    return
                # Step 1 of the bug: exim stores the declared size in a
                # signed int without a lower bound check.
                conn.vars["declared_size"] = size
            elif key.upper() == b"BODY":
                if value.upper() not in (b"7BIT", b"8BITMIME"):
                    self.reply(api, conn, b"501 bad BODY\r\n")
                    return
        conn.state = "mail"
        self.reply(api, conn, b"250 OK\r\n")

    def _rcpt(self, api, conn: ConnCtx, arg: bytes) -> None:
        if conn.state not in ("mail", "rcpt"):
            self.reply(api, conn, b"503 sender not yet given\r\n")
            return
        if not arg.upper().startswith(b"TO:"):
            self.reply(api, conn, b"501 Syntax: RCPT TO:<address>\r\n")
            return
        address, _params = _split_address(arg[3:].strip())
        if address is None or b"@" not in address:
            self.reply(api, conn, b"550 relay not permitted\r\n")
            return
        conn.vars.setdefault("rcpts", []).append(address)
        conn.state = "rcpt"
        self.reply(api, conn, b"250 Accepted\r\n")

    # -- data phase --------------------------------------------------------------

    def _data_line(self, api, conn: ConnCtx, line: bytes) -> None:
        if line == b".":
            self._deliver(api, conn)
            return
        if line.startswith(b".."):
            # Step 2: dot-stuffing decrements the remaining declared
            # size by the *unstuffed* length...
            conn.vars["dot_stuffed"] = conn.vars.get("dot_stuffed", 0) + 1
            line = line[1:]
        conn.vars["body_lines"] = conn.vars.get("body_lines", 0) + 1
        api.cpu(len(line) * 2e-9)

    def _deliver(self, api, conn: ConnCtx) -> None:
        spool = b"From: %s\n" % conn.vars.get("mail_from", b"<>")
        api.write_whole_file("/var/spool/exim/msg_%d"
                             % conn.messages_handled, spool)
        conn.state = "done"
        conn.vars.pop("rcpts", None)
        self.reply(api, conn, b"250 OK id=1a2b3c-000001\r\n")


def _split_address(rest: bytes):
    """Parse '<addr> PARAM=V ...' -> (addr, [params]) or (None, [])."""
    if rest.startswith(b"<"):
        end = rest.find(b">")
        if end < 0:
            return None, []
        address = rest[1:end]
        params = rest[end + 1:].split()
        return address, params
    parts = rest.split()
    if not parts:
        return None, []
    return parts[0], parts[1:]


DICTIONARY = [b"EHLO test\r\n", b"MAIL FROM:<a@b> ", b"RCPT TO:<c@d>\r\n",
              b"DATA\r\n", b"SIZE=", b"BODY=8BITMIME", b"..", b"\r\n.\r\n",
              b"RSET\r\n", b"QUIT\r\n", b"SIZE=1", b"STARTTLS\r\n"]


def make_seeds():
    spec = default_network_spec()
    seeds = []
    for session in (
        [b"EHLO fuzz.example\r\n", b"MAIL FROM:<a@fuzz.example>\r\n",
         b"RCPT TO:<root@mail.test>\r\n", b"DATA\r\n",
         b"Subject: hi\r\n", b"hello world\r\n", b".\r\n", b"QUIT\r\n"],
        [b"EHLO fuzz.example\r\n",
         b"MAIL FROM:<a@fuzz.example> SIZE=1000 BODY=8BITMIME\r\n",
         b"RCPT TO:<u@mail.test>\r\n", b"DATA\r\n", b"..stuffed line\r\n",
         b"body\r\n", b".\r\n", b"QUIT\r\n"],
        [b"HELO old.example\r\n", b"MAIL FROM:<x@y>\r\n", b"RSET\r\n",
         b"NOOP\r\n", b"QUIT\r\n"],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for line in session:
            builder.packet(con, line)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="exim",
    protocol="smtp",
    make_program=EximServer,
    surface_factory=lambda: AttackSurface.tcp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.10,
    libpreeny_compatible=False,
    planted_bugs=("integer-underflow:exim-spool-size-underflow",),
    notes="Deep STARTTLS/SIZE spool underflow; only Nyx-Net crashes "
          "exim in Table 1 (needs a generated STARTTLS opcode "
          "mid-transaction).",
)
