"""The corpus ("queue") of interesting inputs.

AFL-style: every input that produced new coverage joins the queue;
scheduling walks the queue in cycles, favoring fast/small entries.
Entries also carry the per-input state the *aggressive* snapshot
placement policy needs (its cursor and fruitless counter, §3.4).

Parallel campaigns sync corpora between instances the AFL -M/-S way:
:meth:`Corpus.export_entries` hands out entries found since the last
sync (with their discovery metadata and trace), and
:meth:`Corpus.import_foreign` adopts a peer's exports, deduplicating
by coverage checksum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.fuzz.input import FuzzInput
from repro.sim.rng import DeterministicRandom


@dataclass
class QueueEntry:
    """One corpus entry plus its scheduling metadata."""

    entry_id: int
    input: FuzzInput
    exec_time: float = 0.0
    new_edges: int = 0
    favored: bool = False
    times_scheduled: int = 0
    found_at: float = 0.0
    #: Packets the target actually consumed when this entry first ran
    #: (0 = unknown).  Policies never place snapshots past this point:
    #: packets the target no longer reads cannot hide progress.
    effective_packets: int = 0
    #: Aggressive-policy state: current snapshot index (None = start
    #: from the end on first schedule) and fruitless-iteration count.
    aggr_cursor: Optional[int] = None
    aggr_fruitless: int = 0
    #: Bandit-policy state: per-chain-depth pull counts, accumulated
    #: coverage reward and accumulated sim cost (None until the entry
    #: is first fuzzed over a chain).  Travels with the entry through
    #: corpus checkpoints, so a resumed campaign keeps its learned arm
    #: preferences.
    arm_pulls: Optional[Dict[int, int]] = None
    arm_reward: Optional[Dict[int, float]] = None
    arm_cost: Optional[Dict[int, float]] = None
    #: Coverage checksum of the discovering execution (dedup key for
    #: cross-instance corpus sync).
    checksum: Optional[int] = None
    #: Sparse edge trace of the discovering execution.  Lets a peer
    #: (or the campaign-level merged bitmap) absorb this entry's
    #: coverage without re-executing it.
    trace: Optional[Dict[int, int]] = None

    def fuzzable_packets(self) -> int:
        """Packets worth snapshotting over (consumed, else all)."""
        n = self.input.num_packets
        if self.effective_packets > 0:
            return min(n, self.effective_packets)
        return n

    @property
    def score(self) -> float:
        """Lower is better: prefer fast inputs that found much."""
        return self.exec_time / (1.0 + self.new_edges)


class Corpus:
    """The fuzzer's queue of inputs."""

    def __init__(self, rng: DeterministicRandom) -> None:
        self.rng = rng
        self.entries: List[QueueEntry] = []
        self._next_id = 0
        self._cursor = 0
        self.cycles_done = 0
        self._seen_checksums: set = set()

    @property
    def next_id(self) -> int:
        """The id the next added entry will receive (sync watermark)."""
        return self._next_id

    def add(self, input_: FuzzInput, exec_time: float = 0.0,
            new_edges: int = 0, found_at: float = 0.0,
            checksum: Optional[int] = None,
            packets_consumed: int = 0,
            trace: Optional[Dict[int, int]] = None) -> QueueEntry:
        """Insert an input (dedup by coverage checksum if given)."""
        if checksum is not None:
            if checksum in self._seen_checksums:
                # Same coverage signature; keep the corpus lean.
                pass
            self._seen_checksums.add(checksum)
        entry = QueueEntry(self._next_id, input_, exec_time=exec_time,
                           new_edges=new_edges, found_at=found_at,
                           effective_packets=packets_consumed,
                           checksum=checksum, trace=trace)
        self._next_id += 1
        self.entries.append(entry)
        self._refresh_favored()
        return entry

    # -- cross-instance corpus sync (parallel campaigns) -----------------

    def export_entries(self, since_id: int = 0) -> List[QueueEntry]:
        """Entries with id >= ``since_id``, in discovery order.

        The caller keeps :attr:`next_id` as its watermark so each sync
        round only ships entries found since the previous one.
        """
        return [e for e in self.entries if e.entry_id >= since_id]

    def import_foreign(self, entries: Sequence[QueueEntry],
                       found_at: float = 0.0,
                       spec=None) -> List[QueueEntry]:
        """Adopt entries exported by a peer instance.

        Entries whose coverage checksum this corpus has already seen
        are dropped (the peer found the same behaviour independently).
        When a ``spec`` is given, entries that fail affine validation
        (mutation-introduced damage on the peer) are repaired through
        the static analyzer's fix-its — or skipped if unrepairable —
        instead of poisoning the queue.  Returns the entries actually
        adopted, with fresh local ids.
        """
        adopted: List[QueueEntry] = []
        for foreign in entries:
            if (foreign.checksum is not None
                    and foreign.checksum in self._seen_checksums):
                continue
            clone = foreign.input.copy()
            clone.origin = "import"
            if spec is not None and not self._repair_in_place(clone, spec):
                continue
            trace = dict(foreign.trace) if foreign.trace else None
            adopted.append(self.add(
                clone, exec_time=foreign.exec_time,
                new_edges=foreign.new_edges, found_at=found_at,
                checksum=foreign.checksum,
                packets_consumed=foreign.effective_packets,
                trace=trace))
        return adopted

    @staticmethod
    def _repair_in_place(clone: FuzzInput, spec) -> bool:
        """Validate a foreign input, repairing it if needed.

        Returns False when nothing usable is left after repair.
        """
        from repro.analysis.fixes import apply_fixes
        from repro.spec.bytecode import validate
        from repro.spec.nodes import SpecError
        try:
            validate(spec, clone.ops)
            return True
        except SpecError:
            pass
        result = apply_fixes(spec, clone.ops)
        if not result.ops:
            return False
        clone.ops = result.ops
        clone.origin = "import+repaired"
        return True

    def _refresh_favored(self) -> None:
        """Mark the best-scoring quartile as favored."""
        if not self.entries:
            return
        ranked = sorted(self.entries, key=lambda e: e.score)
        cutoff = max(1, len(ranked) // 4)
        favored_ids = {e.entry_id for e in ranked[:cutoff]}
        for entry in self.entries:
            entry.favored = entry.entry_id in favored_ids

    # -- durability (checkpoint/resume) ----------------------------------

    def snapshot_state(self) -> dict:
        """Resumable scheduler state (see :mod:`repro.fuzz.journal`).

        The returned dict holds live references; callers pickle it
        immediately, which deep-copies everything at that instant.
        """
        return {
            "entries": self.entries,
            "next_id": self._next_id,
            "cursor": self._cursor,
            "cycles_done": self.cycles_done,
            # Sorted: pickling a raw set would make two snapshots of
            # equal state byte-different (NYX063).
            "seen_checksums": sorted(self._seen_checksums),
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a checkpointed scheduler state (inverse of
        :meth:`snapshot_state`).  ``rng`` is deliberately untouched: the
        corpus shares the fuzzer's RNG, which the fuzzer restores."""
        self.entries = list(state["entries"])
        self._next_id = int(state["next_id"])
        self._cursor = int(state["cursor"])
        self.cycles_done = int(state["cycles_done"])
        self._seen_checksums = set(state["seen_checksums"])

    def next_entry(self) -> QueueEntry:
        """Cycle through the queue, probabilistically skipping
        non-favored entries (AFL's skip heuristic)."""
        if not self.entries:
            raise IndexError("corpus is empty")
        for _ in range(len(self.entries) * 2):
            if self._cursor >= len(self.entries):
                self._cursor = 0
                self.cycles_done += 1
            entry = self.entries[self._cursor]
            self._cursor += 1
            if entry.favored or self.rng.chance(0.25):
                entry.times_scheduled += 1
                return entry
        entry = self.entries[0]
        entry.times_scheduled += 1
        return entry

    # -- quarantine (parallel-campaign supervision) ----------------------

    def remove(self, entry_id: int) -> bool:
        """Drop one entry (quarantine); keeps the schedule cursor
        pointing at the same next entry.  The entry's checksum stays in
        the seen set so a peer cannot re-import the same behaviour."""
        for index, entry in enumerate(self.entries):
            if entry.entry_id == entry_id:
                del self.entries[index]
                if index < self._cursor:
                    self._cursor -= 1
                self._refresh_favored()
                return True
        return False

    def remove_by_checksum(self, checksum: int) -> int:
        """Drop every entry with the given coverage checksum (the
        cross-instance identity used by corpus sync)."""
        removed = 0
        for entry in list(self.entries):
            if entry.checksum is not None and entry.checksum == checksum:
                if self.remove(entry.entry_id):
                    removed += 1
        return removed

    def random_entry(self) -> QueueEntry:
        return self.rng.pick(self.entries)

    def splice_donor(self, exclude: QueueEntry) -> Optional[FuzzInput]:
        """A random other entry's input, for splicing."""
        candidates = [e for e in self.entries if e.entry_id != exclude.entry_id]
        if not candidates:
            return None
        return self.rng.pick(candidates).input

    def __len__(self) -> int:
        return len(self.entries)
