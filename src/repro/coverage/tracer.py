"""Edge tracers for guest target code: shared core + settrace backend.

This is the reproduction's stand-in for AFL compile-time
instrumentation (§4.5): instead of instrumenting basic blocks at
compile time, we trace line events of the target's *actual Python
code* and fold ``(previous site, current site)`` transitions into a
sparse AFL-style trace, using AFL's ``cur ^ (prev >> 1)`` edge formula.

Only code whose filename matches the configured path fragments is
traced, so the kernel, fuzzer and harness never pollute coverage —
the analogue of only instrumenting the target binary.

The module is split into a backend-independent :class:`TracerCore`
(site stream, fold memo, IJON slots, prefix-fold seeding) and the
``sys.settrace`` backend :class:`EdgeTracer`.  A ``sys.monitoring``
backend for py3.12+ lives in :mod:`repro.coverage.monitoring`; both
are registered through :mod:`repro.coverage.backends` and must
produce byte-identical site streams for the same execution — the
differential suite in ``tests/test_coverage_backends.py`` pins this.

The tracer sits on the hottest host path there is — every line of
every target function of every execution — so the work is split into
a record phase and a fold phase, producing bit-identical traces to the
straightforward implementation:

* event callbacks append one precomputed *site* integer per event to a
  flat stream — no edge arithmetic inside the callback;
* :meth:`TracerCore.take_trace` folds the site stream into the sparse
  edge trace once per execution, vectorized with numpy when available
  (the pure Python fallback computes the identical dict), memoized on
  the packed stream under an LRU cap;
* the executor's prefix-trace elision suspends collection across an
  op prefix that a previous recording already proved deterministic and
  seeds :meth:`take_trace` with the recorded prefix fold instead
  (:meth:`elide_suspend` / :meth:`elide_resume`), yielding the same
  bytes without re-paying the per-line callbacks.
"""

from __future__ import annotations

import sys
from array import array as _array
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.coverage.bitmap import MAP_SIZE

try:  # Optional acceleration for the per-exec fold; results identical.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is normally available
    _np = None

try:  # C-level "count into a dict" helper used by Counter itself.
    from collections import _count_elements
except ImportError:  # pragma: no cover - CPython always has it
    def _count_elements(mapping: Dict[int, int], iterable) -> None:
        get = mapping.get
        for item in iterable:
            mapping[item] = get(item, 0) + 1

#: Path fragments identifying "instrumented" code.  The Mario *engine*
#: is deliberately absent: like IJON's original experiment, game
#: progress feedback comes from the IJON state annotation, not from
#: line coverage of the physics loop (and tracing 2,000 frames of
#: physics per execution would dominate host time).
DEFAULT_TRACED_FRAGMENTS = ("/repro/targets/", "/repro/mario/target")

#: Bitmap region where IJON state annotations land (distinct from the
#: hash range used by code edges only probabilistically, like IJON).
IJON_BASE = 0xF000

#: Fold-memo LRU cap.  Mutated inputs mostly retrace known paths, so a
#: campaign's distinct streams stay far below this; the cap exists so
#: week-long campaigns with pathological path churn cannot grow the
#: memo without bound (evictions are counted into ``CampaignStats``).
FOLD_MEMO_LIMIT = 8192


def _stable_site(text: str) -> int:
    """FNV-1a site hash, stable across processes.

    Built-in ``hash`` of strings is randomized per process and ``id()``
    is a memory address: deriving edge indices from either makes two
    same-seed campaign runs disagree on their coverage maps (the
    determinism self-lint's NYX02x family exists to keep exactly this
    class of leak out of the fuzzer).
    """
    value = 0x811C9DC5
    for byte in text.encode():
        value = ((value ^ byte) * 0x01000193) & 0xFFFFFFFF
    return value


class TracerCore:
    """Backend-independent tracer state and the stream-fold pipeline.

    Backends only differ in *how* site integers reach
    :attr:`_stream`; everything downstream of the stream — folding,
    memoization, IJON slots, prefix seeding — is shared, which is what
    makes backend traces byte-comparable.
    """

    #: Overridden by each backend; surfaced in reports and stats.
    backend_name = "abstract"

    def __init__(self, traced_fragments: Tuple[str, ...] = DEFAULT_TRACED_FRAGMENTS,
                 map_size: int = MAP_SIZE,
                 fold_memo_limit: int = FOLD_MEMO_LIMIT) -> None:
        self.traced_fragments = tuple(traced_fragments)
        self.map_size = map_size
        self.fold_memo_limit = fold_memo_limit
        #: Sparse trace of the last folded execution (edge -> count);
        #: refreshed by :meth:`take_trace`.
        self.trace: Dict[int, int] = {}
        #: Flat stream of site values in execution order.  Persistent
        #: list (cleared in place) so the callbacks can capture its
        #: bound ``append`` once.
        self._stream: List[int] = []
        #: IJON state hits land directly on edges (they bypass the
        #: prev-site chain), so they live outside the site stream.
        self._ijon: Dict[int, int] = {}
        #: Fold memo: packed site stream (+ seed tag) -> folded edge
        #: trace, LRU-bounded.  Keying on the exact packed stream keeps
        #: the memo collision-proof (bytes equality compares it all).
        self._fold_cache: "OrderedDict[bytes, Dict[int, int]]" = OrderedDict()
        #: Entries evicted from the fold memo (stamped into
        #: ``CampaignStats.fold_memo_evictions``).
        self.fold_evictions = 0
        #: Packed full-stream bytes of the last :meth:`take_trace`
        #: (prefix + live suffix) — the executor's trace recordings
        #: reuse it instead of re-packing.
        self.last_packed: bytes = b""
        #: Elision state: while suspended, :meth:`run` executes without
        #: hooks and :meth:`ijon_set` is a no-op (the recorded prefix
        #: already contains those hits).
        self._suspended = False
        self._prefix_packed: bytes = b""

    # -- per-test lifecycle --------------------------------------------------

    def begin(self) -> None:
        """Reset the trace for a new test case."""
        del self._stream[:]
        self._ijon.clear()
        self.trace = {}
        self._prefix_packed = b""
        self._suspended = False

    def take_trace(self) -> Dict[int, int]:  # nyx: hot
        """Fold the site stream into the sparse edge trace.

        Returns a fresh dict each call; the stream itself is only
        cleared by :meth:`begin`, so repeated calls agree.  When a
        prefix fold was seeded via :meth:`elide_resume`, the live
        suffix is folded with the prefix's last site as its previous
        site and merged — byte-identical to having traced the whole
        run.
        """
        # Bytes key: one C-level pack + hash instead of building and
        # hashing a 300-element tuple per execution.
        packed = _array("Q", self._stream).tobytes()
        prefix = self._prefix_packed
        if prefix:
            # Folding the concatenation is identical to folding the
            # prefix and then the suffix seeded with the prefix's last
            # site (the edge chain just runs through the join) — and
            # the joined stream is byte-equal to a fully-traced run's,
            # so elided and traced runs share fold-memo entries.
            packed = prefix + packed
        trace = dict(self._fold_packed(packed, 0))
        self.last_packed = packed
        if self._ijon:
            get = trace.get
            for edge, count in self._ijon.items():
                trace[edge] = get(edge, 0) + count
        self.trace = trace
        return trace

    def _fold_packed(self, packed: bytes, prev: int) -> Dict[int, int]:
        """Memoized fold of a packed site stream seeded with ``prev``.

        Returns a shared dict — callers copy before mutating.  Seeded
        folds get a tag byte in their memo key: a plain packed stream
        is always a multiple of 8 bytes, so the 9-bytes-mod-8 tagged
        key can never collide with an untagged one.
        """
        if not packed:
            return {}
        key = packed if prev == 0 else (
            b"\x01" + prev.to_bytes(8, "little") + packed)
        cache = self._fold_cache
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            return cached
        size = self.map_size
        if _np is not None and len(packed) > 512:
            sites = _np.frombuffer(packed, dtype=_np.uint64)
            edges = _np.empty(len(sites), _np.uint64)
            edges[0] = (int(sites[0]) ^ (prev >> 1)) % size
            _np.bitwise_xor(sites[1:], sites[:-1] >> 1, out=edges[1:])
            edges %= size
            trace: Dict[int, int] = {}
            _count_elements(trace, edges.tolist())
        else:
            trace = {}
            trace_get = trace.get
            for site in _array("Q", packed):
                edge = (site ^ (prev >> 1)) % size
                prev = site
                trace[edge] = trace_get(edge, 0) + 1
        if len(cache) >= self.fold_memo_limit:
            cache.popitem(last=False)
            self.fold_evictions += 1
        cache[key] = trace
        return trace

    def ijon_set(self, slot: int) -> None:
        """IJON-style state feedback: mark a state slot as reached.

        Mirrors IJON-SET/IJON-MAX: the annotated state value selects a
        bitmap entry, so novel states look like novel edges to the
        fuzzer's novelty check.
        """
        if self._suspended:
            return
        edge = (IJON_BASE + slot) % self.map_size
        ijon = self._ijon
        ijon[edge] = ijon.get(edge, 0) + 1

    def ijon_snapshot(self) -> Optional[Dict[int, int]]:
        """Copy of the IJON slot counts so far (None when empty)."""
        return dict(self._ijon) if self._ijon else None

    # -- prefix-trace elision (driven by the executor) -----------------------

    def stream_pos(self) -> int:
        """Number of sites recorded so far in the live stream."""
        return len(self._stream)

    @property
    def prefix_site_count(self) -> int:
        """Sites covered by the seeded prefix, so boundary marks stay
        in full-stream coordinates after an elided resume."""
        return len(self._prefix_packed) // 8

    def elide_suspend(self) -> None:
        """Stop collecting: a recorded deterministic prefix is being
        replayed, so its events would only repeat known bytes."""
        self._suspended = True

    def elide_resume(self, prefix_packed: bytes,
                     ijon_seed: Optional[Dict[int, int]] = None) -> None:
        """Resume collection, seeding the recorded prefix.

        ``prefix_packed`` is the packed site stream the suspended
        window *would* have produced; ``ijon_seed`` the IJON counts it
        would have accumulated.  :meth:`take_trace` then returns the
        same bytes a fully-traced run yields.
        """
        self._suspended = False
        self._prefix_packed = prefix_packed
        if ijon_seed:
            ijon = self._ijon
            get = ijon.get
            for edge, count in ijon_seed.items():
                ijon[edge] = get(edge, 0) + count

    @property
    def suspended(self) -> bool:
        return self._suspended

    # -- backend hooks -------------------------------------------------------

    def run(self, fn: Callable, *args) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class EdgeTracer(TracerCore):
    """``sys.settrace`` backend: works on every supported CPython.

    * the **global** callback is a closure over pre-bound locals whose
      per-code decision is one dict probe; untraced code (the kernel,
      the fuzzer, libraries) costs exactly that probe per call;
    * each traced code object gets its own **specialized local
      callback** that appends one precomputed site per line event.
    """

    backend_name = "settrace"

    def __init__(self, traced_fragments: Tuple[str, ...] = DEFAULT_TRACED_FRAGMENTS,
                 map_size: int = MAP_SIZE,
                 fold_memo_limit: int = FOLD_MEMO_LIMIT) -> None:
        super().__init__(traced_fragments, map_size, fold_memo_limit)
        #: Per-code-object cache: id(code) -> stable site base for
        #: traced code, None for untraced.  (id() is only the cache
        #: key — sites themselves come from :func:`_stable_site`.)
        self._code_cache: Dict[int, Optional[int]] = {}
        #: id(code) -> (base, specialized local callback) for traced
        #: code, None for untraced.
        self._entry_cache: Dict[int, Optional[Tuple[int, Callable]]] = {}
        self._global = self._build_global()
        self._depth = 0

    # -- execution wrapper --------------------------------------------------

    def run(self, fn: Callable, *args) -> None:  # nyx: hot
        """Run ``fn(*args)`` with tracing enabled.

        Re-entrant: nested calls keep the existing trace hook.  While
        suspended (prefix elision), runs plain.
        """
        if self._suspended:
            fn(*args)
            return
        if self._depth == 0:
            sys.settrace(self._global)
        self._depth += 1
        try:
            fn(*args)
        finally:
            self._depth -= 1
            if self._depth == 0:
                sys.settrace(None)

    # -- trace hooks -----------------------------------------------------------

    def _build_global(self) -> Callable:  # nyx: hot
        """The ``sys.settrace`` global callback, specialized once.

        Invoked for every 'call' event in the trace window — including
        every untraced kernel/library call made by target code — so the
        miss path is a single dict hit returning None.
        """
        entry_cache = self._entry_cache
        make_entry = self._make_entry
        append = self._stream.append

        def global_trace(frame, event, arg):
            code = frame.f_code
            try:
                entry = entry_cache[id(code)]
            except KeyError:
                entry = make_entry(code)
            if entry is None:
                return None
            # The call edge: the code's base site enters the stream.
            append(entry[0])
            return entry[1]

        return global_trace

    def _make_entry(self, code) -> Optional[Tuple[int, Callable]]:
        """Build (and cache) the specialized local callback for ``code``."""
        filename = code.co_filename
        if not any(fragment in filename
                   for fragment in self.traced_fragments):
            self._entry_cache[id(code)] = None
            self._code_cache[id(code)] = None
            return None
        base = _stable_site("%s:%s:%d" % (filename, code.co_name,
                                          code.co_firstlineno))
        self._code_cache[id(code)] = base
        base33 = base * 33
        append = self._stream.append

        def local_trace(frame, event, arg):
            if event == "line":
                append((base33 + frame.f_lineno) & 0xFFFFFFFF)
            return local_trace

        entry = (base, local_trace)
        self._entry_cache[id(code)] = entry
        return entry

    def _code_site(self, code) -> Optional[int]:
        """Stable site base for a code object (None = not traced)."""
        try:
            return self._code_cache[id(code)]
        except KeyError:
            entry = self._make_entry(code)
            return None if entry is None else entry[0]
