"""Coverage feedback: AFL-style bitmaps over pluggable edge tracers.

The paper's prototype supports Intel PT and AFL's compile-time
instrumentation (§4.5); our substitute traces the *actual Python code*
of the guest targets and folds (prev, cur) line transitions into a
classic 64 KiB AFL hit-count bitmap with the standard bucketing
semantics.  Two byte-equivalent tracer backends exist — ``settrace``
(every CPython) and ``monitoring`` (PEP 669, 3.12+) — selected through
:mod:`repro.coverage.backends`.
"""

from repro.coverage.backends import (BACKEND_CHOICES, BackendUnavailable,
                                     default_backend_name, make_tracer,
                                     resolve_backend_name)
from repro.coverage.bitmap import (MAP_SIZE, classify_counts, count_bits,
                                   CoverageMap)
from repro.coverage.tracer import EdgeTracer, TracerCore

__all__ = ["MAP_SIZE", "classify_counts", "count_bits", "CoverageMap",
           "EdgeTracer", "TracerCore", "make_tracer", "default_backend_name",
           "resolve_backend_name", "BACKEND_CHOICES", "BackendUnavailable"]
