"""The Super Mario guest program and its target profile.

The game runs inside the guest, reading button-frame packets from its
hooked connection (each payload byte is one frame's controller state).
Progress is exported through the IJON max-x annotation; solving the
level raises a ``SOLVED`` event through the crash channel, which gives
every fuzzer a uniform "time to solve" timestamp (Table 4).
"""

from __future__ import annotations

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashKind, GuestCrash
from repro.mario.engine import Buttons, MarioEngine
from repro.mario.levels import load_level
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 6000

#: Simulated CPU cost per game frame (logic only; rendering disabled,
#: frame-rate limit removed — IJON's experimental setup, §5.3).
FRAME_CPU = 2e-5

#: Frames per input packet.
FRAMES_PER_PACKET = 50


class MarioTarget(MessageServer):
    """Plays frames received on the network against one level."""

    name = "super-mario"
    port = PORT
    startup_cost = 0.02  # ROM load and level decode

    def __init__(self, level_name: str = "1-1") -> None:
        super().__init__()
        self.level_name = level_name
        self.engine = MarioEngine(load_level(level_name))
        self.game = self.engine.new_game()

    def __getstate__(self):
        # The engine/level geometry is immutable and cached; keeping it
        # out of the serialized process state keeps per-test dirty
        # pages proportional to actual game-state churn.
        state = dict(self.__dict__)
        del state["engine"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.engine = MarioEngine(load_level(self.level_name))

    def wants_data(self, conn: ConnCtx) -> bool:
        return self.game.alive and not self.game.won

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        game = self.game
        if not game.alive or game.won:
            return
        api.cpu(FRAME_CPU * len(data))
        self.engine.run(game, data)
        api.ijon_set(self.engine.ijon_slot(game))
        if game.won:
            raise GuestCrash(CrashKind.SOLVED, "mario-%s" % self.level_name,
                             "solved in %d frames" % game.frame)


def make_seeds(level_name: str = "1-1"):
    """Button sequences: run right with varying jump cadence."""
    level = load_level(level_name)
    frames_needed = int(level.width / 0.18) + 600
    packets_needed = max(frames_needed // FRAMES_PER_PACKET + 2, 8)
    spec = default_network_spec()
    run = int(Buttons.RIGHT | Buttons.B)
    walk = int(Buttons.RIGHT)
    seeds = []
    # Naive button tapes: they die at the first pit or enemy; the
    # fuzzer has to discover jump timings via the IJON gradient.
    patterns = (
        [run] * (packets_needed * FRAMES_PER_PACKET),
        [walk] * (packets_needed * FRAMES_PER_PACKET),
        [(run if i % 90 < 80 else 0)
         for i in range(packets_needed * FRAMES_PER_PACKET)],
    )
    for pattern in patterns:
        frames = bytes(pattern)
        builder = Builder(spec)
        con = builder.connection()
        for start in range(0, len(frames), FRAMES_PER_PACKET):
            builder.packet(con, frames[start:start + FRAMES_PER_PACKET])
        seeds.append(FuzzInput(builder.build()))
    return seeds


def mario_profile(level_name: str = "1-1") -> TargetProfile:
    """A fuzzing profile for one Mario level."""
    run = int(Buttons.RIGHT | Buttons.B)
    jump = int(Buttons.RIGHT | Buttons.B | Buttons.A)
    return TargetProfile(
        name="mario-%s" % level_name,
        protocol="raw",
        make_program=lambda: MarioTarget(level_name),
        surface_factory=lambda: AttackSurface.tcp_server(PORT),
        seed_factory=lambda: make_seeds(level_name),
        dictionary=[bytes([run]) * 8, bytes([jump]) * 8,
                    bytes([jump]) * 16, bytes([int(Buttons.NONE)]) * 4],
        startup_cost=0.02,
        libpreeny_compatible=False,
        planted_bugs=("solved:mario-%s" % level_name,),
        notes="Super Mario level %s (Table 4 workload)." % level_name,
    )
