"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``targets`` — list the available fuzz targets.
* ``fuzz <target>`` — run a Nyx-Net campaign against one target.
* ``mario <level>`` — run the Table 4 time-to-solve comparison on one
  Super Mario level.
* ``bench`` — hot-path performance benchmarks on both clocks, with a
  committed-baseline regression gate (``--check``); ``--matrix`` runs
  the ProFuzzBench matrix and prints Tables 1-3 instead.
* ``replay <target> <file.nyx>`` — replay a persisted input (e.g. a
  crash reproducer) against a fresh target VM.
* ``analyze`` — static diagnostics: spec lint, corpus dataflow audit
  (with ``--fix`` fix-its), the determinism self-lint, the
  reset-safety lint (``--reset``), the runtime reset sanitizer
  (``--sanitize``), the durability lint (``--durability``) and the
  hot-path lint (``--perf``).
  Prongs compose: one invocation may run several and emits a single
  merged report.  Exit codes: 0 clean, 1 findings, 2 usage error.
* ``profile`` — deterministic sim-cost profiler: per-site cost table,
  committed-budget drift gate (NYX076) and static hot-graph
  cross-check (NYX077).  Same exit contract as ``analyze``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_targets(args: argparse.Namespace) -> int:
    from repro.targets import PROFILES, PROFUZZBENCH
    print("%-14s %-8s %-5s %s" % ("target", "proto", "bugs", "notes"))
    for name in sorted(PROFILES):
        profile = PROFILES[name]
        tag = "pfb" if name in PROFUZZBENCH else "case"
        print("%-14s %-8s %-5d [%s] %s"
              % (name, profile.protocol, len(profile.planted_bugs), tag,
                 profile.notes[:70]))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz.campaign import build_campaign
    from repro.fuzz.persist import save_campaign
    from repro.targets import PROFILES
    if getattr(args, "placement", None) == "bandit":
        args.policy = "bandit"
    if args.max_chain_depth < 1:
        print("--max-chain-depth must be >= 1", file=sys.stderr)
        return 2
    if args.resume:
        return _fuzz_resume(args)
    if args.target is None:
        print("a target is required unless --resume is given "
              "(see `repro targets`)", file=sys.stderr)
        return 2
    profile = PROFILES.get(args.target)
    if profile is None:
        print("unknown target %r (see `repro targets`)" % args.target,
              file=sys.stderr)
        return 2
    if (args.verify_checkpoints is not None
            and args.checkpoint_every is None):
        print("--verify-checkpoints needs --checkpoint-every N (there is "
              "nothing to verify without periodic checkpoints)",
              file=sys.stderr)
        return 2
    if args.checkpoint_every is not None:
        return _fuzz_durable(args, profile)
    if args.workers > 1:
        return _fuzz_parallel(args, profile)
    from repro.coverage.backends import BackendUnavailable
    from repro.faults import PlanError
    try:
        handles = build_campaign(profile, policy=args.policy, seed=args.seed,
                                 time_budget=args.time, max_execs=args.execs,
                                 asan=not args.no_asan,
                                 fault_rate=args.fault_rate,
                                 fault_plan=args.fault_plan,
                                 exec_timeout=args.exec_timeout,
                                 sanitize_every=args.sanitize_resets,
                                 coverage_backend=args.coverage_backend,
                                 max_chain_depth=args.max_chain_depth)
    except PlanError as err:
        print("invalid fault plan: %s" % err, file=sys.stderr)
        return 2
    except BackendUnavailable as err:
        print("coverage backend unavailable: %s" % err, file=sys.stderr)
        return 2
    print("fuzzing %s with nyx-net-%s (sim budget %.0fs, cap %s execs)"
          % (args.target, args.policy, args.time, args.execs))
    injector = handles.interceptor.injector
    if injector is not None:
        print("fault injection armed: plan %s" % injector.plan.plan_id)
    stats = handles.fuzzer.run_campaign()
    print(stats.summary())
    _print_robustness(stats)
    for bug in handles.fuzzer.crashes.unique_bugs:
        record = handles.fuzzer.crashes.records[bug]
        print("  CRASH %-40s t=%.2fs x%d" % (bug, record.found_at,
                                             record.count))
    if args.distill:
        from repro.fuzz.trim import distill_corpus
        inputs = [e.input for e in handles.fuzzer.corpus.entries]
        chosen = distill_corpus(handles.executor, inputs)
        handles.fuzzer.corpus.entries = [
            e for e in handles.fuzzer.corpus.entries if e.input in chosen]
        print("distilled corpus: %d -> %d entries"
              % (len(inputs), len(chosen)))
    if args.out:
        written = save_campaign(handles.fuzzer, args.out)
        print("saved %d files to %s" % (written, args.out))
    if stats.sanitizer_checks:
        print("reset sanitizer: %d checks, %d leaks"
              % (stats.sanitizer_checks, stats.sanitizer_leaks))
        for diag in handles.fuzzer.sanitizer_findings:
            print("  %s" % diag.format())
        if stats.sanitizer_leaks:
            return 1
    return 0


def _fuzz_parallel(args: argparse.Namespace, profile) -> int:
    """``fuzz --workers N``: one golden boot, N instances, shared root."""
    from repro.coverage.backends import BackendUnavailable
    from repro.faults import PlanError
    from repro.fuzz.campaign import build_parallel_campaign
    from repro.fuzz.persist import save_parallel_campaign
    try:
        campaign = build_parallel_campaign(
            profile, workers=args.workers, policy=args.policy, seed=args.seed,
            time_budget=args.time, max_total_execs=args.execs,
            sync_interval=args.sync_interval,
            fault_rate=args.fault_rate, exec_timeout=args.exec_timeout,
            coverage_backend=args.coverage_backend)
    except PlanError as err:
        print("invalid fault plan: %s" % err, file=sys.stderr)
        return 2
    except BackendUnavailable as err:
        print("coverage backend unavailable: %s" % err, file=sys.stderr)
        return 2
    print("fuzzing %s with %d nyx-net-%s workers over one shared root "
          "(sim budget %.0fs, cap %s execs)"
          % (args.target, args.workers, args.policy, args.time, args.execs))
    aggregate = campaign.run()
    print(aggregate.summary())
    _print_robustness(aggregate.merged)
    retired = campaign.retired_workers()
    if retired:
        print("retired workers: %s" % ", ".join(map(str, retired)))
    footprint = campaign.unique_page_footprint()
    print("shared-root footprint: %d unique pages (%.2fx one instance)"
          % (footprint["total"], footprint["ratio"]))
    crash_keys = sorted({key for w in campaign.workers
                         for key in w.fuzzer.crashes.records})
    for bug in crash_keys:
        print("  CRASH %s" % bug)
    if args.distill:
        print("(--distill is ignored with --workers > 1)")
    if args.sanitize_resets is not None:
        print("(--sanitize-resets is ignored with --workers > 1)")
    if args.max_chain_depth > 1:
        print("(--max-chain-depth is ignored with --workers > 1; workers "
              "run the classic single incremental snapshot)")
    if args.fault_plan:
        print("(--fault-plan is ignored with --workers > 1; each worker "
              "derives its plan from --seed and --fault-rate)")
    if args.out:
        written = save_parallel_campaign(campaign, args.out)
        print("saved %d files to %s" % (written, args.out))
    return 0


#: Parser defaults for the flags a durable campaign's manifest records.
#: On ``--resume``, a flag still at its default adopts the manifest's
#: value; a flag the user explicitly changed must match the manifest or
#: the resume is refused (resuming under a different config would
#: silently produce incomparable results).
_FUZZ_DEFAULTS = {
    "target": ("target", None),
    "policy": ("policy", "aggressive"),
    "seed": ("seed", 0),
    "time_budget": ("time", 600.0),
    "max_execs": ("execs", 5000),
    "fault_rate": ("fault_rate", 0.0),
    "fault_plan": ("fault_plan", None),
    "exec_timeout": ("exec_timeout", None),
    "sanitize_every": ("sanitize_resets", None),
    "coverage_backend": ("coverage_backend", "auto"),
    "max_chain_depth": ("max_chain_depth", 1),
    "workers": ("workers", 1),
    "sync_interval": ("sync_interval", 5.0),
    "verify_checkpoints": ("verify_checkpoints", None),
}


def _resume_conflicts(manifest: dict, args: argparse.Namespace) -> List[str]:
    """Explicitly-passed fuzz flags that contradict the manifest."""
    conflicts = []
    for key, (attr, default) in _FUZZ_DEFAULTS.items():
        given = getattr(args, attr)
        if given == default:
            continue  # left at the default: the manifest's value wins
        recorded = manifest.get(key)
        if given != recorded:
            flag = attr.replace("_", "-")
            conflicts.append("--%s %r conflicts with the campaign's "
                             "recorded %r" % (flag, given, recorded))
    if args.no_asan and manifest.get("asan", True):
        conflicts.append("--no-asan conflicts with the campaign's "
                         "recorded asan=True")
    return conflicts


def _fuzz_durable(args: argparse.Namespace, profile) -> int:
    """``fuzz --checkpoint-every N``: a journaled, resumable campaign."""
    from repro.coverage.backends import BackendUnavailable
    from repro.faults import PlanError
    from repro.fuzz.journal import (DurableCampaign, DurableParallelCampaign,
                                    campaign_manifest)
    if not args.out:
        print("--checkpoint-every needs --out DIR (the durable campaign "
              "directory the journal, checkpoints and manifest live in)",
              file=sys.stderr)
        return 2
    if args.distill:
        print("(--distill is ignored with --checkpoint-every)")
    kind = "parallel" if args.workers > 1 else "single"
    manifest = campaign_manifest(
        kind, args.target, policy=args.policy, seed=args.seed,
        time_budget=args.time, max_execs=args.execs,
        checkpoint_every=args.checkpoint_every,
        asan=not args.no_asan, fault_rate=args.fault_rate,
        fault_plan=args.fault_plan, exec_timeout=args.exec_timeout,
        sanitize_every=args.sanitize_resets,
        coverage_backend=args.coverage_backend,
        workers=args.workers, sync_interval=args.sync_interval,
        verify_checkpoints=args.verify_checkpoints,
        max_chain_depth=args.max_chain_depth)
    try:
        if kind == "parallel":
            from repro.fuzz.campaign import (
                build_parallel_campaign_from_manifest)
            campaign = build_parallel_campaign_from_manifest(profile,
                                                             manifest)
            durable = DurableParallelCampaign(
                campaign, args.out, checkpoint_every=args.checkpoint_every,
                manifest=manifest, verify_every=args.verify_checkpoints)
        else:
            from repro.fuzz.campaign import build_campaign_from_manifest
            handles = build_campaign_from_manifest(profile, manifest)
            durable = DurableCampaign(
                handles, args.out, checkpoint_every=args.checkpoint_every,
                manifest=manifest, verify_every=args.verify_checkpoints)
    except PlanError as err:
        print("invalid fault plan: %s" % err, file=sys.stderr)
        return 2
    except BackendUnavailable as err:
        print("coverage backend unavailable: %s" % err, file=sys.stderr)
        return 2
    print("durable campaign on %s in %s (checkpoint every %d execs)"
          % (args.target, args.out, args.checkpoint_every))
    return _run_durable(durable)


def _fuzz_resume(args: argparse.Namespace) -> int:
    """``fuzz --resume DIR``: continue a durable campaign."""
    from repro.coverage.backends import BackendUnavailable
    from repro.faults import PlanError
    from repro.fuzz.journal import (DurabilityError, read_manifest,
                                    resume_campaign)
    try:
        manifest = read_manifest(args.resume)
    except DurabilityError as err:
        print("cannot resume: %s" % err, file=sys.stderr)
        return 2
    conflicts = _resume_conflicts(manifest, args)
    if conflicts:
        print("cannot resume %s with conflicting flags:" % args.resume,
              file=sys.stderr)
        for conflict in conflicts:
            print("  %s" % conflict, file=sys.stderr)
        print("drop the flags (the manifest's recorded values are used) "
              "or start a fresh campaign in a new directory",
              file=sys.stderr)
        return 2
    try:
        durable = resume_campaign(args.resume)
    except DurabilityError as err:
        print("cannot resume: %s" % err, file=sys.stderr)
        return 2
    except PlanError as err:
        print("invalid fault plan: %s" % err, file=sys.stderr)
        return 2
    except BackendUnavailable as err:
        print("coverage backend unavailable: %s" % err, file=sys.stderr)
        return 2
    if durable.resumed_from is not None:
        print("resuming %s campaign on %s from checkpoint epoch %d"
              % (manifest["kind"], manifest["target"], durable.resumed_from))
    else:
        print("no usable checkpoint in %s yet; restarting from the manifest"
              % args.resume)
    recovered = durable.recovered
    if recovered.get("corpus_adds") or recovered.get("crashes"):
        print("journal tail past the checkpoint recorded %d corpus adds "
              "and %d crashes — the resumed run re-derives them "
              "deterministically" % (recovered.get("corpus_adds", 0),
                                     recovered.get("crashes", 0)))
    return _run_durable(durable)


def _run_durable(durable) -> int:
    """Drive a durable campaign under graceful signal handling."""
    from repro.fuzz.journal import GracefulShutdown
    with GracefulShutdown() as drain:
        try:
            result = durable.run(stop=drain)
        except KeyboardInterrupt:
            print("aborted; the last periodic checkpoint is retained in %s"
                  % durable.directory, file=sys.stderr)
            print("resume with: repro fuzz --resume %s" % durable.directory,
                  file=sys.stderr)
            return 3
    if result is None:
        print("graceful stop: campaign checkpointed to %s"
              % durable.directory)
        print("resume with: repro fuzz --resume %s" % durable.directory)
        return 3
    if durable.kind == "parallel":
        print(result.summary())
        _print_robustness(result.merged)
        campaign = durable.campaign
        retired = campaign.retired_workers()
        if retired:
            print("retired workers: %s" % ", ".join(map(str, retired)))
        for bug in sorted({key for w in campaign.workers
                           for key in w.fuzzer.crashes.records}):
            print("  CRASH %s" % bug)
    else:
        stats = result
        print(stats.summary())
        _print_robustness(stats)
        fuzzer = durable.fuzzer
        for bug in fuzzer.crashes.unique_bugs:
            record = fuzzer.crashes.records[bug]
            print("  CRASH %-40s t=%.2fs x%d" % (bug, record.found_at,
                                                 record.count))
        if stats.sanitizer_checks:
            print("reset sanitizer: %d checks, %d leaks"
                  % (stats.sanitizer_checks, stats.sanitizer_leaks))
            for diag in fuzzer.sanitizer_findings:
                print("  %s" % diag.format())
            if stats.sanitizer_leaks:
                return 1
    totals = result.merged if durable.kind == "parallel" else result
    print("durability: %d checkpoints written, %d stale epochs pruned, "
          "%d verifications, %d divergences"
          % (totals.checkpoints_written, totals.checkpoint_epochs_pruned,
             totals.checkpoint_verifications,
             totals.checkpoint_divergences))
    if durable.verify_findings:
        for diag in durable.verify_findings:
            print("  %s" % diag.format())
        return 1
    print("campaign complete; corpus+crashes persisted in %s"
          % durable.directory)
    return 0


def _print_robustness(stats) -> None:
    """One line of fault/watchdog counters when anything fired."""
    if not (stats.timeouts or stats.faults_injected or stats.snapshot_rebuilds
            or stats.worker_failures or stats.quarantined_inputs
            or stats.degraded_root_only):
        return
    line = ("robustness: %d timeouts, %d faults injected, "
            "%d snapshot rebuilds, %d worker failures, %d quarantined"
            % (stats.timeouts, stats.faults_injected,
               stats.snapshot_rebuilds, stats.worker_failures,
               stats.quarantined_inputs))
    if stats.degraded_root_only:
        line += " [degraded to root-only]"
    print(line)


def _cmd_mario(args: argparse.Namespace) -> int:
    from repro.mario.solver import MODES, solve_level
    modes = args.modes.split(",") if args.modes else list(MODES)
    for mode in modes:
        result = solve_level(args.level, mode, seed=args.seed,
                             max_execs=args.execs)
        if result.solved:
            print("%-16s solved in %8.1fs (sim), %6d execs"
                  % (mode, result.time_to_solve, result.execs))
        else:
            print("%-16s unsolved after %d execs" % (mode, result.execs))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.matrix:
        return _bench_matrix(args)
    return _bench_perf(args)


def _bench_matrix(args: argparse.Namespace) -> int:
    """``bench --matrix``: the ProFuzzBench campaign matrix (Tables 1-3)."""
    from repro.bench.profuzzbench import BenchConfig, run_matrix
    from repro.bench.reporting import (coverage_table, crash_table,
                                       throughput_table)
    config = BenchConfig()
    targets = args.targets.split(",") if args.targets else None
    matrix = run_matrix(targets=targets, config=config, progress=True)
    for table in (crash_table(matrix), coverage_table(matrix),
                  throughput_table(matrix)):
        print()
        print(table)
    return 0


def _bench_perf(args: argparse.Namespace) -> int:
    """``bench``: hot-path performance benchmarks (docs/performance.md).

    Runs the micro suite, the macro campaign benchmark and the
    deep-state chain scenario, writes ``BENCH_micro.json`` /
    ``BENCH_fuzz.json`` / ``BENCH_chain.json``, and with ``--check``
    gates the results against a committed baseline.
    """
    import os

    from repro.perf import (compare_reports, load_report, run_chain_macro,
                            run_macro, run_micro, write_report)
    from repro.perf.report import make_baseline
    os.makedirs(args.out, exist_ok=True)
    run_micro_suite = not args.macro_only and not args.chain_only
    run_macro_suite = not args.micro_only and not args.chain_only
    run_chain_suite = (not args.micro_only and not args.macro_only
                       and not args.skip_chain)
    baseline_report = None
    if args.check is not None and os.path.exists(args.baseline):
        baseline_report = load_report(args.baseline)
    micro = macro = chain = None
    if run_micro_suite:
        print("running micro benchmarks%s..."
              % (" (quick)" if args.quick else ""))
        micro = run_micro(quick=args.quick)
        for name, row in sorted(micro["benchmarks"].items()):
            extra = ""
            if "pages_dirtied" in row:
                extra = "  (%d pages dirtied)" % row["pages_dirtied"]
            print("  %-28s %12.0f/s%s" % (name, row["per_sec"], extra))
        write_report(os.path.join(args.out, "BENCH_micro.json"), micro)
    if run_macro_suite:
        if args.execs is not None:
            execs = args.execs
        elif baseline_report is not None:
            # Gated runs must match the baseline's campaign config or
            # the sim-clock comparison is meaningless (sim metrics are
            # a pure function of the configuration).
            execs = int((baseline_report.get("macro") or {}).get(
                "execs", 2000))
        else:
            execs = 400 if args.quick else 2000
        print("running macro benchmark: %s, seed %d, %d execs%s%s..."
              % (args.target, args.seed, execs,
                 ", sanitized" if args.sanitize_resets is not None else "",
                 ", chain depth %d" % args.max_chain_depth
                 if args.max_chain_depth > 1 else ""))
        from repro.coverage.backends import BackendUnavailable
        try:
            macro = run_macro(target=args.target, seed=args.seed, execs=execs,
                              sanitize_every=args.sanitize_resets,
                              coverage_backend=args.coverage_backend,
                              max_chain_depth=args.max_chain_depth)
        except BackendUnavailable as err:
            print("coverage backend unavailable: %s" % err, file=sys.stderr)
            return 2
        print("  %d execs in %.2fs wall (%.1f execs/s wall, "
              "%.1f execs/s sim), %d edges [%s backend]"
              % (macro["execs"], macro["wall_seconds"],
                 macro["wall_execs_per_sec"], macro["sim_execs_per_sec"],
                 macro["final_edges"], macro["coverage_backend"]))
        if baseline_report is not None:
            # Recorded in the report so CI artifacts show whether the
            # wall-rate gates were live on this runner or skipped for
            # a host mismatch (the comparison prints the same verdict).
            base_host = (baseline_report.get("macro") or {}).get("host")
            macro["wall_gated"] = macro.get("host") == base_host
        write_report(os.path.join(args.out, "BENCH_fuzz.json"), macro)
        if args.sanitize_resets is not None:
            print("  reset sanitizer: %d checks, %d leaks"
                  % (macro["sanitizer_checks"], macro["sanitizer_leaks"]))
            if macro["sanitizer_leaks"]:
                print("FAIL: sanitized bench run reported reset leaks",
                      file=sys.stderr)
                return 1
    if run_chain_suite:
        if args.chain_execs is not None:
            chain_execs = args.chain_execs
        elif baseline_report is not None:
            chain_execs = int((baseline_report.get("chain") or {}).get(
                "execs", 600))
        else:
            chain_execs = 300 if args.quick else 600
        print("running chain scenario: lightftp deep session, seed %d, "
              "%d execs per leg, bandit depth %d..."
              % (args.seed, chain_execs, args.chain_depth))
        from repro.coverage.backends import BackendUnavailable
        try:
            chain = run_chain_macro(seed=args.seed, execs=chain_execs,
                                    depth=args.chain_depth,
                                    coverage_backend=args.coverage_backend)
        except BackendUnavailable as err:
            print("coverage backend unavailable: %s" % err, file=sys.stderr)
            return 2
        for leg in ("ref", "chain"):
            row = chain[leg]
            print("  %-26s %8.1f execs/s wall  %d edges"
                  % ("%s (%s, depth %d)" % (leg, row["policy"],
                                            row["max_chain_depth"]),
                     row["wall_execs_per_sec"], row["final_edges"]))
        print("  chain speedup: %.2fx" % chain["chain_speedup"])
        write_report(os.path.join(args.out, "BENCH_chain.json"), chain)
    if args.write_baseline:
        write_report(args.baseline, make_baseline(micro, macro, chain))
        print("wrote baseline %s" % args.baseline)
    if args.check is not None:
        if baseline_report is None:
            print("no baseline at %s (use --write-baseline first)"
                  % args.baseline, file=sys.stderr)
            return 2
        comparison = compare_reports(micro, macro,
                                     baseline_report, args.check,
                                     chain=chain)
        print(comparison.format_text())
        if not comparison.ok:
            return 1
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from repro.spec.nodes import default_network_spec
    from repro.spec.share import pack_share
    from repro.targets import PROFILES
    profile = PROFILES.get(args.target)
    if profile is None:
        print("unknown target %r" % args.target, file=sys.stderr)
        return 2
    written = pack_share(profile, default_network_spec(), args.out)
    print("packed %d files into share folder %s" % (written, args.out))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.fuzz.campaign import build_campaign
    from repro.fuzz.input import FuzzInput
    from repro.spec.bytecode import deserialize
    from repro.spec.nodes import default_network_spec
    from repro.targets import PROFILES
    profile = PROFILES.get(args.target)
    if profile is None:
        print("unknown target %r" % args.target, file=sys.stderr)
        return 2
    with open(args.input, "rb") as handle:
        ops = deserialize(default_network_spec(), handle.read())
    handles = build_campaign(profile, policy="none", seed=0,
                             time_budget=1e9, max_execs=1)
    result = handles.executor.run_full(FuzzInput(ops))
    print("replayed %d ops (%d packets consumed)"
          % (result.ops_executed, result.packets_consumed))
    if result.crash is not None:
        print("CRASH: %s (%s)" % (result.crash.dedup_key,
                                  result.crash.detail))
        return 1
    print("no crash")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import os

    from repro.analysis.diagnostics import Report
    from repro.spec.nodes import default_network_spec
    run_spec = args.spec
    self_root = args.self_root
    reset_root = args.reset_root
    durability_root = args.durability_root
    perf_root = args.perf_root
    run_corpus = args.corpus is not None
    run_sanitize = args.sanitize is not None
    if not (run_spec or self_root or run_corpus or reset_root
            or run_sanitize or durability_root or perf_root):
        # Bare `repro analyze`: the checks that need no inputs.
        run_spec = True
        self_root = "src/repro"
        reset_root = "src/repro"
        durability_root = "src/repro"
        perf_root = "src/repro"
    for root in (self_root, reset_root, durability_root, perf_root):
        if root and not os.path.isdir(root):
            print("not a directory: %s" % root, file=sys.stderr)
            return 2
    if args.fix and not (run_corpus or reset_root or durability_root
                         or perf_root):
        print("note: --fix only applies to --corpus, --reset, "
              "--durability and --perf", file=sys.stderr)
    spec = default_network_spec()
    report = Report()
    if run_spec:
        from repro.analysis.speclint import analyze_spec
        report.extend(analyze_spec(spec))
        report.meta["spec"] = spec.name
    if self_root:
        from repro.analysis.selflint import analyze_source_tree
        report.extend(analyze_source_tree(self_root))
        report.meta["self_root"] = self_root
    if reset_root:
        from repro.analysis.resetlint import (analyze_reset_tree,
                                              tree_fixit_stubs)
        report.extend(analyze_reset_tree(reset_root))
        report.meta["reset_root"] = reset_root
        if args.fix:
            for where, stub in sorted(tree_fixit_stubs(reset_root).items()):
                print("--- fix-it for %s ---" % where)
                print(stub)
    if durability_root:
        from repro.analysis.durlint import (analyze_durability_tree,
                                            durability_fixit_stubs)
        report.extend(analyze_durability_tree(durability_root))
        report.meta["durability_root"] = durability_root
        if args.fix:
            for where, stub in sorted(
                    durability_fixit_stubs(durability_root).items()):
                print("--- fix-it for %s ---" % where)
                print(stub)
    if perf_root:
        from repro.analysis.hotlint import analyze_hot_tree, hot_fixit_stubs
        report.extend(analyze_hot_tree(perf_root))
        report.meta["perf_root"] = perf_root
        if args.fix:
            for where, stub in sorted(hot_fixit_stubs(perf_root).items()):
                print("--- fix-it for %s ---" % where)
                print(stub)
    if run_corpus:
        from repro.analysis.corpus import audit_corpus
        audit = audit_corpus(args.corpus, spec=spec, fix=args.fix)
        report.extend(audit.diagnostics)
        report.meta.update(audit.meta)
        report.meta["corpus"] = args.corpus
    if run_sanitize:
        code = _analyze_sanitize(args.sanitize, report)
        if code:
            return code
    print(report.format_text())
    if args.json:
        report.write_json(args.json)
        print("wrote %s" % args.json)
    return report.exit_code()


def _cmd_profile(args: argparse.Namespace) -> int:
    """``profile``: the NYX07x runtime prong (docs/performance.md).

    Runs one seeded campaign under sim-cost instrumentation, prints the
    per-site cost table, gates it against the committed budget baseline
    (NYX076) and cross-checks top-decile sites against the static hot
    call graph (NYX077).
    """
    import os

    from repro.analysis.diagnostics import Report
    from repro.perf import load_report, write_report
    from repro.perf.profiler import (compare_profile, format_profile,
                                     run_profile, static_disagreement)
    from repro.targets import PROFILES
    if args.target not in PROFILES:
        print("unknown target %r (see `repro targets`)" % args.target,
              file=sys.stderr)
        return 2
    baseline = None
    if not args.write_baseline and os.path.exists(args.baseline):
        baseline = load_report(args.baseline)
    if args.execs is not None:
        execs = args.execs
    elif baseline is not None:
        # A gated run must match the baseline's campaign config: the
        # cost table is a pure function of it.
        execs = int(baseline.get("execs", 400))
    else:
        execs = 400
    print("profiling %s, seed %d, %d execs..."
          % (args.target, args.seed, execs))
    payload = run_profile(target=args.target, seed=args.seed,
                          execs=execs, policy=args.policy)
    print(format_profile(payload))
    if args.write_baseline:
        write_report(args.baseline, payload)
        print("wrote baseline %s" % args.baseline)
        return 0
    report = Report()
    report.meta.update({key: payload[key] for key in
                        ("target", "seed", "execs", "policy",
                         "profile_checksum", "stats_checksum")})
    if baseline is not None:
        diags, notes = compare_profile(payload, baseline, args.pct,
                                       args.baseline)
        for note in notes:
            print(note)
        report.extend(diags)
        report.meta["baseline"] = args.baseline
    else:
        print("no profile baseline at %s (use --write-baseline first)"
              % args.baseline)
    if os.path.isdir(args.root):
        report.extend(static_disagreement(payload, args.root))
        report.meta["perf_root"] = args.root
    print(report.format_text())
    if args.json:
        report.meta["profile"] = payload
        report.write_json(args.json)
        print("wrote %s" % args.json)
    return report.exit_code()


def _analyze_sanitize(target: str, report) -> int:
    """``analyze --sanitize``: short seeded campaign with the reset
    sanitizer armed; its NYX05x findings land in the report."""
    from repro.fuzz.campaign import build_campaign
    from repro.targets import PROFILES
    profile = PROFILES.get(target)
    if profile is None:
        print("unknown target %r (see `repro targets`)" % target,
              file=sys.stderr)
        return 2
    handles = build_campaign(profile, policy="balanced", seed=1,
                             time_budget=30.0, max_execs=300,
                             sanitize_every=50)
    stats = handles.fuzzer.run_campaign()
    report.extend(handles.fuzzer.sanitizer_findings)
    report.meta["sanitize_target"] = target
    report.meta["sanitizer_checks"] = stats.sanitizer_checks
    report.meta["sanitizer_leaks"] = stats.sanitizer_leaks
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nyx-Net reproduction: snapshot fuzzing on a "
                    "simulated VM")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("targets", help="list fuzz targets")

    fuzz = sub.add_parser("fuzz", help="fuzz one target")
    fuzz.add_argument("target", nargs="?",
                      help="target name (optional with --resume: the "
                           "campaign's manifest records it)")
    fuzz.add_argument("--resume", metavar="DIR",
                      help="resume a durable campaign directory from its "
                           "newest checkpoint (+journal); other flags must "
                           "match the recorded manifest")
    fuzz.add_argument("--checkpoint-every", type=int, default=None,
                      metavar="N",
                      help="make the campaign durable: journal progress and "
                           "checkpoint the full resumable state to --out "
                           "every N execs (SIGTERM/SIGINT drain into a "
                           "resumable exit; kill -9 recovers from the last "
                           "checkpoint via --resume)")
    fuzz.add_argument("--policy", default="aggressive",
                      choices=["none", "balanced", "aggressive", "bandit"])
    fuzz.add_argument("--max-chain-depth", type=int, default=1, metavar="K",
                      help="snapshot chain depth cap: 1 keeps the paper's "
                           "single incremental snapshot; K>1 lets the "
                           "policy stack up to K overlay snapshots along "
                           "each input (docs/snapshots.md)")
    fuzz.add_argument("--placement", choices=["bandit"], default=None,
                      help="chain placement strategy; 'bandit' is shorthand "
                           "for --policy bandit (pair with "
                           "--max-chain-depth > 1)")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--time", type=float, default=600.0,
                      help="simulated seconds")
    fuzz.add_argument("--execs", type=int, default=5000,
                      help="host-side execution cap")
    fuzz.add_argument("--no-asan", action="store_true")
    fuzz.add_argument("--distill", action="store_true",
                      help="afl-cmin the corpus before saving")
    fuzz.add_argument("--out", help="directory to persist corpus+crashes")
    fuzz.add_argument("--workers", type=int, default=1,
                      help="parallel instances over one shared root "
                           "snapshot (default: 1)")
    fuzz.add_argument("--sync-interval", type=float, default=5.0,
                      help="sim seconds between corpus sync rounds "
                           "(with --workers > 1)")
    fuzz.add_argument("--fault-rate", type=float, default=0.0,
                      help="inject network/snapshot faults at this rate "
                           "(0 disables; see docs/robustness.md)")
    fuzz.add_argument("--fault-plan",
                      help="replay a specific fault plan id "
                           "(fp1:<seed>:<rate-ppm>); overrides --fault-rate")
    fuzz.add_argument("--exec-timeout", type=float, default=None,
                      help="per-exec watchdog budget in simulated seconds")
    fuzz.add_argument("--sanitize-resets", nargs="?", const=250, type=int,
                      default=None, metavar="N",
                      help="digest-diff the host object graph against the "
                           "post-root-snapshot baseline every N execs "
                           "(default N: 250); exits 1 on any reset leak")
    fuzz.add_argument("--verify-checkpoints", nargs="?", const=200, type=int,
                      default=None, metavar="N",
                      help="with --checkpoint-every: after each periodic "
                           "checkpoint, once N further execs have run, "
                           "restore it in a fresh subprocess, re-step to "
                           "the same exec boundary and diff the states "
                           "(NYX065/NYX066; default N: 200); exits 1 on "
                           "any divergence")
    fuzz.add_argument("--coverage-backend", default="auto",
                      choices=["auto", "settrace", "monitoring"],
                      help="edge tracer backend (auto: sys.monitoring on "
                           "3.12+, sys.settrace otherwise; results are "
                           "byte-identical either way)")

    mario = sub.add_parser("mario", help="Table 4 on one level")
    mario.add_argument("level", nargs="?", default="1-1")
    mario.add_argument("--modes", help="comma list (default: all four)")
    mario.add_argument("--seed", type=int, default=0)
    mario.add_argument("--execs", type=int, default=10000)

    bench = sub.add_parser(
        "bench", help="hot-path benchmarks (docs/performance.md)")
    bench.add_argument("--matrix", action="store_true",
                       help="run the ProFuzzBench campaign matrix "
                            "(Tables 1-3) instead of the perf harness")
    bench.add_argument("--targets", help="with --matrix: comma list "
                                         "(default: all 13)")
    bench.add_argument("--quick", action="store_true",
                       help="short measurement windows (CI smoke)")
    bench.add_argument("--micro", dest="micro_only", action="store_true",
                       help="run only the micro suite")
    bench.add_argument("--macro", dest="macro_only", action="store_true",
                       help="run only the macro campaign benchmark")
    bench.add_argument("--target", default="lighttpd",
                       help="macro benchmark target (default: lighttpd)")
    bench.add_argument("--seed", type=int, default=1,
                       help="macro campaign seed (default: 1)")
    bench.add_argument("--execs", type=int, default=None,
                       help="macro campaign execs "
                            "(default: 2000, or 400 with --quick)")
    bench.add_argument("--max-chain-depth", type=int, default=1,
                       metavar="K",
                       help="overlay-chain depth for the macro campaign "
                            "(default: 1, the paper's single incremental "
                            "snapshot)")
    bench.add_argument("--chain", dest="chain_only", action="store_true",
                       help="run only the deep-state chain scenario")
    bench.add_argument("--skip-chain", action="store_true",
                       help="skip the deep-state chain scenario")
    bench.add_argument("--chain-depth", type=int, default=4, metavar="K",
                       help="chain-scenario bandit depth (default: 4)")
    bench.add_argument("--chain-execs", type=int, default=None,
                       help="chain-scenario execs per leg "
                            "(default: 600, or 300 with --quick)")
    bench.add_argument("--out", default=".",
                       help="directory for BENCH_*.json (default: .)")
    bench.add_argument("--baseline", default="BENCH_baseline.json",
                       help="baseline path for --check/--write-baseline")
    bench.add_argument("--check", type=float, default=None, metavar="PCT",
                       help="gate against the baseline; exit 1 when a "
                            "wall rate regresses or a sim metric drifts "
                            "by more than PCT percent")
    bench.add_argument("--write-baseline", action="store_true",
                       help="save this run as the new baseline")
    bench.add_argument("--sanitize-resets", nargs="?", const=250, type=int,
                       default=None, metavar="N",
                       help="arm the runtime reset sanitizer every N "
                            "execs during the macro run (default N: 250); "
                            "exits 1 on any leak")
    bench.add_argument("--coverage-backend", default="auto",
                       choices=["auto", "settrace", "monitoring"],
                       help="edge tracer backend for the macro campaign "
                            "(sim metrics and stats_checksum are "
                            "backend-independent)")

    replay = sub.add_parser("replay", help="replay a .nyx input")
    replay.add_argument("target")
    replay.add_argument("input")

    pack = sub.add_parser("pack", help="bundle a share folder (§5.4)")
    pack.add_argument("target")
    pack.add_argument("out")

    prof = sub.add_parser(
        "profile", help="deterministic sim-cost profiler (NYX076/NYX077)")
    prof.add_argument("target", nargs="?", default="lighttpd",
                      help="campaign target (default: lighttpd)")
    prof.add_argument("--seed", type=int, default=1,
                      help="campaign seed (default: 1)")
    prof.add_argument("--execs", type=int, default=None,
                      help="campaign execs (default: the baseline's, "
                           "or 400 without one)")
    prof.add_argument("--policy", default="aggressive",
                      help="snapshot policy (default: aggressive)")
    prof.add_argument("--baseline",
                      default="tests/golden/profile_baseline.json",
                      help="committed per-site budget baseline")
    prof.add_argument("--write-baseline", action="store_true",
                      help="save this run's cost table as the baseline")
    prof.add_argument("--pct", type=float, default=25.0, metavar="PCT",
                      help="NYX076 per-site budget drift tolerance "
                           "(default: 25)")
    prof.add_argument("--root", default="src/repro",
                      help="source tree for the NYX077 static "
                           "cross-check (default: src/repro)")
    prof.add_argument("--json", metavar="PATH",
                      help="write the merged JSON report here")

    analyze = sub.add_parser(
        "analyze", help="static diagnostics (docs/analysis.md)")
    analyze.add_argument("--spec", action="store_true",
                         help="lint the default network spec (NYX00x)")
    analyze.add_argument("--corpus", metavar="DIR",
                         help="audit a persisted corpus directory "
                              "(NYX01x/NYX03x)")
    analyze.add_argument("--self", dest="self_root", nargs="?",
                         const="src/repro", default=None, metavar="PATH",
                         help="determinism self-lint over a source tree "
                              "(NYX02x; default PATH: src/repro)")
    analyze.add_argument("--reset", dest="reset_root", nargs="?",
                         const="src/repro", default=None, metavar="PATH",
                         help="reset-safety lint over a source tree "
                              "(NYX04x; default PATH: src/repro)")
    analyze.add_argument("--sanitize", nargs="?", const="lighttpd",
                         default=None, metavar="TARGET",
                         help="run a short seeded campaign with the "
                              "runtime reset sanitizer armed (NYX05x; "
                              "default TARGET: lighttpd)")
    analyze.add_argument("--durability", dest="durability_root", nargs="?",
                         const="src/repro", default=None, metavar="PATH",
                         help="durability lint over a source tree: "
                              "snapshot/restore completeness, capture-set "
                              "drift vs the state-inventory golden, journal "
                              "frame registration (NYX06x; default PATH: "
                              "src/repro)")
    analyze.add_argument("--perf", dest="perf_root", nargs="?",
                         const="src/repro", default=None, metavar="PATH",
                         help="hot-path lint over a source tree: per-"
                              "iteration allocation, unbatched RNG draws, "
                              "repeated attribute loads, redundant copies "
                              "and indirection on '# nyx: hot'-reachable "
                              "code (NYX07x; default PATH: src/repro)")
    analyze.add_argument("--fix", action="store_true",
                         help="rewrite repairable --corpus entries in "
                              "place; with --reset, --durability or "
                              "--perf, print fix-it stubs")
    analyze.add_argument("--json", metavar="PATH",
                         help="write the machine-readable report here")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "targets": _cmd_targets,
        "fuzz": _cmd_fuzz,
        "mario": _cmd_mario,
        "bench": _cmd_bench,
        "replay": _cmd_replay,
        "pack": _cmd_pack,
        "analyze": _cmd_analyze,
        "profile": _cmd_profile,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
