"""repro — a reproduction of "Nyx-Net: Network Fuzzing with Incremental
Snapshots" (Schumilo et al., EuroSys 2022) on a simulated whole-VM
substrate.

Quick start::

    from repro import build_campaign, PROFILES

    handles = build_campaign(PROFILES["lightftp"], policy="aggressive",
                             time_budget=30.0, max_execs=2000)
    stats = handles.fuzzer.run_campaign()
    print(stats.summary())

Layer map (bottom-up):

* :mod:`repro.vm` — guest memory with dirty-page logging, devices,
  disk, root + incremental snapshots.
* :mod:`repro.guestos` — a tiny POSIX-ish kernel whose entire state
  serializes into guest memory (so snapshots really rewind execution).
* :mod:`repro.emu` — the selective network-emulation agent.
* :mod:`repro.spec` — affine-typed bytecode specs, the seed Builder,
  PCAP import and protocol dissectors.
* :mod:`repro.coverage` — AFL-style bitmaps over a Python edge tracer.
* :mod:`repro.fuzz` — the Nyx-Net fuzzer (queue, mutators, snapshot
  placement policies, executor, campaign loop).
* :mod:`repro.targets` — the 13 ProFuzzBench-analogue servers plus the
  case-study targets.
* :mod:`repro.baselines` — AFLNet, AFLNwe, AFL++/desock, Agamotto,
  IJON.
* :mod:`repro.mario` — the Super Mario substrate and solver.
* :mod:`repro.bench` — the harness regenerating every table/figure.
"""

from repro.fuzz.campaign import (CampaignHandles, build_campaign,
                                 build_parallel_campaign)
from repro.fuzz.fuzzer import FuzzerConfig, NyxNetFuzzer
from repro.fuzz.input import FuzzInput, packets_input
from repro.spec.builder import Builder
from repro.spec.nodes import Spec, default_network_spec
from repro.targets import PROFILES, PROFUZZBENCH, TargetProfile
from repro.vm.machine import Machine

__version__ = "1.0.0"

__all__ = [
    "build_campaign", "build_parallel_campaign", "CampaignHandles",
    "NyxNetFuzzer", "FuzzerConfig",
    "FuzzInput", "packets_input", "Builder", "Spec", "default_network_spec",
    "PROFILES", "PROFUZZBENCH", "TargetProfile", "Machine", "__version__",
]
