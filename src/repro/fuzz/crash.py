"""Crash collection and deduplication.

The evaluation counts *unique bugs* per target (Table 1), so crashes
are deduplicated by their planted-bug identity plus crash kind —
the analogue of the paper's manual triage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashReport


@dataclass
class CrashRecord:
    """First occurrence of one unique bug."""

    report: CrashReport
    input: Optional[FuzzInput]
    found_at: float
    count: int = 1
    #: The *fastest* reproducing input seen so far (by exec time) —
    #: usually the better reproducer to ship than the first one found.
    fastest_input: Optional[FuzzInput] = None
    fastest_exec_time: Optional[float] = None


class CrashDatabase:
    """Unique-bug store for a campaign."""

    def __init__(self) -> None:
        self.records: Dict[str, CrashRecord] = {}

    def add(self, report: CrashReport, input_: Optional[FuzzInput],
            now: float, exec_time: Optional[float] = None) -> bool:
        """Record a crash; returns True if it is a new unique bug.

        ``exec_time`` (when the caller knows it) tracks the fastest
        reproducing input per unique bug across repeat occurrences.
        """
        key = report.dedup_key
        existing = self.records.get(key)
        if existing is not None:
            existing.count += 1
            self._maybe_faster(existing, input_, exec_time)
            return False
        record = CrashRecord(report, input_, now)
        self._maybe_faster(record, input_, exec_time)
        self.records[key] = record
        return True

    @staticmethod
    def _maybe_faster(record: CrashRecord, input_: Optional[FuzzInput],
                      exec_time: Optional[float]) -> None:
        if input_ is None or exec_time is None:
            return
        if (record.fastest_exec_time is None
                or exec_time < record.fastest_exec_time):
            record.fastest_exec_time = exec_time
            record.fastest_input = input_.copy()

    # -- durability (checkpoint/resume) ----------------------------------

    def snapshot_state(self) -> dict:
        """Picklable crash-DB state (see :mod:`repro.fuzz.journal`).

        The whole record map is checkpointed — ``count`` and the
        fastest-reproducer fields appear in the persisted crash
        reports, so a resumed campaign must carry them forward exactly.
        """
        return {"records": self.records}

    def restore_state(self, state: dict) -> None:
        """Adopt a checkpointed crash DB."""
        self.records = dict(state["records"])

    @property
    def unique_bugs(self) -> List[str]:
        return sorted(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, key: str) -> bool:
        return key in self.records
