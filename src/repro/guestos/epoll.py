"""select/poll/epoll readiness objects.

The paper's emulation layer hooks "the select/poll/epoll interfaces to
ensure compliant behavior" and uses them to signal which fd receives
the next packet (§2.2, §3.3).  Here epoll instances are pure-state
kernel objects referenced by fd; readiness evaluation is done by the
kernel (which can resolve fds to sockets), optionally filtered by the
interceptor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

EPOLLIN = 0x001
EPOLLOUT = 0x004
EPOLLERR = 0x008
EPOLLHUP = 0x010


@dataclass
class EpollInstance:  # nyx: state[memory]
    """An epoll interest list, keyed by registered fd."""

    eid: int
    #: fd -> event mask the process asked for.
    interest: Dict[int, int] = field(default_factory=dict)
    #: fd -> user data (epoll_data analogue).
    userdata: Dict[int, int] = field(default_factory=dict)

    def ctl_add(self, fd: int, events: int, data: int = 0) -> None:
        self.interest[fd] = events
        self.userdata[fd] = data

    def ctl_mod(self, fd: int, events: int, data: int = 0) -> None:
        if fd not in self.interest:
            raise KeyError(fd)
        self.interest[fd] = events
        self.userdata[fd] = data

    def ctl_del(self, fd: int) -> None:
        self.interest.pop(fd, None)
        self.userdata.pop(fd, None)

    def watched_fds(self) -> List[int]:
        return list(self.interest)


@dataclass(frozen=True)
class EpollEvent:
    """One ready event returned by epoll_wait."""

    fd: int
    events: int
    data: int = 0
