"""Tiny harness for driving one target through the emulation layer."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.emu.interceptor import Interceptor
from repro.guestos.errors import CrashReport
from repro.guestos.kernel import Kernel
from repro.targets.base import TargetProfile
from repro.vm.machine import Machine


class TargetHarness:
    """Boots a profile's target and exchanges packets with it."""

    def __init__(self, profile: TargetProfile, asan: bool = True) -> None:
        self.profile = profile
        self.machine = Machine(memory_bytes=32 * 1024 * 1024)
        self.kernel = Kernel(self.machine)
        self.interceptor = Interceptor(self.kernel, profile.surface())
        self.program = profile.make_program()
        if hasattr(self.program, "asan"):
            self.program.asan = asan
        self.kernel.spawn(self.program)
        self.kernel.run(max_rounds=256)
        self.kernel.flush_to_memory(full=True)
        self.machine.capture_root()
        self._conn_open = False

    def send(self, *packets: bytes) -> List[bytes]:
        """Deliver packets on connection 0; returns target responses."""
        if not self._conn_open:
            self.interceptor.reset_for_test()
            self.interceptor.open_connection(0)
            self._conn_open = True
        for packet in packets:
            self.interceptor.queue_packet(0, packet)
            self.kernel.run()
        return self.interceptor.responses(0)

    def crash(self) -> Optional[CrashReport]:
        if self.kernel.crash_reports:
            return self.kernel.crash_reports[0]
        return None

    def reset(self) -> None:
        """Snapshot-reset to the pristine booted state."""
        self.kernel.flush_to_memory()
        self.kernel.crash_reports.clear()
        self.machine.restore_root()
        self._conn_open = False

    def run_session(self, packets: Sequence[bytes]) -> Optional[CrashReport]:
        """Fresh session: send all packets, report any crash, reset."""
        self.reset()
        self.send(*packets)
        report = self.crash()
        return report
