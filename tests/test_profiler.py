"""Deterministic sim-cost profiler (NYX07x runtime prong) tests.

``repro.perf.profiler`` instruments the engine with sim-clock-reading
wrappers, emits a per-site cost table that is a pure function of the
campaign configuration, gates it against a committed budget baseline
(NYX076) and cross-checks top-decile sites against the static hot call
graph (NYX077).  The acceptance keystone: one injected hot-loop
allocation is caught by BOTH prongs, each naming the exact site.
"""

import importlib
import json
import pathlib
import sys

from repro.analysis.hotlint import analyze_hot_source
from repro.cli import main as cli_main
from repro.perf.macro import run_macro
from repro.perf.profiler import (CONFIG_KEYS, ProfileCollector,
                                 compare_profile, format_profile,
                                 instrument, profile_checksum, run_profile,
                                 static_disagreement)

GOLDEN = pathlib.Path(__file__).parent / "golden"
BASELINE = GOLDEN / "profile_baseline.json"
REPO_SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


class FakeClock:
    def __init__(self):
        self.now = 0.0


def payload_for(sites, **config):
    base = {"kind": "profile", "target": "toy", "seed": 0, "execs": 10,
            "policy": "x", "sites": sites,
            "profile_checksum": profile_checksum(sites)}
    base.update(config)
    return base


class TestCollector:
    def test_nested_inclusive_exclusive_split(self):
        clock = FakeClock()
        collector = ProfileCollector()
        collector.attach_clock(clock)
        collector._push("a")
        clock.now += 1.0
        collector._push("b")
        clock.now += 2.0
        collector._pop()
        clock.now += 3.0
        collector._pop()
        table = collector.as_table()
        assert table["b"] == {"calls": 1, "incl": 2.0, "excl": 2.0}
        # a's inclusive spans all 6s; exclusive excludes b's 2s.
        assert table["a"] == {"calls": 1, "incl": 6.0, "excl": 4.0}

    def test_sibling_child_times_accumulate(self):
        clock = FakeClock()
        collector = ProfileCollector()
        collector.attach_clock(clock)
        collector._push("parent")
        for _ in range(3):
            collector._push("child")
            clock.now += 1.0
            collector._pop()
        collector._pop()
        table = collector.as_table()
        assert table["child"]["calls"] == 3
        assert table["parent"] == {"calls": 1, "incl": 3.0, "excl": 0.0}


TOY = '''\
class Toy:
    def __init__(self, clock):
        self.clock = clock
        self.pad = b"\\x00" * 16

    def outer(self, n):  # nyx: hot
        for _ in range(n):
            self.inner()

    def inner(self):
        self.clock.now += 0.001
'''

#: The injected regression: a per-iteration allocation in the hot loop
#: plus the helper call that spends time in a brand-new site.
TOY_INJECTED = TOY.replace(
    "            self.inner()\n",
    "            scratch = bytes(self.pad)\n"
    "            self._record(scratch)\n"
    "            self.inner()\n") + '''
    def _record(self, scratch):
        self.clock.now += 0.002
'''


def _import_toy(tmp_path, name, source):
    (tmp_path / (name + ".py")).write_text(source)
    sys.path.insert(0, str(tmp_path))
    try:
        return importlib.import_module(name)
    finally:
        sys.path.pop(0)


def _profile_toy(module, modname, n=10):
    collector = ProfileCollector()
    undo = instrument(collector, [modname])
    try:
        clock = FakeClock()
        collector.attach_clock(clock)
        module.Toy(clock).outer(n)
        collector.stop()
    finally:
        undo()
    return collector.as_table()


class TestInstrumentation:
    def test_wrappers_record_per_site_costs(self, tmp_path):
        module = _import_toy(tmp_path, "nyx_toy_plain", TOY)
        table = _profile_toy(module, "nyx_toy_plain")
        inner = table["nyx_toy_plain:Toy.inner"]
        assert inner["calls"] == 10
        assert abs(inner["excl"] - 0.010) < 1e-9

    def test_undo_restores_originals(self, tmp_path):
        module = _import_toy(tmp_path, "nyx_toy_undo", TOY)
        original = module.Toy.outer
        collector = ProfileCollector()
        undo = instrument(collector, ["nyx_toy_undo"])
        assert module.Toy.outer is not original
        undo()
        assert module.Toy.outer is original

    def test_disabled_collector_records_nothing(self, tmp_path):
        module = _import_toy(tmp_path, "nyx_toy_off", TOY)
        collector = ProfileCollector()
        undo = instrument(collector, ["nyx_toy_off"])
        try:
            module.Toy(FakeClock()).outer(5)  # clock never attached
        finally:
            undo()
        assert collector.as_table() == {}


class TestBothProngs:
    """The injected hot-loop allocation, caught twice by name."""

    def test_static_prong_names_the_injected_line(self):
        diags = analyze_hot_source("toy.py", TOY_INJECTED)
        hits = [d for d in diags if d.code == "NYX070"]
        assert len(hits) == 1
        line = TOY_INJECTED.splitlines()[hits[0].line - 1]
        assert "scratch = bytes(self.pad)" in line
        assert "Toy.outer" in hits[0].message
        # The pre-injection toy is clean.
        assert analyze_hot_source("toy.py", TOY) == []

    def test_runtime_prong_names_the_injected_site(self, tmp_path):
        module = _import_toy(tmp_path, "nyx_toy_inj", TOY_INJECTED)
        current = payload_for(_profile_toy(module, "nyx_toy_inj"))
        baseline_sites = {site: rec for site, rec in
                         current["sites"].items()
                         if not site.endswith("Toy._record")}
        baseline = payload_for(baseline_sites)
        diags, _ = compare_profile(current, baseline)
        new = [d for d in diags if "new hot site" in d.message]
        assert len(new) == 1
        assert "nyx_toy_inj:Toy._record" in new[0].message
        assert new[0].code == "NYX076" and new[0].fixable


class TestBudgetGate:
    def test_identical_profile_is_clean(self):
        sites = {"m:A.f": {"calls": 5, "incl": 1.0, "excl": 1.0}}
        diags, notes = compare_profile(payload_for(sites),
                                       payload_for(sites))
        assert diags == []
        assert any("identical" in n for n in notes)

    def test_cost_drift_past_budget_is_nyx076(self):
        base = payload_for({"m:A.f": {"calls": 5, "incl": 1.0,
                                      "excl": 1.0}})
        cur = payload_for({"m:A.f": {"calls": 5, "incl": 1.5,
                                     "excl": 1.5}})
        diags, _ = compare_profile(cur, base, pct=25.0)
        assert len(diags) == 1
        assert "drifted past the 25% budget" in diags[0].message
        # Within budget: quiet.
        diags, _ = compare_profile(cur, base, pct=60.0)
        assert diags == []

    def test_call_count_change_is_reported(self):
        base = payload_for({"m:A.f": {"calls": 5, "incl": 1.0,
                                      "excl": 1.0}})
        cur = payload_for({"m:A.f": {"calls": 7, "incl": 1.0,
                                     "excl": 1.0}})
        diags, _ = compare_profile(cur, base)
        assert len(diags) == 1 and "calls 5 -> 7" in diags[0].message

    def test_vanished_site_is_nyx076(self):
        base = payload_for({"m:A.f": {"calls": 5, "incl": 1.0,
                                      "excl": 1.0},
                            "m:A.g": {"calls": 1, "incl": 0.1,
                                      "excl": 0.1}})
        cur = payload_for({"m:A.f": {"calls": 5, "incl": 1.0,
                                     "excl": 1.0}})
        diags, _ = compare_profile(cur, base)
        assert len(diags) == 1 and "vanished" in diags[0].message

    def test_config_mismatch_skips_the_gate(self):
        sites = {"m:A.f": {"calls": 5, "incl": 1.0, "excl": 1.0}}
        diags, notes = compare_profile(payload_for(sites, seed=1),
                                       payload_for(sites, seed=2))
        assert diags == []
        assert any("config mismatch" in n and "seed" in n for n in notes)


class TestStaticDisagreement:
    def test_uncovered_top_decile_site_is_nyx077(self):
        sites = {"repro.fuzz.executor:Phantom.spin":
                 {"calls": 100, "incl": 9.0, "excl": 9.0}}
        for i in range(9):
            sites["m:A.f%d" % i] = {"calls": 1, "incl": 0.01,
                                    "excl": 0.01}
        diags = static_disagreement(payload_for(sites), str(REPO_SRC))
        assert len(diags) == 1
        assert diags[0].code == "NYX077"
        assert "Phantom.spin" in diags[0].message

    def test_covered_top_site_is_quiet(self):
        sites = {"repro.fuzz.executor:NyxExecutor.run_full":
                 {"calls": 100, "incl": 9.0, "excl": 9.0}}
        for i in range(9):
            sites["m:A.f%d" % i] = {"calls": 1, "incl": 0.01,
                                    "excl": 0.01}
        assert static_disagreement(payload_for(sites),
                                   str(REPO_SRC)) == []


class TestRealCampaign:
    def test_wrappers_do_not_perturb_the_sim(self):
        profiled = run_profile(execs=120)
        bare = run_macro(execs=120, seed=1, policy="aggressive")
        assert profiled["stats_checksum"] == bare["stats_checksum"]

    def test_profile_is_deterministic(self):
        a = run_profile(execs=120)
        b = run_profile(execs=120)
        assert a["profile_checksum"] == b["profile_checksum"]
        assert a["sites"] == b["sites"]

    def test_committed_baseline_matches(self):
        baseline = json.loads(BASELINE.read_text())
        current = run_profile(
            **{key: baseline[key] for key in CONFIG_KEYS})
        diags, notes = compare_profile(current, baseline,
                                       baseline_path=str(BASELINE))
        assert diags == []
        assert any("identical" in n for n in notes)

    def test_top_decile_sites_have_static_coverage(self):
        baseline = json.loads(BASELINE.read_text())
        assert static_disagreement(baseline, str(REPO_SRC)) == []

    def test_format_profile_mentions_heaviest_site(self):
        baseline = json.loads(BASELINE.read_text())
        text = format_profile(baseline, top=3)
        heaviest = max(baseline["sites"],
                       key=lambda s: baseline["sites"][s]["excl"])
        assert heaviest in text
        assert baseline["profile_checksum"] in text


def _macro_payload(**over):
    payload = {"target": "lighttpd", "seed": 1, "policy": "aggressive",
               "execs": 100, "wall_execs_per_sec": 100.0,
               "sim_execs_per_sec": 5.0, "final_edges": 10,
               "host": {"python": "3.11.0", "platform": "boxA"}}
    payload.update(over)
    return payload


class TestWallGateSkip:
    """`bench --check` off the recording host: explicit skip line and
    a ``wall_gated`` verdict instead of a silent pass."""

    def test_host_mismatch_emits_explicit_line(self):
        from repro.perf.report import Comparison, compare_macro
        current = _macro_payload(wall_execs_per_sec=10.0)  # 10x slower
        baseline = _macro_payload(
            host={"python": "3.12.0", "platform": "boxA"})
        out = Comparison()
        compare_macro(current, baseline, 10.0, out)
        assert out.wall_gated is False
        text = out.format_text()
        assert "wall gates skipped (host mismatch:" in text
        assert "'3.11.0'" in text and "'3.12.0'" in text
        assert out.ok  # the wall collapse is reported, not gated

    def test_same_host_keeps_the_gate_live(self):
        from repro.perf.report import Comparison, compare_macro
        current = _macro_payload(wall_execs_per_sec=10.0)
        out = Comparison()
        compare_macro(current, _macro_payload(), 10.0, out)
        assert out.wall_gated is True
        assert not out.ok
        assert "wall gates skipped" not in out.format_text()

    def test_micro_mismatch_announces_once(self):
        from repro.perf.report import Comparison, compare_micro
        rows = {"benchmarks": {"restore": {"per_sec": 100.0},
                               "mutate": {"per_sec": 100.0}},
                "host": {"python": "3.11.0", "platform": "boxA"}}
        baseline = {"benchmarks": {"restore": {"per_sec": 900.0},
                                   "mutate": {"per_sec": 900.0}},
                    "host": {"python": "3.11.0", "platform": "boxB"}}
        out = Comparison()
        compare_micro(rows, baseline, 10.0, out)
        assert out.wall_gated is False and out.ok
        text = out.format_text()
        assert text.count("wall gates skipped") == 1
        assert "'boxA'" in text and "'boxB'" in text


class TestCli:
    def test_profile_gates_clean_against_committed_baseline(self, capsys):
        assert cli_main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "identical" in out

    def test_unknown_target_exits_two(self):
        assert cli_main(["profile", "no-such-target"]) == 2

    def test_write_then_gate_roundtrip(self, tmp_path, capsys):
        baseline = tmp_path / "profile_baseline.json"
        assert cli_main(["profile", "--execs", "60",
                         "--baseline", str(baseline),
                         "--write-baseline"]) == 0
        # The gated run adopts the baseline's exec count.
        report = tmp_path / "report.json"
        assert cli_main(["profile", "--baseline", str(baseline),
                         "--json", str(report)]) == 0
        merged = json.loads(report.read_text())
        assert merged["meta"]["profile"]["execs"] == 60
        assert merged["meta"]["profile_checksum"] == \
            json.loads(baseline.read_text())["profile_checksum"]
