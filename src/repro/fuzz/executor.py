"""Test-case execution inside the VM.

The executor interprets input bytecode op by op, driving the
interceptor (connections, packets, EOF), the guest scheduler and the
snapshot machinery:

* ``run_full`` executes an input from the top, optionally creating the
  incremental snapshot after a chosen packet (the policy's pick, or an
  explicit ``snapshot`` marker op in the input);
* ``run_suffix`` re-executes only the ops after the snapshot point
  against the incremental snapshot — the §3.4 fast path;
* after every execution the VM is reset to whichever snapshot is
  active, with the reset cost charged to the simulated clock.

Targets with non-network vocabularies (e.g. Super Mario's button
frames) register extra op handlers.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.coverage.tracer import EdgeTracer
from repro.emu.interceptor import Interceptor
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashReport, GuestError
from repro.guestos.kernel import Kernel
from repro.vm.machine import Machine

#: Handler signature: (executor, op, resolved connection id) -> None.
OpHandler = Callable[["NyxExecutor", object, Optional[int]], None]


@dataclass
class ExecResult:
    """Outcome of one test-case execution."""

    trace: Dict[int, int] = field(default_factory=dict)
    crash: Optional[CrashReport] = None
    exec_time: float = 0.0
    ops_executed: int = 0
    packets_sent: int = 0
    #: Packets the target actually read (recv'd) during the run —
    #: inputs that kill or stall the target stop consuming early.
    packets_consumed: int = 0
    #: True when the run only replayed a suffix from the incremental
    #: snapshot.
    suffix_run: bool = False
    #: True when the watchdog stopped the run: the target exceeded its
    #: per-exec simulated-time budget (the paper's timeout class).
    timed_out: bool = False


@dataclass
class _SuffixState:
    """Captured host-side interceptor state at the snapshot point."""

    resume_index: int
    conns: Dict
    sid_to_conn: Dict
    values_produced: int
    #: The input whose prefix produced the snapshot, and the op index
    #: the snapshot was taken at — enough to rebuild the incremental
    #: snapshot from the root if a restore finds it corrupted.
    base_input: Optional[FuzzInput] = None
    snapshot_op_index: Optional[int] = None


class NyxExecutor:
    """Executes inputs against one target VM."""

    def __init__(self, machine: Machine, kernel: Kernel,
                 interceptor: Interceptor, tracer: Optional[EdgeTracer] = None,
                 max_ops: int = 512,
                 exec_timeout: Optional[float] = None,
                 max_snapshot_rebuilds: int = 3) -> None:
        self.machine = machine
        self.kernel = kernel
        self.interceptor = interceptor
        self.tracer = tracer
        self.max_ops = max_ops
        #: Watchdog budget: simulated seconds one execution may burn
        #: before it is stopped and classified as a timeout.  ``None``
        #: disables the watchdog (trusted targets).
        self.exec_timeout = exec_timeout
        #: Consecutive corrupted-restore rebuilds tolerated before the
        #: executor degrades to root-only execution.
        self.max_snapshot_rebuilds = max_snapshot_rebuilds
        self.execs = 0
        #: Incremental snapshots rebuilt from the root after a restore
        #: found them corrupted (self-healing).
        self.snapshot_rebuilds = 0
        #: Bottom of the degradation ladder: incremental snapshots kept
        #: failing validation, so every run now starts from the root.
        self.degraded_root_only = False
        self._rebuild_failures = 0
        self._suffix: Optional[_SuffixState] = None
        self.op_handlers: Dict[str, OpHandler] = {
            "connection": _handle_connection,
            "packet": _handle_packet,
            "shutdown": _handle_shutdown,
        }
        if tracer is not None:
            kernel.coverage = tracer

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------

    def run_full(self, input_: FuzzInput,
                 snapshot_after_packet: Optional[int] = None) -> ExecResult:
        """Execute the whole input from the active snapshot (root).

        ``snapshot_after_packet`` is a 0-based position into the
        input's packet list; the incremental snapshot is created right
        after that packet is consumed, and subsequent ``run_suffix``
        calls replay only the remainder.
        """
        self._suffix = None
        self.machine.snapshots.discard_incremental()
        snapshot_op_index = None
        if snapshot_after_packet is not None:
            packets = input_.packet_indices()
            if 0 <= snapshot_after_packet < len(packets):
                snapshot_op_index = packets[snapshot_after_packet]
        return self._run(input_, start=0, snapshot_op_index=snapshot_op_index)

    def run_suffix(self, input_: FuzzInput) -> ExecResult:
        """Execute only the ops after the incremental snapshot point.

        Self-healing: if the last reset found the incremental snapshot
        corrupted (it validates its CoW pages by checksum), the prefix
        is replayed from the root to rebuild it.  After
        ``max_snapshot_rebuilds`` consecutive failures the executor
        degrades to root-only execution instead of thrashing.
        """
        state = self._suffix
        if state is None:
            raise RuntimeError("no incremental snapshot to fuzz from")
        if not self.degraded_root_only:
            state = self._heal_incremental(state)
        if self.degraded_root_only:
            # Bottom of the ladder: run the whole input from the root.
            return self._run(input_, start=0, snapshot_op_index=None)
        # Rebind the interceptor's host-side view of the guest sockets
        # exactly as it was at the snapshot point.  Suffix runs skip
        # reset_for_test (the snapshot point is mid-test), so stale
        # surface sockets from the previous suffix run are pruned here.
        self.interceptor._conns = copy.deepcopy(state.conns)
        self.interceptor._sid_to_conn = dict(state.sid_to_conn)
        self.interceptor.reset_stale_surface()
        result = self._run(input_, start=state.resume_index,
                           snapshot_op_index=None,
                           values_preassigned=state.values_produced)
        result.suffix_run = True
        return result

    def _heal_incremental(self, state: _SuffixState) -> _SuffixState:
        """Ensure a valid incremental snapshot exists, rebuilding from
        the root as often as the rebuild budget allows."""
        snapshots = self.machine.snapshots
        while not snapshots.incremental_active:
            self._rebuild_failures += 1
            if (self._rebuild_failures > self.max_snapshot_rebuilds
                    or state.base_input is None):
                self.degraded_root_only = True
                return state
            self.snapshot_rebuilds += 1
            # Replay exactly the prefix that produced the snapshot; the
            # trailing reset restores the fresh incremental snapshot
            # (or corrupts it again, in which case we loop).
            self._run(state.base_input, start=0,
                      snapshot_op_index=state.snapshot_op_index,
                      stop_index=state.resume_index)
            state = self._suffix or state
        self._rebuild_failures = 0
        return state

    @property
    def suffix_resume_index(self) -> Optional[int]:
        return self._suffix.resume_index if self._suffix else None

    # ------------------------------------------------------------------
    # core interpreter
    # ------------------------------------------------------------------

    def _run(self, input_: FuzzInput, start: int,
             snapshot_op_index: Optional[int],
             values_preassigned: int = 0,
             stop_index: Optional[int] = None) -> ExecResult:
        machine = self.machine
        kernel = self.kernel
        result = ExecResult()
        t0 = machine.clock.now
        deadline = None
        if self.exec_timeout is not None:
            # Watchdog: the budget binds the guest scheduler too, so a
            # stalled target stops mid-kernel.run instead of spinning
            # its rounds out.
            deadline = t0 + self.exec_timeout
            kernel.watchdog = lambda: machine.clock.now >= deadline
        packets_before = self.interceptor.stats_packets
        if self.tracer is not None:
            self.tracer.begin()
        if start == 0:
            self.interceptor.reset_for_test()
        values = values_preassigned
        spec_nodes = self.op_handlers
        ops = input_.ops
        end = min(len(ops), start + self.max_ops)
        if stop_index is not None:
            end = min(end, stop_index)
        for index in range(start, end):
            op = ops[index]
            if op.is_snapshot_marker():
                self._take_incremental(input_, index + 1, values)
                continue
            handler = spec_nodes.get(op.node)
            if handler is not None:
                conn = op.refs[0] if op.refs else None
                try:
                    handler(self, op, conn)
                except (GuestError, KeyError, ValueError):
                    # Ill-formed mutation (bad conn ref, closed conn):
                    # the op is a no-op, like a packet to a dead socket.
                    pass
            values += _outputs_of(op)
            result.ops_executed += 1
            if op.node == "packet":
                result.packets_sent += 1
            kernel.run()
            if kernel.crash_reports:
                break
            if deadline is not None and machine.clock.now >= deadline:
                result.timed_out = True
                break
            if snapshot_op_index is not None and index == snapshot_op_index:
                self._take_incremental(input_, index + 1, values)
                snapshot_op_index = None
        if not result.timed_out:
            # Let the target finish pending work (responses, cleanup).
            kernel.run()
        kernel.watchdog = None
        if kernel.crash_reports:
            result.crash = kernel.crash_reports[0]
            kernel.crash_reports.clear()
        if self.tracer is not None:
            result.trace = self.tracer.take_trace()
        result.exec_time = machine.clock.now - t0
        result.packets_consumed = (self.interceptor.stats_packets
                                   - packets_before)
        self.execs += 1
        # Reset for the next test: the state churn of this execution is
        # what the reset pays for.  (A timed-out or fault-ridden run is
        # wiped away exactly like any other — that is the whole point
        # of snapshot fuzzing.)
        kernel.flush_to_memory()
        machine.reset_for_next_test()
        return result

    def _take_incremental(self, input_: FuzzInput, resume_index: int,
                          values: int) -> None:
        """Create the secondary snapshot at the current position."""
        self.kernel.flush_to_memory()
        self.machine.create_incremental()
        self._suffix = _SuffixState(
            resume_index=resume_index,
            conns=copy.deepcopy(self.interceptor._conns),
            sid_to_conn=dict(self.interceptor._sid_to_conn),
            values_produced=values,
            base_input=input_.copy(),
            snapshot_op_index=resume_index - 1,
        )

    def finish_snapshot_cycle(self) -> None:
        """Discard the incremental snapshot and return to the root
        ("as soon as Nyx-Net wants to schedule another input, the
        incremental snapshot is discarded", §3.4)."""
        self._suffix = None
        self.machine.snapshots.discard_incremental()
        self.kernel.flush_to_memory()
        self.machine.restore_root()


def _outputs_of(op) -> int:
    """Connections produced by an op (default spec: connection=1)."""
    return 1 if op.node == "connection" else 0


# ----------------------------------------------------------------------
# default op handlers (the generic network spec)
# ----------------------------------------------------------------------


def _handle_connection(executor: NyxExecutor, op, conn: Optional[int]) -> None:
    # The new connection's id is the index of the value it produces,
    # which equals the number of connections opened so far this test.
    conn_id = len(executor.interceptor._conns)
    executor.interceptor.open_connection(conn_id)


def _handle_packet(executor: NyxExecutor, op, conn: Optional[int]) -> None:
    payload = op.args[0] if op.args else b""
    executor.interceptor.queue_packet(conn or 0, bytes(payload))


def _handle_shutdown(executor: NyxExecutor, op, conn: Optional[int]) -> None:
    executor.interceptor.close_connection(conn or 0)
