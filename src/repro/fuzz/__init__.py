"""The Nyx-Net fuzzer core.

* :mod:`repro.fuzz.input` — inputs as typed op sequences with
  packet-level structure.
* :mod:`repro.fuzz.mutators` — packet-level and byte-level (havoc)
  mutations, restrictable to the suffix after an incremental snapshot.
* :mod:`repro.fuzz.queue` — the corpus.
* :mod:`repro.fuzz.policies` — snapshot placement policies
  (none / balanced / aggressive, §3.4).
* :mod:`repro.fuzz.executor` — runs one input in the VM, driving the
  interceptor, snapshots and coverage tracing.
* :mod:`repro.fuzz.fuzzer` — the campaign loop.
* :mod:`repro.fuzz.parallel` — N instances over one shared root
  snapshot with deterministic interleaving and corpus sync (§5.3/§6).
"""

from repro.fuzz.input import FuzzInput
from repro.fuzz.mutators import MutationEngine
from repro.fuzz.queue import Corpus, QueueEntry
from repro.fuzz.policies import (SnapshotPolicy, NonePolicy, BalancedPolicy,
                                 AggressivePolicy, make_policy)
from repro.fuzz.executor import ExecResult, NyxExecutor
from repro.fuzz.fuzzer import NyxNetFuzzer, FuzzerConfig
from repro.fuzz.stats import AggregateStats, CampaignStats
from repro.fuzz.crash import CrashDatabase
from repro.fuzz.trim import trim_input, distill_corpus
from repro.fuzz.persist import (save_campaign, save_parallel_campaign,
                                load_corpus)
from repro.fuzz.parallel import (ParallelCampaign, ParallelConfig,
                                 WorkerHandle)

__all__ = [
    "FuzzInput", "MutationEngine", "Corpus", "QueueEntry",
    "SnapshotPolicy", "NonePolicy", "BalancedPolicy", "AggressivePolicy",
    "make_policy", "ExecResult", "NyxExecutor", "NyxNetFuzzer",
    "FuzzerConfig", "CampaignStats", "AggregateStats", "CrashDatabase",
    "ParallelCampaign", "ParallelConfig", "WorkerHandle",
    "trim_input", "distill_corpus", "save_campaign",
    "save_parallel_campaign", "load_corpus",
]
