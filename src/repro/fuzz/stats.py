"""Campaign statistics: throughput, coverage-over-time, crash times.

Times are *simulated* seconds (the cost model clock), which is what
every reproduced table and figure reports.

Parallel campaigns roll per-worker :class:`CampaignStats` up into one
:class:`AggregateStats` view: counters sum, crash times take the
earliest discovery, and the time series merge on the union of their
timestamps (the campaign supplies the merged-bitmap coverage series,
since per-worker edge counts overlap and cannot simply be added).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass
class CampaignStats:
    """Time series and counters for one fuzzing campaign."""

    fuzzer_name: str = "nyx-net"
    target_name: str = ""
    execs: int = 0
    suffix_execs: int = 0
    crashes_found: int = 0
    queue_size: int = 0
    #: (sim time, distinct edges) — sampled when coverage grows.
    coverage_series: List[Tuple[float, int]] = field(default_factory=list)
    #: (sim time, total execs) — sampled periodically.
    exec_series: List[Tuple[float, int]] = field(default_factory=list)
    #: dedup key -> sim time first seen.
    crash_times: Dict[str, float] = field(default_factory=dict)
    end_time: float = 0.0
    #: Executions stopped by the watchdog (per-exec budget exceeded).
    timeouts: int = 0
    #: Faults the injector fired (0 when no fault plan is active).
    faults_injected: int = 0
    #: Incremental snapshots rebuilt from the root after failing
    #: checksum validation on restore.
    snapshot_rebuilds: int = 0
    #: Whether the executor ended the campaign degraded to root-only
    #: execution (repeated snapshot corruption).
    degraded_root_only: bool = False
    #: Worker step() exceptions survived by the parallel supervisor.
    worker_failures: int = 0
    #: Corpus entries quarantined for repeatedly killing workers.
    quarantined_inputs: int = 0
    #: Ops removed from trimmed inputs by the static dead-op/marker
    #: pre-pass (one verification exec per input, not one per op).
    trim_ops_static: int = 0
    #: Ops removed from trimmed inputs by execution-driven packet
    #: dropping (one exec per candidate removal).
    trim_ops_exec: int = 0
    #: Reset-sanitizer digest checks performed (``--sanitize-resets``).
    sanitizer_checks: int = 0
    #: Reset leaks (NYX050/NYX051 findings) those checks reported.
    sanitizer_leaks: int = 0
    #: Coverage backend the campaign's tracer used ("settrace",
    #: "monitoring"; "" when tracing is off).  Host-side detail: lives
    #: outside :meth:`as_dict` so campaigns on different backends stay
    #: byte-comparable — that identity is the whole point.
    coverage_backend: str = ""
    #: --- host-side performance counters -----------------------------
    #: These describe how cheaply the host computed the campaign, never
    #: what the campaign computed, so they are excluded from
    #: :meth:`as_dict` (and hence from ``stats_checksum``): an elided
    #: and a fully-traced run of the same campaign must hash the same.
    #: Runs whose traced prefix was elided against a recording.
    prefix_elisions: int = 0
    #: Ops those elisions skipped tracing for.
    prefix_elided_ops: int = 0
    #: Wholesale recording-cache invalidations (snapshot heal/rebuild/
    #: degrade events).
    elision_invalidations: int = 0
    #: Entries evicted from the tracer's LRU fold memo.
    fold_memo_evictions: int = 0
    #: Checkpoints the durable layer persisted.
    checkpoints_written: int = 0
    #: Stale checkpoint epochs unlinked (and directory-fsync'd) away.
    checkpoint_epochs_pruned: int = 0
    #: Cross-process checkpoint verifications run
    #: (``--verify-checkpoints``, :mod:`repro.analysis.statediff`).
    checkpoint_verifications: int = 0
    #: NYX065/NYX066 findings those verifications reported (0 = every
    #: checkpoint restored to a divergence-free replica).
    checkpoint_divergences: int = 0
    #: --- overlay-chain telemetry (``--max-chain-depth`` > 1) ---------
    #: Reported next to, never inside, :meth:`as_dict`: a depth-1
    #: campaign must hash identically to a pre-chain build.  The chain
    #: *operations* do charge the sim clock (they are real snapshot
    #: work); only these counters stay out of the canonical view.
    #: Overlay snapshots stacked on the incremental base.
    chain_pushes: int = 0
    #: Overlays folded into their parent (depth-cap commits).
    chain_commits: int = 0
    #: Restores that targeted a chain node below the deepest.
    chain_restores: int = 0
    #: Deepest chain (base + overlays) the campaign ever held.
    chain_deepest: int = 0

    def record_coverage(self, now: float, edges: int) -> None:
        if not self.coverage_series or self.coverage_series[-1][1] != edges:
            self.coverage_series.append((now, edges))

    def record_execs(self, now: float) -> None:
        self.exec_series.append((now, self.execs))

    def record_crash(self, key: str, now: float) -> None:
        if key not in self.crash_times:
            self.crash_times[key] = now
            self.crashes_found += 1

    # -- derived metrics ----------------------------------------------------

    @property
    def final_edges(self) -> int:
        return self.coverage_series[-1][1] if self.coverage_series else 0

    def duration(self) -> float:
        """Elapsed sim time: ``end_time``, or — while the campaign is
        still running and ``end_time`` has not been stamped yet — the
        latest recorded sample time."""
        elapsed = self.end_time
        for series in (self.exec_series, self.coverage_series):
            if series:
                elapsed = max(elapsed, series[-1][0])
        if self.crash_times:
            elapsed = max(elapsed, max(self.crash_times.values()))
        return elapsed

    def execs_per_second(self) -> float:
        elapsed = self.duration()
        if elapsed <= 0:
            # Executions ran but no sim time elapsed anywhere (free
            # cost model): floor the window at one second instead of
            # dividing by zero or reporting a misleading 0.0.
            return float(self.execs)
        return self.execs / elapsed

    def edges_at(self, time: float) -> int:
        """Coverage at a given sim time (step function)."""
        edges = 0
        for t, e in self.coverage_series:
            if t > time:
                break
            edges = e
        return edges

    def execs_at(self, time: float) -> int:
        """Total executions at a given sim time (step function)."""
        execs = 0
        for t, e in self.exec_series:
            if t > time:
                break
            execs = e
        return execs

    def time_to_edges(self, edges: int) -> Optional[float]:
        """First sim time at which coverage reached ``edges``."""
        for t, e in self.coverage_series:
            if e >= edges:
                return t
        return None

    def summary(self) -> str:
        return ("%s on %s: %d execs (%.1f/s), %d edges, %d crashes, "
                "t=%.1fs" % (self.fuzzer_name, self.target_name, self.execs,
                             self.execs_per_second(), self.final_edges,
                             self.crashes_found, self.end_time))

    def as_dict(self) -> Dict[str, Any]:
        """Full JSON-serializable view (canonical under sort_keys)."""
        return {
            "fuzzer": self.fuzzer_name,
            "target": self.target_name,
            "execs": self.execs,
            "suffix_execs": self.suffix_execs,
            "crashes_found": self.crashes_found,
            "queue_size": self.queue_size,
            "end_time": self.end_time,
            "final_edges": self.final_edges,
            "coverage_series": [[t, e] for t, e in self.coverage_series],
            "exec_series": [[t, e] for t, e in self.exec_series],
            "crash_times": dict(sorted(self.crash_times.items())),
            "timeouts": self.timeouts,
            "faults_injected": self.faults_injected,
            "snapshot_rebuilds": self.snapshot_rebuilds,
            "degraded_root_only": self.degraded_root_only,
            "worker_failures": self.worker_failures,
            "quarantined_inputs": self.quarantined_inputs,
            "trim_ops_static": self.trim_ops_static,
            "trim_ops_exec": self.trim_ops_exec,
            "sanitizer_checks": self.sanitizer_checks,
            "sanitizer_leaks": self.sanitizer_leaks,
        }

    def host_counters(self) -> Dict[str, Any]:
        """Host-side performance counters, reported next to (never
        inside) the canonical :meth:`as_dict` view."""
        return {
            "coverage_backend": self.coverage_backend,
            "prefix_elisions": self.prefix_elisions,
            "prefix_elided_ops": self.prefix_elided_ops,
            "elision_invalidations": self.elision_invalidations,
            "fold_memo_evictions": self.fold_memo_evictions,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_epochs_pruned": self.checkpoint_epochs_pruned,
            "checkpoint_verifications": self.checkpoint_verifications,
            "checkpoint_divergences": self.checkpoint_divergences,
            "chain_pushes": self.chain_pushes,
            "chain_commits": self.chain_commits,
            "chain_restores": self.chain_restores,
            "chain_deepest": self.chain_deepest,
        }

    # -- multi-worker rollup ------------------------------------------------

    @classmethod
    def merge(cls, parts: Sequence["CampaignStats"],
              fuzzer_name: Optional[str] = None,
              target_name: Optional[str] = None,
              coverage_series: Optional[List[Tuple[float, int]]] = None,
              ) -> "CampaignStats":
        """Roll several workers' stats into one campaign-level view.

        Counters sum; crash times keep the earliest discovery of each
        dedup key; the exec series sums the workers' step functions on
        the union of their timestamps.  ``coverage_series`` should be
        the campaign's merged-bitmap series; without one, the max
        envelope of the per-worker series is used (a lower bound on
        union coverage, since workers overlap).
        """
        merged = cls(
            fuzzer_name=fuzzer_name or (parts[0].fuzzer_name if parts else
                                        "nyx-net"),
            target_name=target_name or (parts[0].target_name if parts else ""))
        for part in parts:
            merged.execs += part.execs
            merged.suffix_execs += part.suffix_execs
            merged.queue_size += part.queue_size
            merged.end_time = max(merged.end_time, part.end_time)
            merged.timeouts += part.timeouts
            merged.faults_injected += part.faults_injected
            merged.snapshot_rebuilds += part.snapshot_rebuilds
            merged.degraded_root_only |= part.degraded_root_only
            merged.worker_failures += part.worker_failures
            merged.quarantined_inputs += part.quarantined_inputs
            merged.trim_ops_static += part.trim_ops_static
            merged.trim_ops_exec += part.trim_ops_exec
            merged.sanitizer_checks += part.sanitizer_checks
            merged.sanitizer_leaks += part.sanitizer_leaks
            merged.prefix_elisions += part.prefix_elisions
            merged.prefix_elided_ops += part.prefix_elided_ops
            merged.elision_invalidations += part.elision_invalidations
            merged.fold_memo_evictions += part.fold_memo_evictions
            merged.checkpoints_written += part.checkpoints_written
            merged.checkpoint_epochs_pruned += part.checkpoint_epochs_pruned
            merged.checkpoint_verifications += part.checkpoint_verifications
            merged.checkpoint_divergences += part.checkpoint_divergences
            merged.chain_pushes += part.chain_pushes
            merged.chain_commits += part.chain_commits
            merged.chain_restores += part.chain_restores
            merged.chain_deepest = max(merged.chain_deepest,
                                       part.chain_deepest)
            if part.coverage_backend and not merged.coverage_backend:
                merged.coverage_backend = part.coverage_backend
            for key, when in part.crash_times.items():
                if key not in merged.crash_times or when < merged.crash_times[key]:
                    merged.crash_times[key] = when
        merged.crashes_found = len(merged.crash_times)

        exec_times = sorted({t for part in parts for t, _ in part.exec_series})
        for t in exec_times:
            merged.exec_series.append(
                (t, sum(part.execs_at(t) for part in parts)))

        if coverage_series is not None:
            merged.coverage_series = list(coverage_series)
        else:
            cov_times = sorted({t for part in parts
                                for t, _ in part.coverage_series})
            for t in cov_times:
                edges = max((part.edges_at(t) for part in parts), default=0)
                if (not merged.coverage_series
                        or merged.coverage_series[-1][1] != edges):
                    merged.coverage_series.append((t, edges))
        return merged


@dataclass
class AggregateStats:
    """Campaign-level rollup of a parallel fuzzing run.

    Holds the merged view plus the per-worker breakdown, so both the
    §6 scalability claims (aggregate execs/s vs. one worker) and the
    per-worker series remain inspectable.
    """

    merged: CampaignStats
    workers: List[CampaignStats] = field(default_factory=list)

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def total_execs(self) -> int:
        return self.merged.execs

    @property
    def final_edges(self) -> int:
        return self.merged.final_edges

    @property
    def crashes_found(self) -> int:
        return self.merged.crashes_found

    def execs_per_second(self) -> float:
        """Aggregate throughput: total execs over the *wall* (max
        worker) sim time — workers run concurrently, so their clocks
        overlap rather than add."""
        elapsed = max((w.duration() for w in self.workers), default=0.0)
        elapsed = max(elapsed, self.merged.duration())
        if elapsed <= 0:
            return float(self.merged.execs)
        return self.merged.execs / elapsed

    def as_dict(self) -> Dict[str, Any]:
        return {
            "num_workers": self.num_workers,
            "merged": self.merged.as_dict(),
            "workers": [w.as_dict() for w in self.workers],
        }

    def to_json(self) -> str:
        """Canonical serialization — byte-identical for identical
        campaigns, which the determinism tests rely on."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    def summary(self) -> str:
        return ("%s on %s: %d workers, %d execs (%.1f/s aggregate), "
                "%d edges, %d crashes, t=%.1fs"
                % (self.merged.fuzzer_name, self.merged.target_name,
                   self.num_workers, self.merged.execs,
                   self.execs_per_second(), self.final_edges,
                   self.crashes_found, self.merged.end_time))
