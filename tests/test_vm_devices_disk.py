"""Unit tests for emulated devices, the disk and the simulated clock."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel, DEFAULT_COSTS
from repro.sim.rng import DeterministicRandom
from repro.vm.devices import DeviceBoard
from repro.vm.disk import SECTOR_SIZE, DiskError, EmulatedDisk


class TestSimClock:
    def test_monotonic_charge(self):
        clock = SimClock()
        clock.charge(1.5)
        clock.charge(0.5)
        assert clock.now == 2.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1)

    def test_reset(self):
        clock = SimClock(5.0)
        clock.reset()
        assert clock.now == 0.0


class TestCostModel:
    def test_emulated_path_cheaper(self):
        costs = CostModel()
        assert costs.packet_cost(1000, emulated=True) < \
            costs.packet_cost(1000, emulated=False)
        assert costs.connect_cost(True) < costs.connect_cost(False)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.net_packet = 0.0

    def test_paper_ratio_aflnet_vs_nyx(self):
        """AFLNet's per-packet path must be orders slower than the
        emulated one — the root of Table 3's gap."""
        costs = CostModel()
        aflnet_packet = costs.aflnet_packet_delay + costs.packet_cost(
            100, emulated=False)
        nyx_packet = costs.packet_cost(100, emulated=True)
        assert aflnet_packet / nyx_packet > 1000


class TestDeterministicRandom:
    def test_reproducible(self):
        a, b = DeterministicRandom(9), DeterministicRandom(9)
        assert [a.randrange(100) for _ in range(20)] == \
            [b.randrange(100) for _ in range(20)]

    def test_chance_extremes(self):
        rng = DeterministicRandom(0)
        assert not rng.chance(0.0)
        assert rng.chance(1.0)

    def test_pick_empty_raises(self):
        with pytest.raises(IndexError):
            DeterministicRandom(0).pick([])

    def test_biased_index_favors_end(self):
        rng = DeterministicRandom(1)
        picks = [rng.biased_index(10) for _ in range(500)]
        assert sum(picks) / len(picks) > 5.0

    def test_some_bytes_length(self):
        assert len(DeterministicRandom(2).some_bytes(17)) == 17

    def test_shuffled_does_not_mutate(self):
        rng = DeterministicRandom(3)
        original = [1, 2, 3, 4]
        rng.shuffled(original)
        assert original == [1, 2, 3, 4]


class TestDeviceBoard:
    def test_fast_capture_restore(self):
        board = DeviceBoard()
        board.nic.on_rx(100)
        board.timer.tick()
        board.serial.write(b"boot ok")
        state = board.capture_fast()
        board.nic.on_rx(50)
        board.timer.tick()
        board.restore_fast(state)
        assert board.nic.rx_packets == 1
        assert board.timer.ticks == 1
        assert board.serial.bytes_written == 7

    def test_slow_path_equivalent(self):
        board = DeviceBoard()
        board.rtc.advance(1234)
        blob = board.capture_slow()
        board.rtc.advance(9999)
        board.restore_slow(blob)
        assert board.rtc.epoch_us == 1_600_000_000_000_000 + 1234

    def test_timer_disarm(self):
        board = DeviceBoard()
        board.timer.armed = False
        board.timer.tick()
        assert board.timer.ticks == 0

    def test_capture_is_deep_for_serial(self):
        board = DeviceBoard()
        board.serial.write(b"a")
        state = board.capture_fast()
        board.serial.write(b"b")
        board.restore_fast(state)
        assert board.serial.tx_buffer == [b"a"]


class TestEmulatedDisk:
    def test_sector_roundtrip(self):
        disk = EmulatedDisk(16)
        disk.write_sector(3, b"q" * SECTOR_SIZE)
        assert disk.read_sector(3) == b"q" * SECTOR_SIZE
        assert disk.read_sector(4) == bytes(SECTOR_SIZE)

    def test_byte_granular_io(self):
        disk = EmulatedDisk(16)
        disk.write(100, b"hello across sectors" * 40)
        assert disk.read(100, 20) == b"hello across sectors"

    def test_out_of_bounds(self):
        disk = EmulatedDisk(2)
        with pytest.raises(DiskError):
            disk.read(2 * SECTOR_SIZE, 1)
        with pytest.raises((DiskError, Exception)):
            disk.write_sector(5, b"x" * SECTOR_SIZE)

    def test_wrong_sector_size_rejected(self):
        disk = EmulatedDisk(4)
        with pytest.raises(ValueError):
            disk.write_sector(0, b"short")

    def test_dirty_tracking(self):
        disk = EmulatedDisk(16)
        disk.write_sector(1, b"a" * SECTOR_SIZE)
        disk.write_sector(1, b"b" * SECTOR_SIZE)
        disk.write_sector(5, b"c" * SECTOR_SIZE)
        assert disk.take_dirty() == [1, 5]
        assert disk.dirty_count == 0

    def test_overlay_restore_with_root_fallback(self):
        base = {0: b"B" * SECTOR_SIZE}
        disk = EmulatedDisk(8, base_image=base)
        disk.write_sector(0, b"L" * SECTOR_SIZE)
        disk.write_sector(1, b"M" * SECTOR_SIZE)
        overlay = disk.capture_overlay()
        disk.write_sector(0, b"X" * SECTOR_SIZE)
        disk.write_sector(2, b"Y" * SECTOR_SIZE)
        disk.restore_overlay(overlay, [0, 2])
        assert disk.read_sector(0) == b"L" * SECTOR_SIZE  # overlay
        assert disk.read_sector(2) == bytes(SECTOR_SIZE)  # root fallback
        assert disk.read_sector(1) == b"M" * SECTOR_SIZE  # untouched

    @given(st.dictionaries(st.integers(0, 15),
                           st.binary(min_size=SECTOR_SIZE,
                                     max_size=SECTOR_SIZE), max_size=8))
    @settings(max_examples=40)
    def test_overlay_roundtrip_property(self, writes):
        disk = EmulatedDisk(16)
        for sector, data in writes.items():
            disk.write_sector(sector, data)
        overlay = disk.capture_overlay()
        dirty = disk.take_dirty()
        for sector in writes:
            disk.write_sector(sector, bytes(SECTOR_SIZE))
        disk.restore_overlay(overlay, disk.take_dirty())
        for sector, data in writes.items():
            assert disk.read_sector(sector) == data
