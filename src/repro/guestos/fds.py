"""Per-process file-descriptor tables.

File descriptors map to *descriptions* that reference kernel objects by
id (socket ids, file handles, epoll ids, pipe ids).  ``dup()``/``fork``
duplicate the descriptor entries and bump the underlying object's
refcount — the paper's interceptor hooks these exact calls "to keep
track of aliasing file descriptors that are related to the targeted
network connection" (§4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.guestos.errors import Errno, GuestError

#: Per-process descriptor limit (RLIMIT_NOFILE analogue).
MAX_FDS = 256


class FdKind(enum.Enum):
    SOCKET = "socket"
    FILE = "file"
    EPOLL = "epoll"
    PIPE_R = "pipe_r"
    PIPE_W = "pipe_w"


@dataclass
class FdEntry:  # nyx: state[memory]
    """One open file description as seen by a process."""

    kind: FdKind
    obj_id: int
    #: File offset, for FILE descriptors.
    offset: int = 0
    flags: int = 0


@dataclass
class FdTable:  # nyx: state[memory]
    """A process's descriptor table (fds 0..2 reserved for stdio)."""

    entries: Dict[int, FdEntry] = field(default_factory=dict)
    next_fd: int = 3

    def install(self, entry: FdEntry) -> int:
        """Assign the lowest free fd ≥ next hint to ``entry``."""
        if len(self.entries) >= MAX_FDS:
            raise GuestError(Errno.EMFILE, "fd table full")
        fd = self.next_fd
        while fd in self.entries:
            fd += 1
        self.entries[fd] = entry
        self.next_fd = fd + 1
        return fd

    def install_at(self, fd: int, entry: FdEntry) -> int:
        """Place ``entry`` at a specific fd (dup2 target)."""
        if fd < 0 or fd >= MAX_FDS:
            raise GuestError(Errno.EBADF, "fd %d out of range" % fd)
        self.entries[fd] = entry
        return fd

    def get(self, fd: int) -> FdEntry:
        entry = self.entries.get(fd)
        if entry is None:
            raise GuestError(Errno.EBADF, "fd %d is not open" % fd)
        return entry

    def remove(self, fd: int) -> FdEntry:
        entry = self.entries.pop(fd, None)
        if entry is None:
            raise GuestError(Errno.EBADF, "fd %d is not open" % fd)
        if fd < self.next_fd:
            self.next_fd = max(fd, 3)
        return entry

    def clone(self) -> "FdTable":
        """Deep copy for fork(); entries are copied, ids shared."""
        return FdTable(
            entries={fd: FdEntry(e.kind, e.obj_id, e.offset, e.flags)
                     for fd, e in self.entries.items()},
            next_fd=self.next_fd,
        )

    def fds_for(self, kind: FdKind, obj_id: int) -> list:
        """All fds referencing a given kernel object."""
        return [fd for fd, e in self.entries.items()
                if e.kind is kind and e.obj_id == obj_id]

    def __len__(self) -> int:
        return len(self.entries)
