"""Target framework: profiles and the message-server base class.

A :class:`TargetProfile` is everything the harness needs to fuzz one
target: how to build the guest program, where its attack surface is,
how to produce seed inputs, protocol dictionary tokens and dissector.

:class:`MessageServer` factors the event-loop boilerplate out of the
protocol targets: accepting surface connections, per-connection
session state, the recv loop, and the memory-corruption model used by
the planted bugs (including the ASAN-dependent behaviour the paper
observed on dcmtk).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashKind, Errno, GuestCrash, GuestError
from repro.guestos.process import Program
from repro.guestos.sockets import SockDomain, SockType


@dataclass
class TargetProfile:
    """Everything needed to set up a fuzzing campaign for one target."""

    name: str
    protocol: str
    make_program: Callable[..., Program]
    surface_factory: Callable[[], AttackSurface]
    seed_factory: Callable[[], List[FuzzInput]]
    dictionary: Sequence[bytes] = ()
    #: Simulated startup cost (init, config parsing, key generation).
    startup_cost: float = 0.05
    #: Whether AFL++ + libpreeny's desock can run this target at all
    #: (Table 2/3: most targets are "n/a").
    libpreeny_compatible: bool = False
    #: Ids of the planted bugs (for the crash-matrix experiment).
    planted_bugs: Sequence[str] = ()
    notes: str = ""

    def surface(self) -> AttackSurface:
        return self.surface_factory()

    def seeds(self) -> List[FuzzInput]:
        return self.seed_factory()


class ConnCtx:
    """Per-connection session state (picklable)."""

    def __init__(self, fd: int) -> None:
        self.fd = fd
        self.buffer = b""
        self.state = "new"
        self.vars: Dict[str, object] = {}
        self.messages_handled = 0


class MessageServer(Program):
    """Base class for single-process protocol servers.

    Subclasses implement :meth:`handle_message` (one logical inbound
    packet on one connection) and may override :meth:`on_boot` for
    additional startup work.  The base takes care of listening on the
    surface address, accepting connections, reading with preserved
    packet boundaries and closing finished sessions.
    """

    name = "message-server"
    port: int = 9999
    sock_type: SockType = SockType.STREAM
    domain: SockDomain = SockDomain.INET
    #: Simulated CPU seconds charged at startup.
    startup_cost: float = 0.05
    #: Per-byte parse cost multiplier (heavier protocols override).
    parse_cost: float = 2e-9
    #: Run with AddressSanitizer semantics (see memory_corruption).
    asan: bool = True

    def __init__(self) -> None:
        self.listen_fd: Optional[int] = None
        self.conns: Dict[int, ConnCtx] = {}
        #: Modelled heap corruption accumulator (non-ASAN mode).
        self.heap_corruption = 0
        #: How much corruption the initial heap layout tolerates; set
        #: by the harness per run to model layout-dependent crashes.
        self.heap_slack = 3

    # -- overridables -----------------------------------------------------

    def on_boot(self, api) -> None:
        """Extra startup work (load config, spool, keys)."""

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        """Process one inbound packet on one connection."""
        raise NotImplementedError

    def on_disconnect(self, api, conn: ConnCtx) -> None:
        """Peer closed the connection."""

    def wants_data(self, conn: ConnCtx) -> bool:
        """Whether the server still reads from this connection.

        Targets that stop consuming input (a dead game, a rejected
        session) override this; unread packets then count as not
        consumed, which snapshot placement relies on.
        """
        return True

    # -- plumbing ---------------------------------------------------------------

    def on_start(self, api) -> None:
        api.cpu(self.startup_cost)
        self.on_boot(api)
        self.listen_fd = api.socket(self.domain, self.sock_type)
        api.bind(self.listen_fd, self.port)
        if self.sock_type is SockType.STREAM:
            api.listen(self.listen_fd, backlog=16)

    def poll(self, api) -> None:
        if self.listen_fd is None:
            return
        if self.sock_type is SockType.STREAM:
            self._accept_new(api)
        else:
            self._poll_dgram(api)
        for fd in list(self.conns):
            self._service_conn(api, fd)

    def _accept_new(self, api) -> None:
        while True:
            try:
                fd = api.accept(self.listen_fd)
            except GuestError as err:
                if err.errno is Errno.EAGAIN:
                    return
                raise
            self.conns[fd] = ConnCtx(fd)

    def _poll_dgram(self, api) -> None:
        ctx = self.conns.get(self.listen_fd)
        if ctx is None:
            ctx = self.conns[self.listen_fd] = ConnCtx(self.listen_fd)
        while True:
            try:
                data, _source = api.recvfrom(self.listen_fd)
            except GuestError as err:
                if err.errno is Errno.EAGAIN:
                    return
                raise
            if not data:
                return
            self._dispatch(api, ctx, data)

    def _service_conn(self, api, fd: int) -> None:
        ctx = self.conns.get(fd)
        if ctx is None or fd == self.listen_fd:
            return
        while self.wants_data(ctx):
            try:
                data = api.recv(fd)
            except GuestError as err:
                if err.errno is Errno.EAGAIN:
                    return
                if err.errno in (Errno.EBADF, Errno.ECONNRESET):
                    self.conns.pop(fd, None)
                    return
                raise
            if data == b"":
                self.on_disconnect(api, ctx)
                try:
                    api.close(fd)
                except GuestError:
                    pass
                self.conns.pop(fd, None)
                return
            self._dispatch(api, ctx, data)

    def _dispatch(self, api, ctx: ConnCtx, data: bytes) -> None:
        # Fixed per-message handling cost (dispatch, logging, session
        # lookup) plus per-byte parsing: calibrated so Nyx-Net lands in
        # Table 3's hundreds-to-thousands execs/s band.
        api.cpu(self.parse_cost * len(data) + 4e-5)
        ctx.messages_handled += 1
        self.handle_message(api, ctx, data)

    # -- reply / crash helpers ------------------------------------------------

    def reply(self, api, ctx: ConnCtx, data: bytes) -> None:
        """Best-effort response on the connection."""
        try:
            api.send(ctx.fd, data)
        except GuestError:
            pass

    def crash(self, kind: CrashKind, bug_id: str, detail: str = "") -> None:
        """Trigger a planted deterministic bug."""
        raise GuestCrash(kind, bug_id, detail)

    def memory_corruption(self, bug_id: str, severity: int = 1,
                          kind: CrashKind = CrashKind.ASAN_HEAP_OVERFLOW) -> None:
        """Trigger a planted *corruption* bug.

        Under ASAN the violation is caught at the first bad access.
        Without ASAN, corruption accumulates silently and only crashes
        once it exceeds what the initial heap layout absorbs — the
        dcmtk behaviour from Table 1 ("Nyx-Net does not build up memory
        corruption state until it crashes [without snapshots the
        accumulation is reset each test]").
        """
        if self.asan:
            raise GuestCrash(kind, bug_id, "asan-detected")
        self.heap_corruption += severity
        if self.heap_corruption > self.heap_slack:
            raise GuestCrash(CrashKind.SEGV, bug_id, "delayed corruption")
