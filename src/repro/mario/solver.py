"""Time-to-solve harness for the Super Mario experiment (Table 4).

Four configurations, as in the paper:

* ``ijon`` — AFL + IJON state feedback: no snapshots, the game process
  is restarted and the whole input replayed for every execution;
* ``nyx-none`` / ``nyx-balanced`` / ``nyx-aggressive`` — Nyx-Net with
  the three snapshot placement policies.

All four share the executor, mutation engine and IJON max-x feedback;
they differ exactly where the paper's systems differ: reset mechanism
cost and incremental-snapshot use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fuzz.campaign import build_campaign
from repro.fuzz.fuzzer import NyxNetFuzzer
from repro.mario.target import mario_profile

#: Simulated cost of IJON's per-exec reset: kill + re-exec the game
#: process and fast-forward it to the level (no snapshot available).
IJON_RESTART_COST = 2.5e-2

MODES = ("ijon", "nyx-none", "nyx-balanced", "nyx-aggressive")


@dataclass
class SolveResult:
    """Outcome of one solve attempt."""

    level: str
    mode: str
    solved: bool
    time_to_solve: Optional[float]  # simulated seconds
    execs: int
    frames_of_best: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = ("%.1fs" % self.time_to_solve) if self.solved else "unsolved"
        return "SolveResult(%s, %s: %s in %d execs)" % (
            self.level, self.mode, status, self.execs)


def solve_level(level: str, mode: str, seed: int = 0,
                time_budget: float = 36000.0,
                max_execs: Optional[int] = 30000) -> SolveResult:
    """Fuzz one level until solved (or the budget runs out)."""
    if mode not in MODES:
        raise ValueError("mode must be one of %s" % (MODES,))
    profile = mario_profile(level)
    policy = mode.split("-", 1)[1] if mode.startswith("nyx-") else "none"
    handles = build_campaign(profile, policy=policy, seed=seed,
                             time_budget=time_budget, max_execs=max_execs)
    fuzzer: NyxNetFuzzer = handles.fuzzer
    fuzzer.config.stop_on_first_crash = True
    if mode == "ijon":
        fuzzer.config.per_exec_surcharge = IJON_RESTART_COST
        fuzzer.stats.fuzzer_name = "ijon"
    stats = fuzzer.run_campaign()
    solve_key = "solved:mario-%s" % level
    solved = solve_key in stats.crash_times
    frames = None
    if solved:
        record = fuzzer.crashes.records[solve_key]
        detail = record.report.detail
        if "in " in detail:
            try:
                frames = int(detail.split("in ", 1)[1].split()[0])
            except ValueError:
                frames = None
    return SolveResult(
        level=level,
        mode=mode,
        solved=solved,
        time_to_solve=stats.crash_times.get(solve_key),
        execs=stats.execs,
        frames_of_best=frames,
    )


def speedrun_seconds(level: str) -> float:
    """Wall-clock seconds a flawless 60 FPS playthrough needs.

    The "faster than light" comparison of §5.3: a perfect player
    crossing the level at full run speed.
    """
    from repro.mario.engine import MAX_RUN
    from repro.mario.levels import load_level
    lvl = load_level(level)
    return (lvl.flag_x / MAX_RUN) / 60.0
