"""Coverage feedback: AFL-style bitmaps over a Python edge tracer.

The paper's prototype supports Intel PT and AFL's compile-time
instrumentation (§4.5); our substitute traces the *actual Python code*
of the guest targets with :mod:`sys.settrace` and folds (prev, cur)
line transitions into a classic 64 KiB AFL hit-count bitmap with the
standard bucketing semantics.
"""

from repro.coverage.bitmap import (MAP_SIZE, classify_counts, count_bits,
                                   CoverageMap)
from repro.coverage.tracer import EdgeTracer

__all__ = ["MAP_SIZE", "classify_counts", "count_bits", "CoverageMap",
           "EdgeTracer"]
