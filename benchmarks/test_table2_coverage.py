"""Table 2: median branch coverage found by each fuzzer vs AFLNet.

Paper shape to reproduce: Nyx-Net variants above AFLNet on almost all
targets (up to +70% on proftpd, +46% on kamailio), AFLNET-no-state ≈
AFLNET, AFLNwe below on stateful targets, AFL++ + desock far below or
n/a on most.
"""

from __future__ import annotations

from repro.bench.profuzzbench import run_matrix
from repro.bench.reporting import coverage_table, median_final_coverage
from repro.targets import PROFUZZBENCH


def test_table2_coverage(benchmark, bench_config, save_artifact):
    matrix = benchmark.pedantic(
        lambda: run_matrix(config=bench_config, progress=True),
        rounds=1, iterations=1)
    save_artifact("table2_coverage.txt", coverage_table(matrix))

    # Shape assertions (the paper's headline claims).
    nyx_wins = 0
    comparable = 0
    for target in PROFUZZBENCH:
        aflnet = median_final_coverage(matrix, "aflnet", target)
        best_nyx = max(
            median_final_coverage(matrix, fuzzer, target)
            for fuzzer in ("nyx-none", "nyx-balanced", "nyx-aggressive"))
        if aflnet > 0:
            comparable += 1
            if best_nyx >= aflnet * 0.98:  # wins or statistical tie
                nyx_wins += 1
    # "Nyx-Net is outperforming AFLNet on all but two targets."
    assert comparable == len(PROFUZZBENCH)
    assert nyx_wins >= comparable - 3, (
        "Nyx-Net should match or beat AFLNet on nearly every target "
        "(won %d of %d)" % (nyx_wins, comparable))
