"""Protocol tests for the binary-format targets (dnsmasq, tinydtls,
dcmtk, openssl, openssh)."""

import struct

import pytest

from repro.guestos.errors import CrashKind
from repro.targets.dcmtk import (PROFILE as DCMTK, _assoc_rq, _pdata,
                                 _release)
from repro.targets.dnsmasq import PROFILE as DNSMASQ, QTYPE_A, QTYPE_ANY, _query
from repro.targets.openssh import (PROFILE as OPENSSH, _kexinit_bytes,
                                   _packet_bytes, _pack_string,
                                   MSG_KEXDH_INIT, MSG_NEWKEYS,
                                   MSG_SERVICE_REQUEST, MSG_USERAUTH_REQUEST)
from repro.targets.openssl import PROFILE as OPENSSL, _client_hello_bytes
from repro.targets.tinydtls import (PROFILE as TINYDTLS, _client_hello,
                                    _hs_record, HS_CLIENT_KEY_EXCHANGE)

from tests.target_harness import TargetHarness


class TestDnsmasq:
    @pytest.fixture()
    def dns(self):
        return TargetHarness(DNSMASQ)

    def test_a_record_answered(self, dns):
        responses = dns.send(_query(7, b"router.lan", QTYPE_A))
        assert len(responses) == 1
        txid, flags, qd, an, _ns, _ar = struct.unpack_from(
            ">HHHHHH", responses[0], 0)
        assert txid == 7
        assert flags & 0x8000        # response bit
        assert an == 1

    def test_nxdomain_for_unknown(self, dns):
        responses = dns.send(_query(9, b"nowhere.example", QTYPE_A))
        flags = struct.unpack_from(">HHHHHH", responses[0], 0)[1]
        assert flags & 0x000F == 3   # NXDOMAIN

    def test_short_datagram_dropped(self, dns):
        assert dns.send(b"\x01\x02\x03") == []

    def test_formerr_on_zero_questions(self, dns):
        packet = struct.pack(">HHHHHH", 1, 0x0100, 0, 0, 0, 0)
        responses = dns.send(packet)
        assert struct.unpack_from(">HHHHHH", responses[0], 0)[1] & 0xF == 1

    def test_pointer_loop_with_any_crashes(self, dns):
        # name = pointer to itself, qtype ANY: the Table 1 bug.
        evil = struct.pack(">HHHHHH", 2, 0x0100, 1, 0, 0, 0) \
            + b"\xc0\x0c" + struct.pack(">HH", QTYPE_ANY, 1)
        dns.send(evil)
        report = dns.crash()
        assert report is not None and report.kind is CrashKind.NULL_DEREF

    def test_pointer_loop_with_a_is_survivable(self, dns):
        evil = struct.pack(">HHHHHH", 2, 0x0100, 1, 0, 0, 0) \
            + b"\xc0\x0c" + struct.pack(">HH", QTYPE_A, 1)
        dns.send(evil)
        assert dns.crash() is None


class TestTinyDtls:
    @pytest.fixture()
    def dtls(self):
        return TargetHarness(TINYDTLS)

    def test_cookie_exchange(self, dtls):
        responses = dtls.send(_client_hello())
        assert responses and responses[0][13] == 3  # HelloVerifyRequest

    def test_hello_with_cookie_advances(self, dtls):
        cookie = struct.pack(">H", 0x5EED)
        responses = dtls.send(_client_hello(), _client_hello(cookie))
        assert any(r[13] == 2 for r in responses)   # ServerHello

    def test_bad_version_ignored(self, dtls):
        record = bytearray(_client_hello())
        record[1:3] = b"\x01\x01"
        assert dtls.send(bytes(record)) == []

    def test_fragment_oob_crash(self, dtls):
        evil = _hs_record(HS_CLIENT_KEY_EXCHANGE, b"xy", frag_len=4000)
        dtls.send(evil)
        report = dtls.crash()
        assert report is not None
        assert report.kind is CrashKind.ASAN_OOB_READ

    def test_benign_fragment_mismatch_dropped(self, dtls):
        # frag_len smaller than the body: dropped without crash.
        evil = _hs_record(HS_CLIENT_KEY_EXCHANGE, b"0123456789", frag_len=4)
        dtls.send(evil)
        assert dtls.crash() is None


class TestDcmtk:
    @pytest.fixture()
    def dicom(self):
        return TargetHarness(DCMTK)

    def test_associate_accept(self, dicom):
        responses = dicom.send(_assoc_rq())
        assert responses and responses[0][0] == 0x02  # A-ASSOCIATE-AC

    def test_echo_roundtrip(self, dicom):
        echo = struct.pack("<H", 0x0030) + bytes(10)
        responses = dicom.send(_assoc_rq(), _pdata(echo), _release())
        assert any(r[0] == 0x04 for r in responses)   # P-DATA response
        assert any(r[0] == 0x06 for r in responses)   # release rp

    def test_reject_short_associate(self, dicom):
        short = struct.pack(">BBI", 0x01, 0, 10) + bytes(10)
        responses = dicom.send(short)
        assert responses[0][0] == 0x03                # A-ASSOCIATE-RJ

    def test_pdata_before_associate_aborts(self, dicom):
        responses = dicom.send(_pdata(b"xx"))
        assert responses[0][0] == 0x07                # A-ABORT

    def test_userinfo_overflow_asan(self, dicom):
        evil = _assoc_rq(user_info=b"\x51\x00\x40\x00")  # sub_len 0x4000
        dicom.send(evil)
        report = dicom.crash()
        assert report is not None
        assert report.kind is CrashKind.ASAN_HEAP_OVERFLOW

    def test_userinfo_overflow_without_asan_accumulates(self):
        dicom = TargetHarness(DCMTK, asan=False)
        dicom.program.heap_slack = 3
        evil = _assoc_rq(user_info=b"\x51\x00\x40\x00")
        dicom.send(evil)
        assert dicom.crash() is None      # first hit absorbed by slack
        dicom.send(evil)
        report = dicom.crash()            # accumulation crosses slack
        assert report is not None and report.kind is CrashKind.SEGV


class TestOpenssl:
    @pytest.fixture()
    def tls(self):
        return TargetHarness(OPENSSL)

    def test_client_hello_gets_server_flight(self, tls):
        responses = tls.send(_client_hello_bytes())
        joined = b"".join(responses)
        assert joined[0] == 22                        # handshake records
        assert len(responses) >= 3                    # SH + cert + done

    def test_no_common_cipher_alerts(self, tls):
        responses = tls.send(_client_hello_bytes(suites=(0x9999,)))
        assert responses[0][0] == 21                  # alert
        assert responses[0][6] == 40                  # handshake_failure

    def test_oversized_record_alerts(self, tls):
        evil = bytes([22]) + b"\x03\x03" + struct.pack(">H", 20000)
        responses = tls.send(evil + bytes(60))
        assert responses == [] or responses[0][0] == 21

    def test_ccs_out_of_order_alerts(self, tls):
        ccs = bytes([20]) + b"\x03\x03\x00\x01\x01"
        responses = tls.send(ccs)
        assert responses[0][0] == 21
        assert responses[0][6] == 10                  # unexpected_message


class TestOpenssh:
    @pytest.fixture()
    def ssh(self):
        return TargetHarness(OPENSSH)

    def test_banner_exchange(self, ssh):
        responses = ssh.send(b"SSH-2.0-client\r\n")
        assert responses[0].startswith(b"SSH-2.0-OpenSSH")

    def test_bad_banner_disconnects(self, ssh):
        responses = ssh.send(b"HELLO WORLD\r\n")
        # Server banner then a DISCONNECT packet.
        assert len(responses) == 2

    def test_full_preauth_handshake(self, ssh):
        auth = _packet_bytes(bytes([MSG_USERAUTH_REQUEST])
                             + _pack_string(b"repro")
                             + _pack_string(b"ssh-connection")
                             + _pack_string(b"password") + b"\x00"
                             + _pack_string(b"hunter2"))
        responses = ssh.send(
            b"SSH-2.0-client\r\n", _kexinit_bytes(),
            _packet_bytes(bytes([MSG_KEXDH_INIT]) + bytes(32)),
            _packet_bytes(bytes([MSG_NEWKEYS])),
            _packet_bytes(bytes([MSG_SERVICE_REQUEST])
                          + _pack_string(b"ssh-userauth")),
            auth)
        # 52 = SSH_MSG_USERAUTH_SUCCESS in the last payload.
        assert any(r[5] == 52 for r in responses if len(r) > 5)

    def test_kex_out_of_order_disconnects(self, ssh):
        responses = ssh.send(
            b"SSH-2.0-client\r\n",
            _packet_bytes(bytes([MSG_KEXDH_INIT]) + bytes(32)))
        assert any(r[5] == 1 for r in responses if len(r) > 5)  # DISCONNECT

    def test_oversized_packet_drops_connection(self, ssh):
        evil = struct.pack(">I", 100000) + bytes(64)
        ssh.send(b"SSH-2.0-client\r\n", evil)
        assert ssh.crash() is None
