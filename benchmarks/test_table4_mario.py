"""Table 4: time to solve Super Mario levels.

Paper shape: IJON slowest on every level; Nyx-Net-none a modest
speedup; aggressive the fastest on most levels (up to ~30x); level
2-1 unsolvable without the wall-jump glitch (IJON never solves it,
Nyx-Net sometimes does).

The level list is scaled down by default (REPRO_MARIO_LEVELS to
extend); times are medians over REPRO_MARIO_RUNS attempts, matching
the paper's median-of-three.
"""

from __future__ import annotations

import os
import statistics

from repro.bench.reporting import format_table
from repro.mario.solver import MODES, solve_level


def _levels():
    raw = os.environ.get("REPRO_MARIO_LEVELS", "1-1,1-2,4-4")
    return [level.strip() for level in raw.split(",") if level.strip()]


def _runs():
    return int(os.environ.get("REPRO_MARIO_RUNS", "3"))


def _cap():
    return int(os.environ.get("REPRO_MARIO_EXECS", "6000"))


def _fmt(seconds):
    if seconds is None:
        return "-"
    minutes, secs = divmod(int(seconds), 60)
    hours, minutes = divmod(minutes, 60)
    return "%02d:%02d:%02d" % (hours, minutes, secs)


def test_table4_mario_time_to_solve(benchmark, save_artifact):
    def run_experiment():
        table = {}
        for level in _levels():
            for mode in MODES:
                times = []
                solved = 0
                for seed in range(_runs()):
                    result = solve_level(level, mode, seed=seed,
                                         max_execs=_cap())
                    if result.solved:
                        solved += 1
                        times.append(result.time_to_solve)
                table[(level, mode)] = (
                    statistics.median(times) if times else None, solved)
        return table

    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    headers = ["level"] + list(MODES)
    rows = []
    for level in _levels():
        row = [level]
        for mode in MODES:
            t, solved = table[(level, mode)]
            cell = _fmt(t)
            if 0 < solved < _runs():
                cell += " (%d/%d)" % (solved, _runs())
            row.append(cell)
        rows.append(row)
    save_artifact("table4_mario.txt",
                  format_table(headers, rows,
                               "Table 4: Super Mario time to solve "
                               "(median of %d, HH:MM:SS simulated)"
                               % _runs()))

    # Shape: on levels every mode solves, IJON is the slowest and the
    # best Nyx policy beats it clearly.
    comparable = 0
    nyx_faster = 0
    for level in _levels():
        ijon_t, ijon_solved = table[(level, "ijon")]
        nyx_times = [table[(level, m)][0] for m in MODES if m != "ijon"]
        nyx_times = [t for t in nyx_times if t is not None]
        if ijon_t is None or not nyx_times:
            continue
        comparable += 1
        if min(nyx_times) < ijon_t:
            nyx_faster += 1
    if comparable:
        assert nyx_faster >= max(1, comparable - 1), (
            "Nyx-Net should out-solve IJON on most levels "
            "(%d of %d)" % (nyx_faster, comparable))
