"""Root and incremental whole-VM snapshots (the paper's §4.2).

The root snapshot is a full copy of guest memory, device state and the
disk overlay.  Restoring it walks the Nyx dirty-page *stack* (never the
whole bitmap) and resets exactly the pages that diverged.

Incremental snapshots add a second level:

* A **mirror** of the physical memory is kept as copy-on-write
  references into the root snapshot's page array, so the incremental
  snapshot "looks like a complete root snapshot without incurring
  anywhere near the full memory cost".
* Creating an incremental snapshot overwrites the mirror entries for
  every page dirtied since the root snapshot with a real copy of the
  current content; stale copies from the previous incremental snapshot
  are reverted to root references first.
* Because real copies accumulate, the mirror is **re-mirrored** to a
  clean CoW view of the root "every 2,000 snapshots created".
* Only one incremental snapshot exists at any time; scheduling a new
  input discards it (§3.4).

**Overlay chains** generalize the second level to a QCOW2-style
backing chain: base → overlay₁ → overlay₂ → … (docs/snapshots.md).
The paper's single incremental snapshot is chain depth 1 and keeps its
exact code path (same charges, byte for byte); deeper layers are
:class:`ChainOverlay` records pushed on top of it:

* each overlay holds a dense CoW mirror of its parent's view plus real
  copies of the pages written since the parent's capture, with its own
  incremental CRC table and private-page accounting;
* ``restore_to_depth(k)`` resets the VM to any chain node, resolving
  page identity newest-to-oldest through the per-layer ``touched``
  sets and reusing the dirty-write-avoidance batch reset;
* ``commit_overlay`` folds the deepest overlay into its parent (the
  QCOW2 *commit*, bounding chain length); ``discard_deepest`` drops
  the deepest layer for free (the QCOW2 *discard*).

Cost accounting: every operation charges the machine clock through the
cost model, so Table 3 and Figure 6 reproduce the structural costs of
the paper (per-dirty-page work + a fixed hypercall/device cost).  The
*simulated* charges are a function of the dirty/diverged sets only —
the host-side bookkeeping below (incremental CRC maintenance, the
since-create delta set, identity-memoized verification) reduces Python
work per operation without moving a single charge.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.vm.devices import DeviceBoard
from repro.vm.disk import EmulatedDisk
from repro.vm.memory import GuestMemory

#: The paper's re-mirror period: "we re-mirror the physical memory used
#: in the incremental snapshot to a clean copy of the original root
#: memory every 2,000 snapshots created."
REMIRROR_PERIOD = 2000


class SnapshotError(Exception):
    """Raised on snapshot protocol violations (e.g., no root yet)."""


class SnapshotCorruption(SnapshotError):
    """An incremental snapshot failed checksum validation on restore.

    The manager has already discarded the corrupt snapshot and healed
    the damaged mirror entries back to CoW root references; the caller
    recovers by restoring the root snapshot and (optionally) rebuilding
    the incremental snapshot from it.
    """


class RootSnapshot:
    """An immutable full copy of the VM state.

    Instances can be *shared* between machines (§5.3 scalability: "we
    share the root snapshots between different instances"): the page
    list is never mutated after capture, so any number of VMs may hold
    references into it.
    """

    __slots__ = ("pages", "device_state", "disk_overlay", "guest_blob",
                 "_page_ids")

    def __init__(self, pages: List[bytes], device_state: Dict[str, Tuple],
                 disk_overlay: Dict[int, bytes], guest_blob: bytes) -> None:
        self.pages = pages
        self.device_state = device_state
        self.disk_overlay = disk_overlay
        #: Opaque host-side guest-OS bookkeeping captured with the root
        #: (the directory of state regions; see repro.guestos.kernel).
        self.guest_blob = guest_blob
        # Lazy memo of immutable data, not guest state.
        self._page_ids: Optional[FrozenSet[int]] = None  # nyx: allow[reset]

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    def page_id_set(self) -> FrozenSet[int]:
        """``id()`` of every page in the (immutable) root image, cached.

        The page list never changes after capture, so the set is
        computed once and shared by every footprint query against this
        root — fleet accounting stops paying an O(num_pages) scan per
        machine per query.
        """
        ids = self._page_ids
        if ids is None:
            ids = self._page_ids = frozenset(map(id, self.pages))
        return ids


class SnapshotStats:
    """Counters describing snapshot activity for a machine."""

    def __init__(self) -> None:
        self.root_restores = 0
        self.incremental_creates = 0
        self.incremental_restores = 0
        self.remirrors = 0
        self.pages_reset = 0
        self.pages_captured = 0
        self.corruption_detected = 0
        # Overlay-chain activity (0 for single-incremental campaigns).
        self.overlay_pushes = 0
        self.overlay_commits = 0
        self.chain_restores = 0
        self.deepest_chain = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class ChainOverlay:
    """One layer of an overlay chain (depth >= 2).

    A dense page mirror that *looks like* a complete snapshot of the VM
    at push time without the full memory cost: entries for pages
    untouched since the parent's capture are CoW references into the
    parent's mirror; ``touched`` pages are real copies with their own
    CRC32s.  Frozen after push — restores read it, never write it.
    """

    __slots__ = ("mirror", "touched", "checksums", "verified_ids",
                 "device_state", "disk_overlay", "disk_touched")

    def __init__(self, mirror: List[bytes], touched: set,
                 checksums: Dict[int, int], verified_ids: Dict[int, int],
                 device_state: Dict[str, Tuple],
                 disk_overlay: Dict[int, bytes], disk_touched: set) -> None:
        self.mirror = mirror
        self.touched = touched
        self.checksums = checksums
        self.verified_ids = verified_ids
        self.device_state = device_state
        self.disk_overlay = disk_overlay
        #: Sectors written between the parent's capture and this one —
        #: the disk-level ``touched`` set cross-depth restores resolve.
        self.disk_touched = disk_touched

    def private_pages(self) -> int:
        return len(self.touched)


class SnapshotManager:  # nyx: allow[reset]
    """Implements Nyx-Net's two-level snapshot scheme over a machine.

    Reset-lint suppression: the manager *is* the reset mechanism; its
    snapshot handles, divergence bookkeeping and CRC tables are
    definitionally cross-exec state.

    ``verify_every`` amortizes the pre-restore checksum validation of
    the incremental snapshot: 1 (the default) validates on every
    restore, exactly the historical behaviour; N > 1 validates on every
    N-th restore.  A full validation is always forced right after a
    corruption was detected and on the first restore of a rebuilt
    snapshot, so an injected fault is never outrun by the amortization.
    """

    #: Layout version of :meth:`snapshot_state` (durability lint NYX062).
    STATE_FORMAT = 1

    def __init__(self, memory: GuestMemory, devices: DeviceBoard,
                 disk: EmulatedDisk, clock: SimClock, costs: CostModel,
                 verify_every: int = 1) -> None:
        if verify_every < 1:
            raise ValueError("verify_every must be >= 1")
        self._memory = memory
        self._devices = devices
        self._disk = disk
        self._clock = clock
        self._costs = costs
        self.verify_every = verify_every
        #: Perf counters; recounted by the resumed campaign's fresh
        #: machine (CampaignStats travels independently).
        self.stats = SnapshotStats()  # nyx: state[ephemeral]

        #: Rebuilt by ``capture_root`` on the resumed machine.
        self._root: Optional[RootSnapshot] = None  # nyx: state[ephemeral]
        #: Pages that may differ from the root snapshot.  Rebuilt from
        #: scratch each cycle; checkpoints happen at root boundaries.
        self._diverged: set = set()  # nyx: state[ephemeral]
        #: Pages (re)written since the deepest snapshot capture (or,
        #: after a chain restore, since the restored-to node) — the
        #: subset of ``_diverged`` whose deepest-view entry is out of
        #: date.  Fed by ``_absorb_dirty``; drained at boundaries.
        self._since_create: set = set()  # nyx: state[ephemeral]
        #: Pages whose live memory object differs (by identity) from
        #: the root page — maintained incrementally so footprint
        #: queries never scan the whole page array.
        self._private: set = set()  # nyx: state[ephemeral]
        #: Disk sectors that may differ from the root overlay.
        self._disk_diverged: set = set()  # nyx: state[ephemeral]

        # Incremental snapshot state.  Checkpoints happen at step
        # boundaries (root restored, no incremental active): the page
        # mirror and fast device/disk captures are rebuilt by the next
        # ``create_incremental`` on the resumed machine; only the
        # sim-charge cursors below travel (see ``snapshot_state``).
        self._mirror: Optional[List[bytes]] = None  # nyx: state[ephemeral]
        self._mirror_touched: set = set()
        self._inc_device_state: Optional[Dict[str, Tuple]] = None  # nyx: state[ephemeral]
        self._inc_disk_overlay: Optional[Dict[int, bytes]] = None  # nyx: state[ephemeral]
        self._inc_active = False  # nyx: state[ephemeral]
        self._creates_since_remirror = 0
        #: CRC32 of every real-copy mirror page at create time, checked
        #: before restores (self-healing snapshots).  Maintained
        #: incrementally: only pages copied by a create are re-CRC'd.
        #: Host-side cache, rebuilt by the next create (never travels).
        self._inc_checksums: Dict[int, int] = {}  # nyx: state[ephemeral]
        #: ``id()`` of each real-copy page at the time its CRC last
        #: validated.  Mirror pages are immutable ``bytes`` — any
        #: corruption vector in this simulation replaces the object —
        #: so an unchanged identity lets verification skip the CRC
        #: recompute while still charging the modelled validation cost.
        #: Process-local ``id()``s: must never cross a checkpoint.
        self._verified_ids: Dict[int, int] = {}  # nyx: state[ephemeral]
        #: Restores until the next amortized verification is due.
        self._verify_countdown = 0

        # Overlay-chain state (depth >= 2).  Chains live inside one
        # snapshot cycle — every cycle ends back at the root — so none
        # of this survives to a checkpoint boundary.
        #: Layers above the depth-1 incremental snapshot; element ``i``
        #: is chain depth ``i + 2``.
        self._overlays: List[ChainOverlay] = []  # nyx: state[ephemeral]
        #: Chain depth the live VM state currently descends from
        #: (0 = root).  Restores and captures move it.
        self._base_depth = 0  # nyx: state[ephemeral]
        #: Sectors written since the current base's capture — the disk
        #: counterpart of ``_since_create`` for cross-depth restores.
        self._disk_since_base: set = set()  # nyx: state[ephemeral]

        #: Optional :class:`~repro.faults.injector.FaultInjector` hooked
        #: into the restore paths (fault-injection campaigns).
        self.injector: Optional[Any] = None
        #: Page indices the most recent restore actually rewrote, or
        #: ``None`` when every page may have changed (adopting a shared
        #: root).  Restore consumers (the guest kernel's reload) use it
        #: to skip re-reading state regions whose pages provably kept
        #: their bytes across the reset.
        self.last_reset_pages: Optional[set] = None  # nyx: state[ephemeral]

    # -- root snapshot ------------------------------------------------------

    @property
    def has_root(self) -> bool:
        return self._root is not None

    @property
    def incremental_active(self) -> bool:
        return self._inc_active

    @property
    def chain_depth(self) -> int:
        """Number of snapshot layers above the root (0 = none active)."""
        if not self._inc_active:
            return 0
        return 1 + len(self._overlays)

    @property
    def base_depth(self) -> int:
        """Chain depth the live VM state currently descends from."""
        return self._base_depth

    @property
    def root(self) -> RootSnapshot:
        if self._root is None:
            raise SnapshotError("no root snapshot has been captured")
        return self._root

    def capture_root(self, guest_blob: bytes = b"") -> RootSnapshot:
        """Take the (expensive) full-copy root snapshot.

        "Creating a root snapshot is expensive because it requires to
        copy the whole physical memory" — we charge per page of the
        whole memory, not per dirty page.
        """
        pages = self._memory.pages_snapshot()
        root = RootSnapshot(
            pages=pages,
            device_state=self._devices.capture_fast(),
            disk_overlay=self._disk.capture_overlay(),
            guest_blob=guest_blob,
        )
        self._clock.charge(
            self._costs.snapshot_fixed
            + self._memory.num_pages * self._costs.root_page_copy)
        self._root = root
        self._memory.clear_dirty_log()
        self._disk.take_dirty()
        self._diverged = set()
        self._since_create = set()
        self._private = set()
        self._disk_diverged = set()
        self._mirror = list(pages)
        self._mirror_touched = set()
        self._inc_active = False
        self._creates_since_remirror = 0
        self._inc_checksums = {}
        self._verified_ids = {}
        self._verify_countdown = 0
        self._overlays = []
        self._base_depth = 0
        self._disk_since_base = set()
        return root

    def adopt_root(self, root: RootSnapshot) -> None:
        """Attach a *shared* root snapshot captured by another machine.

        This is the §5.3 scalability mechanism: 80 instances sharing one
        root only pay for their private dirty pages.  The caller must
        ensure memory geometry matches.
        """
        if root.num_pages != self._memory.num_pages:
            raise SnapshotError("shared root has mismatched memory geometry")
        self._root = root
        self.last_reset_pages = None  # every page changes: no fast path
        # Load the shared image into this machine (CoW references).
        for idx, page in enumerate(root.pages):
            self._memory.set_page(idx, page, log=False)
        self._devices.restore_fast(root.device_state)
        self._disk.restore_overlay(root.disk_overlay, self._disk.take_dirty())
        self._memory.clear_dirty_log()
        self._diverged = set()
        self._since_create = set()
        self._private = set()
        self._disk_diverged = set()
        self._mirror = list(root.pages)
        self._mirror_touched = set()
        self._inc_active = False
        self._creates_since_remirror = 0
        self._inc_checksums = {}
        self._verified_ids = {}
        self._verify_countdown = 0
        self._overlays = []
        self._base_depth = 0
        self._disk_since_base = set()

    def restore_root(self) -> int:  # nyx: hot
        """Reset the VM to the root snapshot; returns pages reset."""
        root = self.root
        if self.injector is not None:
            self.injector.on_root_restore(self)
        self._absorb_dirty()
        diverged = self._diverged
        self._memory.restore_pages(diverged, root.pages)
        n = len(diverged)
        self.last_reset_pages = diverged
        self._diverged = set()
        self._since_create = set()
        self._private = set()
        self._devices.restore_fast(root.device_state)
        for sector in self._disk_diverged:
            overlay = root.disk_overlay
            self._disk.restore_overlay(overlay, [sector])
        nsect = len(self._disk_diverged)
        self._disk_diverged = set()
        self._disk.take_dirty()
        self._clock.charge(
            self._costs.snapshot_fixed
            + self._costs.device_reset_fast
            + n * self._costs.page_copy
            + nsect * self._costs.sector_copy)
        self.stats.root_restores += 1
        self.stats.pages_reset += n
        # Discarding any incremental snapshot (and its overlay chain)
        # is free: the mirror is lazily re-populated on the next create
        # and overlays die with their cycle.
        self._inc_active = False
        if self._overlays:
            self._overlays = []
        self._base_depth = 0
        self._disk_since_base = set()
        return n

    # -- incremental snapshot --------------------------------------------------

    def create_incremental(self) -> int:
        """Snapshot the *current* state as the secondary snapshot.

        Returns the number of pages captured.  Cost: per page diverged
        from root (plus reverting stale mirror entries), a fixed
        hypercall cost, and a device state copy.  Host-side, only the
        pages whose content can actually differ from their mirror entry
        — those written since the previous create, plus those the
        mirror never captured — are copied and re-CRC'd.
        """
        root = self.root
        self._absorb_dirty()
        if self._overlays:
            # Replacing the snapshot while a chain is live: every page a
            # chain layer captured privately may leave its depth-1
            # mirror entry stale, so fold the layers' touched sets into
            # the must-recopy set before rebuilding.
            for overlay in self._overlays:
                self._since_create |= overlay.touched
            self._overlays = []

        remirrored = False
        if self._creates_since_remirror >= REMIRROR_PERIOD:
            # Re-mirror: throw away accumulated real copies and start
            # from a clean CoW view of the root image.
            self._mirror = list(root.pages)
            self._mirror_touched = set()
            self._creates_since_remirror = 0
            self.stats.remirrors += 1
            self._clock.charge(self._costs.snapshot_fixed)
            remirrored = True

        mirror = self._mirror
        assert mirror is not None
        memory = self._memory
        diverged = self._diverged
        touched = self._mirror_touched
        checksums = self._inc_checksums
        # Revert mirror entries left over from the previous incremental
        # snapshot that are no longer diverged.
        stale = touched - diverged
        if stale:
            root_pages = root.pages
            for idx in stale:
                mirror[idx] = root_pages[idx]
                checksums.pop(idx, None)
                self._verified_ids.pop(idx, None)
        # Copy into the mirror only the pages whose mirror entry can be
        # out of date; untouched-since-last-create entries already hold
        # the right content and keep their CRC.
        if remirrored or not touched:
            to_copy = diverged
        else:
            to_copy = (diverged & self._since_create) | (diverged - touched)
        crc32 = zlib.crc32
        for idx in to_copy:
            page = memory.page(idx)
            mirror[idx] = page
            checksums[idx] = crc32(page)
            self._verified_ids[idx] = id(page)
        self._mirror_touched = set(diverged)
        self._since_create = set()

        self._inc_device_state = self._devices.capture_fast()
        self._inc_disk_overlay = self._disk.capture_overlay()
        self._inc_active = True
        self._overlays = []
        self._base_depth = 1
        self._disk_since_base = set()
        self._creates_since_remirror += 1
        # A freshly (re)built snapshot always gets a full validation on
        # its first restore, even under an amortized verify_every.
        self._verify_countdown = 0

        n = len(diverged)
        self._clock.charge(
            self._costs.snapshot_fixed
            + self._costs.device_reset_fast
            + (n + len(stale)) * self._costs.page_copy)
        self.stats.incremental_creates += 1
        self.stats.pages_captured += n
        return n

    def restore_incremental(self) -> int:
        """Reset the VM to the incremental snapshot; returns pages reset.

        Only pages dirtied *since the incremental snapshot* are touched:
        the mirror looks like a full snapshot, so no per-page decision
        between root and incremental content is needed (§4.2).
        """
        if not self._inc_active:
            raise SnapshotError("no incremental snapshot is active")
        if self._overlays:
            raise SnapshotError("overlay chain active; restore through "
                                "restore_to_depth")
        if self.injector is not None:
            self.injector.on_incremental_restore(self)
        self._verify_incremental()
        mirror = self._mirror
        assert mirror is not None
        dirty = self._memory.take_dirty()
        since = self._since_create
        if since:
            # Writes previously absorbed into the diverged set (e.g. a
            # mid-cycle footprint query drained the dirty log) still
            # differ from the mirror and must be reset too.
            since.update(dirty)
            dirty = since
        self._memory.restore_pages(dirty, mirror)
        self.last_reset_pages = set(dirty)
        diverged = self._diverged
        private = self._private
        touched = self._mirror_touched
        for idx in dirty:
            diverged.add(idx)
            # A mirror real copy is a private page; a CoW root
            # reference restores the page to shared-root identity.
            if idx in touched:
                private.add(idx)
            else:
                private.discard(idx)
        self._since_create = set()
        assert self._inc_device_state is not None
        self._devices.restore_fast(self._inc_device_state)
        dirty_sectors = set(self._disk.take_dirty())
        # Same absorbed-writes rule as the page path above: sectors
        # drained into the since-base set mid-cycle (or parked there by
        # a commit the live state did not descend from) still differ
        # from the capture and must be reset too.
        dirty_sectors |= self._disk_since_base
        assert self._inc_disk_overlay is not None
        self._disk.restore_overlay(self._inc_disk_overlay, dirty_sectors)
        self._disk_diverged.update(dirty_sectors)
        n = len(dirty)
        self._clock.charge(
            self._costs.snapshot_fixed
            + self._costs.device_reset_fast
            + n * self._costs.page_copy
            + len(dirty_sectors) * self._costs.sector_copy)
        self.stats.incremental_restores += 1
        self.stats.pages_reset += n
        self._base_depth = 1
        self._disk_since_base = set()
        return n

    def discard_incremental(self) -> None:
        """Drop the secondary snapshot and any overlay chain above it
        (scheduling a new input, §3.4)."""
        self._inc_active = False
        if self._overlays:
            self._overlays = []
        self._base_depth = 0
        self._disk_since_base = set()

    # -- overlay chains (QCOW2-style backing chain) ---------------------------

    def push_overlay(self) -> int:
        """Snapshot the *current* state as a new deepest chain layer.

        Returns the number of pages captured (real copies).  The new
        overlay's mirror is a CoW view of its parent's mirror with the
        pages written since the parent's capture copied in — so it
        looks like a complete snapshot at a per-delta cost, exactly
        like the depth-1 mirror looks like a root snapshot.  Charged
        like an incremental create without the stale-revert term (a
        fresh overlay has no stale entries to revert).
        """
        if not self._inc_active:
            raise SnapshotError("push_overlay needs an active incremental "
                                "snapshot below it")
        if self._base_depth != self.chain_depth:
            raise SnapshotError(
                "live state descends from depth %d, not the deepest layer "
                "%d; restore there before pushing"
                % (self._base_depth, self.chain_depth))
        self._absorb_dirty()
        parent_mirror = (self._overlays[-1].mirror if self._overlays
                         else self._mirror)
        assert parent_mirror is not None
        mirror = list(parent_mirror)
        delta = self._since_create
        checksums: Dict[int, int] = {}
        verified: Dict[int, int] = {}
        pages = self._memory.sealed_pages(delta)
        crc32 = zlib.crc32
        for idx, page in pages.items():
            mirror[idx] = page
            checksums[idx] = crc32(page)
            verified[idx] = id(page)
        overlay = ChainOverlay(
            mirror=mirror,
            touched=set(delta),
            checksums=checksums,
            verified_ids=verified,
            device_state=self._devices.capture_fast(),
            disk_overlay=self._disk.capture_overlay(),
            disk_touched=set(self._disk_since_base),
        )
        self._overlays.append(overlay)
        self._since_create = set()
        self._disk_since_base = set()
        self._base_depth = self.chain_depth
        n = len(delta)
        self._clock.charge(
            self._costs.snapshot_fixed
            + self._costs.device_reset_fast
            + n * self._costs.page_copy)
        self.stats.overlay_pushes += 1
        self.stats.pages_captured += n
        if self.chain_depth > self.stats.deepest_chain:
            self.stats.deepest_chain = self.chain_depth
        return n

    def restore_to_depth(self, depth: int) -> int:  # nyx: hot
        """Reset the VM to chain node ``depth`` (1 = the incremental
        snapshot); returns pages reset.

        Page identity resolves newest-to-oldest: the reset set is the
        pages written since the current base plus the symmetric
        difference between the base's view and the target's view (the
        union of the ``touched`` sets of every layer strictly between
        them), each restored from the target's dense mirror in one
        dirty-write-avoiding batch.  Deeper layers stay alive, so the
        placement bandit can hop between nodes restore-by-restore.
        """
        top = self.chain_depth
        if depth < 1 or depth > top:
            raise SnapshotError("no chain node at depth %d (chain depth %d)"
                                % (depth, top))
        if depth == 1 and top == 1:
            return self.restore_incremental()
        if self.injector is not None:
            self.injector.on_incremental_restore(self)
        self._verify_incremental()
        for overlay in self._overlays[:depth - 1]:
            self._verify_overlay(overlay)
        dirty = self._memory.take_dirty()
        since = self._since_create
        since.update(dirty)
        reset = since
        base = self._base_depth
        lo = min(base, depth)
        hi = max(base, depth)
        overlays = self._overlays
        for d in range(lo + 1, hi + 1):
            reset |= overlays[d - 2].touched
        if depth == 1:
            view = self._mirror
            device_state = self._inc_device_state
            disk_overlay = self._inc_disk_overlay
        else:
            target = overlays[depth - 2]
            view = target.mirror
            device_state = target.device_state
            disk_overlay = target.disk_overlay
        assert view is not None
        self._memory.restore_pages(reset, view)
        self.last_reset_pages = set(reset)
        diverged = self._diverged
        private = self._private
        root_pages = self.root.pages
        for idx in reset:
            diverged.add(idx)
            # A CoW reference all the way down to the root image
            # restores the page to shared-root identity; anything else
            # is a private copy.
            if view[idx] is root_pages[idx]:
                private.discard(idx)
            else:
                private.add(idx)
        self._since_create = set()
        assert device_state is not None
        self._devices.restore_fast(device_state)
        sectors = set(self._disk.take_dirty())
        sectors |= self._disk_since_base
        for d in range(lo + 1, hi + 1):
            sectors |= overlays[d - 2].disk_touched
        assert disk_overlay is not None
        self._disk.restore_overlay(disk_overlay, sectors)
        self._disk_diverged.update(sectors)
        self._disk_since_base = set()
        self._base_depth = depth
        n = len(reset)
        self._clock.charge(
            self._costs.snapshot_fixed
            + self._costs.device_reset_fast
            + n * self._costs.page_copy
            + len(sectors) * self._costs.sector_copy)
        self.stats.chain_restores += 1
        self.stats.pages_reset += n
        return n

    def commit_overlay(self) -> int:
        """Fold the deepest overlay into its parent (QCOW2 *commit*).

        Bounds chain length without losing the deepest state: the
        parent's mirror adopts the child's real copies (and their
        CRCs), its touched/disk sets absorb the child's, and its
        device/disk captures are replaced by the child's — after which
        the parent *is* the child's snapshot, one level shallower.
        Returns the number of pages folded; charged per folded page
        plus the fixed hypercall cost.
        """
        if not self._overlays:
            raise SnapshotError("no overlay to commit")
        child = self._overlays.pop()
        n = len(child.touched)
        if self._overlays:
            parent = self._overlays[-1]
            mirror = parent.mirror
            for idx in child.touched:
                mirror[idx] = child.mirror[idx]
                parent.checksums[idx] = child.checksums[idx]
                parent.verified_ids[idx] = child.verified_ids[idx]
            parent.touched |= child.touched
            parent.disk_touched |= child.disk_touched
            parent.device_state = child.device_state
            parent.disk_overlay = child.disk_overlay
        else:
            mirror = self._mirror
            assert mirror is not None
            for idx in child.touched:
                mirror[idx] = child.mirror[idx]
                self._inc_checksums[idx] = child.checksums[idx]
                self._verified_ids[idx] = child.verified_ids[idx]
            self._mirror_touched |= child.touched
            self._inc_device_state = child.device_state
            self._inc_disk_overlay = child.disk_overlay
        if self._base_depth > self.chain_depth:
            # The live state descended from the committed child; its
            # view now lives one level down, contents unchanged.
            self._base_depth = self.chain_depth
        elif self._base_depth == self.chain_depth:
            # The live state descends from the parent, whose captured
            # view just adopted the child's content: every page (and
            # sector) the child held may now differ between the live
            # state and its base, so they join the written-since-base
            # sets for the next restore to reset.
            self._since_create |= child.touched
            self._disk_since_base |= child.disk_touched
        self._clock.charge(
            self._costs.snapshot_fixed
            + n * self._costs.page_copy)
        self.stats.overlay_commits += 1
        return n

    def discard_deepest(self) -> None:
        """Drop the deepest chain layer (QCOW2 *discard*; free).

        At depth 1 this is :meth:`discard_incremental`.  When the live
        state descends from the dropped layer, the pages that layer
        held privately rejoin the written-since-base set — the next
        restore resets them against the new base's view.
        """
        if not self._overlays:
            self.discard_incremental()
            return
        dropped = self._overlays.pop()
        if self._base_depth > self.chain_depth:
            self._since_create |= dropped.touched
            self._disk_since_base |= dropped.disk_touched
            self._base_depth = self.chain_depth

    def _verify_overlay(self, overlay: ChainOverlay) -> None:
        """Checksum-validate one overlay's real copies before a restore.

        Overlay layers always validate (the depth-1 ``verify_every``
        amortization stays scoped to the depth-1 snapshot).  On
        mismatch the whole chain is torn down — overlays build on each
        other, so one corrupt layer poisons everything deeper — and
        :class:`SnapshotCorruption` sends the caller down the usual
        rebuild-from-root ladder.
        """
        mirror = overlay.mirror
        checksums = overlay.checksums
        verified = overlay.verified_ids
        crc32 = zlib.crc32
        bad = []
        for idx, crc in checksums.items():
            page = mirror[idx]
            if verified.get(idx) == id(page):
                continue
            if crc32(page) != crc:
                bad.append(idx)
            else:
                verified[idx] = id(page)
        self._clock.charge(len(checksums) * self._costs.page_copy)
        if not bad:
            return
        self._teardown_chain()
        self.stats.corruption_detected += 1
        raise SnapshotCorruption(
            "chain overlay failed validation on %d page(s): %s"
            % (len(bad), sorted(bad)[:8]))

    def _teardown_chain(self) -> None:
        """Deactivate the whole chain after a corruption finding.

        Live memory is untouched; the caller falls back to the
        (immutable, trustworthy) root snapshot, whose restore path
        resets every diverged page.
        """
        self._inc_active = False
        self._overlays = []
        self._base_depth = 0
        self._disk_since_base = set()
        self._verify_countdown = 0

    def _verify_incremental(self) -> None:
        """Checksum-validate the mirror's real copies before a restore.

        On mismatch the corrupt entries are healed back to CoW root
        references (the root image is immutable and trustworthy), the
        incremental snapshot is discarded, and
        :class:`SnapshotCorruption` tells the caller to rebuild from
        the root.  Cost: one pass over the real copies, charged like a
        page copy each.

        With ``verify_every`` == 1 (default) every restore validates.
        Larger values skip (and do not charge) the validation pass on
        all but every N-th restore; detection of an injected fault is
        then delayed by at most N-1 restores.  Host-side, pages whose
        object identity is unchanged since their last successful check
        skip the CRC recompute — immutable pages cannot change content
        without changing identity.
        """
        if self._verify_countdown > 0:
            self._verify_countdown -= 1
            return
        self._verify_countdown = self.verify_every - 1
        mirror = self._mirror
        assert mirror is not None
        root = self.root
        checksums = self._inc_checksums
        verified = self._verified_ids
        crc32 = zlib.crc32
        bad = []
        for idx, crc in checksums.items():
            page = mirror[idx]
            if verified.get(idx) == id(page):
                continue
            if crc32(page) != crc:
                bad.append(idx)
            else:
                verified[idx] = id(page)
        self._clock.charge(len(checksums) * self._costs.page_copy)
        if not bad:
            return
        for idx in bad:
            mirror[idx] = root.pages[idx]
            self._mirror_touched.discard(idx)
            del self._inc_checksums[idx]
            self._verified_ids.pop(idx, None)
        self._inc_active = False
        # Overlays stack on the now-untrusted depth-1 layer; drop them.
        self._overlays = []
        self._base_depth = 0
        self._disk_since_base = set()
        # Force a full validation on the first restore of the rebuilt
        # snapshot regardless of the amortization schedule.
        self._verify_countdown = 0
        self.stats.corruption_detected += 1
        raise SnapshotCorruption(
            "incremental snapshot failed validation on %d page(s): %s"
            % (len(bad), sorted(bad)[:8]))

    # -- durability (checkpoint/resume) ----------------------------------------

    def snapshot_state(self) -> dict:
        """Sim-charge-relevant cursors for a campaign checkpoint.

        Taken at a step boundary (root restored, no incremental active,
        no overlay chain), the only snapshot state that influences
        *future* sim charges is: which mirror entries are real copies
        (the stale revert at the next create charges per page), how far
        the re-mirror period has advanced, and where the amortized
        validation schedule stands.  Page contents, per-page CRCs and
        the verified-identity memo are deliberately excluded — they are
        host-side caches rebuilt by the next ``create_incremental``
        (and ``_verified_ids`` holds process-local ``id()``s that must
        never cross a checkpoint).  ``chain_overlays``/``base_depth``
        are captured only to *assert* the boundary invariant on
        restore: a chain never survives to a checkpoint.
        """
        return {"mirror_touched": sorted(self._mirror_touched),
                "creates_since_remirror": self._creates_since_remirror,
                "verify_countdown": self._verify_countdown,
                "base_depth": self._base_depth,
                "chain_overlays": len(self._overlays)}

    def restore_state(self, state: dict) -> None:
        """Adopt checkpointed cursors on a freshly (re)built machine.

        The restored ``mirror_touched`` entries point at CoW root
        references rather than the original private copies; the next
        ``create_incremental`` reverts or recopies every one of them
        (charging exactly what the original run would have), so the
        invariant heals before any restore can observe the difference.
        """
        if int(state.get("chain_overlays", 0)):
            raise SnapshotError(
                "checkpoint captured a live overlay chain; checkpoints "
                "must land on step boundaries")
        self._mirror_touched = set(state["mirror_touched"])
        self._creates_since_remirror = int(state["creates_since_remirror"])
        self._verify_countdown = int(state["verify_countdown"])
        self._inc_checksums = {}
        self._verified_ids = {}
        self._overlays = []
        self._base_depth = int(state.get("base_depth", 0))
        self._disk_since_base = set()

    #: Pre-chain spelling of the pair, kept for older call sites.
    host_cursor_state = snapshot_state
    restore_host_cursor_state = restore_state

    # -- fault-injection surface (see repro.faults) ---------------------------

    def mirror_private_pages(self) -> set:
        """Indices of mirror pages that are real copies (safe to
        corrupt without touching the shared root image)."""
        return set(self._mirror_touched)

    def flip_mirror_bit(self, idx: int, byte: int = 0, bit: int = 0) -> None:
        """Corrupt one bit of a real-copy mirror page (fault injection).

        Refuses CoW references into the root: those page objects may be
        shared with other machines, and the point of the fault model is
        that only *this* instance's incremental state decays.
        """
        mirror = self._mirror
        if mirror is None or idx not in self._mirror_touched:
            return
        page = bytearray(mirror[idx])
        if not page:
            return
        page[byte % len(page)] ^= 1 << (bit % 8)
        mirror[idx] = bytes(page)

    def charge_fault_latency(self, seconds: float) -> None:
        """Charge injected reset latency (the SLOW_RESET fault)."""
        self._clock.charge(seconds)

    # -- accounting -----------------------------------------------------------

    def diverged_pages(self) -> int:
        """Pages currently known to differ from the root snapshot."""
        self._absorb_dirty()
        return len(self._diverged)

    def owned_page_identities(self) -> set:
        """``id()`` of every page object this VM keeps alive.

        Covers the shared root image (held via the root snapshot and
        through every CoW reference in live memory and the mirror),
        this VM's private live pages, and the incremental-snapshot
        mirror's real copies.  Unioning these sets across a fleet —
        together with the root image's own pages — yields the fleet's
        true unique-page footprint.  O(private + mirror copies): the
        shared portion comes from the root's cached id set.
        """
        if self._root is None:
            return set(self._memory.page_identities())
        ids = set(self._root.page_id_set())
        memory = self._memory
        for idx in self._private:
            ids.add(id(memory.page(idx)))
        mirror = self._mirror
        if mirror is not None:
            for idx in self._mirror_touched:
                ids.add(id(mirror[idx]))
        return ids

    def private_page_count(self) -> int:
        """Pages of this VM not shared (by identity) with the root.

        Used by the §5.3 scalability experiment: instances sharing a
        root snapshot only own their diverged pages plus mirror copies.
        Maintained incrementally — no O(num_pages) identity scan.
        """
        self._absorb_dirty()
        private = len(self._private)
        if self._mirror is not None:
            private += len(self._mirror_touched)
        return private

    def _absorb_dirty(self) -> None:
        """Fold the hardware dirty log into the diverged-from-root set."""
        dirty = self._memory.take_dirty()
        if dirty:
            self._diverged.update(dirty)
            self._since_create.update(dirty)
            self._private.update(dirty)
        dirty_sectors = self._disk.take_dirty()
        if dirty_sectors:
            self._disk_diverged.update(dirty_sectors)
            self._disk_since_base.update(dirty_sectors)
