"""openssh: the SSH transport layer (banner + binary packet protocol).

Models sshd's pre-auth surface: version banner exchange, the binary
packet framing, KEXINIT algorithm negotiation and a userauth state
machine.  Table 1 lists no openssh crashes; the target is a workload
whose binary framing makes byte-level mutation hard — the paper's
Table 5 shows Nyx only matches AFLNet's final coverage here (1x).
"""

from __future__ import annotations

import struct

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 2222

MSG_DISCONNECT = 1
MSG_IGNORE = 2
MSG_DEBUG = 4
MSG_SERVICE_REQUEST = 5
MSG_SERVICE_ACCEPT = 6
MSG_KEXINIT = 20
MSG_NEWKEYS = 21
MSG_KEXDH_INIT = 30
MSG_KEXDH_REPLY = 31
MSG_USERAUTH_REQUEST = 50
MSG_USERAUTH_FAILURE = 51
MSG_USERAUTH_SUCCESS = 52

KEX_ALGOS = b"curve25519-sha256,diffie-hellman-group14-sha256"
HOSTKEY_ALGOS = b"ssh-ed25519,rsa-sha2-512"
CIPHERS = b"chacha20-poly1305@openssh.com,aes128-ctr"


class OpensshServer(MessageServer):
    name = "openssh"
    port = PORT
    startup_cost = 0.15  # host key loading
    parse_cost = 4e-9

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        conn.buffer += data
        if conn.state == "new":
            self.reply(api, conn, b"SSH-2.0-OpenSSH_8.9 repro\r\n")
            conn.state = "banner-sent"
        if conn.state == "banner-sent":
            if b"\n" not in conn.buffer:
                return
            idx = conn.buffer.find(b"\n")
            banner, conn.buffer = conn.buffer[:idx], conn.buffer[idx + 1:]
            banner = banner.rstrip(b"\r")
            if not banner.startswith(b"SSH-2.0-") and \
                    not banner.startswith(b"SSH-1.99-"):
                self._disconnect(api, conn, 8, b"protocol mismatch")
                return
            conn.vars["client_banner"] = banner[:255]
            conn.state = "transport"
        while conn.state not in ("new", "banner-sent", "closed"):
            packet = self._take_packet(conn)
            if packet is None:
                return
            self._packet(api, conn, packet)

    def _take_packet(self, conn: ConnCtx):
        """Binary packet protocol: u32 length, u8 padding, payload."""
        if len(conn.buffer) < 5:
            return None
        (packet_len,) = struct.unpack_from(">I", conn.buffer, 0)
        if packet_len == 0 or packet_len > 35000:
            conn.state = "closed"  # sshd drops oversized packets
            return None
        if len(conn.buffer) < 4 + packet_len:
            return None
        padding = conn.buffer[4]
        if padding + 1 > packet_len:
            conn.state = "closed"
            return None
        payload = conn.buffer[5:4 + packet_len - padding]
        conn.buffer = conn.buffer[4 + packet_len:]
        return payload

    def _packet(self, api, conn: ConnCtx, payload: bytes) -> None:
        if not payload:
            return
        msg = payload[0]
        body = payload[1:]
        if msg == MSG_KEXINIT:
            self._kexinit(api, conn, body)
        elif msg == MSG_KEXDH_INIT:
            if conn.state != "kexinit-done":
                self._disconnect(api, conn, 3, b"kex out of order")
                return
            api.cpu(3e-5)  # DH computation
            self._send_packet(api, conn, bytes([MSG_KEXDH_REPLY]) + bytes(64))
            conn.state = "kexdh-done"
        elif msg == MSG_NEWKEYS:
            if conn.state != "kexdh-done":
                self._disconnect(api, conn, 3, b"newkeys out of order")
                return
            self._send_packet(api, conn, bytes([MSG_NEWKEYS]))
            conn.state = "encrypted"
        elif msg == MSG_SERVICE_REQUEST:
            service = _ssh_string(body)
            if conn.state != "encrypted":
                self._disconnect(api, conn, 3, b"service before newkeys")
            elif service == b"ssh-userauth":
                self._send_packet(api, conn, bytes([MSG_SERVICE_ACCEPT])
                                  + _pack_string(service))
                conn.state = "userauth"
            else:
                self._disconnect(api, conn, 7, b"unknown service")
        elif msg == MSG_USERAUTH_REQUEST:
            self._userauth(api, conn, body)
        elif msg == MSG_IGNORE or msg == MSG_DEBUG:
            pass
        elif msg == MSG_DISCONNECT:
            conn.state = "closed"
        else:
            self._send_packet(api, conn, bytes([3]) + struct.pack(">I", 0))

    def _kexinit(self, api, conn: ConnCtx, body: bytes) -> None:
        if len(body) < 16:
            self._disconnect(api, conn, 3, b"short kexinit")
            return
        offset = 16  # cookie
        lists = []
        for _ in range(10):
            if offset + 4 > len(body):
                self._disconnect(api, conn, 3, b"truncated kexinit")
                return
            (length,) = struct.unpack_from(">I", body, offset)
            if offset + 4 + length > len(body) or length > 8192:
                self._disconnect(api, conn, 3, b"bad name-list")
                return
            lists.append(body[offset + 4:offset + 4 + length])
            offset += 4 + length
        client_kex = lists[0].split(b",") if lists else []
        if not any(algo in KEX_ALGOS for algo in client_kex):
            self._disconnect(api, conn, 3, b"no matching kex")
            return
        conn.vars["kex"] = client_kex[0][:64]
        reply = bytes([MSG_KEXINIT]) + bytes(16)
        for name_list in (KEX_ALGOS, HOSTKEY_ALGOS, CIPHERS, CIPHERS,
                          b"hmac-sha2-256", b"hmac-sha2-256", b"none",
                          b"none", b"", b""):
            reply += _pack_string(name_list)
        self._send_packet(api, conn, reply)
        conn.state = "kexinit-done"

    def _userauth(self, api, conn: ConnCtx, body: bytes) -> None:
        if conn.state != "userauth":
            self._disconnect(api, conn, 3, b"userauth before service")
            return
        user, rest = _take_string(body)
        service, rest = _take_string(rest)
        method, rest = _take_string(rest)
        conn.vars["auth_tries"] = conn.vars.get("auth_tries", 0) + 1
        if conn.vars["auth_tries"] > 6:
            self._disconnect(api, conn, 12, b"too many auth failures")
            return
        if method == b"none" or service != b"ssh-connection":
            self._send_packet(api, conn, bytes([MSG_USERAUTH_FAILURE])
                              + _pack_string(b"password,publickey") + b"\x00")
        elif method == b"password" and user == b"repro":
            api.cpu(1e-5)  # bcrypt-ish
            self._send_packet(api, conn, bytes([MSG_USERAUTH_SUCCESS]))
            conn.state = "authed"
        else:
            self._send_packet(api, conn, bytes([MSG_USERAUTH_FAILURE])
                              + _pack_string(b"password,publickey") + b"\x00")

    def _send_packet(self, api, conn: ConnCtx, payload: bytes) -> None:
        padding = 8 - ((len(payload) + 5) % 8)
        if padding < 4:
            padding += 8
        packet = struct.pack(">IB", len(payload) + padding + 1, padding) \
            + payload + bytes(padding)
        self.reply(api, conn, packet)

    def _disconnect(self, api, conn: ConnCtx, code: int, why: bytes) -> None:
        self._send_packet(api, conn, bytes([MSG_DISCONNECT])
                          + struct.pack(">I", code) + _pack_string(why))
        conn.state = "closed"


def _pack_string(data: bytes) -> bytes:
    return struct.pack(">I", len(data)) + data


def _ssh_string(data: bytes) -> bytes:
    value, _rest = _take_string(data)
    return value


def _take_string(data: bytes):
    if len(data) < 4:
        return b"", b""
    (length,) = struct.unpack_from(">I", data, 0)
    if 4 + length > len(data):
        return b"", b""
    return data[4:4 + length], data[4 + length:]


def _packet_bytes(payload: bytes) -> bytes:
    padding = 8 - ((len(payload) + 5) % 8)
    if padding < 4:
        padding += 8
    return struct.pack(">IB", len(payload) + padding + 1, padding) \
        + payload + bytes(padding)


def _kexinit_bytes() -> bytes:
    body = bytes([MSG_KEXINIT]) + bytes(16)
    for name_list in (b"curve25519-sha256", b"ssh-ed25519", b"aes128-ctr",
                      b"aes128-ctr", b"hmac-sha2-256", b"hmac-sha2-256",
                      b"none", b"none", b"", b""):
        body += _pack_string(name_list)
    return _packet_bytes(body)


DICTIONARY = [b"SSH-2.0-", b"curve25519-sha256", b"ssh-ed25519",
              b"ssh-userauth", b"ssh-connection", b"password", b"publickey",
              bytes([MSG_KEXINIT]), bytes([MSG_USERAUTH_REQUEST]),
              struct.pack(">I", 12)]


def make_seeds():
    spec = default_network_spec()
    auth = _packet_bytes(bytes([MSG_USERAUTH_REQUEST])
                         + _pack_string(b"repro")
                         + _pack_string(b"ssh-connection")
                         + _pack_string(b"password") + b"\x00"
                         + _pack_string(b"hunter2"))
    seeds = []
    for packets in (
        [b"SSH-2.0-OpenSSH_9.0\r\n", _kexinit_bytes()],
        [b"SSH-2.0-fuzz_0.1\r\n", _kexinit_bytes(),
         _packet_bytes(bytes([MSG_KEXDH_INIT]) + bytes(32)),
         _packet_bytes(bytes([MSG_NEWKEYS]))],
        [b"SSH-2.0-fuzz_0.1\r\n", _kexinit_bytes(),
         _packet_bytes(bytes([MSG_KEXDH_INIT]) + bytes(32)),
         _packet_bytes(bytes([MSG_NEWKEYS])),
         _packet_bytes(bytes([MSG_SERVICE_REQUEST])
                       + _pack_string(b"ssh-userauth")),
         auth],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for packet in packets:
            builder.packet(con, packet)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="openssh",
    protocol="ssh",
    make_program=OpensshServer,
    surface_factory=lambda: AttackSurface.tcp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.15,
    libpreeny_compatible=True,
    planted_bugs=(),
    notes="Binary framing; hard for byte mutation — the 1x row of Table 5.",
)
