"""Shared plumbing for the baseline fuzzers.

Baselines run the target in a :class:`Machine` *without* using the
Nyx snapshot fast path for per-test resets.  The machine's root
snapshot exists purely as the host-side mechanism for "restart the
server" / "run the cleanup script" / "forkserver reset" events, whose
*simulated* costs are charged explicitly from the cost model — the
snapshot's own cheap cost is never charged for baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.coverage.tracer import EdgeTracer
from repro.fuzz.stats import CampaignStats
from repro.guestos.kernel import Kernel
from repro.targets.base import TargetProfile
from repro.vm.machine import Machine

#: Alias: baselines reuse the campaign statistics container.
BaselineStats = CampaignStats


@dataclass
class BaselineHarness:
    """A booted target VM for a baseline fuzzer."""

    machine: Machine
    kernel: Kernel
    tracer: EdgeTracer
    profile: TargetProfile
    #: Present when the harness was booted with a desock-style shim.
    interceptor: object = None

    def silent_restore(self) -> int:
        """Reset guest state without charging Nyx snapshot costs.

        The caller charges whatever its own reset actually costs
        (server restart, cleanup script, fork).
        """
        clock = self.machine.clock
        before = clock.now
        self.kernel.flush_to_memory()
        pages = self.machine.restore_root()
        # Refund the snapshot-path charge; baselines don't have it.
        clock._now = before
        return pages

    def respawn_server_cost(self) -> float:
        """Simulated cost of killing and restarting the server."""
        costs = self.machine.costs
        return (costs.aflnet_kill_server + self.profile.startup_cost
                + costs.aflnet_server_wait)


def boot_target(profile: TargetProfile, asan: bool = True,
                heap_slack: Optional[int] = None,
                memory_bytes: int = 64 * 1024 * 1024,
                with_interceptor: bool = False) -> BaselineHarness:
    """Boot the target for baseline fuzzing.

    By default no interceptor is installed and traffic takes the real
    network path; ``with_interceptor`` installs the emulation shim
    *before* the server binds (required so the bind hook can classify
    the surface socket — used by the desock baseline).
    """
    machine = Machine(memory_bytes=memory_bytes)
    kernel = Kernel(machine)
    interceptor = None
    if with_interceptor:
        from repro.emu.interceptor import Interceptor
        interceptor = Interceptor(kernel, profile.surface())
    program = profile.make_program()
    if hasattr(program, "asan"):
        program.asan = asan
    if heap_slack is not None and hasattr(program, "heap_slack"):
        program.heap_slack = heap_slack
    kernel.spawn(program)
    kernel.run(max_rounds=256)
    kernel.flush_to_memory(full=True)
    machine.capture_root()
    tracer = EdgeTracer()
    kernel.coverage = tracer
    return BaselineHarness(machine, kernel, tracer, profile, interceptor)


def drain_crash(kernel: Kernel):
    """Pop the first pending crash report, if any."""
    if kernel.crash_reports:
        report = kernel.crash_reports[0]
        kernel.crash_reports.clear()
        return report
    return None


def respond_payloads(input_ops) -> List[bytes]:
    """Packet payloads of an input, in order (transport view)."""
    out: List[bytes] = []
    for op in input_ops:
        for arg in op.args:
            if isinstance(arg, (bytes, bytearray)):
                out.append(bytes(arg))
    return out
