"""Spec lint (NYX00x): find unusable vocabulary before a campaign.

A spec with an unproducible edge type, an unreachable node or a
colliding id compiles fine and only surfaces as wasted executions (or
a confusing ``SpecError``) deep inside a campaign.  This pass audits
the node graph statically, the way the paper's affine type system
would reject such a spec at declaration time.
"""

from __future__ import annotations

from typing import List

from repro.analysis.diagnostics import Diagnostic
from repro.spec.nodes import Spec
from repro.spec.types import ByteVec


def analyze_spec(spec: Spec) -> List[Diagnostic]:
    """Lint one spec; returns diagnostics (empty = clean)."""
    diags: List[Diagnostic] = []
    loc = "spec:%s" % spec.name

    # -- NYX004: id/name collisions -----------------------------------------
    seen_node_ids = {}
    for node in spec.node_types:
        if node.name == "snapshot":
            diags.append(Diagnostic(
                "NYX004", "node %r collides with the reserved snapshot "
                "marker name (validate() would silently skip its ops)"
                % node.name, file=loc))
        if node.node_id == Spec.SNAPSHOT_NODE_ID:
            diags.append(Diagnostic(
                "NYX004", "node %r uses the reserved snapshot node id "
                "0x%04X" % (node.name, Spec.SNAPSHOT_NODE_ID), file=loc))
        elif node.node_id in seen_node_ids:
            diags.append(Diagnostic(
                "NYX004", "node %r reuses id %d already held by %r"
                % (node.name, node.node_id, seen_node_ids[node.node_id]),
                file=loc))
        seen_node_ids.setdefault(node.node_id, node.name)
    seen_edge_ids = {}
    for edge in spec.edge_types:
        if edge.type_id in seen_edge_ids:
            diags.append(Diagnostic(
                "NYX004", "edge type %r reuses id %d already held by %r"
                % (edge.name, edge.type_id, seen_edge_ids[edge.type_id]),
                file=loc))
        seen_edge_ids.setdefault(edge.type_id, edge.name)

    # -- NYX001/NYX002: unproducible / unconsumable edge types --------------
    produced = {e.name for n in spec.node_types for e in n.outputs}
    used = {e.name for n in spec.node_types
            for e in list(n.borrows) + list(n.consumes)}
    for edge in spec.edge_types:
        if edge.name in used and edge.name not in produced:
            diags.append(Diagnostic(
                "NYX001", "edge type %r is required as an operand but no "
                "node outputs it" % edge.name, file=loc))
        elif edge.name in produced and edge.name not in used:
            diags.append(Diagnostic(
                "NYX002", "edge type %r is produced but nothing ever "
                "borrows or consumes it" % edge.name, file=loc))

    # -- NYX003: unreachable nodes (operand types transitively dead) --------
    producible: set = set()
    instantiable: set = set()
    changed = True
    while changed:
        changed = False
        for node in spec.node_types:
            if node.node_id in instantiable:
                continue
            operands = list(node.borrows) + list(node.consumes)
            if all(e.name in producible for e in operands):
                instantiable.add(node.node_id)
                for e in node.outputs:
                    if e.name not in producible:
                        producible.add(e.name)
                        changed = True
                changed = True
    for node in spec.node_types:
        if node.node_id not in instantiable:
            diags.append(Diagnostic(
                "NYX003", "node %r is unreachable: no well-typed sequence "
                "can ever satisfy its operands" % node.name, file=loc))

    # -- NYX005: data fields havoc cannot touch -----------------------------
    for node in spec.node_types:
        if node.data and not any(isinstance(d, ByteVec) for d in node.data):
            diags.append(Diagnostic(
                "NYX005", "node %r carries only scalar data fields (%s); "
                "byte-level havoc has nothing to mutate"
                % (node.name, ", ".join(d.name for d in node.data)),
                file=loc))
    return diags
