"""Deeper guest-kernel tests: fd semantics, fs, timers, serialization
corner cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guestos.errors import Errno, GuestError
from repro.guestos.fds import FdEntry, FdKind, FdTable, MAX_FDS
from repro.guestos.fs import FileSystem
from repro.guestos.kernel import Kernel
from repro.guestos.process import Program
from repro.guestos.sockets import Socket, SockDomain, SockType
from repro.vm.machine import Machine

from tests.helpers import EchoServer, make_machine


class TestFdTable:
    def test_lowest_free_fd(self):
        table = FdTable()
        a = table.install(FdEntry(FdKind.SOCKET, 1))
        b = table.install(FdEntry(FdKind.SOCKET, 2))
        table.remove(a)
        c = table.install(FdEntry(FdKind.SOCKET, 3))
        assert c == a  # reused

    def test_table_full(self):
        table = FdTable()
        for _ in range(MAX_FDS):
            table.install(FdEntry(FdKind.FILE, 0))
        with pytest.raises(GuestError):
            table.install(FdEntry(FdKind.FILE, 0))

    def test_clone_independent(self):
        table = FdTable()
        fd = table.install(FdEntry(FdKind.SOCKET, 7))
        clone = table.clone()
        clone.remove(fd)
        assert fd in table.entries

    def test_fds_for(self):
        table = FdTable()
        a = table.install(FdEntry(FdKind.SOCKET, 7))
        b = table.install(FdEntry(FdKind.SOCKET, 7))
        table.install(FdEntry(FdKind.SOCKET, 8))
        assert sorted(table.fds_for(FdKind.SOCKET, 7)) == [a, b]


class TestSocketChunks:
    def socket(self, type_=SockType.STREAM):
        return Socket(sid=1, domain=SockDomain.INET, type=type_)

    def test_stream_short_read_keeps_remainder(self):
        sock = self.socket()
        sock.deliver(b"abcdef")
        data, _ = sock.take_chunk(4)
        assert data == b"abcd"
        data, _ = sock.take_chunk(4)
        assert data == b"ef"

    def test_datagram_short_read_truncates(self):
        sock = self.socket(SockType.DGRAM)
        sock.deliver(b"abcdef")
        data, _ = sock.take_chunk(4)
        assert data == b"abcd"
        with pytest.raises(GuestError):
            sock.take_chunk(4)  # datagram remainder discarded

    def test_eof_after_peer_close(self):
        sock = self.socket()
        sock.peer_closed = True
        data, _ = sock.take_chunk(10)
        assert data == b""

    def test_coalesce_merges_same_source_only(self):
        sock = self.socket()
        sock.deliver(b"a", source=1, coalesce=True)
        sock.deliver(b"b", source=1, coalesce=True)
        sock.deliver(b"c", source=2, coalesce=True)
        assert [c.data for c in sock.recv_buf] == [b"ab", b"c"]

    def test_readable_states(self):
        sock = self.socket()
        assert not sock.readable()
        sock.deliver(b"x")
        assert sock.readable()


class TestFileSystem:
    def test_append_across_sectors(self):
        machine = make_machine()
        fs = FileSystem()
        fs.write_file(machine.disk, "/f", b"a" * 600)
        fs.write_file(machine.disk, "/f", b"b" * 600, append=True)
        content = fs.read_file(machine.disk, "/f")
        assert content == b"a" * 600 + b"b" * 600

    def test_overwrite_frees_sectors(self):
        machine = make_machine()
        fs = FileSystem()
        fs.write_file(machine.disk, "/f", b"x" * 2048)
        fs.write_file(machine.disk, "/f", b"y")
        assert fs.file_size("/f") == 1
        assert len(fs.free_sectors) >= 3

    def test_unlink_recycles(self):
        machine = make_machine()
        fs = FileSystem()
        fs.write_file(machine.disk, "/f", b"data")
        fs.unlink("/f")
        assert not fs.exists("/f")
        with pytest.raises(GuestError):
            fs.read_file(machine.disk, "/f")

    def test_listdir_prefix(self):
        machine = make_machine()
        fs = FileSystem()
        for path in ("/srv/a", "/srv/b", "/etc/c"):
            fs.write_file(machine.disk, path, b"")
        assert fs.listdir("/srv") == ["/srv/a", "/srv/b"]

    def test_disk_full(self):
        machine = Machine(memory_bytes=1 << 20, disk_sectors=20)
        fs = FileSystem()
        with pytest.raises(GuestError) as exc:
            fs.write_file(machine.disk, "/big", b"z" * (40 * 512))
        assert exc.value.errno is Errno.ENOSPC

    @given(st.lists(st.binary(min_size=1, max_size=300), min_size=1,
                    max_size=10))
    @settings(max_examples=30)
    def test_append_property(self, chunks):
        machine = make_machine()
        fs = FileSystem()
        for chunk in chunks:
            fs.write_file(machine.disk, "/log", chunk, append=True)
        assert fs.read_file(machine.disk, "/log") == b"".join(chunks)


class TickerProgram(Program):
    """Background-noise program: counts timer fires."""

    name = "ticker"
    timer_period = 0.5

    def __init__(self):
        self.ticks = 0

    def on_timer(self, api):
        self.ticks += 1


class TestTimers:
    def test_timers_fire_with_advancing_clock(self):
        machine = make_machine()
        kernel = Kernel(machine)
        proc = kernel.spawn(TickerProgram())
        kernel.run()
        assert proc.program.ticks == 0
        machine.clock.charge(2.0)  # e.g. AFLNet-style sleeps
        kernel.run()
        assert proc.program.ticks >= 1

    def test_snapshot_mode_keeps_timers_quiet(self):
        """Nyx's short executions barely advance time, so background
        timers (the paper's 'noise') rarely fire."""
        machine = make_machine()
        kernel = Kernel(machine)
        proc = kernel.spawn(TickerProgram())
        kernel.run()
        machine.clock.charge(0.001)  # one fast emulated exec
        kernel.run()
        assert proc.program.ticks == 0


class TestSerializationEdgeCases:
    def test_many_components_roundtrip(self):
        machine = make_machine()
        kernel = Kernel(machine)
        for port in range(20, 30):
            kernel.spawn(EchoServer(port))
        kernel.run()
        kernel.flush_to_memory(full=True)
        kernel.reload_from_memory()
        assert len(kernel.processes) == 10
        assert len(kernel.g.tcp_bindings) == 10

    def test_component_growth_reallocates_region(self):
        machine = make_machine()
        kernel = Kernel(machine)
        proc = kernel.spawn(EchoServer(31))
        kernel.run()
        kernel.flush_to_memory(full=True)
        # Grow the program's state well past its original region.
        proc.program.seen = [b"x" * 1000] * 50
        kernel.touch("proc:%d" % proc.pid)
        kernel.flush_to_memory()
        kernel.reload_from_memory()
        reloaded = kernel.processes[proc.pid]
        assert len(reloaded.program.seen) == 50

    def test_removed_component_disappears_after_reload(self):
        machine = make_machine()
        kernel = Kernel(machine)
        proc = kernel.spawn(EchoServer(32))
        kernel.run()
        kernel.flush_to_memory(full=True)
        api = kernel.api_for(proc.pid)
        api.close(proc.program.listen_fd)
        kernel.flush_to_memory()
        kernel.reload_from_memory()
        assert all(not key.startswith("sock:")
                   for key in kernel._regions) or \
            len([k for k in kernel._regions if k.startswith("sock:")]) == 0
