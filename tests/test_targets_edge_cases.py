"""Additional protocol edge cases across the target suite."""

import struct

import pytest

from repro.targets.dnsmasq import PROFILE as DNSMASQ, QTYPE_TXT, _query
from repro.targets.exim import PROFILE as EXIM
from repro.targets.kamailio import PROFILE as KAMAILIO, _sip
from repro.targets.lightftp import PROFILE as LIGHTFTP
from repro.targets.live555 import PROFILE as LIVE555, _req
from repro.targets.openssh import PROFILE as OPENSSH
from repro.targets.openssl import PROFILE as OPENSSL, _client_hello_bytes

from tests.target_harness import TargetHarness


class TestLightFtpEdges:
    @pytest.fixture()
    def ftp(self):
        return TargetHarness(LIGHTFTP)

    def login(self):
        return [b"USER anonymous\r\n", b"PASS x\r\n"]

    def test_cdup_walks_up(self, ftp):
        responses = ftp.send(*self.login(), b"CWD /srv/ftp/sub\r\n",
                             b"CDUP\r\n", b"PWD\r\n")
        assert b'257 "/srv/ftp"' in b"".join(responses)

    def test_port_validation(self, ftp):
        responses = ftp.send(*self.login(),
                             b"PORT 127,0,0,1,20,1\r\n",
                             b"PORT not,numbers\r\n")
        joined = b"".join(responses)
        assert b"200 PORT OK" in joined
        assert b"501 Bad PORT" in joined

    def test_rest_offset(self, ftp):
        responses = ftp.send(*self.login(), b"REST 100\r\n", b"REST x\r\n")
        joined = b"".join(responses)
        assert b"350" in joined and b"501" in joined

    def test_empty_command_line(self, ftp):
        responses = ftp.send(b"\r\n")
        assert b"500" in b"".join(responses)

    def test_size_of_missing_file(self, ftp):
        responses = ftp.send(*self.login(), b"SIZE ghost.bin\r\n")
        assert b"550" in b"".join(responses)


class TestDnsmasqEdges:
    @pytest.fixture()
    def dns(self):
        return TargetHarness(DNSMASQ)

    def test_txt_record(self, dns):
        responses = dns.send(_query(5, b"anything.example", QTYPE_TXT))
        assert b"dnsmasq ok" in responses[0]

    def test_response_bit_ignored(self, dns):
        packet = struct.pack(">HHHHHH", 1, 0x8400, 1, 0, 0, 0) + b"\x00" \
            + struct.pack(">HH", 1, 1)
        assert dns.send(packet) == []

    def test_excessive_qdcount_formerr(self, dns):
        packet = struct.pack(">HHHHHH", 1, 0x0100, 99, 0, 0, 0)
        responses = dns.send(packet)
        assert struct.unpack_from(">HHHHHH", responses[0], 0)[1] & 0xF == 1

    def test_label_too_long_is_poisoned_but_safe(self, dns):
        packet = struct.pack(">HHHHHH", 3, 0x0100, 1, 0, 0, 0) \
            + bytes([70]) + b"x" * 3 + struct.pack(">HH", 1, 1)
        dns.send(packet)
        assert dns.crash() is None


class TestEximEdges:
    @pytest.fixture()
    def smtp(self):
        return TargetHarness(EXIM)

    def test_pipelined_commands_in_one_packet(self, smtp):
        responses = smtp.send(b"EHLO a\r\nMAIL FROM:<x@a>\r\n"
                              b"RCPT TO:<y@b>\r\nDATA\r\n")
        assert b"354" in b"".join(responses)

    def test_rset_clears_transaction(self, smtp):
        responses = smtp.send(b"EHLO a\r\n", b"MAIL FROM:<x@a>\r\n",
                              b"RSET\r\n", b"RCPT TO:<y@b>\r\n")
        assert b"503" in b"".join(responses)  # sender gone after RSET

    def test_bad_body_param(self, smtp):
        responses = smtp.send(b"EHLO a\r\n",
                              b"MAIL FROM:<x@a> BODY=QUANTUM\r\n")
        assert b"501" in b"".join(responses)

    def test_relay_denied(self, smtp):
        responses = smtp.send(b"EHLO a\r\n", b"MAIL FROM:<x@a>\r\n",
                              b"RCPT TO:<no-at-sign>\r\n")
        assert b"550" in b"".join(responses)

    def test_vrfy_and_expn(self, smtp):
        responses = smtp.send(b"EHLO a\r\n", b"VRFY root\r\n", b"EXPN all\r\n")
        joined = b"".join(responses)
        assert b"252" in joined and b"550 Expansion" in joined


class TestKamailioEdges:
    @pytest.fixture()
    def sip(self):
        return TargetHarness(KAMAILIO)

    def test_folded_header(self, sip):
        raw = (b"OPTIONS sip:a@t.org SIP/2.0\r\n"
               b"Via: SIP/2.0/UDP h;\r\n branch=z9\r\n"
               b"Call-ID: fold-1\r\n\r\n")
        responses = sip.send(raw)
        assert b"200 OK" in responses[0]

    def test_tel_uri_accepted(self, sip):
        responses = sip.send(_sip(b"OPTIONS", b"tel:+15551234", b"t1", 1))
        assert b"200 OK" in responses[0]

    def test_bad_scheme_416(self, sip):
        responses = sip.send(_sip(b"OPTIONS", b"gopher:x", b"g1", 1))
        assert b"416" in responses[0]

    def test_deregistration(self, sip):
        sip.send(_sip(b"REGISTER", b"sip:a@t.org", b"r1", 1,
                      b"Contact: <sip:a@h>"))
        assert b"sip:a@t.org" in sip.program.registrations
        sip.send(_sip(b"REGISTER", b"sip:a@t.org", b"r2", 2,
                      b"Contact: *", b"Expires: 0"))
        assert b"sip:a@t.org" not in sip.program.registrations

    def test_message_too_large(self, sip):
        responses = sip.send(_sip(b"MESSAGE", b"sip:a@t.org", b"m9", 1,
                                  body=b"z" * 1400))
        assert b"513" in responses[0]


class TestTlsSshEdges:
    def test_openssl_sni_recorded(self):
        tls = TargetHarness(OPENSSL)
        tls.send(_client_hello_bytes(sni=b"secret.host"))
        server = next(p for p in tls.kernel.processes.values()).program
        ctx = next(iter(server.conns.values()))
        assert ctx.vars.get("sni") == b"secret.host"

    def test_openssl_fragmented_record_buffered(self):
        tls = TargetHarness(OPENSSL)
        hello = _client_hello_bytes()
        # Split the record across two TCP chunks.
        responses = tls.send(hello[:10], hello[10:])
        assert responses  # handshake proceeded once reassembled

    def test_openssh_auth_rate_limit(self):
        from repro.targets.openssh import (_kexinit_bytes, _pack_string,
                                           _packet_bytes, MSG_KEXDH_INIT,
                                           MSG_NEWKEYS, MSG_SERVICE_REQUEST,
                                           MSG_USERAUTH_REQUEST)
        ssh = TargetHarness(OPENSSH)
        bad_auth = _packet_bytes(bytes([MSG_USERAUTH_REQUEST])
                                 + _pack_string(b"root")
                                 + _pack_string(b"ssh-connection")
                                 + _pack_string(b"password") + b"\x00"
                                 + _pack_string(b"guess"))
        packets = [b"SSH-2.0-c\r\n", _kexinit_bytes(),
                   _packet_bytes(bytes([MSG_KEXDH_INIT]) + bytes(32)),
                   _packet_bytes(bytes([MSG_NEWKEYS])),
                   _packet_bytes(bytes([MSG_SERVICE_REQUEST])
                                 + _pack_string(b"ssh-userauth"))]
        packets += [bad_auth] * 8
        ssh.send(*packets)
        server = next(p for p in ssh.kernel.processes.values()).program
        ctx = next(iter(server.conns.values()))
        assert ctx.state == "closed"  # too many failures -> disconnect


class TestLive555Edges:
    def test_interleaved_transport(self):
        rtsp = TargetHarness(LIVE555)
        responses = rtsp.send(_req(
            b"SETUP", b"rtsp://h/stream0", 1,
            b"Transport: RTP/AVP/TCP;interleaved=0-1"))
        assert b"interleaved=0-1" in responses[0]

    def test_unknown_method_405(self):
        rtsp = TargetHarness(LIVE555)
        responses = rtsp.send(_req(b"RECORD", b"rtsp://h/stream0", 1))
        assert b"405" in responses[0]
