"""Table 1: crashes found by each fuzzer in ProFuzzBench.

Paper shape to reproduce:

* dcmtk, dnsmasq, live555, tinydtls crash under the AFL family *and*
  Nyx-Net (dcmtk only reliably with ASAN for Nyx — the (✓) footnote);
* exim and proftpd crash **only** under Nyx-Net ("Nyx-Net managed to
  find bugs in two targets of ProFuzzBench that no other fuzzer is
  able to uncover");
* pure-ftpd's internal OOM is only reached by AFLNET-no-state (the *
  footnote);
* AFL++ + desock is n/a on most targets.
"""

from __future__ import annotations

from repro.bench.profuzzbench import run_matrix
from repro.bench.reporting import crash_matrix, crash_table


def _found(matrix_bugs, fuzzers, target, bug_fragment):
    return any(
        any(bug_fragment in bug for bug in matrix_bugs.get((f, target), []))
        for f in fuzzers)


NYX = ("nyx-none", "nyx-balanced", "nyx-aggressive")
AFL_FAMILY = ("aflnet", "aflnet-no-state", "aflnwe")


def test_table1_crash_matrix(benchmark, bench_config, save_artifact):
    matrix = benchmark.pedantic(
        lambda: run_matrix(config=bench_config), rounds=1, iterations=1)
    save_artifact("table1_crashes.txt", crash_table(matrix))
    bugs = crash_matrix(matrix)

    # Shared shallow bugs: both families find them.
    for target, fragment in (("dnsmasq", "dnsmasq-ptrloop"),
                             ("tinydtls", "tinydtls-frag"),
                             ("live555", "live555-url"),
                             ("dcmtk", "dcmtk-userinfo")):
        assert _found(bugs, NYX, target, fragment), \
            "Nyx-Net should crash %s" % target
        assert _found(bugs, AFL_FAMILY, target, fragment), \
            "the AFL family should crash %s" % target

    # Nyx-only bugs (exim, proftpd).
    nyx_only = 0
    for target, fragment in (("exim", "exim-spool"),
                             ("proftpd", "proftpd-deflate")):
        assert not _found(bugs, AFL_FAMILY + ("afl++",), target, fragment), \
            "%s bug must stay out of reach of the AFL family" % target
        if _found(bugs, NYX, target, fragment):
            nyx_only += 1
    assert nyx_only >= 1, \
        "Nyx-Net should uncover at least one of the two deep bugs"

    # pure-ftpd: the internal OOM belongs to AFLNET-no-state alone.
    assert not _found(bugs, NYX + ("aflnet",), "pure-ftpd", "oom")
