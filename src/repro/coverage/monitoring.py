"""``sys.monitoring`` (PEP 669) tracer backend for CPython 3.12+.

Produces site streams byte-identical to the ``sys.settrace`` backend
(:class:`repro.coverage.tracer.EdgeTracer`) — the differential suite
in ``tests/test_coverage_backends.py`` pins the equivalence — while
paying per-*location* instead of per-*event* cost for everything the
tracer does not care about:

* untraced code (kernel, fuzzer, libraries) returns
  ``sys.monitoring.DISABLE`` from its first START/LINE/JUMP/BRANCH
  event at each location, so steady-state cost there is zero (the
  settrace backend pays a dict probe per call forever);
* traced code keeps LINE events (they are the site stream) but
  disables every JUMP/BRANCH location that provably cannot produce a
  same-line backward jump — the one case where ``sys.settrace``
  re-fires a line event that ``sys.monitoring`` coalesces away.

That last point is the whole equivalence subtlety: ``sys.settrace``
emits a line event every time execution jumps backwards to an
instruction of the *same* line (comprehension loops, one-line
``while`` bodies); PEP 669 LINE events only fire when the line
*changes*.  The JUMP/BRANCH callbacks synthesize exactly the missing
events, using the static line table, and everything else folds through
the shared :class:`~repro.coverage.tracer.TracerCore` pipeline.

``sys.monitoring`` has process-global callbacks per tool id, so a
module-level host owns the tool id and routes events to the active
tracer instance (parallel campaigns create one tracer per worker).
Per-location DISABLE state is also process-global and sticky across
``set_events`` windows; it encodes "this location is untraced", which
is only valid for one ``traced_fragments`` signature — the host calls
``restart_events()`` whenever a tracer with a different signature
takes over.
"""

from __future__ import annotations

import dis
import sys
from typing import Dict, Optional, Tuple

from repro.coverage.bitmap import MAP_SIZE
from repro.coverage.tracer import (DEFAULT_TRACED_FRAGMENTS, FOLD_MEMO_LIMIT,
                                   TracerCore, _stable_site)


def monitoring_available() -> bool:
    """True when this interpreter implements PEP 669."""
    return hasattr(sys, "monitoring")


#: Tool-id candidates, preferred first.  COVERAGE_ID (1) is the
#: conventional slot for coverage tools; the fallbacks matter when a
#: host process (e.g. coverage.py under pytest) already claimed it.
_TOOL_CANDIDATES = (1, 4, 3, 2, 0)

_JUMP_OPCODES = frozenset(dis.hasjrel) | frozenset(dis.hasjabs)


class _MonitoringHost:
    """Owns the process-global tool id and the active-tracer routing.

    The event mask stays ON between executions ("open window"): all
    code the tracer does not care about self-disables per location, so
    an idle open window costs nothing, while toggling ``set_events``
    around every guest time slice costs ~30% of campaign throughput.
    The window only closes while a deterministic prefix replays with
    elision (events there would append already-recorded sites) and on
    :func:`deactivate`.
    """

    def __init__(self) -> None:
        self.tool_id: Optional[int] = None
        self.owner: Optional["MonitoringTracer"] = None
        self.events_on = False
        #: ``traced_fragments`` signature the sticky DISABLE state was
        #: built for; a different signature means locations disabled as
        #: "untraced" might be traced now, so all events restart.
        self.disable_signature: Optional[Tuple[str, ...]] = None

    def acquire_tool(self) -> int:
        if self.tool_id is not None:
            return self.tool_id
        monitoring = sys.monitoring
        last_error: Optional[Exception] = None
        for candidate in _TOOL_CANDIDATES:
            try:
                monitoring.use_tool_id(candidate, "repro-edge-tracer")
                self.tool_id = candidate
                return candidate
            except ValueError as err:  # slot in use by another tool
                last_error = err
        raise RuntimeError("no free sys.monitoring tool id: %s" % last_error)

    def arm(self, tracer: "MonitoringTracer") -> None:
        """Route events to ``tracer`` and open the event window."""
        monitoring = sys.monitoring
        tool = self.acquire_tool()
        if self.owner is not tracer:
            self.owner = tracer
            events = monitoring.events
            for event, callback in (
                    (events.PY_START, tracer._on_start),
                    (events.PY_RESUME, tracer._on_start),
                    (events.PY_THROW, tracer._on_throw),
                    (events.LINE, tracer._on_line),
                    (events.JUMP, tracer._on_jump),
                    (events.BRANCH, tracer._on_jump)):
                monitoring.register_callback(tool, event, callback)
        if self.disable_signature != tracer.traced_fragments:
            if self.disable_signature is not None:
                monitoring.restart_events()
            self.disable_signature = tracer.traced_fragments
        if not self.events_on:
            monitoring.set_events(tool, tracer._events)
            self.events_on = True

    def disarm(self) -> None:
        """Close the event window (elision replay, or tear-down)."""
        if self.events_on and self.tool_id is not None:
            sys.monitoring.set_events(self.tool_id, 0)
            self.events_on = False


_HOST = _MonitoringHost()


def deactivate() -> None:
    """Close the monitoring window and drop the active tracer.

    Campaigns never need this (an idle open window is free); tests use
    it to keep one test's tracer from warming DISABLE state while
    unrelated code runs.
    """
    _HOST.disarm()
    _HOST.owner = None


class MonitoringTracer(TracerCore):
    """PEP 669 backend; byte-identical streams to :class:`EdgeTracer`."""

    backend_name = "monitoring"

    def __init__(self, traced_fragments: Tuple[str, ...] = DEFAULT_TRACED_FRAGMENTS,
                 map_size: int = MAP_SIZE,
                 fold_memo_limit: int = FOLD_MEMO_LIMIT) -> None:
        if not monitoring_available():
            raise RuntimeError(
                "sys.monitoring requires Python 3.12+ (running %s); use the "
                "settrace backend" % sys.version.split()[0])
        super().__init__(traced_fragments, map_size, fold_memo_limit)
        monitoring = sys.monitoring
        events = monitoring.events
        self._events = (events.PY_START | events.PY_RESUME | events.PY_THROW
                        | events.LINE | events.JUMP | events.BRANCH)
        self._disable = monitoring.DISABLE
        #: id(code) -> (base site, base*33) for traced code, None for
        #: untraced (same keying caveat as EdgeTracer: id() is only the
        #: cache key, sites come from the stable hash).
        self._entries: Dict[int, Optional[Tuple[int, int]]] = {}
        #: id(code) -> (offset -> line table, offsets that may jump
        #: backwards); lazily built for traced code on its first
        #: JUMP/BRANCH event.
        self._jump_info: Dict[int, Tuple[Dict[int, int], frozenset]] = {}
        self._build_callbacks()

    # -- execution wrapper ---------------------------------------------------

    def run(self, fn, *args) -> None:
        """Run ``fn(*args)`` with the monitoring window open.

        The window is left open on exit (see :class:`_MonitoringHost`);
        the fast path when this tracer is already routed is two
        attribute probes.  While suspended (prefix elision) the window
        must actively close — unlike ``sys.settrace``, an installed
        mask keeps firing regardless of which wrapper runs the code.
        """
        if self._suspended:
            if _HOST.events_on and _HOST.owner is self:
                _HOST.disarm()
            fn(*args)
            return
        if not _HOST.events_on or _HOST.owner is not self:
            _HOST.arm(self)
        fn(*args)

    # -- per-code classification ---------------------------------------------

    def _entry(self, code) -> Optional[Tuple[int, int]]:
        key = id(code)
        entry = self._entries.get(key, 0)
        if entry == 0:
            filename = code.co_filename
            if any(fragment in filename
                   for fragment in self.traced_fragments):
                base = _stable_site("%s:%s:%d" % (filename, code.co_name,
                                                  code.co_firstlineno))
                entry = (base, base * 33)
            else:
                entry = None
            self._entries[key] = entry
        return entry

    def _jump_tables(self, code) -> Tuple[Dict[int, int], frozenset]:
        key = id(code)
        info = self._jump_info.get(key)
        if info is None:
            lines: Dict[int, int] = {}
            for start, end, line in code.co_lines():
                if line is None:
                    continue
                for offset in range(start, end, 2):
                    lines[offset] = line
            # Offsets whose instruction has a static jump target behind
            # it: the only locations that can ever produce a backward
            # JUMP/BRANCH event.  Everything else gets DISABLEd on
            # first sight (a fall-through arm is always forward).
            backward = set()
            for inst in dis.get_instructions(code):
                if inst.opcode in _JUMP_OPCODES:
                    target = inst.argval
                    if isinstance(target, int) and target < inst.offset:
                        backward.add(inst.offset)
            info = (lines, frozenset(backward))
            self._jump_info[key] = info
        return info

    # -- event callbacks -----------------------------------------------------

    def _build_callbacks(self) -> None:
        """Specialize the event callbacks over pre-bound locals.

        These run once per surviving event — after the DISABLE warm-up,
        that is every line of traced code — so like the settrace
        backend's local callbacks they avoid attribute and method
        lookups on the hot path: one dict probe, one append.
        """
        entries = self._entries
        entry_of = self._entry
        jump_tables = self._jump_tables
        append = self._stream.append
        disable = self._disable

        def on_start(code, offset):
            entry = entries.get(id(code), 0)
            if entry == 0:
                entry = entry_of(code)
            if entry is None:
                return disable
            append(entry[0])

        def on_throw(code, offset, exc):
            # A throw into a frame is settrace's 'call' event on
            # generator resume-with-exception; exception events cannot
            # be DISABLEd.
            entry = entries.get(id(code), 0)
            if entry == 0:
                entry = entry_of(code)
            if entry is None:
                return None
            append(entry[0])

        def on_line(code, line):
            entry = entries.get(id(code), 0)
            if entry == 0:
                entry = entry_of(code)
            if entry is None:
                return disable
            append((entry[1] + line) & 0xFFFFFFFF)

        def on_jump(code, src, dst):
            entry = entries.get(id(code), 0)
            if entry == 0:
                entry = entry_of(code)
            if entry is None:
                return disable
            lines, backward = jump_tables(code)
            if src not in backward:
                # This location can never jump backwards: no same-line
                # backward edge to synthesize, ever.
                return disable
            if dst < src:
                line = lines.get(dst)
                if line is not None and line == lines.get(src):
                    # settrace re-fires the line event on a backward
                    # jump landing on the same line; synthesize it.
                    append((entry[1] + line) & 0xFFFFFFFF)
            return None

        self._on_start = on_start
        self._on_throw = on_throw
        self._on_line = on_line
        self._on_jump = on_jump
