"""bftpd: a forking FTP server.

Unlike lightftp, bftpd forks one worker per connection (the classic
inetd style) — exercising the fd-inheritance tracking of the emulation
layer and the process roll-back of snapshots.  Table 1 lists no
crashes for bftpd, so no bug is planted.
"""

from __future__ import annotations

from typing import Optional

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import Errno, GuestError
from repro.guestos.process import Program
from repro.guestos.sockets import SockDomain, SockType
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, TargetProfile

PORT = 2021

_GREETING = b"220 bftpd 4.6 at your service\r\n"


class BftpdServer(Program):
    """The accept loop; real work happens in forked workers."""

    name = "bftpd"
    startup_cost = 0.03

    def __init__(self) -> None:
        self.listen_fd: Optional[int] = None
        self.asan = True
        self.heap_slack = 3
        self.children_spawned = 0

    def on_start(self, api) -> None:
        api.cpu(self.startup_cost)
        api.write_whole_file("/etc/bftpd.conf", b"ALLOWCOMMAND_DELE=no\n")
        self.listen_fd = api.socket(SockDomain.INET, SockType.STREAM)
        api.bind(self.listen_fd, PORT)
        api.listen(self.listen_fd, backlog=8)

    def poll(self, api) -> None:
        if self.listen_fd is None:
            return
        while True:
            try:
                fd = api.accept(self.listen_fd)
            except GuestError as err:
                if err.errno is Errno.EAGAIN:
                    return
                raise
            self.children_spawned += 1
            api.fork_child(BftpdWorker(fd))
            api.close(fd)


class BftpdWorker(Program):
    """One FTP session in a forked child."""

    name = "bftpd-worker"

    def __init__(self, fd: int) -> None:
        self.fd = fd
        self.ctx = ConnCtx(fd)
        self.greeted = False
        self.done = False

    def poll(self, api) -> None:
        if self.done:
            return
        if not self.greeted:
            self.greeted = True
            self._reply(api, _GREETING)
        while not self.done:
            try:
                data = api.recv(self.fd)
            except GuestError as err:
                if err.errno is Errno.EAGAIN:
                    return
                self._finish(api)
                return
            if data == b"":
                self._finish(api)
                return
            api.cpu(2e-9 * len(data) + 1e-6)
            self.ctx.buffer += data
            while b"\n" in self.ctx.buffer:
                idx = self.ctx.buffer.find(b"\n")
                line, self.ctx.buffer = (self.ctx.buffer[:idx + 1],
                                         self.ctx.buffer[idx + 1:])
                self._command(api, line.strip())

    def _finish(self, api) -> None:
        self.done = True
        try:
            api.close(self.fd)
        except GuestError:
            pass
        api.exit(0)

    def _reply(self, api, data: bytes) -> None:
        try:
            api.send(self.fd, data)
        except GuestError:
            pass

    def _command(self, api, line: bytes) -> None:
        parts = line.split(None, 1)
        if not parts:
            self._reply(api, b"500 Syntax error\r\n")
            return
        cmd = parts[0].upper()
        arg = parts[1] if len(parts) > 1 else b""
        ctx = self.ctx
        if cmd == b"USER":
            ctx.vars["user"] = arg
            self._reply(api, b"331 Password please\r\n")
        elif cmd == b"PASS":
            if ctx.vars.get("user"):
                ctx.state = "authed"
                self._reply(api, b"230 User logged in\r\n")
            else:
                self._reply(api, b"503 USER first\r\n")
        elif cmd == b"QUIT":
            self._reply(api, b"221 Bye\r\n")
            self._finish(api)
        elif ctx.state != "authed":
            self._reply(api, b"530 Please login\r\n")
        elif cmd == b"PWD":
            self._reply(api, b'257 "/" is cwd\r\n')
        elif cmd == b"CWD":
            ctx.vars["cwd"] = arg[:128]
            self._reply(api, b"250 OK\r\n")
        elif cmd == b"TYPE":
            if arg.upper() in (b"A", b"I", b"L8"):
                self._reply(api, b"200 Type okay\r\n")
            else:
                self._reply(api, b"501 Unknown type\r\n")
        elif cmd == b"PASV":
            ctx.vars["data"] = True
            self._reply(api, b"227 Passive (127,0,0,1,10,1)\r\n")
        elif cmd == b"LIST" or cmd == b"NLST":
            if ctx.vars.get("data"):
                self._reply(api, b"150 Here comes the listing\r\n226 Done\r\n")
            else:
                self._reply(api, b"425 No data connection\r\n")
        elif cmd == b"RETR" or cmd == b"STOR":
            if not ctx.vars.get("data"):
                self._reply(api, b"425 No data connection\r\n")
            elif not arg:
                self._reply(api, b"501 Missing filename\r\n")
            else:
                self._reply(api, b"150 Transferring\r\n226 Done\r\n")
        elif cmd == b"MKD":
            if arg:
                api.write_whole_file("/ftp/%s/.dir" % arg[:32].decode("latin1"),
                                     b"")
                self._reply(api, b"257 Created\r\n")
            else:
                self._reply(api, b"501 Missing dirname\r\n")
        elif cmd == b"SITE":
            sub = arg.split(None, 1)[0].upper() if arg else b""
            if sub == b"CHMOD":
                self._reply(api, b"200 CHMOD done\r\n")
            elif sub == b"HELP":
                self._reply(api, b"214 SITE CHMOD HELP\r\n")
            else:
                self._reply(api, b"500 Unknown SITE\r\n")
        elif cmd == b"HELP":
            self._reply(api, b"214 Commands: USER PASS QUIT PWD CWD TYPE\r\n")
        elif cmd == b"NOOP":
            self._reply(api, b"200 Zzz\r\n")
        else:
            self._reply(api, b"500 Unknown command\r\n")


DICTIONARY = [b"USER ftp", b"PASS ", b"PASV", b"LIST", b"RETR ", b"STOR ",
              b"MKD ", b"SITE CHMOD", b"TYPE I", b"QUIT", b"\r\n"]


def make_seeds():
    spec = default_network_spec()
    seeds = []
    for session in (
        [b"USER ftp\r\n", b"PASS ftp\r\n", b"PWD\r\n", b"QUIT\r\n"],
        [b"USER admin\r\n", b"PASS pw\r\n", b"PASV\r\n", b"LIST\r\n",
         b"TYPE I\r\n", b"RETR file.bin\r\n", b"QUIT\r\n"],
        [b"USER u\r\n", b"PASS p\r\n", b"MKD new\r\n", b"SITE CHMOD 644 x\r\n",
         b"QUIT\r\n"],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for line in session:
            builder.packet(con, line)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="bftpd",
    protocol="ftp",
    make_program=BftpdServer,
    surface_factory=lambda: AttackSurface.tcp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.03,
    libpreeny_compatible=False,  # forking breaks desock
    planted_bugs=(),
    notes="Forking server; exercises fd inheritance and process rollback.",
)
