"""Unit tests for guest physical memory and dirty logging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.memory import (PAGE_SIZE, GuestMemory, MemoryError_,
                             RegionAllocator, iter_page_chunks, pages_for)


class TestGeometry:
    def test_rounds_up_to_pages(self):
        mem = GuestMemory(PAGE_SIZE + 1)
        assert mem.num_pages == 2
        assert mem.size_bytes == 2 * PAGE_SIZE

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            GuestMemory(0)

    def test_starts_zeroed_and_clean(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        assert mem.read(0, 16) == bytes(16)
        assert mem.dirty_count == 0


class TestReadWrite:
    def test_write_read_roundtrip(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.write(100, b"hello world")
        assert mem.read(100, 11) == b"hello world"

    def test_write_spanning_pages(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        data = bytes(range(256)) * 20  # 5120 bytes, crosses a boundary
        mem.write(PAGE_SIZE - 100, data)
        assert mem.read(PAGE_SIZE - 100, len(data)) == data
        assert sorted(mem.dirty_stack) == [0, 1, 2]

    def test_out_of_range_read_raises(self):
        mem = GuestMemory(PAGE_SIZE)
        with pytest.raises(MemoryError_):
            mem.read(PAGE_SIZE - 1, 2)

    def test_out_of_range_write_raises(self):
        mem = GuestMemory(PAGE_SIZE)
        with pytest.raises(MemoryError_):
            mem.write(PAGE_SIZE, b"x")

    def test_zero_length_read(self):
        mem = GuestMemory(PAGE_SIZE)
        assert mem.read(0, 0) == b""


class TestSealingTiers:
    """The write-combining scheme: unsealed bytearray pages vs sealed
    ``bytes`` pages (docs/performance.md)."""

    def test_subpage_write_unseals_then_page_reseals(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.write(10, b"abc")
        assert 0 in mem._unsealed
        page = mem.page(0)
        assert type(page) is bytes
        assert 0 not in mem._unsealed
        assert page[10:13] == b"abc"

    def test_repeated_writes_mutate_in_place(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.write(0, b"a")
        buf = mem._pages[0]
        mem.write(1, b"b")
        assert mem._pages[0] is buf  # no per-write page rebuild
        assert mem.read(0, 2) == b"ab"

    def test_whole_page_write_adopts_bytes_by_reference(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        payload = bytes(range(256)) * 16
        mem.write(PAGE_SIZE, payload)
        assert mem._pages[1] is payload  # sealed for free
        assert not mem._unsealed

    def test_seal_all_is_idempotent_and_content_preserving(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.write(5, b"x")
        mem.write(PAGE_SIZE + 7, b"y")
        mem.seal_all()
        assert not mem._unsealed
        mem.seal_all()
        assert mem.read(5, 1) == b"x"
        assert mem.read(PAGE_SIZE + 7, 1) == b"y"

    def test_pages_snapshot_never_leaks_mutable_pages(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.write(3, b"q")
        snap = mem.pages_snapshot()
        assert all(type(p) is bytes for p in snap)
        mem.write(3, b"z")  # must not mutate the snapshot's view
        assert snap[0][3:4] == b"q"

    def test_sealing_does_not_touch_dirty_log(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.write(0, b"a")
        mem.take_dirty()
        mem.seal_all()
        mem.page(0)
        assert mem.dirty_count == 0


class TestReadFastPath:
    """Single-page reads take a direct-slice fast path; straddling
    reads assemble chunks — both must agree byte-for-byte."""

    def test_single_page_read_returns_bytes_from_sealed_page(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.write(0, bytes(PAGE_SIZE))  # whole-page: lands sealed
        out = mem.read(100, 50)
        assert type(out) is bytes
        assert out == bytes(50)

    def test_single_page_read_returns_bytes_from_unsealed_page(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.write(100, b"hot")  # sub-page: page is a private bytearray
        out = mem.read(100, 3)
        assert type(out) is bytes
        assert out == b"hot"

    def test_read_straddling_page_boundary(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        left = bytes([7]) * 64
        right = bytes([9]) * 64
        mem.write(PAGE_SIZE - 64, left)
        mem.write(PAGE_SIZE, right)
        assert mem.read(PAGE_SIZE - 64, 128) == left + right

    def test_read_straddling_sealed_and_unsealed_pages(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.write(PAGE_SIZE, bytes([1]) * PAGE_SIZE)  # page 1 sealed
        mem.write(2 * PAGE_SIZE + 5, b"\x02")         # page 2 unsealed
        out = mem.read(2 * PAGE_SIZE - 8, 16)
        assert type(out) is bytes
        assert out == bytes([1]) * 8 + bytes(5) + b"\x02" + bytes(2)

    def test_read_spanning_three_pages(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        data = bytes(range(256)) * ((2 * PAGE_SIZE + 512) // 256)
        mem.write(PAGE_SIZE - 256, data)
        assert mem.read(PAGE_SIZE - 256, len(data)) == data

    def test_exact_page_read_at_boundary_is_whole_page(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.write(PAGE_SIZE, b"edge")
        out = mem.read(PAGE_SIZE, PAGE_SIZE)
        assert len(out) == PAGE_SIZE
        assert out[:4] == b"edge"

    @given(st.integers(0, 3 * PAGE_SIZE - 1), st.integers(0, PAGE_SIZE + 17))
    @settings(max_examples=60)
    def test_fast_path_agrees_with_bytewise_reads(self, addr, length):
        mem = GuestMemory(4 * PAGE_SIZE)
        pattern = bytes((i * 31 + 7) & 0xFF for i in range(PAGE_SIZE))
        mem.write(0, pattern)            # page 0 sealed (whole-page)
        mem.write(PAGE_SIZE + 3, b"mid")  # page 1 unsealed
        mem.write(2 * PAGE_SIZE, pattern)
        chunk = mem.read(addr, length)
        assert chunk == b"".join(mem.read(addr + i, 1)
                                 for i in range(length))


class TestDirtyLogging:
    def test_first_write_pushes_stack_once(self):
        mem = GuestMemory(8 * PAGE_SIZE)
        mem.write(0, b"a")
        mem.write(1, b"b")
        mem.write(10, b"c")
        assert mem.dirty_stack == [0]
        assert mem.dirty_count == 1

    def test_take_dirty_clears_both_structures(self):
        mem = GuestMemory(8 * PAGE_SIZE)
        mem.write(0, b"a")
        mem.write(PAGE_SIZE * 3, b"b")
        pages = mem.take_dirty()
        assert sorted(pages) == [0, 3]
        assert mem.dirty_count == 0
        assert not any(mem.dirty_bitmap)

    def test_scan_bitmap_matches_stack(self):
        mem = GuestMemory(16 * PAGE_SIZE)
        for page in (1, 5, 9):
            mem.write(page * PAGE_SIZE, b"x")
        assert mem.scan_bitmap() == [1, 5, 9]
        assert mem.dirty_count == 0

    def test_redirty_after_flush_is_logged_again(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.write(0, b"a")
        mem.take_dirty()
        mem.write(0, b"b")
        assert mem.dirty_stack == [0]

    def test_set_page_without_log(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.set_page(2, bytes(PAGE_SIZE), log=False)
        assert mem.dirty_count == 0

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
    @settings(max_examples=50)
    def test_stack_is_exact_set_of_dirty_pages(self, pages):
        mem = GuestMemory(64 * PAGE_SIZE)
        for page in pages:
            mem.write(page * PAGE_SIZE, b"\xff")
        assert sorted(set(pages)) == sorted(mem.dirty_stack)

    @given(st.binary(min_size=1, max_size=3 * PAGE_SIZE),
           st.integers(min_value=0, max_value=PAGE_SIZE))
    @settings(max_examples=50)
    def test_roundtrip_any_offset(self, data, offset):
        mem = GuestMemory(8 * PAGE_SIZE)
        mem.write(offset, data)
        assert mem.read(offset, len(data)) == data


class TestRegionAllocator:
    def test_alloc_is_page_aligned_and_disjoint(self):
        mem = GuestMemory(64 * PAGE_SIZE)
        alloc = RegionAllocator(mem)
        r1 = alloc.alloc(100)
        r2 = alloc.alloc(PAGE_SIZE + 1)
        assert r1.num_pages == 1
        assert r2.num_pages == 2
        assert r2.start_page == r1.start_page + r1.num_pages

    def test_blob_roundtrip(self):
        mem = GuestMemory(64 * PAGE_SIZE)
        alloc = RegionAllocator(mem)
        region = alloc.alloc(1000)
        alloc.write_blob(region, b"state blob")
        assert alloc.read_blob(region) == b"state blob"

    def test_blob_too_large_raises(self):
        mem = GuestMemory(64 * PAGE_SIZE)
        alloc = RegionAllocator(mem)
        region = alloc.alloc(100)  # one page
        with pytest.raises(MemoryError_):
            alloc.write_blob(region, bytes(PAGE_SIZE))

    def test_oom(self):
        mem = GuestMemory(2 * PAGE_SIZE)
        alloc = RegionAllocator(mem)
        alloc.alloc(2 * PAGE_SIZE)
        with pytest.raises(MemoryError_):
            alloc.alloc(1)

    def test_bump_pointer_state_roundtrip(self):
        mem = GuestMemory(8 * PAGE_SIZE)
        alloc = RegionAllocator(mem)
        alloc.alloc(PAGE_SIZE)
        saved = alloc.state()
        alloc.alloc(PAGE_SIZE)
        alloc.set_state(saved)
        assert alloc.state() == saved


def test_pages_for():
    assert pages_for(1) == 1
    assert pages_for(PAGE_SIZE) == 1
    assert pages_for(PAGE_SIZE + 1) == 2


def test_iter_page_chunks_pads_last():
    chunks = list(iter_page_chunks(b"x" * (PAGE_SIZE + 5)))
    assert len(chunks) == 2
    assert all(len(c) == PAGE_SIZE for c in chunks)
    assert chunks[1][:5] == b"xxxxx"
