"""Tests for the ASCII chart renderer."""

from repro.bench.plots import ascii_chart, coverage_chart, fig6_chart


class TestAsciiChart:
    def test_empty(self):
        assert "(no data)" in ascii_chart({}, title="t")

    def test_single_series_dimensions(self):
        chart = ascii_chart({"a": [(0, 0), (10, 100)]}, width=40, height=8,
                            title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert len([line for line in lines if "|" in line]) == 8

    def test_glyphs_distinct_per_series(self):
        chart = ascii_chart({"up": [(0, 0), (10, 10)],
                             "down": [(0, 10), (10, 0)]})
        assert "o up" in chart and "* down" in chart
        assert "o" in chart and "*" in chart

    def test_log_axis_labels(self):
        chart = ascii_chart({"a": [(1, 1), (1000, 1000)]},
                            log_x=True, log_y=True)
        assert "1e+03" in chart or "1000" in chart

    def test_extreme_flat_series(self):
        chart = ascii_chart({"flat": [(0, 5), (10, 5)]})
        assert "|" in chart  # no div-by-zero on zero spans


class TestFigureCharts:
    def test_coverage_chart_extends_to_budget(self):
        chart = coverage_chart({"nyx": [(0.1, 50)],
                                "aflnet": [(1.0, 10), (500.0, 45)]},
                               target="lightftp", budget=600.0)
        assert "lightftp" in chart
        assert "legend:" in chart

    def test_fig6_chart_filters_rows(self):
        rows = [
            ("nyx-net", 128, 100, "create", 1e-4, 1e-3),
            ("nyx-net", 128, 1000, "create", 1e-3, 1e-2),
            ("agamotto", 128, 100, "create", 1e-3, 1e-2),
            ("agamotto", 128, 1000, "create", 2e-3, 2e-2),
            ("nyx-net", 1024, 100, "create", 1e-4, 1e-3),  # other VM
            ("nyx-net", 128, 100, "restore", 1e-4, 1e-3),  # other op
        ]
        chart = fig6_chart(rows, op="create", vm_mb=128)
        assert "128 MiB" in chart
        assert "nyx-net" in chart and "agamotto" in chart
