"""Unit tests for the coverage bitmap and edge tracer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.bitmap import (BUCKET_LOOKUP, CoverageMap, MAP_SIZE,
                                   classify_counts, count_bits)
from repro.coverage.tracer import EdgeTracer


class TestBuckets:
    def test_afl_bucket_boundaries(self):
        expected = {0: 0, 1: 1, 2: 2, 3: 4, 4: 8, 7: 8, 8: 16, 15: 16,
                    16: 32, 31: 32, 32: 64, 127: 64, 128: 128, 255: 128}
        for count, bucket in expected.items():
            assert BUCKET_LOOKUP[count] == bucket, count

    def test_classify_counts_sparse(self):
        assert classify_counts({5: 1, 9: 300}) == {5: 1, 9: 128}


class TestCoverageMap:
    def test_new_edge_then_nothing(self):
        cov = CoverageMap()
        assert cov.has_new_bits({10: 1}) == CoverageMap.NEW_EDGE
        assert cov.has_new_bits({10: 1}) == CoverageMap.NEW_NOTHING

    def test_new_count_bucket(self):
        cov = CoverageMap()
        cov.has_new_bits({10: 1})
        assert cov.has_new_bits({10: 5}) == CoverageMap.NEW_COUNT
        assert cov.has_new_bits({10: 5}) == CoverageMap.NEW_NOTHING

    def test_edge_count_tracks_distinct_edges(self):
        cov = CoverageMap()
        cov.has_new_bits({1: 1, 2: 1})
        cov.has_new_bits({2: 3, 3: 1})
        assert cov.edge_count() == 3

    def test_update_false_leaves_virgin_untouched(self):
        cov = CoverageMap()
        assert cov.has_new_bits({7: 1}, update=False) == CoverageMap.NEW_EDGE
        assert cov.edges_seen == 0
        assert cov.has_new_bits({7: 1}) == CoverageMap.NEW_EDGE

    def test_aliasing_indices_count_edge_once(self):
        # Regression: two trace indices landing on the same map slot
        # (idx and idx + MAP_SIZE) are one edge, and edges_seen must
        # reflect post-mask slots, not pre-mask indices.
        cov = CoverageMap()
        assert cov.has_new_bits({5: 1, MAP_SIZE + 5: 1}) == CoverageMap.NEW_EDGE
        assert cov.edges_seen == 1
        assert cov.edge_count() == 1
        # The slot is now known under either alias.
        assert cov.has_new_bits({5: 1}) == CoverageMap.NEW_NOTHING
        assert cov.has_new_bits({MAP_SIZE + 5: 1}) == CoverageMap.NEW_NOTHING
        assert cov.edges_seen == 1

    def test_aliasing_with_distinct_buckets_is_new_count_not_new_edge(self):
        cov = CoverageMap()
        cov.has_new_bits({9: 1})
        # Alias of slot 9 with a different hit-count bucket: known edge,
        # new bucket — must not inflate the distinct-edge counter.
        assert cov.has_new_bits({MAP_SIZE + 9: 5}) == CoverageMap.NEW_COUNT
        assert cov.edges_seen == 1

    def test_indices_wrap_modulo_map_size(self):
        cov = CoverageMap()
        cov.has_new_bits({MAP_SIZE + 5: 1})
        assert cov.has_new_bits({5: 1}) == CoverageMap.NEW_NOTHING

    def test_checksum_bucket_invariant(self):
        cov = CoverageMap()
        # 4..7 share a bucket, so checksums match.
        assert cov.checksum({3: 4}) == cov.checksum({3: 7})
        assert cov.checksum({3: 1}) != cov.checksum({3: 4})

    def test_copy_is_independent(self):
        cov = CoverageMap()
        cov.has_new_bits({1: 1})
        clone = cov.copy()
        clone.has_new_bits({2: 1})
        assert cov.edge_count() == 1
        assert clone.edge_count() == 2

    @given(st.dictionaries(st.integers(0, MAP_SIZE - 1),
                           st.integers(1, 255), max_size=50))
    @settings(max_examples=50)
    def test_absorbing_twice_is_idempotent(self, trace):
        cov = CoverageMap()
        cov.has_new_bits(trace)
        assert cov.has_new_bits(trace) == CoverageMap.NEW_NOTHING


def count_nonzero(trace):
    return count_bits(trace.values())


class TestEdgeTracer:
    def test_traces_only_matching_files(self):
        tracer = EdgeTracer(traced_fragments=("test_coverage",))

        def traced():
            x = 1
            return x + 1

        tracer.begin()
        tracer.run(traced)
        assert tracer.take_trace()  # this file matches

        tracer2 = EdgeTracer(traced_fragments=("/no/such/path/",))
        tracer2.begin()
        tracer2.run(traced)
        assert not tracer2.take_trace()

    def test_different_branches_differ(self):
        tracer = EdgeTracer(traced_fragments=("test_coverage",))

        def branchy(flag):
            if flag:
                return "yes"
            return "no"

        tracer.begin()
        tracer.run(branchy, True)
        trace_true = dict(tracer.take_trace())
        tracer.begin()
        tracer.run(branchy, False)
        trace_false = dict(tracer.take_trace())
        assert trace_true != trace_false

    def test_loop_raises_hit_counts(self):
        tracer = EdgeTracer(traced_fragments=("test_coverage",))

        def loop(n):
            total = 0
            for i in range(n):
                total += i
            return total

        tracer.begin()
        tracer.run(loop, 10)
        assert max(tracer.take_trace().values()) >= 9

    def test_begin_resets(self):
        tracer = EdgeTracer(traced_fragments=("test_coverage",))
        tracer.run(lambda: sum(range(3)))
        tracer.begin()
        assert tracer.take_trace() == {}

    def test_ijon_set_lands_in_trace(self):
        tracer = EdgeTracer()
        tracer.begin()
        tracer.ijon_set(3)
        tracer.ijon_set(3)
        trace = tracer.take_trace()
        assert len(trace) == 1
        assert list(trace.values()) == [2]

    def test_ijon_slots_distinct(self):
        tracer = EdgeTracer()
        tracer.begin()
        tracer.ijon_set(1)
        tracer.ijon_set(2)
        assert len(tracer.take_trace()) == 2
