"""Durability lint (NYX06x): state-capture completeness analysis.

PR 7 made campaigns durable: every class on the checkpoint path
exposes a ``snapshot_state``/``restore_state`` pair (the executor's
``durable_state``/``restore_durable_state``) whose pickled output is
what crosses process death.  Nothing checked those pairs for
completeness — one new mutable attribute that never travels silently
breaks bit-identical resume, the drift StateAFL-style state inference
(PAPERS.md) shows is fatal and SnapFuzz avoids by making capture a
*checked* invariant.  This pass is the static half of that check (the
runtime half is :mod:`repro.analysis.statediff`):

* **NYX060** — a mutable attribute (reusing :mod:`.resetlint`'s
  per-class mutable-state registry) is mutated after ``__init__`` but
  is neither read by the snapshot method nor re-initialised by the
  restore method;
* **NYX061** — snapshot/restore asymmetry: a key is captured but the
  restore method never reads it, or restored but never captured;
* **NYX062** — the capture set changed against the committed
  state-inventory golden (``tests/golden/state_inventory.json``)
  without a ``STATE_FORMAT`` bump;
* **NYX063** — a non-deterministically-serializable leaf: a ``set``
  (or ``id()``) reaches the pickled state, so two snapshots of equal
  state can differ byte-wise;
* **NYX064** — a journal frame kind is appended without a matching
  entry in the ``FRAME_KINDS`` resume/salvage registry.

Deliberate exclusions are annotated inline: ``# nyx: state[ephemeral]``
on the attribute's defining line marks host-side state that is
*rebuilt, re-armed or recounted* on resume by design (caches, perf
counters, the sanitizer hook), and ``# nyx: allow[NYX06x]`` /
``# nyx: allow[NYX060]`` / ``# nyx: allow[state]`` suppress the whole
family or one rule, on the finding line or the ``class`` line.  Every
suppression should carry a justification comment.
"""

from __future__ import annotations

import ast
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, has_marker
from repro.analysis.resetlint import (ClassRecord, _allow_tokens,
                                      _default_expr, _is_direct_self_attr,
                                      _MethodScan, _scan_class)

#: snapshot-method name -> its restore counterpart.
STATE_PAIRS: Dict[str, str] = {
    "snapshot_state": "restore_state",
    "durable_state": "restore_durable_state",
}
#: Family token accepted by ``# nyx: allow[...]``; ``NYX06x`` is the
#: spelled-out family alias.
FAMILY_TOKEN = "state"
FAMILY_ALIAS = "NYX06x"
#: Default golden inventory location, relative to the repo root.
GOLDEN_INVENTORY = pathlib.Path("tests") / "golden" / "state_inventory.json"

def _ephemeral_marked(lines: Sequence[str], lineno: int) -> bool:
    return has_marker(lines, lineno, "state[ephemeral]")


def _suppressed(record: _DurClass, lines: Sequence[str], lineno: int,
                code: str) -> bool:
    tokens = _allow_tokens(lines, lineno) | record.allow_tokens
    return bool(tokens & {FAMILY_TOKEN, FAMILY_ALIAS, code})


# ---------------------------------------------------------------------------
# per-class capture scan (layered on resetlint's registry)
# ---------------------------------------------------------------------------

def _self_reads(node: ast.AST, self_name: str) -> Set[str]:
    """Every ``self.X`` attribute mentioned anywhere under ``node``."""
    reads: Set[str] = set()
    for inner in ast.walk(node):
        direct = _is_direct_self_attr(inner, self_name)
        if direct is not None:
            reads.add(direct)
    return reads


def _str_keys(expr: ast.AST, names: Optional[Set[str]]):
    """``(line, key)`` for ``name["key"]`` subscripts and
    ``name.get("key")`` calls under ``expr``; ``names=None`` accepts
    any receiver name."""
    for node in ast.walk(expr):
        if (isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and (names is None or node.value.id in names)):
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                yield node.lineno, sl.value
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr == "get"
              and isinstance(node.func.value, ast.Name)
              and (names is None or node.func.value.id in names)
              and node.args
              and isinstance(node.args[0], ast.Constant)
              and isinstance(node.args[0].value, str)):
            yield node.lineno, node.args[0].value


def _nondet_line(expr: ast.AST) -> Optional[int]:
    """Line of the first non-deterministically-serializable construct
    under ``expr`` (set literals/comps, ``set()``/``frozenset()``,
    ``id()``), or ``None``.  A top-level ``sorted(...)`` normalizes its
    argument, so the whole expression is clean."""
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id == "sorted":
            return None
    for node in ast.walk(expr):
        if isinstance(node, (ast.Set, ast.SetComp)):
            return node.lineno
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if name in ("set", "frozenset", "id"):
                return node.lineno
    return None


@dataclass
class _DurClass:
    """Capture-completeness view of one class with a state pair."""

    record: ClassRecord
    #: snapshot-method name -> method node (only pairs present).
    snapshots: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    restores: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: ``self.X`` attrs any snapshot method reads.
    snapshot_reads: Set[str] = field(default_factory=set)
    #: attrs any restore method writes or mutates in place.
    restore_handled: Set[str] = field(default_factory=set)
    #: key -> (line, value expr) from the snapshot dict literal(s);
    #: ``None`` when no snapshot method returns a direct dict literal.
    captured: Optional[Dict[str, Tuple[int, ast.AST]]] = None
    #: keys read off the restore method's state parameter.
    restored_keys: Dict[str, int] = field(default_factory=dict)
    #: keys read off *any* name inside restore (nested sub-dicts).
    consumed_keys: Set[str] = field(default_factory=set)
    #: class-body ``STATE_FORMAT = <int>`` value.
    state_format: Optional[int] = None

    @property
    def allow_tokens(self) -> Set[str]:
        return self.record.allow_tokens

    def pair_names(self) -> str:
        names = sorted(set(self.snapshots) | {STATE_PAIRS[s] for s in
                                              self.snapshots})
        return "/".join(names) if names else "restore"


def _scan_dur_class(node: ast.ClassDef, lines: Sequence[str]
                    ) -> Optional[_DurClass]:
    dur = _DurClass(record=_scan_class(node, lines))
    restore_names = {v: k for k, v in STATE_PAIRS.items()}
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (isinstance(target, ast.Name)
                        and target.id == "STATE_FORMAT"
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, int)):
                    dur.state_format = stmt.value.value
        if not isinstance(stmt, ast.FunctionDef):
            continue
        args = stmt.args.posonlyargs + stmt.args.args
        if not args:
            continue
        self_name = args[0].arg
        if stmt.name in STATE_PAIRS:
            dur.snapshots[stmt.name] = stmt
            dur.snapshot_reads |= _self_reads(stmt, self_name)
            for inner in ast.walk(stmt):
                if (isinstance(inner, ast.Return)
                        and isinstance(inner.value, ast.Dict)):
                    if dur.captured is None:
                        dur.captured = {}
                    for key, value in zip(inner.value.keys,
                                          inner.value.values):
                        if (isinstance(key, ast.Constant)
                                and isinstance(key.value, str)):
                            dur.captured.setdefault(
                                key.value, (key.lineno, value))
        elif stmt.name in restore_names:
            dur.restores[stmt.name] = stmt
            scan = _MethodScan(self_name)
            for inner in stmt.body:
                scan.visit(inner)
            dur.restore_handled |= {name for _l, name, _v in scan.writes}
            dur.restore_handled |= {name for _l, name in scan.mutations}
            state_param = {args[1].arg} if len(args) > 1 else set()
            for line, key in _str_keys(stmt, state_param):
                dur.restored_keys.setdefault(key, line)
            dur.consumed_keys |= {k for _l, k in _str_keys(stmt, None)}
    if not dur.snapshots and not dur.restores:
        return None
    return dur


# ---------------------------------------------------------------------------
# per-class diagnostics
# ---------------------------------------------------------------------------

def _class_diags(dur: _DurClass, filename: str,
                 lines: Sequence[str]) -> List[Diagnostic]:
    record = dur.record
    diags: List[Diagnostic] = []
    if _suppressed(dur, lines, record.line, "NYX060"):
        pass
    elif dur.snapshots:
        # NYX060: mutated attribute that neither travels through the
        # snapshot nor is re-initialised by the restore.
        for name in sorted(record.attrs):
            attr = record.attrs[name]
            if not attr.mutations:
                continue
            if name in dur.snapshot_reads or name in dur.restore_handled:
                continue
            anchor = attr.anchor_line or record.line
            if _ephemeral_marked(lines, anchor):
                continue
            if _suppressed(dur, lines, anchor, "NYX060"):
                continue
            mut_line, mut_method = attr.mutations[0]
            diags.append(Diagnostic(
                "NYX060",
                "%s.%s is mutated (%s() line %d) but %s never captures "
                "or restores it; resumed campaigns silently diverge"
                % (record.name, name, mut_method, mut_line,
                   dur.pair_names()),
                file=filename, line=anchor, fixable=True))
    # NYX061: capture/restore key asymmetry.
    if dur.captured is not None:
        if not dur.restores:
            for key in sorted(dur.captured):
                line = dur.captured[key][0]
                if _suppressed(dur, lines, line, "NYX061"):
                    continue
                diags.append(Diagnostic(
                    "NYX061",
                    "%s captures key %r but the class has no restore "
                    "method" % (record.name, key),
                    file=filename, line=line))
        else:
            for key in sorted(dur.captured):
                if key in dur.consumed_keys:
                    continue
                line = dur.captured[key][0]
                if _suppressed(dur, lines, line, "NYX061"):
                    continue
                diags.append(Diagnostic(
                    "NYX061",
                    "%s.%s captures key %r but %s never reads it"
                    % (record.name, "/".join(sorted(dur.snapshots)), key,
                       "/".join(sorted(dur.restores)) + "()"),
                    file=filename, line=line))
    for key in sorted(dur.restored_keys):
        if dur.captured is not None and key in dur.captured:
            continue
        if dur.captured is None and dur.snapshots:
            continue  # opaque snapshot body: nothing to compare against
        line = dur.restored_keys[key]
        if _suppressed(dur, lines, line, "NYX061"):
            continue
        what = ("%s() never captures it"
                % "/".join(sorted(dur.snapshots)) if dur.snapshots
                else "the class has no snapshot method")
        diags.append(Diagnostic(
            "NYX061",
            "%s.%s reads key %r but %s"
            % (record.name, "/".join(sorted(dur.restores)), key, what),
            file=filename, line=line))
    # NYX063: non-deterministic serialization leaves.
    if dur.captured is not None:
        for key in sorted(dur.captured):
            line, value = dur.captured[key]
            bad_line = _nondet_line(value)
            if bad_line is None:
                direct = None
                for stmt in dur.snapshots.values():
                    args = stmt.args.posonlyargs + stmt.args.args
                    direct = _is_direct_self_attr(value, args[0].arg)
                    if direct is not None:
                        break
                if direct is not None:
                    attr = record.attrs.get(direct)
                    if (attr is not None and attr.init_value is not None
                            and _nondet_line(attr.init_value) is not None):
                        bad_line = value.lineno
            if bad_line is None:
                continue
            if _suppressed(dur, lines, bad_line, "NYX063"):
                continue
            diags.append(Diagnostic(
                "NYX063",
                "%s snapshot key %r serializes a set (iteration order "
                "varies across processes); capture sorted(...) instead"
                % (record.name, key),
                file=filename, line=bad_line, fixable=True))
    return diags


# ---------------------------------------------------------------------------
# journal frame-kind registry audit (NYX064)
# ---------------------------------------------------------------------------

def _journal_appends(tree: ast.Module) -> List[Tuple[int, str]]:
    """``(line, kind)`` of every ``<journal>.append("kind", body, ...)``
    call: an append with >= 2 args, a string-constant first arg and a
    receiver chain naming a journal."""
    appends: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and len(node.args) >= 2
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            continue
        chain: List[str] = []
        receiver = node.func.value
        while isinstance(receiver, ast.Attribute):
            chain.append(receiver.attr)
            receiver = receiver.value
        if isinstance(receiver, ast.Name):
            chain.append(receiver.id)
        if any("journal" in part.lower() for part in chain):
            appends.append((node.lineno, node.args[0].value))
    return appends


def _frame_kind_registry(tree: ast.Module) -> Optional[Set[str]]:
    """Keys of a module-level ``FRAME_KINDS = {...}`` dict literal
    (plain or annotated assignment)."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        for target in targets:
            if (isinstance(target, ast.Name)
                    and target.id == "FRAME_KINDS"
                    and isinstance(node.value, ast.Dict)):
                return {k.value for k in node.value.keys
                        if isinstance(k, ast.Constant)
                        and isinstance(k.value, str)}
    return None


# ---------------------------------------------------------------------------
# module / tree entry points
# ---------------------------------------------------------------------------

class _ModuleScan:
    """Everything durlint learned about one module."""

    def __init__(self, filename: str, text: str) -> None:
        self.filename = filename
        self.lines = text.splitlines()
        self.classes: List[_DurClass] = []
        self.appends: List[Tuple[int, str]] = []
        self.frame_kinds: Optional[Set[str]] = None
        self.module_state_format: Optional[int] = None
        self.parse_error: Optional[Diagnostic] = None
        try:
            tree = ast.parse(text, filename=filename)
        except SyntaxError as err:
            self.parse_error = Diagnostic(
                "NYX045", "unparseable module: %s; durability cannot be "
                "audited" % err, file=filename, line=err.lineno or 0)
            return
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                dur = _scan_dur_class(node, self.lines)
                if dur is not None:
                    self.classes.append(dur)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and target.id == "STATE_FORMAT"
                            and isinstance(node.value, ast.Constant)
                            and isinstance(node.value.value, int)):
                        self.module_state_format = node.value.value
        self.appends = _journal_appends(tree)
        self.frame_kinds = _frame_kind_registry(tree)


def _append_diags(scan: _ModuleScan,
                  handled: Optional[Set[str]]) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for line, kind in scan.appends:
        if handled is not None and kind in handled:
            continue
        tokens = _allow_tokens(scan.lines, line)
        if tokens & {FAMILY_TOKEN, FAMILY_ALIAS, "NYX064"}:
            continue
        detail = ("is not registered in FRAME_KINDS" if handled is not None
                  else "has no FRAME_KINDS registry to declare its "
                       "resume/salvage handling")
        diags.append(Diagnostic(
            "NYX064",
            "journal frame kind %r %s; resume would drop or choke on it"
            % (kind, detail), file=scan.filename, line=line))
    return diags


def analyze_durability_source(filename: str, text: str,
                              handled_kinds: Optional[Set[str]] = None
                              ) -> List[Diagnostic]:
    """Durability lint of one module's source.

    ``handled_kinds`` is the cross-module union of ``FRAME_KINDS``
    registries; without one, the module's own registry (if any) is
    used, and appends with no registry in sight are all flagged.
    """
    scan = _ModuleScan(filename, text)
    if scan.parse_error is not None:
        return [scan.parse_error]
    diags: List[Diagnostic] = []
    for dur in scan.classes:
        diags.extend(_class_diags(dur, filename, scan.lines))
    handled = handled_kinds if handled_kinds is not None else scan.frame_kinds
    diags.extend(_append_diags(scan, handled))
    diags.sort(key=lambda d: (d.line or 0, d.code))
    return diags


def _dur_tree_files(root: str) -> List[pathlib.Path]:
    root_path = pathlib.Path(root)
    return [p for p in sorted(root_path.rglob("*.py"))
            if "__pycache__" not in p.parts]


def state_inventory(root: str) -> Dict[str, Dict[str, object]]:
    """Capture-set inventory of every stateful class under ``root``.

    ``{Class: {"module": relpath, "keys": sorted snapshot keys,
    "state_format": int | None}}`` — the structure committed to
    ``tests/golden/state_inventory.json`` and diffed by NYX062.
    """
    inventory: Dict[str, Dict[str, object]] = {}
    root_path = pathlib.Path(root)
    for path in _dur_tree_files(root):
        scan = _ModuleScan(str(path), path.read_text(encoding="utf-8"))
        if scan.parse_error is not None:
            continue
        try:
            module = path.relative_to(root_path).as_posix()
        except ValueError:
            module = path.as_posix()
        for dur in scan.classes:
            if dur.captured is None:
                continue
            fmt = dur.state_format
            if fmt is None:
                fmt = scan.module_state_format
            inventory[dur.record.name] = {
                "module": module,
                "keys": sorted(dur.captured),
                "state_format": fmt,
            }
    return inventory


def _load_golden(root: str,
                 golden: Optional[str]) -> Tuple[Optional[dict],
                                                 Optional[str]]:
    if golden is not None:
        path = pathlib.Path(golden)
        candidates = [path]
    else:
        candidates = [pathlib.Path(root).parent.parent / GOLDEN_INVENTORY,
                      GOLDEN_INVENTORY]
    for candidate in candidates:
        if candidate.is_file():
            return (json.loads(candidate.read_text(encoding="utf-8")),
                    str(candidate))
    return None, None


def _golden_diags(root: str, golden_path: Optional[str],
                  golden: dict) -> List[Diagnostic]:
    current = state_inventory(root)
    diags: List[Diagnostic] = []
    for name in sorted(set(current) | set(golden)):
        if name not in golden:
            diags.append(Diagnostic(
                "NYX062",
                "new stateful class %s (%s) is missing from the state "
                "inventory golden; regenerate %s"
                % (name, current[name]["module"], golden_path),
                file=str(current[name]["module"]), fixable=True))
            continue
        if name not in current:
            diags.append(Diagnostic(
                "NYX062",
                "class %s is in the state inventory golden but no longer "
                "in the tree; regenerate %s" % (name, golden_path),
                file=golden_path, fixable=True))
            continue
        want = golden[name]
        have = current[name]
        if list(want.get("keys", [])) == list(have["keys"]):
            continue
        added = sorted(set(have["keys"]) - set(want.get("keys", [])))
        removed = sorted(set(want.get("keys", [])) - set(have["keys"]))
        delta = "; ".join(
            part for part in
            ("adds %s" % ", ".join(map(repr, added)) if added else "",
             "drops %s" % ", ".join(map(repr, removed)) if removed else "")
            if part)
        if have["state_format"] == want.get("state_format"):
            diags.append(Diagnostic(
                "NYX062",
                "%s capture set changed (%s) without a STATE_FORMAT bump "
                "(still %r): old checkpoints would restore into the new "
                "layout" % (name, delta, have["state_format"]),
                file=str(have["module"])))
        else:
            diags.append(Diagnostic(
                "NYX062",
                "%s capture set changed (%s) and STATE_FORMAT was bumped "
                "(%r -> %r); regenerate the stale golden %s"
                % (name, delta, want.get("state_format"),
                   have["state_format"], golden_path),
                file=str(have["module"]), fixable=True))
    return diags


def analyze_durability_tree(root: str,
                            golden: Optional[str] = None
                            ) -> List[Diagnostic]:
    """Durability lint of every module under ``root`` plus the NYX062
    golden-inventory diff (skipped when no golden exists yet)."""
    scans: List[_ModuleScan] = []
    handled: Optional[Set[str]] = None
    for path in _dur_tree_files(root):
        scan = _ModuleScan(str(path), path.read_text(encoding="utf-8"))
        scans.append(scan)
        if scan.frame_kinds is not None:
            handled = (handled or set()) | scan.frame_kinds
    diags: List[Diagnostic] = []
    for scan in scans:
        if scan.parse_error is not None:
            diags.append(scan.parse_error)
            continue
        for dur in scan.classes:
            diags.extend(_class_diags(dur, scan.filename, scan.lines))
        diags.extend(_append_diags(scan, handled))
    golden_data, golden_path = _load_golden(root, golden)
    if golden_data is not None:
        diags.extend(_golden_diags(root, golden_path, golden_data))
    diags.sort(key=lambda d: (d.file or "", d.line or 0, d.code))
    return diags


# ---------------------------------------------------------------------------
# fix-it stubs
# ---------------------------------------------------------------------------

def durability_fixit_stubs(root: str) -> Dict[str, str]:
    """Capture/restore stubs for every NYX060 finding, keyed
    ``<path>::<Class>``.  Defaults referencing ``__init__`` arguments
    need hand-editing; attributes that are resume-ephemeral by design
    should get ``# nyx: state[ephemeral]`` instead."""
    stubs: Dict[str, str] = {}
    for path in _dur_tree_files(root):
        scan = _ModuleScan(str(path), path.read_text(encoding="utf-8"))
        if scan.parse_error is not None:
            continue
        for dur in scan.classes:
            missing = [d for d in _class_diags(dur, scan.filename,
                                               scan.lines)
                       if d.code == "NYX060"]
            if not missing or not dur.snapshots:
                continue
            record = dur.record
            anchors = {d.line for d in missing}
            attrs = [record.attrs[n] for n in sorted(record.attrs)
                     if (record.attrs[n].anchor_line or record.line)
                     in anchors and record.attrs[n].mutations]
            if not attrs:
                continue
            snap = sorted(dur.snapshots)[0]
            restore = STATE_PAIRS[snap]
            lines = ["    # add to %s.%s() dict:" % (record.name, snap)]
            lines += ['        "%s": self.%s,' % (a.name, a.name)
                      for a in attrs]
            lines += ["    # add to %s.%s():" % (record.name, restore)]
            lines += ['        self.%s = state["%s"]  # default: %s'
                      % (a.name, a.name, _default_expr(a)) for a in attrs]
            stubs["%s::%s" % (path, record.name)] = "\n".join(lines) + "\n"
    return stubs
