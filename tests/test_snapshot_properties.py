"""Property-based tests: the snapshot machinery against a model.

A hypothesis state machine performs random interleavings of guest
writes, root restores, incremental creates/restores and re-mirror
cycles, comparing the VM's visible memory against a plain-dict model
after every operation.  This is the strongest correctness evidence for
the paper's trickiest machinery (the CoW mirror + stale-copy revert +
re-mirror interactions of §4.2).
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.vm.machine import Machine
from repro.vm.memory import PAGE_SIZE

N_PAGES = 32


def _machine():
    return Machine(memory_bytes=N_PAGES * PAGE_SIZE, disk_sectors=16)


class SnapshotModel(RuleBasedStateMachine):
    """Model: three dicts of page -> first byte."""

    def __init__(self):
        super().__init__()
        self.machine = _machine()
        self.live = {}          # page -> byte value
        self.machine.capture_root()
        self.root = {}
        self.incremental = None

    @rule(page=st.integers(0, N_PAGES - 1), value=st.integers(1, 255))
    def write(self, page, value):
        self.machine.memory.write(page * PAGE_SIZE, bytes([value]))
        self.live[page] = value

    @rule()
    def restore_root(self):
        self.machine.restore_root()
        self.live = dict(self.root)
        self.incremental = None

    @rule()
    def create_incremental(self):
        self.machine.create_incremental()
        self.incremental = dict(self.live)

    @precondition(lambda self: self.incremental is not None)
    @rule()
    def restore_incremental(self):
        self.machine.restore_incremental()
        self.live = dict(self.incremental)

    @invariant()
    def memory_matches_model(self):
        memory = self.machine.memory
        for page in range(N_PAGES):
            expected = self.live.get(page, 0)
            actual = memory.read(page * PAGE_SIZE, 1)[0]
            assert actual == expected, (
                "page %d: VM has %d, model has %d" % (page, actual, expected))


SnapshotModel.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
TestSnapshotModel = SnapshotModel.TestCase


@given(st.lists(st.tuples(st.integers(0, N_PAGES - 1),
                          st.integers(1, 255)), min_size=1, max_size=60),
       st.integers(0, 59))
@settings(max_examples=40, deadline=None)
def test_incremental_splits_history_exactly(writes, split_raw):
    """Writes before the incremental snapshot survive its restore;
    writes after it are rolled back."""
    split = split_raw % len(writes)
    machine = _machine()
    machine.capture_root()
    model = {}
    for page, value in writes[:split]:
        machine.memory.write(page * PAGE_SIZE, bytes([value]))
        model[page] = value
    machine.create_incremental()
    for page, value in writes[split:]:
        machine.memory.write(page * PAGE_SIZE, bytes([value]))
    machine.restore_incremental()
    for page in range(N_PAGES):
        assert machine.memory.read(page * PAGE_SIZE, 1)[0] == \
            model.get(page, 0)
    machine.restore_root()
    for page in range(N_PAGES):
        assert machine.memory.read(page * PAGE_SIZE, 1)[0] == 0


@given(st.integers(1, 6), st.integers(8, N_PAGES))
@settings(max_examples=20, deadline=None)
def test_snapshot_costs_scale_with_dirty_pages(n_small, n_large):
    """The §4.2 cost property: incremental creation cost is a function
    of the diverged page count, not total memory."""
    costs = []
    for n in (n_small, n_large):
        machine = _machine()
        machine.capture_root()
        for page in range(n):
            machine.memory.write(page * PAGE_SIZE, b"x")
        before = machine.clock.now
        machine.create_incremental()
        costs.append(machine.clock.now - before)
    assert costs[1] > costs[0]
