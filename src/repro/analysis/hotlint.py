"""Hot-path lint (NYX07x, static prong): allocation/indirection audit
of the execute-reset hot path.

Every throughput win so far (PR 5/6: 1112 -> ~1844 execs/s on
lighttpd) came from hand-auditing the per-execution loop for exactly
four smells: per-iteration allocation, per-draw RNG byte building,
repeated attribute loads and redundant buffer copies.  Nyx-net's own
numbers (PAPER §7) depend on keeping that loop lean, so this pass
makes the audit permanent.

The lint is *reachability-scoped*: ``# nyx: hot`` on a ``def`` line
(or on a ``class`` line, marking every method) declares a hot root —
the executor's step/reset path, the kernel's syscall dispatch,
``GuestMemory`` read/write, tracer callbacks, ``MutationEngine.mutate``.
A call-graph BFS from those roots computes the hot set; rules fire
only inside hot-reachable functions, so cold setup/reporting code
stays unflagged no matter how it allocates.

Call edges are resolved conservatively: ``self.m()`` within the
class, bare names within the module (then by unique name across the
tree), and ``obj.m()`` by *unique* method name across the tree.
Ambiguous receivers are skipped rather than guessed — the runtime
prong (:mod:`repro.perf.profiler`, NYX077) is the backstop that
catches hot code the static graph cannot reach.

Rules (only on hot-reachable code):

* **NYX070** — per-iteration allocation in a hot loop: str/bytes
  ``+=`` concatenation, ``bytes()``/``bytearray()`` of loop-invariant
  data, an all-constant container literal rebuilt every pass;
* **NYX071** — per-draw RNG byte building where the batched
  ``DeterministicRandom.some_bytes`` API exists (a draw call per
  element of a bytes-bound comprehension, or ``.append(rng.draw())``
  in a loop);
* **NYX072** — the same attribute chain loaded repeatedly in one loop
  body (fix-it: the local-alias binding to hoist);
* **NYX073** — redundant full-buffer copy: a bare whole-slice read
  ``x[:]`` or a ``pickle.loads(pickle.dumps(...))`` round-trip;
* **NYX074** — ``try``/``except`` or a generator expression inside
  the innermost hot loop (both defeat CPython's cheap loop bytecode);
* **NYX075** — a ``# nyx: hot`` marker on a line that defines
  nothing, or a ``self.X()`` call edge the graph cannot resolve.

Suppressions use the shared grammar: ``# nyx: allow[NYX072]`` (one
rule), ``# nyx: allow[NYX07x]`` / ``# nyx: allow[hot]`` (the family)
on the finding line, the ``def`` line or the ``class`` line.  Every
suppression should carry a justification comment.
"""

from __future__ import annotations

import ast
import io
import pathlib
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import MARKER_RES, Diagnostic, allow_tokens
from repro.analysis.resetlint import _scan_class

#: Family tokens accepted by ``# nyx: allow[...]``.
FAMILY_TOKEN = "hot"
FAMILY_ALIAS = "NYX07x"
#: RNG draw methods with a batched equivalent (``some_bytes``).
RNG_DRAW_METHODS = {"randrange", "randint", "getrandbits"}
#: Repeated-load threshold: the same attribute chain loaded this many
#: times in one loop body is worth a local alias.
ATTR_LOAD_THRESHOLD = 3


# ---------------------------------------------------------------------------
# module indexing
# ---------------------------------------------------------------------------

def _marker_comment_lines(text: str) -> Set[int]:
    """Lines whose actual comment (not a string literal) carries the
    hot marker."""
    lines: Set[int] = set()
    hot_re = MARKER_RES["hot"]
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if (tok.type == tokenize.COMMENT
                    and hot_re.search(tok.string)):
                lines.add(tok.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # the AST parse reports the breakage
    return lines


@dataclass
class FuncRecord:
    """One function or method, as a call-graph node."""

    filename: str
    module: str
    qualname: str
    name: str
    node: ast.AST
    class_name: Optional[str] = None
    class_line: int = 0
    class_has_bases: bool = False
    #: ``self``-style receiver name for methods ('' for functions).
    self_name: str = ""
    hot_root: bool = False
    #: Call sites: ``(lineno, kind, name)`` with kind one of
    #: ``bare`` / ``self`` / ``attr``.
    calls: List[Tuple[int, str, str]] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.filename, self.qualname)


class _CallScan(ast.NodeVisitor):
    """Collect call sites of one function body (skipping nested defs)."""

    def __init__(self, self_name: str) -> None:
        self.self_name = self_name
        self.calls: List[Tuple[int, str, str]] = []

    def visit_FunctionDef(self, node) -> None:  # noqa: N802
        pass  # nested scope: its calls are its own record's business

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        func = node.func
        if isinstance(func, ast.Name):
            self.calls.append((node.lineno, "bare", func.id))
        elif isinstance(func, ast.Attribute):
            if (self.self_name and isinstance(func.value, ast.Name)
                    and func.value.id == self.self_name):
                self.calls.append((node.lineno, "self", func.attr))
            else:
                self.calls.append((node.lineno, "attr", func.attr))
        self.generic_visit(node)


class ModuleIndex:
    """Hot-lint view of one module: functions, roots, annotations."""

    def __init__(self, filename: str, text: str, module: str) -> None:
        self.filename = filename
        self.module = module
        self.lines = text.splitlines()
        self.functions: List[FuncRecord] = []
        #: class name -> known instance-attribute names (callable
        #: attributes make a self-call resolvable-but-external).
        self.class_attrs: Dict[str, Set[str]] = {}
        self.parse_error: Optional[Diagnostic] = None
        #: lines whose def/class statement may carry a hot marker.
        self.def_lines: Set[int] = set()
        #: lines carrying a genuine hot-marker *comment* (tokenized, so
        #: docstrings discussing the marker do not count).
        self.hot_marker_lines: Set[int] = _marker_comment_lines(text)
        try:
            tree = ast.parse(text, filename=filename)
        except SyntaxError as err:
            self.parse_error = Diagnostic(
                "NYX075", "unparseable module: %s; hot-path reachability "
                "cannot be computed" % err,
                file=filename, line=err.lineno or 0)
            return
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(node, None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(node)

    def _add_class(self, node: ast.ClassDef) -> None:
        self.def_lines.add(node.lineno)
        record = _scan_class(node, self.lines)
        self.class_attrs[node.name] = set(record.attrs)
        class_hot = node.lineno in self.hot_marker_lines
        has_bases = any(not (isinstance(b, ast.Name) and b.id == "object")
                        for b in node.bases)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(stmt, node, class_hot=class_hot,
                                   class_has_bases=has_bases)

    def _add_function(self, node, class_node: Optional[ast.ClassDef],
                      class_hot: bool = False,
                      class_has_bases: bool = False) -> None:
        self.def_lines.add(node.lineno)
        args = node.args.posonlyargs + node.args.args
        is_static = any(isinstance(d, ast.Name) and d.id == "staticmethod"
                        for d in node.decorator_list)
        self_name = ""
        if class_node is not None and args and not is_static:
            self_name = args[0].arg
        qualname = (node.name if class_node is None
                    else "%s.%s" % (class_node.name, node.name))
        record = FuncRecord(
            filename=self.filename, module=self.module, qualname=qualname,
            name=node.name, node=node,
            class_name=class_node.name if class_node else None,
            class_line=class_node.lineno if class_node else 0,
            class_has_bases=class_has_bases,
            self_name=self_name,
            hot_root=class_hot or node.lineno in self.hot_marker_lines)
        scan = _CallScan(self_name)
        for inner in node.body:
            scan.visit(inner)
        record.calls = scan.calls
        self.functions.append(record)


def _module_name(path: pathlib.Path, root: pathlib.Path) -> str:
    """Dotted module name of ``path``, rooted at ``root``'s basename
    (``src/repro/vm/memory.py`` -> ``repro.vm.memory``)."""
    try:
        rel = path.relative_to(root)
    except ValueError:
        rel = pathlib.Path(path.name)
    parts = [root.name] + list(rel.parts)
    parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _tree_files(root: str) -> List[pathlib.Path]:
    return [p for p in sorted(pathlib.Path(root).rglob("*.py"))
            if "__pycache__" not in p.parts]


# ---------------------------------------------------------------------------
# call-graph reachability
# ---------------------------------------------------------------------------

class HotGraph:
    """Cross-module call graph + hot-reachability over module indexes."""

    def __init__(self, indexes: Sequence[ModuleIndex]) -> None:
        self.indexes = list(indexes)
        self.functions: List[FuncRecord] = []
        for index in self.indexes:
            self.functions.extend(index.functions)
        self.by_key = {f.key: f for f in self.functions}
        #: (filename, class, method) -> record
        self._methods: Dict[Tuple[str, str, str], FuncRecord] = {}
        #: (filename, name) -> module-level function record
        self._mod_funcs: Dict[Tuple[str, str], FuncRecord] = {}
        #: method name -> records across the whole tree
        self._by_method: Dict[str, List[FuncRecord]] = {}
        self._by_bare: Dict[str, List[FuncRecord]] = {}
        for f in self.functions:
            if f.class_name:
                self._methods[(f.filename, f.class_name, f.name)] = f
                self._by_method.setdefault(f.name, []).append(f)
            else:
                self._mod_funcs[(f.filename, f.name)] = f
                self._by_bare.setdefault(f.name, []).append(f)
        self.hot: Set[Tuple[str, str]] = set()
        self._reach()

    def _edges(self, f: FuncRecord) -> Iterable[FuncRecord]:
        for _line, kind, name in f.calls:
            if kind == "self" and f.class_name:
                target = self._methods.get((f.filename, f.class_name, name))
                if target is not None:
                    yield target
            elif kind == "bare":
                target = self._mod_funcs.get((f.filename, name))
                if target is None:
                    candidates = self._by_bare.get(name, [])
                    target = candidates[0] if len(candidates) == 1 else None
                if target is not None:
                    yield target
            elif kind == "attr":
                candidates = self._by_method.get(name, [])
                if len(candidates) == 1:
                    yield candidates[0]

    def _reach(self) -> None:
        queue = [f for f in self.functions if f.hot_root]
        self.hot = {f.key for f in queue}
        while queue:
            current = queue.pop()
            for target in self._edges(current):
                if target.key not in self.hot:
                    self.hot.add(target.key)
                    queue.append(target)

    def is_hot(self, f: FuncRecord) -> bool:
        return f.key in self.hot

    def hot_sites(self) -> Dict[str, Set[str]]:
        """module -> hot-reachable qualnames (the profiler's NYX077
        coverage map)."""
        sites: Dict[str, Set[str]] = {}
        for f in self.functions:
            if f.key in self.hot:
                sites.setdefault(f.module, set()).add(f.qualname)
        return sites


# ---------------------------------------------------------------------------
# rule detectors
# ---------------------------------------------------------------------------

def _body_walk(node: ast.AST) -> Iterable[ast.AST]:
    """ast.walk that does not descend into nested function/class defs."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


def _loops(func_node: ast.AST) -> List[ast.AST]:
    return [n for n in _body_walk(func_node)
            if isinstance(n, (ast.For, ast.While)) and n is not func_node]


def _loop_bound_names(loop: ast.AST) -> Set[str]:
    """Names (re)bound anywhere inside the loop — loop-variant."""
    bound: Set[str] = set()
    for node in _body_walk(loop):
        if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
    return bound


def _is_innermost(loop: ast.AST) -> bool:
    return not any(isinstance(n, (ast.For, ast.While))
                   for n in _body_walk(loop) if n is not loop)


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``self.a.b`` -> ``["self", "a", "b"]`` for pure Name/Attribute
    chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _all_constant(expr: ast.AST) -> bool:
    """Is this container literal built from constants only (and
    non-empty, so it is the *same* value every iteration)?"""
    if isinstance(expr, (ast.List, ast.Set, ast.Tuple)):
        return bool(expr.elts) and all(isinstance(e, ast.Constant)
                                       for e in expr.elts)
    if isinstance(expr, ast.Dict):
        return bool(expr.keys) and all(
            isinstance(k, ast.Constant) and isinstance(v, ast.Constant)
            for k, v in zip(expr.keys, expr.values))
    return False


def _is_rng_draw(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RNG_DRAW_METHODS)


def _contains_rng_draw(node: ast.AST) -> Optional[int]:
    for inner in ast.walk(node):
        if _is_rng_draw(inner):
            return inner.lineno
    return None


class _HotRules:
    """NYX070-074 detectors over one hot function."""

    def __init__(self, func: FuncRecord, lines: Sequence[str]) -> None:
        self.func = func
        self.lines = lines
        self.diags: List[Diagnostic] = []
        #: NYX072 alias candidates: chain -> (line, count) for fix-its.
        self.alias_candidates: Dict[str, Tuple[int, int]] = {}

    def _tokens(self, lineno: int) -> Set[str]:
        tokens = allow_tokens(self.lines, lineno)
        tokens |= allow_tokens(self.lines, self.func.node.lineno)
        if self.func.class_line:
            tokens |= allow_tokens(self.lines, self.func.class_line)
        return tokens

    def _flag(self, code: str, lineno: int, message: str,
              fixable: bool = False) -> None:
        if self._tokens(lineno) & {code, FAMILY_TOKEN, FAMILY_ALIAS}:
            return
        self.diags.append(Diagnostic(
            code, "%s: %s" % (self.func.qualname, message),
            file=self.func.filename, line=lineno, fixable=fixable))

    def run(self) -> List[Diagnostic]:
        node = self.func.node
        for loop in _loops(node):
            bound = _loop_bound_names(loop)
            self._alloc_rules(loop, bound)
            self._rng_append_rule(loop)
            self._attr_load_rule(loop, bound)
            if _is_innermost(loop):
                self._indirection_rule(loop)
        self._rng_comprehension_rule(node)
        self._copy_rules(node)
        self.diags.sort(key=lambda d: (d.line or 0, d.code))
        return self.diags

    # -- NYX070 --------------------------------------------------------------

    def _alloc_rules(self, loop: ast.AST, bound: Set[str]) -> None:
        for node in _body_walk(loop):
            if node is loop:
                continue
            if (isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and self._str_like(node.value)):
                self._flag("NYX070", node.lineno,
                           "str/bytes concatenation in a hot loop "
                           "rebuilds the buffer every pass; collect "
                           "parts and join once")
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id in ("bytes", "bytearray")
                  and len(node.args) == 1):
                chain = _attr_chain(node.args[0])
                if chain is not None and chain[0] not in bound:
                    self._flag("NYX070", node.lineno,
                               "%s(%s) of loop-invariant data is "
                               "reallocated every iteration; hoist it "
                               "before the loop"
                               % (node.func.id, ".".join(chain)))
            elif (isinstance(node, ast.Assign)
                  and _all_constant(node.value)):
                self._flag("NYX070", node.lineno,
                           "constant container literal rebuilt every "
                           "iteration; hoist it to module/function "
                           "scope")

    @staticmethod
    def _str_like(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, (str, bytes))
        if isinstance(expr, ast.JoinedStr):
            return True
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mod):
            return _HotRules._str_like(expr.left)
        return False

    # -- NYX071 --------------------------------------------------------------

    def _rng_append_rule(self, loop: ast.AST) -> None:
        for node in _body_walk(loop):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "append"
                    and node.args and _is_rng_draw(node.args[0])):
                self._flag("NYX071", node.lineno,
                           "one RNG draw appended per iteration; "
                           "rng.some_bytes(n) batches the draws")

    def _rng_comprehension_rule(self, func_node: ast.AST) -> None:
        for node in _body_walk(func_node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            byte_bound = (isinstance(func, ast.Name)
                          and func.id in ("bytes", "bytearray"))
            join_bound = (isinstance(func, ast.Attribute)
                          and func.attr == "join")
            if not (byte_bound or join_bound):
                continue
            for arg in node.args:
                if isinstance(arg, (ast.ListComp, ast.GeneratorExp)):
                    line = _contains_rng_draw(arg.elt)
                    if line is not None:
                        self._flag("NYX071", line,
                                   "one RNG draw per generated byte; "
                                   "rng.some_bytes(n) consumes the "
                                   "stream in one batch")

    # -- NYX072 --------------------------------------------------------------

    def _attr_load_rule(self, loop: ast.AST, bound: Set[str]) -> None:
        loads: Dict[str, List[int]] = {}
        stored: Set[str] = set()
        for node in _body_walk(loop):
            if not isinstance(node, ast.Attribute):
                continue
            chain = _attr_chain(node)
            if chain is None:
                continue
            dotted = ".".join(chain)
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                stored.add(dotted)
                continue
            # Only maximal chains: skip if the parent Attribute already
            # counted us (detected by a longer chain sharing the line).
            loads.setdefault(dotted, []).append(node.lineno)
        for dotted in sorted(loads):
            chain = dotted.split(".")
            if chain[0] in bound or len(chain) < 2:
                continue
            # A chain written in the loop (or any written prefix) is
            # loop-variant; a local alias would go stale.
            if any(".".join(chain[:i]) in stored
                   for i in range(2, len(chain) + 1)):
                continue
            # Drop sub-chains whose counts are explained by a longer
            # counted chain (loading a.b.c also loads a.b).
            longer = [d for d in loads
                      if d != dotted and d.startswith(dotted + ".")]
            own = len(loads[dotted]) - sum(len(loads[d]) for d in longer)
            total = len(loads[dotted])
            if total < ATTR_LOAD_THRESHOLD or own <= 0:
                continue
            line = min(loads[dotted])
            self._flag("NYX072", line,
                       "'%s' is loaded %d times in one hot loop body; "
                       "bind a local alias before the loop"
                       % (dotted, total), fixable=True)
            if not (self._tokens(line)
                    & {"NYX072", FAMILY_TOKEN, FAMILY_ALIAS}):
                self.alias_candidates.setdefault(dotted, (line, total))

    # -- NYX073 --------------------------------------------------------------

    def _copy_rules(self, func_node: ast.AST) -> None:
        for node in _body_walk(func_node):
            if (isinstance(node, ast.Subscript)
                    and isinstance(node.ctx, ast.Load)
                    and isinstance(node.slice, ast.Slice)
                    and node.slice.lower is None
                    and node.slice.upper is None
                    and node.slice.step is None):
                self._flag("NYX073", node.lineno,
                           "whole-slice copy duplicates the full "
                           "buffer; pass the object (or a memoryview) "
                           "instead")
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "loads"
                  and node.args and isinstance(node.args[0], ast.Call)
                  and isinstance(node.args[0].func, ast.Attribute)
                  and node.args[0].func.attr == "dumps"):
                self._flag("NYX073", node.lineno,
                           "pickle round-trip copies the whole object "
                           "graph; use copy.deepcopy or share the "
                           "object")

    # -- NYX074 --------------------------------------------------------------

    def _indirection_rule(self, loop: ast.AST) -> None:
        for node in _body_walk(loop):
            if node is loop:
                continue
            if isinstance(node, ast.Try):
                self._flag("NYX074", node.lineno,
                           "try/except inside the innermost hot loop "
                           "adds a block setup per iteration; hoist "
                           "the handler around the loop")
            elif isinstance(node, ast.GeneratorExp):
                self._flag("NYX074", node.lineno,
                           "generator expression inside the innermost "
                           "hot loop allocates a frame per pass; use "
                           "a list comprehension or an explicit loop")


# ---------------------------------------------------------------------------
# NYX075: annotation / resolution sanity
# ---------------------------------------------------------------------------

def _annotation_diags(index: ModuleIndex) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for lineno in sorted(index.hot_marker_lines):
        if lineno in index.def_lines:
            continue
        if allow_tokens(index.lines, lineno) & {"NYX075", FAMILY_TOKEN,
                                                FAMILY_ALIAS}:
            continue
        diags.append(Diagnostic(
            "NYX075",
            "'# nyx: hot' marker on a line that defines no function or "
            "class; it annotates nothing",
            file=index.filename, line=lineno))
    return diags


def _resolution_diags(index: ModuleIndex, graph: HotGraph
                      ) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for func in index.functions:
        if not graph.is_hot(func) or not func.class_name:
            continue
        if func.class_has_bases:
            continue  # inherited methods are invisible; stay silent
        methods = {f.name for f in index.functions
                   if f.class_name == func.class_name}
        attrs = index.class_attrs.get(func.class_name, set())
        for lineno, kind, name in func.calls:
            if kind != "self" or name in methods or name in attrs:
                continue
            tokens = allow_tokens(index.lines, lineno)
            tokens |= allow_tokens(index.lines, func.node.lineno)
            if func.class_line:
                tokens |= allow_tokens(index.lines, func.class_line)
            if tokens & {"NYX075", FAMILY_TOKEN, FAMILY_ALIAS}:
                continue
            diags.append(Diagnostic(
                "NYX075",
                "%s calls self.%s() but %s defines no such method or "
                "attribute; the hot graph cannot follow this edge"
                % (func.qualname, name, func.class_name),
                file=index.filename, line=lineno))
    return diags


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def _analyze_indexes(indexes: List[ModuleIndex]
                     ) -> Tuple[List[Diagnostic], HotGraph]:
    graph = HotGraph([i for i in indexes if i.parse_error is None])
    diags: List[Diagnostic] = []
    for index in indexes:
        if index.parse_error is not None:
            diags.append(index.parse_error)
            continue
        diags.extend(_annotation_diags(index))
        diags.extend(_resolution_diags(index, graph))
        for func in index.functions:
            if graph.is_hot(func):
                diags.extend(_HotRules(func, index.lines).run())
    diags.sort(key=lambda d: (d.file or "", d.line or 0, d.code))
    return diags, graph


def analyze_hot_source(filename: str, text: str,
                       module: str = "module") -> List[Diagnostic]:
    """Hot-path lint of one module in isolation."""
    diags, _graph = _analyze_indexes([ModuleIndex(filename, text, module)])
    return diags


def _tree_indexes(root: str) -> List[ModuleIndex]:
    root_path = pathlib.Path(root)
    return [ModuleIndex(str(path), path.read_text(encoding="utf-8"),
                        _module_name(path, root_path))
            for path in _tree_files(root)]


def analyze_hot_tree(root: str) -> List[Diagnostic]:
    """Hot-path lint of every module under ``root`` with cross-module
    call-edge resolution."""
    diags, _graph = _analyze_indexes(_tree_indexes(root))
    return diags


def hot_sites(root: str) -> Dict[str, Set[str]]:
    """``{module: {qualnames}}`` of hot-reachable functions under
    ``root`` — the static coverage map the profiler's NYX077 check
    compares runtime cost ranks against."""
    _diags, graph = _analyze_indexes(_tree_indexes(root))
    return graph.hot_sites()


def hot_fixit_stubs(root: str) -> Dict[str, str]:
    """NYX072 local-alias stubs, keyed ``<path>::<qualname>``."""
    stubs: Dict[str, str] = {}
    indexes = _tree_indexes(root)
    graph = HotGraph([i for i in indexes if i.parse_error is None])
    for index in indexes:
        if index.parse_error is not None:
            continue
        for func in index.functions:
            if not graph.is_hot(func):
                continue
            rules = _HotRules(func, index.lines)
            rules.run()
            if not rules.alias_candidates:
                continue
            lines = ["    # hoist before the loop in %s (%s):"
                     % (func.qualname, index.filename)]
            for dotted in sorted(rules.alias_candidates):
                line, count = rules.alias_candidates[dotted]
                alias = "_".join(p for p in dotted.split(".")
                                 if p not in ("self", "cls")) or "alias"
                lines.append("        %s = %s  # line %d, %d loads/pass"
                             % (alias, dotted, line, count))
            stubs["%s::%s" % (index.filename, func.qualname)] = (
                "\n".join(lines) + "\n")
    return stubs
