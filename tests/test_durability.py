"""Durable campaigns: journal, checkpoints, kill/resume determinism.

The correctness bar (docs/robustness.md "Durability and resume"): a
campaign killed at an arbitrary point and resumed must finish with the
same ``stats_checksum``, corpus and crash DB as an uninterrupted run —
including with fault injection armed, with the watchdog armed, in a
parallel campaign, and with the newest checkpoint or the journal tail
corrupted (those degrade to the previous consistent state with a
warning, never a refused or wrong resume).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.fuzz.campaign import (build_campaign_from_manifest,
                                 build_parallel_campaign_from_manifest)
from repro.fuzz.journal import (CheckpointStore, DurabilityError,
                                DurableCampaign, DurableParallelCampaign,
                                GracefulShutdown, Journal, campaign_manifest,
                                read_manifest, resume_campaign,
                                salvage_corpus_blobs, write_manifest)
from repro.perf.macro import stats_checksum
from repro.spec.bytecode import SpecError, serialize
from repro.spec.nodes import default_network_spec
from repro.targets import PROFILES


class SimulatedKill(BaseException):
    """Raised from a stop() poll to model an abrupt process death."""


def _corpus_blobs(corpus):
    spec = default_network_spec()
    blobs = []
    for entry in corpus.entries:
        try:
            blobs.append(serialize(spec, entry.input.ops))
        except SpecError:
            blobs.append(b"<foreign>")
    return blobs


def _crash_digest(crashes):
    return {key: record.count for key, record in crashes.records.items()}


def _manifest(seed, **overrides):
    base = dict(policy="aggressive", seed=seed, time_budget=60.0,
                max_execs=400, checkpoint_every=100, fault_rate=0.05,
                exec_timeout=0.02)
    base.update(overrides)
    return campaign_manifest("single", "lighttpd", **base)


def _golden(manifest):
    """The uninterrupted reference run (no durability layer at all)."""
    handles = build_campaign_from_manifest(PROFILES["lighttpd"], manifest)
    stats = handles.fuzzer.run_campaign()
    return (stats_checksum(stats), _corpus_blobs(handles.fuzzer.corpus),
            _crash_digest(handles.fuzzer.crashes))


def _run_killed(manifest, directory, kill_after_polls):
    """Run a durable campaign and 'kill' it at the Nth step boundary."""
    durable = DurableCampaign(
        build_campaign_from_manifest(PROFILES["lighttpd"], manifest),
        directory, checkpoint_every=manifest["checkpoint_every"],
        manifest=manifest, journal_sync=False)
    calls = [0]

    def bomb():
        calls[0] += 1
        if calls[0] > kill_after_polls:
            raise SimulatedKill
        return False

    with pytest.raises(SimulatedKill):
        durable.run(stop=bomb)
    durable.close()
    return durable


def _resume_and_finish(directory):
    durable = resume_campaign(directory, journal_sync=False)
    stats = durable.run()
    return durable, (stats_checksum(stats),
                     _corpus_blobs(durable.fuzzer.corpus),
                     _crash_digest(durable.fuzzer.crashes))


# ----------------------------------------------------------------------
# journal framing
# ----------------------------------------------------------------------

class TestJournal:
    def test_append_scan_roundtrip(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = Journal(path, sync=False)
        journal.append("corpus_add", {"entry_id": 0, "blob": b"\x01\x02"})
        journal.append("watermark", {"execs": 7})
        journal.close()
        reopened = Journal(path, sync=False)
        assert reopened.records == [
            ("corpus_add", {"entry_id": 0, "blob": b"\x01\x02"}),
            ("watermark", {"execs": 7})]
        reopened.close()

    def test_torn_tail_truncated_with_warning(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = Journal(path, sync=False)
        journal.append("watermark", {"execs": 1})
        journal.append("watermark", {"execs": 2})
        journal.close()
        whole = path.read_bytes()
        path.write_bytes(whole[:-3])  # tear the last frame
        with pytest.warns(UserWarning, match="torn tail"):
            reopened = Journal(path, sync=False)
        assert reopened.records == [("watermark", {"execs": 1})]
        # the tail was physically truncated: appends go after frame 1
        reopened.append("watermark", {"execs": 9})
        reopened.close()
        final = Journal(path, sync=False)
        assert [b["execs"] for _, b in final.records] == [1, 9]
        final.close()

    def test_bitflipped_tail_stops_scan(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = Journal(path, sync=False)
        journal.append("watermark", {"execs": 1})
        journal.append("watermark", {"execs": 2})
        journal.close()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # corrupt the last frame's payload
        path.write_bytes(bytes(data))
        with pytest.warns(UserWarning, match="torn tail"):
            reopened = Journal(path, sync=False)
        assert reopened.records == [("watermark", {"execs": 1})]
        reopened.close()

    def test_corrupt_header_discards_file(self, tmp_path):
        path = tmp_path / "j.wal"
        path.write_bytes(b"NOTAWAL!garbage")
        with pytest.warns(UserWarning, match="corrupt header"):
            journal = Journal(path, sync=False)
        assert journal.records == []
        journal.append("watermark", {"execs": 1})
        journal.close()
        reopened = Journal(path, sync=False)
        assert len(reopened.records) == 1
        reopened.close()

    def test_empty_and_magic_only_files(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = Journal(path, sync=False)
        journal.close()
        reopened = Journal(path, sync=False)  # magic-only file
        assert reopened.records == []
        reopened.close()


class TestCheckpointStore:
    def test_save_load_roundtrip_and_prune(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        for n in range(5):
            assert store.save({"n": n}) == n + 1
        assert store.epochs() == [3, 4, 5]
        assert store.load(5) == {"n": 4}
        epoch, state, warns = store.load_latest()
        assert (epoch, state, warns) == (5, {"n": 4}, [])

    def test_corrupt_newest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"n": 0})
        store.save({"n": 1})
        newest = tmp_path / "epoch_000002.ckpt"
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest.write_bytes(bytes(data))
        epoch, state, warns = store.load_latest()
        assert epoch == 1 and state == {"n": 0}
        assert warns and "corrupt checkpoint" in warns[0]

    def test_all_corrupt_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"n": 0})
        (tmp_path / "epoch_000001.ckpt").write_bytes(b"junk")
        epoch, state, warns = store.load_latest()
        assert epoch is None and state is None and len(warns) == 1


class TestManifest:
    def test_roundtrip(self, tmp_path):
        manifest = _manifest(seed=1)
        write_manifest(tmp_path, manifest)
        assert read_manifest(tmp_path) == manifest

    def test_missing_manifest_refused(self, tmp_path):
        with pytest.raises(DurabilityError, match="no campaign manifest"):
            read_manifest(tmp_path)

    def test_wrong_format_version_refused(self, tmp_path):
        manifest = _manifest(seed=1)
        manifest["format_version"] = 99
        write_manifest(tmp_path, manifest)
        with pytest.raises(DurabilityError, match="format_version"):
            read_manifest(tmp_path)

    def test_spec_digest_mismatch_refused(self, tmp_path):
        manifest = _manifest(seed=1)
        manifest["spec_digest"] = "not-the-real-digest"
        write_manifest(tmp_path, manifest)
        with pytest.raises(DurabilityError, match="spec mismatch"):
            resume_campaign(tmp_path)

    def test_unknown_target_refused(self, tmp_path):
        manifest = _manifest(seed=1)
        manifest["target"] = "doom"
        write_manifest(tmp_path, manifest)
        with pytest.raises(DurabilityError, match="unknown target"):
            resume_campaign(tmp_path)


# ----------------------------------------------------------------------
# kill/resume determinism (the tentpole's correctness bar)
# ----------------------------------------------------------------------

class TestKillResumeDeterminism:
    """3 seeds x 2 kill points, faults + watchdog armed throughout."""

    @pytest.mark.parametrize("seed", [3, 11, 29])
    @pytest.mark.parametrize("kill_after", [2, 8])
    def test_resume_matches_uninterrupted(self, tmp_path, seed, kill_after):
        manifest = _manifest(seed)
        golden = _golden(manifest)
        _run_killed(manifest, tmp_path, kill_after)
        durable, result = _resume_and_finish(tmp_path)
        assert result == golden
        final = json.loads((tmp_path / "final.json").read_text())
        assert final["stats_checksum"] == golden[0]

    @pytest.mark.parametrize("kill_after", [2, 8])
    def test_chain_campaign_resume_matches(self, tmp_path, kill_after):
        # Overlay chains + bandit placement: the checkpoint must carry
        # the chain cursors and per-entry arm statistics, or the
        # resumed bandit diverges from the uninterrupted run.
        manifest = _manifest(7, policy="bandit", max_chain_depth=3)
        golden = _golden(manifest)
        _run_killed(manifest, tmp_path, kill_after)
        durable, result = _resume_and_finish(tmp_path)
        assert result == golden
        final = json.loads((tmp_path / "final.json").read_text())
        assert final["stats_checksum"] == golden[0]

    def test_resume_before_first_checkpoint(self, tmp_path):
        # Killed during the very first steps: no checkpoint exists yet,
        # so resume restarts from the manifest and still matches.
        manifest = _manifest(seed=3, checkpoint_every=100000)
        golden = _golden(manifest)
        _run_killed(manifest, tmp_path, kill_after_polls=2)
        durable, result = _resume_and_finish(tmp_path)
        assert durable.resumed_from is None
        assert result == golden

    def test_resume_survives_corrupt_newest_checkpoint(self, tmp_path):
        # A kill mid-checkpoint-write leaves a damaged newest epoch;
        # resume must degrade to the previous epoch, warn, and still
        # converge on the uninterrupted result.
        manifest = _manifest(seed=11)
        golden = _golden(manifest)
        victim = _run_killed(manifest, tmp_path, kill_after_polls=8)
        epochs = victim.checkpoints.epochs()
        assert len(epochs) >= 2, "need two epochs to test the fallback"
        newest = tmp_path / "checkpoints" / ("epoch_%06d.ckpt" % epochs[-1])
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest.write_bytes(bytes(data))
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            durable, result = _resume_and_finish(tmp_path)
        assert durable.resumed_from == epochs[-2]
        assert result == golden

    def test_resume_survives_torn_journal_append(self, tmp_path):
        # A kill mid-journal-append leaves a half-written frame; resume
        # truncates it, warns, and the re-derived run still matches.
        manifest = _manifest(seed=29)
        golden = _golden(manifest)
        _run_killed(manifest, tmp_path, kill_after_polls=8)
        wal = tmp_path / "journal.wal"
        wal.write_bytes(wal.read_bytes()[:-5])
        with pytest.warns(UserWarning, match="torn tail"):
            durable, result = _resume_and_finish(tmp_path)
        assert result == golden

    def test_resume_survives_bitflipped_journal_tail(self, tmp_path):
        manifest = _manifest(seed=29)
        golden = _golden(manifest)
        _run_killed(manifest, tmp_path, kill_after_polls=8)
        wal = tmp_path / "journal.wal"
        data = bytearray(wal.read_bytes())
        data[-2] ^= 0x40
        wal.write_bytes(bytes(data))
        with pytest.warns(UserWarning, match="torn tail"):
            durable, result = _resume_and_finish(tmp_path)
        assert result == golden

    def test_double_kill_then_resume(self, tmp_path):
        # Kill, resume, kill the resumed run, resume again.
        manifest = _manifest(seed=3)
        golden = _golden(manifest)
        _run_killed(manifest, tmp_path, kill_after_polls=3)
        second = resume_campaign(tmp_path, journal_sync=False)
        calls = [0]

        def bomb():
            calls[0] += 1
            if calls[0] > 4:
                raise SimulatedKill
            return False

        with pytest.raises(SimulatedKill):
            second.run(stop=bomb)
        second.close()
        durable, result = _resume_and_finish(tmp_path)
        assert result == golden

    def test_resume_of_completed_campaign_is_idempotent(self, tmp_path):
        manifest = _manifest(seed=3)
        durable = DurableCampaign(
            build_campaign_from_manifest(PROFILES["lighttpd"], manifest),
            tmp_path, checkpoint_every=100, manifest=manifest,
            journal_sync=False)
        stats = durable.run()
        checksum = stats_checksum(stats)
        resumed = resume_campaign(tmp_path, journal_sync=False)
        assert resumed.completed
        again = resumed.run()
        assert stats_checksum(again) == checksum

    def test_journal_salvages_corpus_blobs(self, tmp_path):
        manifest = _manifest(seed=3)
        _run_killed(manifest, tmp_path, kill_after_polls=5)
        blobs = salvage_corpus_blobs(tmp_path)
        assert blobs, "the killed window's finds survive in the WAL"
        spec = default_network_spec()
        from repro.spec.bytecode import deserialize
        for _entry_id, blob in blobs:
            assert deserialize(spec, blob)

    def test_graceful_stop_then_resume(self, tmp_path):
        manifest = _manifest(seed=11)
        golden = _golden(manifest)
        durable = DurableCampaign(
            build_campaign_from_manifest(PROFILES["lighttpd"], manifest),
            tmp_path, checkpoint_every=100, manifest=manifest,
            journal_sync=False)
        calls = [0]

        def drain():
            calls[0] += 1
            return calls[0] > 4

        assert durable.run(stop=drain) is None
        kinds = [k for k, _ in Journal(tmp_path / "journal.wal",
                                       sync=False).records]
        assert "graceful_stop" in kinds
        _durable, result = _resume_and_finish(tmp_path)
        assert result == golden


class TestParallelKillResume:
    def _manifest(self, seed):
        return campaign_manifest(
            "parallel", "lighttpd", policy="balanced", seed=seed,
            time_budget=10.0, max_execs=700, checkpoint_every=200,
            workers=2, fault_rate=0.02)

    def _golden(self, manifest):
        campaign = build_parallel_campaign_from_manifest(
            PROFILES["lighttpd"], manifest)
        aggregate = campaign.run()
        return (stats_checksum(aggregate.merged),
                [_corpus_blobs(w.fuzzer.corpus) for w in campaign.workers],
                [_crash_digest(w.fuzzer.crashes) for w in campaign.workers])

    def _result(self, durable, aggregate):
        workers = durable.campaign.workers
        return (stats_checksum(aggregate.merged),
                [_corpus_blobs(w.fuzzer.corpus) for w in workers],
                [_crash_digest(w.fuzzer.crashes) for w in workers])

    @pytest.mark.parametrize("seed,kill_after", [(5, 3), (5, 9), (17, 6)])
    def test_parallel_resume_matches(self, tmp_path, seed, kill_after):
        manifest = self._manifest(seed)
        golden = self._golden(manifest)
        victim = DurableParallelCampaign(
            build_parallel_campaign_from_manifest(PROFILES["lighttpd"],
                                                  manifest),
            tmp_path, checkpoint_every=200, manifest=manifest,
            journal_sync=False)
        calls = [0]

        def bomb():
            calls[0] += 1
            if calls[0] > kill_after:
                raise SimulatedKill
            return False

        with pytest.raises(SimulatedKill):
            victim.run(stop=bomb)
        victim.close()
        durable = resume_campaign(tmp_path, journal_sync=False)
        aggregate = durable.run()
        assert self._result(durable, aggregate) == golden
        final = json.loads((tmp_path / "final.json").read_text())
        assert final["stats_checksum"] == golden[0]
        assert final["workers"] == 2

    def test_parallel_worker_journals_exist(self, tmp_path):
        manifest = self._manifest(5)
        durable = DurableParallelCampaign(
            build_parallel_campaign_from_manifest(PROFILES["lighttpd"],
                                                  manifest),
            tmp_path, checkpoint_every=200, manifest=manifest,
            journal_sync=False)
        durable.run()
        assert (tmp_path / "workers" / "w00" / "journal.wal").exists()
        assert (tmp_path / "workers" / "w01" / "journal.wal").exists()


# ----------------------------------------------------------------------
# robustness state survives kill/resume
# ----------------------------------------------------------------------

class TestRobustnessStateResume:
    def test_supervision_state_roundtrips(self, tmp_path):
        """Quarantine tallies, backoff counters, degraded-root flags and
        watchdog timeout counts all come back from a checkpoint."""
        manifest = campaign_manifest(
            "parallel", "lighttpd", policy="balanced", seed=7,
            time_budget=5.0, max_execs=300, checkpoint_every=100, workers=2)
        durable = DurableParallelCampaign(
            build_parallel_campaign_from_manifest(PROFILES["lighttpd"],
                                                  manifest),
            tmp_path, checkpoint_every=100, manifest=manifest,
            journal_sync=False)
        campaign = durable.campaign
        campaign.start()
        # Plant distinctive robustness state, as a flaky fleet would.
        campaign._entry_failures = {12345: 1, 67890: 2}
        campaign.workers[0].consecutive_failures = 2
        campaign.workers[0].fuzzer.stats.worker_failures = 3
        campaign.workers[0].fuzzer.stats.timeouts = 4
        campaign.workers[0].fuzzer.stats.quarantined_inputs = 1
        campaign.workers[1].retired = True
        campaign.workers[1].done = True
        campaign.workers[1].executor.degraded_root_only = True
        campaign.workers[1].executor.snapshot_rebuilds = 6
        durable.save_checkpoint("test")
        durable.close()

        resumed = resume_campaign(tmp_path, journal_sync=False)
        fleet = resumed.campaign
        assert fleet._entry_failures == {12345: 1, 67890: 2}
        assert fleet.workers[0].consecutive_failures == 2
        assert fleet.workers[0].fuzzer.stats.worker_failures == 3
        assert fleet.workers[0].fuzzer.stats.timeouts == 4
        assert fleet.workers[0].fuzzer.stats.quarantined_inputs == 1
        assert fleet.workers[1].retired and fleet.workers[1].done
        assert fleet.workers[1].executor.degraded_root_only
        assert fleet.workers[1].executor.snapshot_rebuilds == 6

    def test_quarantined_entry_stays_out_after_resume(self, tmp_path):
        """A checksum quarantined before the kill cannot re-enter the
        corpus after resume: the seen-checksum set travels too."""
        manifest = _manifest(seed=7, fault_rate=0.0, exec_timeout=None,
                             max_execs=200)
        durable = DurableCampaign(
            build_campaign_from_manifest(PROFILES["lighttpd"], manifest),
            tmp_path, checkpoint_every=100, manifest=manifest,
            journal_sync=False)
        fuzzer = durable.fuzzer
        fuzzer.begin_campaign()
        fuzzer.step()
        victim_checksums = [e.checksum for e in fuzzer.corpus.entries
                            if e.checksum is not None]
        assert victim_checksums
        removed = fuzzer.corpus.remove_by_checksum(victim_checksums[0])
        assert removed
        durable.save_checkpoint("test")
        durable.close()
        resumed = resume_campaign(tmp_path, journal_sync=False)
        corpus = resumed.fuzzer.corpus
        assert victim_checksums[0] not in {e.checksum
                                           for e in corpus.entries}
        assert victim_checksums[0] in corpus._seen_checksums


# ----------------------------------------------------------------------
# signals
# ----------------------------------------------------------------------

class TestGracefulShutdown:
    def test_first_signal_sets_flag(self):
        with GracefulShutdown() as drain:
            assert not drain()
            os.kill(os.getpid(), signal.SIGTERM)
            for _ in range(100):
                if drain():
                    break
            assert drain.requested

    def test_second_signal_raises(self):
        with GracefulShutdown() as drain:
            os.kill(os.getpid(), signal.SIGTERM)
            while not drain():
                pass
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGTERM)
                # Let the handler run.
                for _ in range(1000):
                    pass

    def test_handlers_restored(self):
        before = signal.getsignal(signal.SIGTERM)
        with GracefulShutdown():
            assert signal.getsignal(signal.SIGTERM) != before
        assert signal.getsignal(signal.SIGTERM) == before


# ----------------------------------------------------------------------
# the CLI surface
# ----------------------------------------------------------------------

class TestDurableCli:
    def test_checkpoint_every_needs_out(self, capsys):
        assert main(["fuzz", "lighttpd", "--checkpoint-every", "100"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_resume_needs_manifest(self, capsys, tmp_path):
        assert main(["fuzz", "--resume", str(tmp_path)]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_target_required_without_resume(self, capsys):
        assert main(["fuzz"]) == 2
        assert "target is required" in capsys.readouterr().err

    def test_durable_run_and_completed_resume(self, capsys, tmp_path):
        out = str(tmp_path / "c")
        code = main(["fuzz", "lighttpd", "--execs", "120", "--time", "30",
                     "--seed", "3", "--checkpoint-every", "60",
                     "--out", out])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "durable campaign" in stdout
        final = json.loads((tmp_path / "c" / "final.json").read_text())
        assert final["execs"] == 120
        assert (tmp_path / "c" / "manifest.json").exists()
        assert (tmp_path / "c" / "stats.json").exists()
        # Resuming a finished campaign is a no-op with the same result.
        assert main(["fuzz", "--resume", out]) == 0
        assert json.loads(
            (tmp_path / "c" / "final.json").read_text()) == final

    def test_resume_conflicting_flags_refused(self, capsys, tmp_path):
        out = str(tmp_path / "c")
        main(["fuzz", "lighttpd", "--execs", "60", "--time", "30",
              "--seed", "3", "--checkpoint-every", "50", "--out", out])
        capsys.readouterr()
        code = main(["fuzz", "--resume", out, "--seed", "4"])
        assert code == 2
        err = capsys.readouterr().err
        assert "conflict" in err and "--seed" in err
        # The recorded target also counts as a conflicting flag.
        assert main(["fuzz", "dnsmasq", "--resume", out]) == 2

    def test_resume_adopts_manifest_defaults(self, capsys, tmp_path):
        # Flags left at their defaults adopt the manifest's values, so
        # a bare `--resume DIR` resumes a non-default campaign fine.
        out = str(tmp_path / "c")
        main(["fuzz", "lighttpd", "--execs", "60", "--time", "30",
              "--seed", "9", "--policy", "balanced",
              "--checkpoint-every", "50", "--out", out])
        capsys.readouterr()
        assert main(["fuzz", "--resume", out]) == 0


# ----------------------------------------------------------------------
# persistence satellites
# ----------------------------------------------------------------------

class TestPersistSatellites:
    def test_atomic_write_leaves_no_temp(self, tmp_path):
        from repro.fuzz.persist import _atomic_write_bytes
        target = tmp_path / "x.bin"
        _atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"
        assert list(tmp_path.iterdir()) == [target]

    def test_atomic_write_temp_name_is_per_process(self, tmp_path):
        # Two processes persisting the same path must not clobber each
        # other's in-flight temp file: the name carries the pid.
        from repro.fuzz import persist
        captured = []
        original = os.replace

        def spy(src, dst):
            captured.append(str(src))
            return original(src, dst)

        os.replace = spy
        try:
            persist._atomic_write_bytes(tmp_path / "x.bin", b"d")
        finally:
            os.replace = original
        assert captured[0].endswith(".tmp.%d" % os.getpid())

    def test_parallel_queue_numbering_starts_at_zero(self, tmp_path):
        from repro.fuzz.persist import save_parallel_campaign
        manifest = campaign_manifest(
            "parallel", "lighttpd", policy="balanced", seed=5,
            time_budget=5.0, max_execs=200, checkpoint_every=100, workers=2)
        campaign = build_parallel_campaign_from_manifest(
            PROFILES["lighttpd"], manifest)
        campaign.run()
        save_parallel_campaign(campaign, str(tmp_path))
        names = sorted(p.name for p in (tmp_path / "queue").glob("*.nyx"))
        assert names[0] == "id_000000.nyx"
        assert names == ["id_%06d.nyx" % i for i in range(len(names))]

    def test_load_corpus_warning_names_directory(self, tmp_path):
        from repro.fuzz.persist import load_corpus
        queue = tmp_path / "queue"
        queue.mkdir()
        (queue / "id_000000.nyx").write_bytes(b"\xff" * 16)
        with pytest.warns(UserWarning, match=str(tmp_path)):
            load_corpus(str(tmp_path))


# ----------------------------------------------------------------------
# real-process chaos: kill -9, SIGTERM
# ----------------------------------------------------------------------

def _spawn_campaign(out_dir, extra=()):
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "fuzz", "lighttpd",
         "--seed", "6", "--time", "60", "--execs", "500",
         "--checkpoint-every", "100", "--out", str(out_dir)] + list(extra),
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _wait_for_journal(out_dir, min_bytes, timeout=60.0):
    wal = out_dir / "journal.wal"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if wal.exists() and wal.stat().st_size >= min_bytes:
            return True
        time.sleep(0.05)
    return False


@pytest.mark.slow
class TestProcessChaos:
    """Seeded chaos harness: kill -9 a real campaign subprocess at a
    randomized point, resume it, and gate on checksum identity."""

    def _golden_checksum(self, tmp_path):
        golden_dir = tmp_path / "golden"
        proc = _spawn_campaign(golden_dir)
        assert proc.wait(timeout=240) == 0
        return json.loads(
            (golden_dir / "final.json").read_text())["stats_checksum"]

    def test_sigkill_then_resume_matches(self, tmp_path):
        import random
        golden = self._golden_checksum(tmp_path)
        chaos = random.Random(0xC0FFEE)  # seeded: reproducible kill point
        out_dir = tmp_path / "victim"
        proc = _spawn_campaign(out_dir)
        threshold = chaos.randrange(200, 2000)
        grew = _wait_for_journal(out_dir, threshold)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
            assert proc.wait(timeout=30) == -signal.SIGKILL
        assert grew, "campaign died before journaling anything"
        # Resume (possibly more than once if killed again).
        for attempt in range(2):
            resumed = subprocess.run(
                [sys.executable, "-m", "repro", "fuzz",
                 "--resume", str(out_dir)],
                cwd=os.path.dirname(os.path.dirname(
                    os.path.abspath(__file__))),
                env=dict(os.environ, PYTHONPATH="src"),
                capture_output=True, text=True, timeout=240)
            assert resumed.returncode == 0, resumed.stderr
            break
        final = json.loads((out_dir / "final.json").read_text())
        assert final["stats_checksum"] == golden

    def test_sigterm_drains_and_resumes(self, tmp_path):
        golden = self._golden_checksum(tmp_path)
        out_dir = tmp_path / "victim"
        proc = _spawn_campaign(out_dir)
        _wait_for_journal(out_dir, 400)
        code = None
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=60)
        if code == 0:
            pytest.skip("campaign finished before the signal landed")
        assert code == 3, "graceful drain exits 3 (resumable)"
        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "fuzz",
             "--resume", str(out_dir)],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=dict(os.environ, PYTHONPATH="src"),
            capture_output=True, text=True, timeout=240)
        assert resumed.returncode == 0, resumed.stderr
        final = json.loads((out_dir / "final.json").read_text())
        assert final["stats_checksum"] == golden
