"""Protocol tests for the text-protocol targets (exim, kamailio,
live555, lighttpd, forked-daapd)."""

import pytest

from repro.guestos.errors import CrashKind
from repro.targets.exim import PROFILE as EXIM
from repro.targets.forked_daapd import PROFILE as DAAPD
from repro.targets.kamailio import PROFILE as KAMAILIO, _sip
from repro.targets.lighttpd import PROFILE as LIGHTTPD
from repro.targets.live555 import PROFILE as LIVE555, _req

from tests.target_harness import TargetHarness


class TestExim:
    @pytest.fixture()
    def smtp(self):
        return TargetHarness(EXIM)

    def test_ehlo_lists_extensions(self, smtp):
        responses = smtp.send(b"EHLO fuzz\r\n")
        joined = b"".join(responses)
        assert b"250-SIZE" in joined and b"PIPELINING" in joined

    def test_full_delivery(self, smtp):
        responses = smtp.send(
            b"EHLO a\r\n", b"MAIL FROM:<x@a>\r\n", b"RCPT TO:<y@b>\r\n",
            b"DATA\r\n", b"hello\r\n", b".\r\n")
        joined = b"".join(responses)
        assert b"354" in joined and b"250 OK id=" in joined
        assert smtp.kernel.fs.listdir("/var/spool/exim")

    def test_rcpt_before_mail_rejected(self, smtp):
        responses = smtp.send(b"EHLO a\r\n", b"RCPT TO:<y@b>\r\n")
        assert b"503" in b"".join(responses)

    def test_malformed_mail_from(self, smtp):
        responses = smtp.send(b"EHLO a\r\n", b"MAIL FROM:<unterminated\r\n")
        assert b"501" in b"".join(responses)

    def test_size_parameter_parsed(self, smtp):
        responses = smtp.send(b"EHLO a\r\n",
                              b"MAIL FROM:<x@a> SIZE=99 BODY=8BITMIME\r\n")
        assert b"250 OK" in b"".join(responses)

    def test_starttls_underflow_requires_size_and_transaction(self, smtp):
        # STARTTLS outside a transaction: safe.
        assert smtp.run_session([b"EHLO a\r\n", b"STARTTLS\r\n"]) is None
        # Transaction without SIZE: safe.
        assert smtp.run_session([b"EHLO a\r\n", b"MAIL FROM:<x@a>\r\n",
                                 b"STARTTLS\r\n"]) is None
        # SIZE-carrying transaction + STARTTLS: the Nyx-only crash.
        report = smtp.run_session([b"EHLO a\r\n",
                                   b"MAIL FROM:<x@a> SIZE=512\r\n",
                                   b"STARTTLS\r\n"])
        assert report is not None
        assert report.kind is CrashKind.INTEGER_UNDERFLOW

    def test_dot_stuffing_unstuffed(self, smtp):
        smtp.send(b"EHLO a\r\n", b"MAIL FROM:<x@a>\r\n",
                  b"RCPT TO:<y@b>\r\n", b"DATA\r\n",
                  b"..literal dot line\r\n", b".\r\n")
        assert smtp.crash() is None


class TestKamailio:
    @pytest.fixture()
    def sip(self):
        return TargetHarness(KAMAILIO)

    def test_register_creates_binding(self, sip):
        responses = sip.send(_sip(b"REGISTER", b"sip:a@t.org", b"c1", 1,
                                  b"Contact: <sip:a@10.0.0.9>"))
        assert b"SIP/2.0 200 OK" in responses[0]
        assert b"sip:a@t.org" in sip.program.registrations

    def test_invite_unknown_user_404(self, sip):
        responses = sip.send(_sip(b"INVITE", b"sip:ghost@t.org", b"c2", 1))
        assert b"404" in responses[0]

    def test_full_dialog(self, sip):
        responses = sip.send(
            _sip(b"REGISTER", b"sip:a@t.org", b"r", 1,
                 b"Contact: <sip:a@10.0.0.9>"),
            _sip(b"INVITE", b"sip:a@t.org", b"call1", 1),
            _sip(b"ACK", b"sip:a@t.org", b"call1", 1),
            _sip(b"BYE", b"sip:a@t.org", b"call1", 2))
        joined = b"".join(responses)
        assert b"180 Ringing" in joined
        assert joined.count(b"200 OK") >= 3
        assert sip.program.dialogs == {}

    def test_bye_without_dialog_481(self, sip):
        responses = sip.send(_sip(b"BYE", b"sip:a@t.org", b"nope", 1))
        assert b"481" in responses[0]

    def test_missing_via_rejected(self, sip):
        raw = (b"OPTIONS sip:a@t.org SIP/2.0\r\n"
               b"To: <sip:a@t.org>\r\nCall-ID: x\r\n\r\n")
        responses = sip.send(raw)
        assert b"400" in responses[0]

    def test_compact_headers_accepted(self, sip):
        raw = (b"OPTIONS sip:a@t.org SIP/2.0\r\n"
               b"v: SIP/2.0/UDP 1.2.3.4\r\n"
               b"i: compact-1\r\n"
               b"t: <sip:a@t.org>\r\nf: <sip:b@t.org>\r\n\r\n")
        responses = sip.send(raw)
        assert b"200 OK" in responses[0]

    def test_content_length_mismatch_rejected(self, sip):
        raw = (b"MESSAGE sip:a@t.org SIP/2.0\r\n"
               b"Via: SIP/2.0/UDP h\r\nCall-ID: m1\r\n"
               b"Content-Length: 99\r\n\r\nshort")
        responses = sip.send(raw)
        assert b"400" in responses[0]

    def test_subscribe_requires_event(self, sip):
        responses = sip.send(_sip(b"SUBSCRIBE", b"sip:a@t.org", b"s1", 1))
        assert b"489" in responses[0]

    def test_no_planted_crash_under_garbage(self, sip):
        sip.send(b"\xff" * 64, b"INVITE \x00\x01 SIP/2.0\r\n\r\n")
        assert sip.crash() is None


class TestLive555:
    @pytest.fixture()
    def rtsp(self):
        return TargetHarness(LIVE555)

    url = b"rtsp://127.0.0.1:8554/stream0"

    def test_options(self, rtsp):
        responses = rtsp.send(_req(b"OPTIONS", self.url, 1))
        assert b"Public:" in responses[0]

    def test_describe_returns_sdp(self, rtsp):
        responses = rtsp.send(_req(b"DESCRIBE", self.url, 2,
                                   b"Accept: application/sdp"))
        assert b"application/sdp" in responses[0]
        assert b"v=0" in responses[0]

    def test_setup_play_teardown(self, rtsp):
        responses = rtsp.send(
            _req(b"SETUP", self.url, 1,
                 b"Transport: RTP/AVP;unicast;client_port=50000-50001"))
        session = responses[0].split(b"Session: ")[1][:8]
        responses = rtsp.send(
            _req(b"PLAY", self.url, 2, b"Session: " + session),
            _req(b"TEARDOWN", self.url, 3, b"Session: " + session))
        joined = b"".join(responses)
        assert b"Range: npt=0.000-" in joined

    def test_play_without_session_454(self, rtsp):
        responses = rtsp.send(_req(b"PLAY", self.url, 2))
        assert b"454" in responses[0]

    def test_url_overflow_crash(self, rtsp):
        long_url = b"rtsp://127.0.0.1:8554/" + b"A" * 64
        rtsp.send(_req(b"DESCRIBE", long_url, 1))
        report = rtsp.crash()
        assert report is not None and report.kind is CrashKind.SEGV

    def test_nonnumeric_cseq_400(self, rtsp):
        responses = rtsp.send(b"OPTIONS %s RTSP/1.0\r\nCSeq: abc\r\n\r\n"
                              % self.url)
        assert b"400" in responses[0]


class TestLighttpd:
    @pytest.fixture()
    def http(self):
        return TargetHarness(LIGHTTPD)

    def test_get_index(self, http):
        responses = http.send(b"GET / HTTP/1.1\r\nHost: a\r\n\r\n")
        assert b"200 OK" in responses[0]

    def test_404(self, http):
        responses = http.send(b"GET /missing HTTP/1.1\r\nHost: a\r\n\r\n")
        assert b"404" in responses[0]

    def test_range_request(self, http):
        responses = http.send(
            b"GET / HTTP/1.1\r\nHost: a\r\nRange: bytes=0-4\r\n\r\n")
        assert b"206" in responses[0]
        assert b"Content-Range: bytes 0-4/" in responses[0]

    def test_suffix_range_ok(self, http):
        responses = http.send(
            b"GET / HTTP/1.1\r\nHost: a\r\nRange: bytes=-5\r\n\r\n")
        assert b"206" in responses[0]

    def test_post_upload_persists_and_resets(self, http):
        http.send(b"POST /upload HTTP/1.1\r\nHost: a\r\n"
                  b"Content-Length: 4\r\n\r\nDATA")
        assert http.kernel.fs.listdir("/var/www")
        http.reset()
        assert not http.kernel.fs.listdir("/var/www")

    def test_range_underflow_crash(self, http):
        """§5.5: oversized suffix range + Content-Length header."""
        http.send(b"GET / HTTP/1.1\r\nHost: a\r\nContent-Length: 0\r\n"
                  b"Range: bytes=-9999\r\n\r\n")
        report = http.crash()
        assert report is not None
        assert report.kind is CrashKind.INTEGER_UNDERFLOW

    def test_suffix_range_without_content_length_safe(self, http):
        responses = http.send(
            b"GET / HTTP/1.1\r\nHost: a\r\nRange: bytes=-9999\r\n\r\n")
        assert http.crash() is None
        assert b"206" in responses[0]


class TestForkedDaapd:
    @pytest.fixture()
    def daap(self):
        return TargetHarness(DAAPD)

    def test_server_info(self, daap):
        responses = daap.send(b"GET /server-info HTTP/1.1\r\n\r\n")
        assert b"application/x-dmap-tagged" in responses[0]
        assert b"msrv" in responses[0]

    def test_login_then_query(self, daap):
        responses = daap.send(b"GET /login HTTP/1.1\r\n\r\n")
        assert b"mlid" in responses[0]
        responses = daap.send(
            b"GET /databases/1/items?session-id=101 HTTP/1.1\r\n\r\n")
        assert b"adbs" in responses[-1]

    def test_query_without_session_403(self, daap):
        responses = daap.send(
            b"GET /databases/1/items?session-id=9 HTTP/1.1\r\n\r\n")
        assert b"403" in responses[0]

    def test_artist_filter(self, daap):
        daap.send(b"GET /login HTTP/1.1\r\n\r\n")
        responses = daap.send(
            b"GET /databases/1/items?session-id=101&query='artist:A'"
            b" HTTP/1.1\r\n\r\n")
        body = responses[-1]
        assert body.count(b"mlit") == 2   # two tracks by artist A

    def test_stream_unknown_track_404(self, daap):
        responses = daap.send(b"GET /stream/99 HTTP/1.1\r\n\r\n")
        assert b"404" in responses[0]
