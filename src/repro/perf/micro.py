"""Micro-benchmarks of the execute-reset hot path's building blocks.

Each benchmark isolates one operation the fuzzing loop performs
thousands of times per second — sub-page guest writes, single-page
reads, root/incremental resets, incremental snapshot churn,
overlay-chain restores and folds, coverage novelty checks and kernel
state-blob flushes — and reports its
wall-clock rate.  The workloads are fully deterministic (fixed
payloads, fixed page patterns), so rate changes between runs measure
the implementation, not the input.

Run via ``repro bench`` (see docs/performance.md); results land in
``BENCH_micro.json``.
"""

from __future__ import annotations

import platform
import sys
from typing import Dict, List

from repro.coverage.bitmap import CoverageMap
from repro.perf.timers import bench_loop, rate_entry
from repro.vm.machine import Machine
from repro.vm.memory import PAGE_SIZE, GuestMemory, RegionAllocator

#: Pages of guest memory used by the memory-level benchmarks — small
#: enough to boot instantly, large enough that full-memory scans (the
#: anti-pattern the hot-path work removes) would dominate.
_BENCH_PAGES = 2048


def _bench_memory(min_seconds: float) -> List[Dict[str, object]]:
    """Write/read throughput of :class:`GuestMemory`."""
    rows: List[Dict[str, object]] = []
    memory = GuestMemory(_BENCH_PAGES * PAGE_SIZE)
    payload = bytes(range(64))

    # Sub-page write churn over a 32-page working set: the pattern of a
    # busy guest mutating socket buffers and counters in place.
    def write_churn(i: int) -> None:
        page = i % 32
        offset = (i * 97) % (PAGE_SIZE - len(payload))
        memory.write(page * PAGE_SIZE + offset, payload)
        if i % 4096 == 4095:
            memory.take_dirty()

    iterations, elapsed = bench_loop(write_churn, min_seconds=min_seconds)
    memory.take_dirty()
    rows.append(rate_entry("memory_write_subpage", iterations, elapsed))

    # Single-page-sized writes (state blob serialization pattern).
    blob = bytes(PAGE_SIZE)

    def write_page(i: int) -> None:
        memory.write((i % 32) * PAGE_SIZE, blob)

    iterations, elapsed = bench_loop(write_page, min_seconds=min_seconds)
    memory.take_dirty()
    rows.append(rate_entry("memory_write_page", iterations, elapsed))

    # Short reads at arbitrary offsets (blob header peeks, packet data).
    def read_short(i: int) -> None:
        offset = (i * 89) % (32 * PAGE_SIZE - 64)
        memory.read(offset, 64)

    iterations, elapsed = bench_loop(read_short, min_seconds=min_seconds)
    rows.append(rate_entry("memory_read_short", iterations, elapsed))

    # Whole-page reads (snapshot capture / blob reload pattern).
    def read_page(i: int) -> None:
        memory.read((i % 32) * PAGE_SIZE, PAGE_SIZE)

    iterations, elapsed = bench_loop(read_page, min_seconds=min_seconds)
    rows.append(rate_entry("memory_read_page", iterations, elapsed))
    return rows


def _bench_resets(min_seconds: float) -> List[Dict[str, object]]:
    """Root and incremental reset cycles (the §4.2 hot loop)."""
    rows: List[Dict[str, object]] = []
    machine = Machine(memory_bytes=_BENCH_PAGES * PAGE_SIZE,
                      disk_sectors=64)
    machine.capture_root()
    payload = b"dirty-page-payload"

    # Root reset after touching a 24-page working set.
    def root_cycle(i: int) -> None:
        for page in range(24):
            machine.memory.write(page * PAGE_SIZE + (i % 256), payload)
        machine.restore_root()

    iterations, elapsed = bench_loop(root_cycle, min_seconds=min_seconds)
    rows.append(rate_entry("reset_root_24pages", iterations, elapsed))

    # Incremental reset: prefix state + mutated 8-page suffix, the
    # paper's fast path ("only pages dirtied since the incremental
    # snapshot are reset").
    for page in range(16):
        machine.memory.write(page * PAGE_SIZE, b"prefix state")
    machine.create_incremental()

    def incremental_cycle(i: int) -> None:
        for page in range(16, 24):
            machine.memory.write(page * PAGE_SIZE + (i % 256), payload)
        machine.restore_incremental()

    iterations, elapsed = bench_loop(incremental_cycle,
                                     min_seconds=min_seconds)
    rows.append(rate_entry("reset_incremental_8pages", iterations, elapsed))

    # Incremental snapshot churn: recreate the snapshot every cycle,
    # which exercises the mirror copy + CRC maintenance path.
    def create_cycle(i: int) -> None:
        machine.memory.write((16 + i % 8) * PAGE_SIZE, payload)
        machine.create_incremental()
        machine.memory.write(30 * PAGE_SIZE, payload)
        machine.restore_incremental()

    iterations, elapsed = bench_loop(create_cycle, min_seconds=min_seconds)
    rows.append(rate_entry("snapshot_create_restore", iterations, elapsed))
    return rows


def _bench_chains(min_seconds: float) -> List[Dict[str, object]]:
    """Overlay-chain restore and fold cycles (docs/snapshots.md).

    ``chain_restore_depth{1,2,4}`` measure the suffix-iteration reset
    at increasing chain depth — depth 1 is the classic incremental
    restore, so the depth-2/4 rows show what the extra layers cost.
    ``chain_commit_fold`` measures the push + commit churn of the
    executor's commit-at-cap path.
    """
    rows: List[Dict[str, object]] = []
    payload = b"dirty-page-payload"
    for depth in (1, 2, 4):
        machine = Machine(memory_bytes=_BENCH_PAGES * PAGE_SIZE,
                          disk_sectors=64)
        machine.capture_root()
        # One chain layer per 8-page prefix band: the shape a
        # multi-packet exchange leaves behind (each handled packet
        # dirties a slice of guest state, then a node is pushed).
        for level in range(depth):
            for page in range(level * 8, level * 8 + 8):
                machine.memory.write(page * PAGE_SIZE, b"prefix state")
            if level == 0:
                machine.create_incremental()
            else:
                machine.push_overlay()

        def chain_cycle(i: int, machine=machine, depth=depth) -> None:
            for page in range(40, 48):
                machine.memory.write(page * PAGE_SIZE + (i % 256), payload)
            machine.restore_to_depth(depth)

        iterations, elapsed = bench_loop(chain_cycle,
                                         min_seconds=min_seconds)
        rows.append(rate_entry("chain_restore_depth%d" % depth,
                               iterations, elapsed))

    machine = Machine(memory_bytes=_BENCH_PAGES * PAGE_SIZE,
                      disk_sectors=64)
    machine.capture_root()
    machine.memory.write(0, b"prefix state")
    machine.create_incremental()

    def commit_fold(i: int) -> None:
        machine.memory.write((8 + i % 8) * PAGE_SIZE, payload)
        machine.push_overlay()
        machine.memory.write(30 * PAGE_SIZE, payload)
        machine.snapshots.commit_overlay()

    iterations, elapsed = bench_loop(commit_fold, min_seconds=min_seconds)
    rows.append(rate_entry("chain_commit_fold", iterations, elapsed))
    return rows


def _bench_blobs(min_seconds: float) -> List[Dict[str, object]]:
    """Kernel state-blob flush pattern over :class:`RegionAllocator`."""
    rows: List[Dict[str, object]] = []
    memory = GuestMemory(_BENCH_PAGES * PAGE_SIZE)
    allocator = RegionAllocator(memory)
    region = allocator.alloc(4 * PAGE_SIZE)
    base = bytes(range(256)) * 48  # ~3 pages of stable component state

    # Rewrite an identical blob every time — the "unchanged component
    # reserialized at a test boundary" pattern.  A hot-path-aware
    # implementation dirties zero pages here.
    allocator.write_blob(region, base)
    memory.take_dirty()

    def rewrite_same(i: int) -> None:
        allocator.write_blob(region, base)

    iterations, elapsed = bench_loop(rewrite_same, min_seconds=min_seconds)
    pages_dirtied = len(memory.take_dirty())
    rows.append(rate_entry("blob_rewrite_identical", iterations, elapsed,
                           pages_dirtied=pages_dirtied))

    # Rewrite with one late byte changing — only the tail page differs.
    def rewrite_tail(i: int) -> None:
        blob = base[:-8] + (i % 251).to_bytes(8, "little")
        allocator.write_blob(region, blob)

    iterations, elapsed = bench_loop(rewrite_tail, min_seconds=min_seconds)
    pages_dirtied = len(memory.take_dirty())
    rows.append(rate_entry("blob_rewrite_tail_byte", iterations, elapsed,
                           pages_dirtied=pages_dirtied))
    return rows


def _bench_coverage(min_seconds: float) -> List[Dict[str, object]]:
    """``has_new_bits`` over a realistic sparse trace."""
    rows: List[Dict[str, object]] = []
    coverage = CoverageMap()
    # A 384-edge trace, counts spread over the bucket classes.
    trace = {(i * 131) % (1 << 16): (i % 9) + 1 for i in range(384)}
    coverage.has_new_bits(trace)

    # The common case: an already-seen trace (no novelty).
    def known_trace(i: int) -> None:
        coverage.has_new_bits(trace)

    iterations, elapsed = bench_loop(known_trace, min_seconds=min_seconds)
    rows.append(rate_entry("coverage_known_trace", iterations, elapsed,
                           trace_edges=len(trace)))

    # Novel traces: fresh edges each call (bounded so the map never
    # saturates enough to change the work done per call).
    def novel_trace(i: int) -> None:
        fresh = {(50000 + (i * 384 + j) % 15000): 1 for j in range(64)}
        coverage.has_new_bits(fresh)

    iterations, elapsed = bench_loop(novel_trace, min_seconds=min_seconds)
    rows.append(rate_entry("coverage_novel_trace", iterations, elapsed))
    return rows


def run_micro(quick: bool = False) -> Dict[str, object]:
    """Run every micro benchmark; returns the ``BENCH_micro`` payload.

    ``quick`` shortens each measurement window (CI smoke); rates are
    noisier but orders of magnitude remain meaningful.
    """
    min_seconds = 0.05 if quick else 0.4
    rows: List[Dict[str, object]] = []
    rows.extend(_bench_memory(min_seconds))
    rows.extend(_bench_resets(min_seconds))
    rows.extend(_bench_chains(min_seconds))
    rows.extend(_bench_blobs(min_seconds))
    rows.extend(_bench_coverage(min_seconds))
    return {
        "kind": "micro",
        "quick": quick,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "benchmarks": {row["name"]: {k: v for k, v in row.items()
                                     if k != "name"}
                       for row in rows},
    }
