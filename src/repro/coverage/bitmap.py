"""AFL-style coverage bitmaps over sparse traces.

Semantics follow AFL: a 64 Ki-entry map of edge hit counts, bucketed
into power-of-two classes before novelty comparison, and a *virgin map*
accumulating everything ever seen.  ``has_new_bits`` distinguishes
"new edge" from "new hit-count bucket on a known edge".

One deviation for host performance: per-execution traces are **sparse**
(dict of edge index -> raw hit count) rather than dense byte arrays, so
the common "nothing new" case costs O(edges executed), not O(map size).
The virgin map itself stays dense and byte-compatible with AFL's.
"""

from __future__ import annotations

from typing import Dict, Iterable

MAP_SIZE = 1 << 16

#: AFL's count classes: observed hit count (clamped to 255) -> bucket bit.
BUCKET_LOOKUP = bytearray(256)
for _count in range(256):
    if _count == 0:
        _bucket = 0
    elif _count == 1:
        _bucket = 1
    elif _count == 2:
        _bucket = 2
    elif _count == 3:
        _bucket = 4
    elif _count <= 7:
        _bucket = 8
    elif _count <= 15:
        _bucket = 16
    elif _count <= 31:
        _bucket = 32
    elif _count <= 127:
        _bucket = 64
    else:
        _bucket = 128
    BUCKET_LOOKUP[_count] = _bucket


def classify_counts(trace: Dict[int, int]) -> Dict[int, int]:
    """Map a sparse trace's raw hit counts to AFL bucket values."""
    lookup = BUCKET_LOOKUP
    return {idx: lookup[count if count < 256 else 255]
            for idx, count in trace.items()}


def count_bits(bitmap: Iterable[int]) -> int:
    """Number of non-zero entries (edges) in a dense map."""
    return sum(1 for b in bitmap if b)


class CoverageMap:
    """The fuzzer's accumulated ("virgin") coverage state."""

    NEW_NOTHING = 0
    NEW_COUNT = 1
    NEW_EDGE = 2

    def __init__(self, size: int = MAP_SIZE) -> None:
        self.size = size
        self.virgin = bytearray(size)
        #: Number of distinct edges ever observed.
        self.edges_seen = 0

    def has_new_bits(self, trace: Dict[int, int], update: bool = True) -> int:
        """Compare a sparse raw trace against the virgin map.

        Returns NEW_EDGE if a never-seen edge fired, NEW_COUNT if only
        a new hit-count bucket appeared on a known edge, NEW_NOTHING
        otherwise.  When ``update`` is set, the virgin map absorbs the
        trace.

        ``edges_seen`` moves only when ``update`` does: a read-only
        query must not inflate the edge counter, and two trace indices
        aliasing the same map slot count the slot once (the first
        absorbs into the virgin map; the second then sees a known
        edge), never twice.
        """
        verdict = self.NEW_NOTHING
        virgin = self.virgin
        lookup = BUCKET_LOOKUP
        size = self.size
        new_edges = 0
        for idx, count in trace.items():
            bucket = lookup[count if count < 256 else 255]
            if not bucket:
                continue
            slot = idx % size
            old = virgin[slot]
            if bucket & ~old:
                if old == 0:
                    verdict = self.NEW_EDGE
                    new_edges += 1
                elif verdict == self.NEW_NOTHING:
                    verdict = self.NEW_COUNT
                if update:
                    virgin[slot] = old | bucket
        if update:
            self.edges_seen += new_edges
        return verdict

    def edge_count(self) -> int:
        """Distinct edges covered so far (the paper's "branches")."""
        return self.edges_seen

    def checksum(self, trace: Dict[int, int]) -> int:
        """Cheap, order-independent hash of a classified trace."""
        lookup = BUCKET_LOOKUP
        total = 0
        for idx, count in trace.items():
            total ^= hash((idx, lookup[count if count < 256 else 255]))
        return total

    def copy(self) -> "CoverageMap":
        clone = CoverageMap(self.size)
        clone.virgin = bytearray(self.virgin)
        clone.edges_seen = self.edges_seen
        return clone

    # -- durability (checkpoint/resume) ----------------------------------

    def snapshot_state(self) -> dict:
        """Picklable virgin-map state (see :mod:`repro.fuzz.journal`)."""
        return {"size": self.size, "virgin": bytes(self.virgin),
                "edges_seen": self.edges_seen}

    def restore_state(self, state: dict) -> None:
        """Adopt a checkpointed virgin map."""
        self.size = int(state["size"])
        self.virgin = bytearray(state["virgin"])
        self.edges_seen = int(state["edges_seen"])
