"""Deterministic sim-cost profiler: the runtime prong of NYX07x.

The static prong (``repro.analysis.hotlint``) reasons about code it can
*see*; this module measures what the campaign actually *spends*.  Both
answer the same question — "where does an execution go?" — from
opposite directions, and the two cross-check each other:

* **NYX076** — a profiled hot site's call count or sim-clock cost
  drifted past the budget recorded in the committed baseline
  (``tests/golden/profile_baseline.json``).  Because every number here
  comes off the *simulated* clock, the profile is a pure function of
  the campaign configuration: any drift is a real behaviour change,
  never host noise.  Regenerating the baseline (``--write-baseline``)
  is the fix once the change is intentional.
* **NYX077** — a top-decile site by exclusive sim cost has no
  ``# nyx: hot`` root coverage in the static call graph.  This is the
  backstop for hotlint's conservative edge resolution: code the static
  prong could not prove hot but the profiler caught spending real time
  must either gain an annotation or be demoted.

Instrumentation is wrapper-based (``sys.setprofile`` would also see
host library frames and perturb the settrace coverage backend): every
plain function and method in :data:`PROFILE_MODULES` is replaced with
a recording wrapper *before* the campaign is built, so bound methods,
handler tables and restore callbacks all capture the wrapped callable.
Wrappers read the sim clock and never charge it, so an instrumented
campaign's ``stats_checksum`` is byte-identical to a bare run's.

Costs are attributed in the classic profiler split:

* **inclusive** — sim seconds between a frame's entry and exit
  (recursive re-entries double-count, as in any tree profiler);
* **exclusive** — inclusive minus the inclusive time of direct
  callees, i.e. the cost charged while this frame itself ran.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import types
from functools import wraps
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic

#: Modules whose functions/methods are instrumented.  Coverage backends
#: are excluded (their callbacks run inside ``sys.settrace`` windows)
#: and so are target programs (their cost is the *measured* payload,
#: visible through the kernel surface they call into).
PROFILE_MODULES: Tuple[str, ...] = (
    "repro.fuzz.executor",
    "repro.fuzz.fuzzer",
    "repro.fuzz.mutators",
    "repro.fuzz.queue",
    "repro.guestos.kernel",
    "repro.guestos.epoll",
    "repro.guestos.fds",
    "repro.guestos.process",
    "repro.guestos.sockets",
    "repro.vm.machine",
    "repro.vm.memory",
    "repro.vm.snapshot",
    "repro.emu.interceptor",
    "repro.emu.surface",
)

#: Campaign-configuration keys that must match between a profile and a
#: baseline for the NYX076 gate to be meaningful (the profile is a pure
#: function of these).
CONFIG_KEYS: Tuple[str, ...] = ("target", "seed", "execs", "policy")

#: Fraction of sites (by exclusive cost) considered "top decile" for
#: the NYX077 static-coverage cross-check.
TOP_DECILE = 0.10


class ProfileCollector:
    """Accumulates per-site call counts and sim-clock costs.

    The collector starts disabled with no clock: instrumentation
    happens before the campaign (and therefore the clock) exists, and
    boot-time work is deliberately outside the profile window.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._clock: Optional[Any] = None
        #: Call stack of ``[site, entry_time, child_inclusive]`` frames.
        self._stack: List[List[Any]] = []
        #: site -> [calls, inclusive, exclusive]
        self.sites: Dict[str, List[float]] = {}

    def attach_clock(self, clock: Any) -> None:
        """Bind the campaign's sim clock and start recording."""
        self._clock = clock
        self.enabled = True

    def stop(self) -> None:
        self.enabled = False

    def _push(self, site: str) -> None:
        self._stack.append([site, self._clock.now, 0.0])

    def _pop(self) -> None:
        site, t0, child = self._stack.pop()
        inclusive = self._clock.now - t0
        exclusive = inclusive - child
        rec = self.sites.get(site)
        if rec is None:
            self.sites[site] = [1, inclusive, exclusive]
        else:
            rec[0] += 1
            rec[1] += inclusive
            rec[2] += exclusive
        if self._stack:
            self._stack[-1][2] += inclusive

    def as_table(self) -> Dict[str, Dict[str, float]]:
        """Canonical per-site cost table (costs rounded to nanoseconds
        of sim time so the checksum is repr-stable)."""
        return {
            site: {
                "calls": int(rec[0]),
                "incl": round(rec[1], 9),
                "excl": round(rec[2], 9),
            }
            for site, rec in self.sites.items()
        }


def _wrap(fn: Callable, site: str, collector: ProfileCollector) -> Callable:
    @wraps(fn)
    def wrapper(*args, **kwargs):
        if not collector.enabled:
            return fn(*args, **kwargs)
        collector._push(site)
        try:
            return fn(*args, **kwargs)
        finally:
            collector._pop()

    wrapper._nyx_profiled = True  # type: ignore[attr-defined]
    return wrapper


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def instrument(collector: ProfileCollector,
               modules: Sequence[str] = PROFILE_MODULES) -> Callable[[], None]:
    """Wrap every plain function/method in ``modules``; returns an undo.

    Dunders, properties, static/class methods and objects defined in
    other modules (imports) are left alone.  Call *before* building
    the campaign so every handler table and callback binds wrappers.
    """
    patched: List[Tuple[Any, str, Callable]] = []
    for modname in modules:
        module = importlib.import_module(modname)
        for attr, value in sorted(vars(module).items()):
            if (isinstance(value, types.FunctionType)
                    and value.__module__ == modname
                    and not _is_dunder(attr)
                    and not getattr(value, "_nyx_profiled", False)):
                site = "%s:%s" % (modname, attr)
                patched.append((module, attr, value))
                setattr(module, attr, _wrap(value, site, collector))
            elif isinstance(value, type) and value.__module__ == modname:
                for meth, fn in sorted(vars(value).items()):
                    if (isinstance(fn, types.FunctionType)
                            and not _is_dunder(meth)
                            and not getattr(fn, "_nyx_profiled", False)):
                        site = "%s:%s.%s" % (modname, value.__name__, meth)
                        patched.append((value, meth, fn))
                        setattr(value, meth, _wrap(fn, site, collector))

    def undo() -> None:
        for owner, name, original in reversed(patched):
            setattr(owner, name, original)

    return undo


def profile_checksum(sites: Dict[str, Dict[str, float]]) -> str:
    """sha1 over the canonical JSON of the per-site cost table."""
    payload = json.dumps(sites, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


def run_profile(target: str = "lighttpd", seed: int = 1,
                execs: int = 400, policy: str = "aggressive") -> Dict[str, object]:
    """Run one seeded campaign under instrumentation; report sim costs.

    The payload carries no wall-clock number at all: same config, same
    bytes, on any host.  ``stats_checksum`` is included to prove the
    wrappers did not perturb the campaign.
    """
    from repro.fuzz.campaign import build_campaign
    from repro.perf.macro import stats_checksum
    from repro.targets import PROFILES
    profile = PROFILES[target]

    collector = ProfileCollector()
    undo = instrument(collector)
    try:
        handles = build_campaign(profile, policy=policy, seed=seed,
                                 time_budget=1e9, max_execs=execs)
        collector.attach_clock(handles.machine.clock)
        stats = handles.fuzzer.run_campaign()
        collector.stop()
    finally:
        undo()

    sites = collector.as_table()
    return {
        "kind": "profile",
        "target": target,
        "seed": seed,
        "execs": execs,
        "policy": policy,
        "campaign_execs": stats.execs,
        "sim_seconds": round(stats.duration(), 6),
        "sites": sites,
        "profile_checksum": profile_checksum(sites),
        "stats_checksum": stats_checksum(stats),
    }


def format_profile(payload: Dict[str, object], top: int = 15) -> str:
    """Human-readable cost table, heaviest exclusive sites first."""
    sites: Dict[str, Dict[str, float]] = payload["sites"]  # type: ignore
    rows = sorted(sites.items(),
                  key=lambda kv: (-kv[1]["excl"], kv[0]))[:top]
    lines = ["%-58s %9s %12s %12s" % ("site", "calls", "incl(s)", "excl(s)")]
    for site, rec in rows:
        lines.append("%-58s %9d %12.6f %12.6f"
                     % (site, rec["calls"], rec["incl"], rec["excl"]))
    lines.append("%d sites, %.6f sim seconds, checksum %s"
                 % (len(sites), payload["sim_seconds"],
                    payload["profile_checksum"]))
    return "\n".join(lines)


def compare_profile(current: Dict[str, object],
                    baseline: Dict[str, object],
                    pct: float = 25.0,
                    baseline_path: str = "tests/golden/profile_baseline.json",
                    ) -> Tuple[List[Diagnostic], List[str]]:
    """NYX076: per-site budget drift against a committed baseline.

    Returns ``(diagnostics, notes)``.  When the campaign configuration
    differs from the baseline's the comparison is skipped with a note
    (sim numbers are a pure function of the configuration, so gating a
    different config would only measure the config delta).
    """
    notes: List[str] = []
    diags: List[Diagnostic] = []
    mismatched = [k for k in CONFIG_KEYS
                  if current.get(k) != baseline.get(k)]
    if mismatched:
        notes.append("profile gate skipped (config mismatch: %s)"
                     % ", ".join("%s %r != %r"
                                 % (k, current.get(k), baseline.get(k))
                                 for k in mismatched))
        return diags, notes
    cur_sites: Dict[str, Dict[str, float]] = current["sites"]  # type: ignore
    base_sites: Dict[str, Dict[str, float]] = baseline["sites"]  # type: ignore
    if current.get("profile_checksum") == baseline.get("profile_checksum"):
        notes.append("profile identical to baseline (checksum %s)"
                     % current.get("profile_checksum"))
        return diags, notes
    for site in sorted(set(cur_sites) | set(base_sites)):
        cur = cur_sites.get(site)
        base = base_sites.get(site)
        if base is None:
            diags.append(Diagnostic(
                "NYX076", "new hot site %s (%d calls, %.6fs excl) absent "
                "from the baseline" % (site, cur["calls"], cur["excl"]),
                file=baseline_path, fixable=True))
            continue
        if cur is None:
            diags.append(Diagnostic(
                "NYX076", "hot site %s vanished (baseline had %d calls, "
                "%.6fs excl)" % (site, base["calls"], base["excl"]),
                file=baseline_path, fixable=True))
            continue
        drifts = []
        if cur["calls"] != base["calls"]:
            drifts.append("calls %d -> %d" % (base["calls"], cur["calls"]))
        for field in ("incl", "excl"):
            b, c = base[field], cur[field]
            if b > 1e-9:
                drift = abs(c - b) / b * 100.0
                if drift > pct:
                    drifts.append("%s %+.1f%% (%.6fs -> %.6fs)"
                                  % (field, (c - b) / b * 100.0, b, c))
            elif c > 1e-9:
                drifts.append("%s 0s -> %.6fs" % (field, c))
        if drifts:
            diags.append(Diagnostic(
                "NYX076", "hot site %s drifted past the %.0f%% budget: %s"
                % (site, pct, "; ".join(drifts)),
                file=baseline_path, fixable=True))
    return diags, notes


def static_disagreement(payload: Dict[str, object],
                        root: str = "src/repro") -> List[Diagnostic]:
    """NYX077: top-decile sim-cost sites without static hot coverage.

    Cross-checks the profile against ``hotlint``'s reachability set: a
    site the campaign demonstrably spends top-decile exclusive sim time
    in must be provably hot to the static prong, or its root needs a
    ``# nyx: hot`` annotation (or the call edge that reaches it is one
    the resolver cannot see — same fix).
    """
    import pathlib

    from repro.analysis.hotlint import hot_sites
    sites: Dict[str, Dict[str, float]] = payload["sites"]  # type: ignore
    if not sites:
        return []
    hot = hot_sites(root)
    src_base = pathlib.Path(root).parent
    ranked = sorted(sites.items(), key=lambda kv: (-kv[1]["excl"], kv[0]))
    take = max(1, int(len(ranked) * TOP_DECILE))
    diags: List[Diagnostic] = []
    for site, rec in ranked[:take]:
        module, _, qualname = site.partition(":")
        if qualname in hot.get(module, set()):
            continue
        diags.append(Diagnostic(
            "NYX077", "top-decile site %s (%.6fs excl, %d calls) has no "
            "'# nyx: hot' root coverage in the static call graph"
            % (site, rec["excl"], rec["calls"]),
            file=str(src_base / (module.replace(".", "/") + ".py"))))
    return diags
