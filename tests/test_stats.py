"""Unit tests for campaign statistics: derived-metric edge cases and
the multi-worker rollup.

The regression pinned here: ``execs_per_second()`` used to divide by
``end_time`` directly, so a campaign whose end time was never stamped
(or whose cost model charged nothing) reported 0.0 execs/s even after
thousands of executions.
"""

import json

from repro.fuzz.stats import AggregateStats, CampaignStats


class TestExecsPerSecond:
    def test_unstamped_end_time_falls_back_to_series(self):
        stats = CampaignStats(execs=500)
        stats.exec_series = [(1.0, 100), (10.0, 500)]
        assert stats.end_time == 0.0
        assert stats.duration() == 10.0
        assert stats.execs_per_second() == 50.0

    def test_crash_times_extend_duration(self):
        stats = CampaignStats(execs=90)
        stats.coverage_series = [(2.0, 40)]
        stats.crash_times = {"heap-overflow:0x10": 9.0}
        assert stats.duration() == 9.0
        assert stats.execs_per_second() == 10.0

    def test_zero_elapsed_floors_at_one_second(self):
        # Execs ran but no sim time was ever charged: report the count
        # itself (a 1-second floor), never a misleading 0.0.
        stats = CampaignStats(execs=42)
        assert stats.execs_per_second() == 42.0

    def test_fresh_stats_report_zero(self):
        assert CampaignStats().execs_per_second() == 0.0

    def test_stamped_end_time_wins_when_latest(self):
        stats = CampaignStats(execs=100, end_time=20.0)
        stats.exec_series = [(5.0, 100)]
        assert stats.execs_per_second() == 5.0


class TestSeriesEdgeCases:
    def test_edges_at_empty_series(self):
        stats = CampaignStats()
        assert stats.edges_at(0.0) == 0
        assert stats.edges_at(1e9) == 0
        assert stats.final_edges == 0

    def test_edges_at_single_point(self):
        stats = CampaignStats(coverage_series=[(3.0, 17)])
        assert stats.edges_at(2.999) == 0
        assert stats.edges_at(3.0) == 17
        assert stats.edges_at(1e9) == 17

    def test_time_to_edges_empty_series(self):
        assert CampaignStats().time_to_edges(1) is None

    def test_time_to_edges_single_point(self):
        stats = CampaignStats(coverage_series=[(3.0, 17)])
        assert stats.time_to_edges(0) == 3.0
        assert stats.time_to_edges(17) == 3.0
        assert stats.time_to_edges(18) is None

    def test_execs_at_step_function(self):
        stats = CampaignStats(exec_series=[(1.0, 10), (4.0, 50)])
        assert stats.execs_at(0.5) == 0
        assert stats.execs_at(1.0) == 10
        assert stats.execs_at(3.9) == 10
        assert stats.execs_at(4.0) == 50

    def test_record_coverage_dedups_flat_samples(self):
        stats = CampaignStats()
        stats.record_coverage(1.0, 5)
        stats.record_coverage(2.0, 5)
        stats.record_coverage(3.0, 6)
        assert stats.coverage_series == [(1.0, 5), (3.0, 6)]


class TestMerge:
    def make_workers(self):
        a = CampaignStats(fuzzer_name="nyx-net.w00", target_name="t",
                          execs=100, suffix_execs=60, queue_size=4,
                          end_time=10.0)
        a.exec_series = [(5.0, 40), (10.0, 100)]
        a.coverage_series = [(5.0, 30)]
        a.crash_times = {"bug-a": 6.0, "bug-b": 8.0}
        a.crashes_found = 2
        b = CampaignStats(fuzzer_name="nyx-net.w01", target_name="t",
                          execs=50, suffix_execs=10, queue_size=3,
                          end_time=12.0)
        b.exec_series = [(6.0, 20), (12.0, 50)]
        b.coverage_series = [(6.0, 45)]
        b.crash_times = {"bug-a": 4.0}
        b.crashes_found = 1
        return a, b

    def test_counters_sum_and_crashes_take_earliest(self):
        merged = CampaignStats.merge(self.make_workers())
        assert merged.execs == 150
        assert merged.suffix_execs == 70
        assert merged.queue_size == 7
        assert merged.end_time == 12.0
        assert merged.crash_times == {"bug-a": 4.0, "bug-b": 8.0}
        assert merged.crashes_found == 2

    def test_exec_series_sums_step_functions_on_union_times(self):
        merged = CampaignStats.merge(self.make_workers())
        assert merged.exec_series == [(5.0, 40), (6.0, 60), (10.0, 120),
                                      (12.0, 150)]

    def test_explicit_coverage_series_is_adopted_verbatim(self):
        series = [(5.0, 30), (6.0, 52)]
        merged = CampaignStats.merge(self.make_workers(),
                                     coverage_series=series)
        assert merged.coverage_series == series
        assert merged.final_edges == 52

    def test_default_coverage_series_is_max_envelope(self):
        merged = CampaignStats.merge(self.make_workers())
        # Workers overlap, so without a merged bitmap the envelope is a
        # lower bound: max over workers at each union timestamp.
        assert merged.coverage_series == [(5.0, 30), (6.0, 45)]

    def test_merge_of_nothing(self):
        merged = CampaignStats.merge([])
        assert merged.execs == 0
        assert merged.exec_series == []
        assert merged.execs_per_second() == 0.0


class TestAggregateStats:
    def test_throughput_uses_wall_time_not_summed_time(self):
        a = CampaignStats(execs=100, end_time=10.0)
        b = CampaignStats(execs=100, end_time=10.0)
        agg = AggregateStats(merged=CampaignStats.merge([a, b]),
                             workers=[a, b])
        # Concurrent clocks overlap: 200 execs in 10s, not in 20s.
        assert agg.total_execs == 200
        assert agg.execs_per_second() == 20.0
        assert agg.num_workers == 2

    def test_to_json_is_canonical(self):
        a, b = TestMerge().make_workers()
        agg = AggregateStats(merged=CampaignStats.merge([a, b]),
                             workers=[a, b])
        first, second = agg.to_json(), agg.to_json()
        assert first == second
        payload = json.loads(first)
        assert payload["num_workers"] == 2
        assert payload["merged"]["execs"] == 150
        assert len(payload["workers"]) == 2
        # Canonical form: no whitespace, sorted keys.
        assert ": " not in first
        keys = list(payload["merged"])
        assert keys == sorted(keys)
