"""Figures 5 and 7: median branch coverage over time, all fuzzers.

Emits the full coverage-over-time series as CSV (the plotting input)
plus an ASCII summary, and asserts the headline curve shape: Nyx-Net
reaches AFLNet's 24h-equivalent coverage early in the campaign
("on around half of the targets, Nyx-Net finds more coverage in the
first five minutes than AFLNet in 24 hours" — five minutes of the
paper's day ≈ 0.35% of the budget).
"""

from __future__ import annotations

from repro.bench.profuzzbench import run_matrix
from repro.bench.reporting import coverage_series_csv, format_table
from repro.targets import PROFUZZBENCH


def test_fig5_coverage_over_time(benchmark, bench_config, save_artifact):
    from repro.bench.plots import coverage_chart
    matrix = benchmark.pedantic(
        lambda: run_matrix(config=bench_config), rounds=1, iterations=1)
    save_artifact("fig5_coverage_series.csv", coverage_series_csv(matrix))

    charts = []
    for target in PROFUZZBENCH:
        runs = {}
        for fuzzer in ("aflnet", "aflnwe", "nyx-balanced"):
            for run in matrix.of(fuzzer, target)[:1]:
                runs[fuzzer] = run.stats.coverage_series
        if runs:
            charts.append(coverage_chart(runs, target,
                                         matrix.config.sim_budget))
    save_artifact("fig5_ascii_charts.txt", "\n\n".join(charts))

    # ASCII summary: coverage at 1%, 10%, 100% of the budget.
    budget = matrix.config.sim_budget
    checkpoints = [0.01, 0.10, 1.00]
    headers = ["target", "fuzzer"] + ["t=%d%%" % int(c * 100)
                                      for c in checkpoints]
    rows = []
    early_wins = 0
    for target in PROFUZZBENCH:
        aflnet_final = max(
            (r.stats.final_edges for r in matrix.of("aflnet", target)),
            default=0)
        for fuzzer in ("aflnet", "nyx-balanced"):
            runs = matrix.of(fuzzer, target)
            if not runs:
                continue
            run = runs[0]
            row = [target, fuzzer]
            for checkpoint in checkpoints:
                row.append(str(run.stats.edges_at(budget * checkpoint)))
            rows.append(row)
        nyx_runs = matrix.of("nyx-balanced", target)
        if nyx_runs and aflnet_final and \
                nyx_runs[0].stats.edges_at(budget * 0.01) >= aflnet_final:
            early_wins += 1
    save_artifact("fig5_summary.txt",
                  format_table(headers, rows,
                               "Figure 5 summary: coverage at budget "
                               "checkpoints"))
    assert early_wins >= len(PROFUZZBENCH) // 3, (
        "Nyx-Net should match AFLNet's final coverage within 1%% of the "
        "budget on several targets (got %d)" % early_wins)
