"""§5.4-5.6 case studies: MySQL client, Lighttpd, Firefox IPC.

* MySQL client (§5.4): client-mode fuzzing, the fuzzer plays the
  server; the paper found an out-of-bounds read "after a few minutes
  of fuzzing on 52 cores".
* Lighttpd (§5.5): "a memory corruption issue where a negative amount
  of memory could be allocated under specific circumstances."
* Firefox IPC (§5.6): multi-channel message fuzzing; "we found three
  bugs" (null derefs) "and the Firefox team found two additional
  security issues" (the deeper exploitable ones).
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.fuzz.campaign import build_campaign
from repro.targets import PROFILES


def _fuzz(target: str, seed: int, max_execs: int, policy="aggressive"):
    handles = build_campaign(PROFILES[target], policy=policy, seed=seed,
                             time_budget=1e9, max_execs=max_execs)
    handles.fuzzer.run_campaign()
    return handles.fuzzer


def test_case_study_mysql_client(benchmark, save_artifact):
    fuzzer = benchmark.pedantic(lambda: _fuzz("mysql-client", 3, 2500),
                                rounds=1, iterations=1)
    bugs = fuzzer.crashes.unique_bugs
    save_artifact("case_mysql_client.txt",
                  "MySQL client bugs: %s (execs=%d, sim t=%.1fs)"
                  % (bugs, fuzzer.stats.execs, fuzzer.stats.end_time))
    assert any("mysql-client-column-oob" in b for b in bugs), \
        "the §5.4 out-of-bounds read should be found"


def test_case_study_lighttpd(benchmark, save_artifact):
    def hunt():
        # The paper found this bug "after a few minutes on 52 cores";
        # our single-core stand-in hunts across a few campaign seeds.
        bugs, execs = set(), 0
        for seed in range(4):
            fuzzer = _fuzz("lighttpd", seed, 8000)
            bugs.update(fuzzer.crashes.unique_bugs)
            execs += fuzzer.stats.execs
            if bugs:
                break
        return bugs, execs

    bugs, execs = benchmark.pedantic(hunt, rounds=1, iterations=1)
    save_artifact("case_lighttpd.txt",
                  "Lighttpd bugs: %s (total execs=%d)" % (sorted(bugs), execs))
    assert any("lighttpd-range-underflow" in b for b in bugs), \
        "the §5.5 negative-allocation bug should be found"


def test_case_study_firefox_ipc(benchmark, save_artifact):
    def run():
        found = set()
        fuzzers = []
        for seed in (0, 1):
            fuzzer = _fuzz("firefox-ipc", seed, 3000)
            found.update(fuzzer.crashes.unique_bugs)
            fuzzers.append(fuzzer)
        return found, fuzzers

    found, fuzzers = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[bug] for bug in sorted(found)]
    save_artifact("case_firefox_ipc.txt",
                  format_table(["unique bug"], rows, "Firefox IPC findings"))
    null_derefs = [b for b in found if b.startswith("null-deref")]
    # The paper reports three NULL derefs found by the authors.
    assert len(null_derefs) >= 2, found
