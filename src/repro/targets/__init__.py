"""Fuzz targets: Python re-implementations of the evaluation's servers.

Each module implements one target of the paper's evaluation — the 13
ProFuzzBench services (Tables 1-3) plus the case studies (MySQL
client, Lighttpd, Firefox IPC) — as a guest
:class:`~repro.guestos.process.Program` with a genuine protocol
parser, a stateful session machine and the planted memory-safety bugs
the crash experiments rely on.

``PROFILES`` is the registry the benchmark harness iterates.
"""

from repro.targets.base import TargetProfile, MessageServer, ConnCtx

from repro.targets import (bftpd, dcmtk, dnsmasq, exim, firefox_ipc,
                           forked_daapd, kamailio, lightftp, lighttpd,
                           live555, mysql_client, openssh, openssl, proftpd,
                           pure_ftpd, tinydtls)

#: name -> TargetProfile for every implemented target.
PROFILES = {
    module.PROFILE.name: module.PROFILE
    for module in (bftpd, dcmtk, dnsmasq, exim, firefox_ipc, forked_daapd,
                   kamailio, lightftp, lighttpd, live555, mysql_client,
                   openssh, openssl, proftpd, pure_ftpd, tinydtls)
}

#: The 13 ProFuzzBench targets, in the tables' order.
PROFUZZBENCH = ["bftpd", "dcmtk", "dnsmasq", "exim", "forked-daapd",
                "kamailio", "lightftp", "live555", "openssh", "openssl",
                "proftpd", "pure-ftpd", "tinydtls"]

__all__ = ["TargetProfile", "MessageServer", "ConnCtx", "PROFILES",
           "PROFUZZBENCH"]
