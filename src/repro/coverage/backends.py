"""Tracer backend registry and selection.

Two interchangeable tracer backends collect the site stream:

* ``settrace`` — :class:`repro.coverage.tracer.EdgeTracer`, works on
  every supported CPython (the ≤3.11 path);
* ``monitoring`` — :class:`repro.coverage.monitoring.MonitoringTracer`,
  PEP 669, requires CPython 3.12+.

``auto`` (the default everywhere) resolves to ``monitoring`` when the
interpreter supports it and ``settrace`` otherwise.  Both backends
must produce byte-identical traces for the same execution — identical
edge maps, hit-count buckets, IJON slots and therefore identical
campaign ``stats_checksum`` — so backend choice is purely a host-side
performance knob (``--coverage-backend`` on ``fuzz``/``bench``) and
never a behaviour change.
"""

from __future__ import annotations

import sys
from typing import Tuple

from repro.coverage.tracer import TracerCore

#: Names accepted by ``--coverage-backend``.
BACKEND_CHOICES: Tuple[str, ...] = ("auto", "settrace", "monitoring")


class BackendUnavailable(RuntimeError):
    """Requested tracer backend cannot run on this interpreter."""


def monitoring_supported() -> bool:
    """PEP 669 present (CPython 3.12+)."""
    return hasattr(sys, "monitoring")


def default_backend_name() -> str:
    """What ``auto`` resolves to on this interpreter."""
    return "monitoring" if monitoring_supported() else "settrace"


def resolve_backend_name(backend: str = "auto") -> str:
    """Validate a backend name and resolve ``auto``."""
    if backend in (None, "", "auto"):
        return default_backend_name()
    if backend not in BACKEND_CHOICES:
        raise BackendUnavailable(
            "unknown coverage backend %r (choices: %s)"
            % (backend, ", ".join(BACKEND_CHOICES)))
    if backend == "monitoring" and not monitoring_supported():
        raise BackendUnavailable(
            "coverage backend 'monitoring' needs sys.monitoring "
            "(CPython 3.12+); this is %s — use 'settrace' or 'auto'"
            % sys.version.split()[0])
    return backend


def make_tracer(backend: str = "auto", **kwargs) -> TracerCore:
    """Instantiate the selected tracer backend.

    ``kwargs`` pass through to the backend constructor
    (``traced_fragments``, ``map_size``, ``fold_memo_limit``).
    """
    name = resolve_backend_name(backend)
    if name == "monitoring":
        from repro.coverage.monitoring import MonitoringTracer
        return MonitoringTracer(**kwargs)
    from repro.coverage.tracer import EdgeTracer
    return EdgeTracer(**kwargs)
