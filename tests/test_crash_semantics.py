"""Tests for crash handling: hypercalls, process death, dedup."""

import pytest

from repro.fuzz.crash import CrashDatabase
from repro.fuzz.input import packets_input
from repro.guestos.errors import (CrashKind, CrashReport, Errno, GuestCrash,
                                  GuestError)
from repro.guestos.kernel import Kernel
from repro.guestos.process import Program
from repro.guestos.sockets import SockDomain, SockType
from repro.vm.hypercall import Hypercall

from tests.helpers import make_machine


class CrashyServer(Program):
    """Crashes on the first recv containing 'BOOM'."""

    name = "crashy"

    def __init__(self, port=700):
        self.port = port
        self.fd = None
        self.conns = []

    def on_start(self, api):
        self.fd = api.socket(SockDomain.INET, SockType.STREAM)
        api.bind(self.fd, self.port)
        api.listen(self.fd)

    def poll(self, api):
        try:
            conn = api.accept(self.fd)
            self.conns.append(conn)
        except GuestError as err:
            if err.errno is not Errno.EAGAIN:
                raise
        for conn in self.conns:
            try:
                data = api.recv(conn)
            except GuestError as err:
                if err.errno is Errno.EAGAIN:
                    continue
                raise
            if b"BOOM" in data:
                raise GuestCrash(CrashKind.SEGV, "crashy-boom")


class DyingServer(Program):
    """Raises an unhandled syscall error (not a crash)."""

    name = "dying"

    def poll(self, api):
        api.recv(99)  # EBADF escapes: process dies like on SIGPIPE


def boot(program):
    machine = make_machine()
    kernel = Kernel(machine)
    proc = kernel.spawn(program)
    kernel.run()
    return machine, kernel, proc


class TestCrashFlow:
    def test_crash_emits_panic_hypercall(self):
        machine, kernel, proc = boot(CrashyServer())
        conn = kernel.external_connect(700)
        conn.send(b"BOOM")
        kernel.run()
        calls = [e.call for e in machine.drain_hypercalls()]
        assert Hypercall.PANIC in calls
        assert kernel.crash_reports[0].bug_id == "crashy-boom"

    def test_crashed_process_is_dead(self):
        machine, kernel, proc = boot(CrashyServer())
        conn = kernel.external_connect(700)
        conn.send(b"BOOM")
        kernel.run()
        assert not proc.alive
        assert proc.crashed
        assert proc.exit_code == -11

    def test_benign_input_no_crash(self):
        machine, kernel, proc = boot(CrashyServer())
        conn = kernel.external_connect(700)
        conn.send(b"hello")
        kernel.run()
        assert kernel.crash_reports == []
        assert proc.alive

    def test_unhandled_errno_kills_without_crash_report(self):
        machine, kernel, proc = boot(DyingServer())
        assert not proc.alive
        assert not proc.crashed
        assert proc.exit_code == int(Errno.EBADF)
        assert kernel.crash_reports == []
        assert any("died" in line for line in kernel.log)

    def test_crash_kind_asan_only_classification(self):
        assert CrashKind.ASAN_HEAP_OVERFLOW.asan_only
        assert CrashKind.ASAN_OOB_READ.asan_only
        assert not CrashKind.SEGV.asan_only
        assert not CrashKind.NULL_DEREF.asan_only


class TestCrashDatabase:
    def report(self, bug="b1", kind=CrashKind.SEGV):
        return CrashReport(kind=kind, bug_id=bug, pid=1)

    def test_dedup_by_kind_and_bug(self):
        db = CrashDatabase()
        assert db.add(self.report(), packets_input([b"x"]), 1.0)
        assert not db.add(self.report(), packets_input([b"y"]), 2.0)
        assert db.records["segv:b1"].count == 2
        assert db.records["segv:b1"].found_at == 1.0

    def test_distinct_kinds_are_distinct_bugs(self):
        db = CrashDatabase()
        db.add(self.report(kind=CrashKind.SEGV), None, 1.0)
        db.add(self.report(kind=CrashKind.OOM), None, 2.0)
        assert len(db) == 2

    def test_contains_and_listing(self):
        db = CrashDatabase()
        db.add(self.report(), None, 0.5)
        assert "segv:b1" in db
        assert db.unique_bugs == ["segv:b1"]
