"""Shared fixtures for the reproduction benchmarks.

Every bench writes its rendered table/figure data under
``results/`` and prints it, so a full ``pytest benchmarks/
--benchmark-only`` run regenerates the paper's evaluation artifacts.

Scale is environment-controlled (see :mod:`repro.bench`): the defaults
keep a full run laptop-sized; export ``REPRO_SIM_BUDGET`` /
``REPRO_SEEDS`` / ``REPRO_EXEC_CAP_*`` for deeper campaigns.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.profuzzbench import BenchConfig

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    return BenchConfig()


@pytest.fixture(scope="session")
def save_artifact(results_dir):
    """Write a text artifact to results/ and echo it to stdout."""
    def _save(name: str, content: str) -> None:
        path = results_dir / name
        path.write_text(content + "\n")
        print("\n" + content)
        print("[saved %s]" % path)
    return _save
