"""Campaign durability: journal, checkpoints, manifest, resume.

Long campaigns must survive more than a clean exit.  This module keeps
a campaign's progress on disk in three layers (the shape hypofuzz uses
for its resumable example database: append-only progress log, periodic
checkpoint, exact-state resume):

* **Journal** — a CRC32-framed append-only WAL under the campaign
  directory (``journal.wal``; parallel campaigns add one per worker
  under ``workers/wNN/``).  Every step appends what just happened:
  corpus adds (with the serialized input, so finds survive even
  without a resume), unique crashes, quarantine/sync events and
  exec-count watermarks.  A torn tail — the frame a ``kill -9`` or
  power loss cut in half — is detected by the CRC and truncated at the
  last valid frame; the journal is never a reason to refuse a resume.

* **Checkpoints** — epoch-numbered atomic snapshots of the full
  resumable state (corpus, crash DB, stats, MT19937 RNG position, sim
  clock, queue cursor, snapshot-policy cursors, fault-injector stream)
  written every ``checkpoint_every`` executions via temp+rename+fsync.
  The newest few are kept; a corrupt newest checkpoint degrades to the
  previous one with a warning.

* **Manifest** — ``manifest.json`` records everything needed to
  rebuild the campaign deterministically (target, seed, policy, fault
  plan, spec digest, coverage backend, worker count, format version).
  Resume validates it and refuses mismatched configs with a clear
  diagnostic instead of silently producing incomparable results.

Resume restores the newest valid checkpoint and *continues stepping*:
because every component is deterministic on the sim clock, re-running
the window between the checkpoint and the kill regenerates it
identically, so a killed-and-resumed campaign finishes with the same
``stats_checksum``, corpus and crash DB as an uninterrupted run.  The
journal tail past the checkpoint is used for recovery reporting and
artifact salvage — folding it into live state instead would desync the
RNG/clock from the corpus and break that identity.

Signals: the CLI installs :class:`GracefulShutdown`, turning the first
SIGTERM/SIGINT into a drain request — finish the current step,
checkpoint, journal a ``graceful_stop`` record, exit resumable.  A
second signal (or SIGKILL) aborts hard; the next resume then recovers
from the last periodic checkpoint plus the journal tail.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import signal
import struct
import warnings
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.fuzz.persist import (_atomic_write_bytes, _atomic_write_text,
                                _fsync_dir)

#: Bumped on any incompatible change to the on-disk layout.
MANIFEST_VERSION = 1

#: Oldest pickle protocol both supported interpreters (3.9/3.12) share
#: efficiently; pinned so checkpoints do not depend on the writer.
_PICKLE_PROTOCOL = 4

_JOURNAL_MAGIC = b"NYXWAL1\n"
_CKPT_MAGIC = b"NYXCKPT1"
_FRAME_HEADER = struct.Struct("<II")  # payload length, crc32(payload)
#: Upper bound on a single frame/checkpoint payload — anything larger
#: is treated as a corrupt length field, not an allocation request.
_MAX_PAYLOAD = 1 << 28

#: Every journal frame kind, mapped to where its records are consumed
#: on resume/salvage.  A kind appended without an entry here would be
#: written durably but silently dropped by every reader — the
#: durability lint (NYX064, :mod:`repro.analysis.durlint`) checks each
#: ``journal.append`` call against this registry, and
#: :meth:`Journal.append` enforces it at runtime.
FRAME_KINDS: Dict[str, str] = {
    "corpus_add": "salvage_corpus_blobs / _tail_summary corpus adds",
    "crash": "_tail_summary crash recovery count",
    "watermark": "_tail_summary journal_execs recovery watermark",
    "checkpoint": "recovery reporting (epoch audit trail)",
    "graceful_stop": "recovery reporting (clean-drain marker)",
    "complete": "recovery reporting (finalization marker)",
    "quarantine": "recovery reporting (fleet supervision audit)",
    "retire": "recovery reporting (fleet supervision audit)",
    "sync": "recovery reporting (corpus-sync audit)",
    "verify": "recovery reporting (checkpoint-verification audit)",
}


class DurabilityError(Exception):
    """A durable-campaign directory cannot be used as requested."""


def scan_journal(path) -> Tuple[List[Tuple[str, dict]], Optional[int], bool]:
    """Tolerant front-to-back scan of one journal file.

    Returns ``(records, valid_end_offset, bad_header)``: every frame up
    to the first length/CRC/decode failure, the byte offset where the
    valid prefix ends (``None`` when the file does not exist), and
    whether even the magic header was damaged.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [], None, False
    data = path.read_bytes()
    if not data:
        return [], 0, False
    if data[:len(_JOURNAL_MAGIC)] != _JOURNAL_MAGIC:
        return [], 0, True
    records: List[Tuple[str, dict]] = []
    offset = len(_JOURNAL_MAGIC)
    while offset + _FRAME_HEADER.size <= len(data):
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + _FRAME_HEADER.size
        if length > _MAX_PAYLOAD or start + length > len(data):
            break
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            break
        try:
            kind, body = pickle.loads(payload)
        except Exception:
            break
        records.append((kind, body))
        offset = start + length
    return records, offset, False


# ----------------------------------------------------------------------
# the write-ahead journal
# ----------------------------------------------------------------------

class Journal:
    """Append-only CRC32-framed record log, tolerant of torn tails.

    Frame layout after the 8-byte magic header::

        u32 payload_length | u32 crc32(payload) | payload

    where payload is a pickled ``(kind, body)`` tuple.  Opening an
    existing journal scans it front to back, stops at the first frame
    that fails its length or CRC check, physically truncates the torn
    tail and re-opens for append — so a journal cut mid-write by a
    ``kill -9`` degrades to its last consistent prefix with a warning,
    never a refused resume.
    """

    def __init__(self, path, sync: bool = True) -> None:
        self.path = pathlib.Path(path)
        self.sync = sync
        self.warnings: List[str] = []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.records, valid_end = self._scan()
        if valid_end is not None:
            size = self.path.stat().st_size
            if valid_end < size:
                message = ("journal %s: truncating %d bytes of torn tail "
                           "at offset %d" % (self.path, size - valid_end,
                                             valid_end))
                self.warnings.append(message)
                warnings.warn(message)
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_end)
        self._fh = open(self.path, "ab")
        if self._fh.tell() == 0:
            self._fh.write(_JOURNAL_MAGIC)
            self._flush()

    def _scan(self) -> Tuple[List[Tuple[str, dict]], Optional[int]]:
        """Read every valid frame; returns (records, valid_end_offset).

        ``valid_end_offset`` is None for a journal that does not exist
        yet (nothing to truncate).
        """
        records, offset, bad_header = scan_journal(self.path)
        if bad_header:
            message = ("journal %s: corrupt header, discarding the file"
                       % self.path)
            self.warnings.append(message)
            warnings.warn(message)
        return records, offset

    def append(self, kind: str, body: dict) -> None:
        """Durably append one record (``kind`` must be registered)."""
        if kind not in FRAME_KINDS:
            raise ValueError(
                "journal frame kind %r has no registered resume/salvage "
                "handler; add it to FRAME_KINDS (NYX064)" % (kind,))
        payload = pickle.dumps((kind, body), protocol=_PICKLE_PROTOCOL)
        self._fh.write(_FRAME_HEADER.pack(len(payload), zlib.crc32(payload)))
        self._fh.write(payload)
        self._flush()

    def _flush(self) -> None:
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


# ----------------------------------------------------------------------
# atomic epoch-numbered checkpoints
# ----------------------------------------------------------------------

class CheckpointStore:
    """Epoch-numbered atomic checkpoints with corrupt-newest fallback.

    Each checkpoint is one file ``epoch_NNNNNN.ckpt`` written through
    the fsync'ing atomic-rename path, framed like a journal record
    (magic, length, CRC32, pickled state).  The newest ``keep`` epochs
    are retained so a checkpoint corrupted on disk degrades to the one
    before it instead of losing the campaign.
    """

    def __init__(self, directory, keep: int = 3) -> None:
        self.directory = pathlib.Path(directory)
        self.keep = max(2, int(keep))
        #: Stale epochs unlinked over this store's lifetime (surfaced
        #: as the ``checkpoint_epochs_pruned`` host counter).
        self.pruned_total = 0

    def epochs(self) -> List[int]:
        if not self.directory.is_dir():
            return []
        found = []
        for path in self.directory.glob("epoch_*.ckpt"):
            try:
                found.append(int(path.stem.split("_", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(found)

    def _path(self, epoch: int) -> pathlib.Path:
        return self.directory / ("epoch_%06d.ckpt" % epoch)

    def save(self, state: dict) -> int:
        """Atomically persist one checkpoint; returns its epoch."""
        self.directory.mkdir(parents=True, exist_ok=True)
        epochs = self.epochs()
        epoch = epochs[-1] + 1 if epochs else 1
        payload = pickle.dumps(state, protocol=_PICKLE_PROTOCOL)
        blob = (_CKPT_MAGIC
                + _FRAME_HEADER.pack(len(payload), zlib.crc32(payload))
                + payload)
        _atomic_write_bytes(self._path(epoch), blob)
        pruned = 0
        for stale in self.epochs()[:-self.keep]:
            try:
                self._path(stale).unlink()
            except OSError:
                continue
            pruned += 1
        if pruned:
            # An unlink is only durable once the directory entry's
            # removal reaches disk — same bar _atomic_write_bytes meets
            # for the rename that created the entry.
            _fsync_dir(self.directory)
            self.pruned_total += pruned
        return epoch

    def load(self, epoch: int) -> dict:
        """Load one checkpoint; raises DurabilityError on corruption."""
        try:
            data = self._path(epoch).read_bytes()
        except OSError as err:
            raise DurabilityError("checkpoint epoch %d unreadable: %s"
                                  % (epoch, err))
        header_end = len(_CKPT_MAGIC) + _FRAME_HEADER.size
        if len(data) < header_end or data[:len(_CKPT_MAGIC)] != _CKPT_MAGIC:
            raise DurabilityError("checkpoint epoch %d: bad magic" % epoch)
        length, crc = _FRAME_HEADER.unpack_from(data, len(_CKPT_MAGIC))
        payload = data[header_end:]
        if length != len(payload) or length > _MAX_PAYLOAD:
            raise DurabilityError("checkpoint epoch %d: truncated" % epoch)
        if zlib.crc32(payload) != crc:
            raise DurabilityError("checkpoint epoch %d: CRC mismatch" % epoch)
        try:
            return pickle.loads(payload)
        except Exception as err:
            raise DurabilityError("checkpoint epoch %d: undecodable: %s"
                                  % (epoch, err))

    def load_latest(self) -> Tuple[Optional[int], Optional[dict], List[str]]:
        """Newest valid checkpoint, degrading past corrupt ones.

        Returns ``(epoch, state, warnings)``; ``(None, None, warns)``
        when no valid checkpoint exists (resume then restarts from the
        manifest).
        """
        warns: List[str] = []
        for epoch in reversed(self.epochs()):
            try:
                return epoch, self.load(epoch), warns
            except DurabilityError as err:
                warns.append("discarding corrupt checkpoint: %s — falling "
                             "back to the previous epoch" % err)
        return None, None, warns


# ----------------------------------------------------------------------
# the campaign manifest
# ----------------------------------------------------------------------

def campaign_manifest(kind: str, target: str, *, policy: str, seed: int,
                      time_budget: float, max_execs: Optional[int],
                      checkpoint_every: int,
                      iterations_per_snapshot: int = 50,
                      asan: bool = True, fault_rate: float = 0.0,
                      fault_plan: Optional[str] = None,
                      exec_timeout: Optional[float] = None,
                      sanitize_every: Optional[int] = None,
                      coverage_backend: str = "auto",
                      workers: int = 1,
                      sync_interval: float = 5.0,
                      verify_checkpoints: Optional[int] = None,
                      max_chain_depth: int = 1) -> dict:
    """Everything needed to rebuild this campaign deterministically."""
    from repro.spec.nodes import default_network_spec
    spec = default_network_spec()
    return {
        "format_version": MANIFEST_VERSION,
        "kind": kind,
        "target": target,
        "policy": policy,
        "seed": seed,
        "time_budget": time_budget,
        "max_execs": max_execs,
        "checkpoint_every": checkpoint_every,
        "iterations_per_snapshot": iterations_per_snapshot,
        "asan": asan,
        "fault_rate": fault_rate,
        "fault_plan": fault_plan,
        "exec_timeout": exec_timeout,
        "sanitize_every": sanitize_every,
        "coverage_backend": coverage_backend,
        "workers": workers,
        "sync_interval": sync_interval,
        "verify_checkpoints": verify_checkpoints,
        "max_chain_depth": max_chain_depth,
        "spec_name": spec.name,
        "spec_digest": spec.checksum(),
    }


def write_manifest(directory, manifest: dict) -> None:
    _atomic_write_text(pathlib.Path(directory) / "manifest.json",
                       json.dumps(manifest, indent=2, sort_keys=True))


def read_manifest(directory) -> dict:
    """Load and version-check a campaign manifest.

    Raises :class:`DurabilityError` with an actionable diagnostic when
    the directory is not a durable campaign or speaks a different
    format version.
    """
    path = pathlib.Path(directory) / "manifest.json"
    if not path.exists():
        raise DurabilityError(
            "no campaign manifest at %s — not a durable campaign directory "
            "(start one with `repro fuzz <target> --out DIR "
            "--checkpoint-every N`)" % path)
    try:
        manifest = json.loads(path.read_text())
    except (OSError, ValueError) as err:
        raise DurabilityError("unreadable campaign manifest %s: %s"
                              % (path, err))
    version = manifest.get("format_version")
    if version != MANIFEST_VERSION:
        raise DurabilityError(
            "campaign manifest %s has format_version %r; this build speaks "
            "%d — refusing to resume across incompatible formats"
            % (path, version, MANIFEST_VERSION))
    return manifest


def _check_spec(manifest: dict) -> None:
    from repro.spec.nodes import default_network_spec
    spec = default_network_spec()
    digest = spec.checksum()
    if manifest.get("spec_digest") != digest:
        raise DurabilityError(
            "spec mismatch: the campaign was recorded against spec %r "
            "(digest %s) but this build's spec %r has digest %s — a resumed "
            "run would not be comparable, refusing"
            % (manifest.get("spec_name"), manifest.get("spec_digest"),
               spec.name, digest))


# ----------------------------------------------------------------------
# graceful shutdown
# ----------------------------------------------------------------------

class GracefulShutdown:
    """Context manager turning SIGTERM/SIGINT into a drain request.

    The instance is callable (the ``stop`` predicate the durable
    runners poll between steps): the first signal sets the flag — the
    campaign drains its current step, checkpoints and exits resumable.
    A second signal raises ``KeyboardInterrupt`` for an immediate,
    non-graceful abort (the journal + last periodic checkpoint still
    recover it).
    """

    def __init__(self) -> None:
        self.requested = False
        self._previous: Dict[int, object] = {}

    def __call__(self) -> bool:
        return self.requested

    def _handle(self, signum, frame) -> None:
        if self.requested:
            raise KeyboardInterrupt
        self.requested = True

    def __enter__(self) -> "GracefulShutdown":
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except (ValueError, OSError):  # non-main thread / platform
                pass
        return self

    def __exit__(self, *exc) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous = {}


# ----------------------------------------------------------------------
# durable single-instance campaigns
# ----------------------------------------------------------------------

def _entry_record(entry, spec) -> dict:
    from repro.spec.bytecode import SpecError, serialize
    try:
        blob = serialize(spec, entry.input.ops)
    except SpecError:
        blob = None
    return {"entry_id": entry.entry_id, "found_at": entry.found_at,
            "blob": blob}


def _tail_summary(records: List[Tuple[str, dict]], corpus_next_id: int,
                  known_crashes) -> dict:
    """What the journal recorded beyond the restored checkpoint.

    Those finds are not folded into live state — deterministic
    re-execution regenerates them identically — but the summary tells
    the user what the kill window contained (and the ``corpus_add``
    blobs keep the raw inputs salvageable either way).
    """
    adds = 0
    crashes = 0
    last_execs = None
    for kind, body in records:
        if kind == "corpus_add" and body.get("entry_id", -1) >= corpus_next_id:
            adds += 1
        elif kind == "crash" and body.get("key") not in known_crashes:
            crashes += 1
        elif kind == "watermark":
            last_execs = body.get("execs", last_execs)
    return {"corpus_adds": adds, "crashes": crashes,
            "journal_execs": last_execs}


class DurableCampaign:
    """Journal + checkpoint wrapper around one :class:`NyxNetFuzzer`.

    Construction wires a *fresh* campaign for durability (writing the
    manifest); :func:`resume_campaign` builds one from an existing
    directory and restores its newest valid checkpoint.
    """

    kind = "single"

    def __init__(self, handles, directory, checkpoint_every: int = 500,
                 manifest: Optional[dict] = None,
                 journal_sync: bool = True,
                 verify_every: Optional[int] = None) -> None:
        self.handles = handles
        self.fuzzer = handles.fuzzer
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = max(1, int(checkpoint_every))
        #: Cross-process checkpoint verification cadence: after each
        #: periodic checkpoint, once this many further executions have
        #: replayed past it, a fresh subprocess restores the epoch,
        #: re-steps to the parent's boundary and the states are diffed
        #: (NYX065/NYX066, :mod:`repro.analysis.statediff`).
        self.verify_every = (max(1, int(verify_every))
                             if verify_every else None)
        #: Diagnostics from checkpoint verification (empty = healthy).
        self.verify_findings: List = []
        self._verify_pending: Optional[Tuple[int, int]] = None
        self.checkpoints = CheckpointStore(self.directory / "checkpoints")
        if manifest is not None and not (
                self.directory / "manifest.json").exists():
            write_manifest(self.directory, manifest)
        self.journal = Journal(self.directory / "journal.wal",
                               sync=journal_sync)
        from repro.spec.nodes import default_network_spec
        self.spec = default_network_spec()
        #: Epoch the campaign resumed from (None: started fresh).
        self.resumed_from: Optional[int] = None
        #: Journal-tail summary of the kill window (resume only).
        self.recovered: dict = {}
        self.completed = False
        self._ckpt_execs = 0
        self._corpus_mark = 0
        self._crash_mark: set = set()

    # -- resume ---------------------------------------------------------

    def _restore(self) -> None:
        """Adopt the newest valid checkpoint (if any) and summarize
        the journal tail beyond it."""
        epoch, state, warns = self.checkpoints.load_latest()
        for message in warns:
            warnings.warn(message)
        if epoch is None:
            # Killed before the first checkpoint ever landed: restart
            # from the manifest.  The (truncated) journal still reports
            # what the lost window had found.
            self.recovered = _tail_summary(self.journal.records, 0, set())
            return
        fuzzer = self.fuzzer
        if fuzzer.config.sanitize_every:
            # Re-arm before the clock restore: the baseline digest is
            # content-based (deterministic), and restore_state erases
            # the arming charges along with the boot charges.
            fuzzer._arm_sanitizer()
        fuzzer.restore_state(state["fuzzer"])
        self.resumed_from = epoch
        self.completed = state.get("phase") == "final"
        self._ckpt_execs = fuzzer.stats.execs
        self._corpus_mark = fuzzer.corpus.next_id
        self._crash_mark = set(fuzzer.crashes.records)
        self.recovered = _tail_summary(
            self.journal.records, self._corpus_mark, self._crash_mark)

    # -- the durable loop -----------------------------------------------

    def run(self, stop: Optional[Callable[[], bool]] = None):
        """Run (or continue) the campaign; ``None`` on graceful stop.

        ``stop`` is polled at every step boundary; returning True
        drains into a checkpoint and a resumable exit.  On normal
        completion the corpus/crashes are persisted alongside a
        ``final.json`` carrying the campaign's ``stats_checksum``.
        """
        if self.completed:
            # Killed in the window between the final checkpoint and
            # final.json: re-finalize idempotently instead of stepping.
            if not (self.directory / "final.json").exists():
                self._finalize(self.fuzzer.stats)
            return self.fuzzer.stats
        fuzzer = self.fuzzer
        fuzzer.begin_campaign()
        self._journal_progress()
        while True:
            if stop is not None and stop():
                self._graceful_stop()
                return None
            if not fuzzer.step():
                break
            self._journal_progress()
            if self._verify_due(fuzzer.stats.execs):
                self._verify_now()
            if fuzzer.stats.execs - self._ckpt_execs >= self.checkpoint_every:
                self.save_checkpoint("periodic")
        stats = fuzzer.finish_campaign()
        self._finalize(stats)
        return stats

    def _journal_progress(self) -> None:
        """Delta-scan the fuzzer after a step and journal what changed."""
        fuzzer = self.fuzzer
        corpus = fuzzer.corpus
        if corpus.next_id > self._corpus_mark:
            for entry in corpus.export_entries(self._corpus_mark):
                self.journal.append("corpus_add",
                                    _entry_record(entry, self.spec))
            self._corpus_mark = corpus.next_id
        for key, record in fuzzer.crashes.records.items():
            if key not in self._crash_mark:
                self._crash_mark.add(key)
                self.journal.append("crash", {"key": key,
                                              "found_at": record.found_at})
        self.journal.append("watermark", {"execs": fuzzer.stats.execs,
                                          "clock": fuzzer.clock.now})

    def save_checkpoint(self, reason: str = "periodic") -> int:
        """Checkpoint the full resumable state; returns the epoch."""
        phase = "final" if reason == "final" else "running"
        state = {"phase": phase, "fuzzer": self.fuzzer.snapshot_state()}
        pruned_before = self.checkpoints.pruned_total
        epoch = self.checkpoints.save(state)
        stats = self.fuzzer.stats
        stats.checkpoints_written += 1
        stats.checkpoint_epochs_pruned += (
            self.checkpoints.pruned_total - pruned_before)
        self._ckpt_execs = stats.execs
        if (self.verify_every is not None and self._verify_pending is None
                and reason == "periodic"):
            self._verify_pending = (epoch, stats.execs)
        self.journal.append("checkpoint", {
            "epoch": epoch, "reason": reason,
            "execs": stats.execs,
            "clock": self.fuzzer.clock.now})
        return epoch

    # -- cross-process checkpoint verification ---------------------------

    def _verify_due(self, execs: int) -> bool:
        """Has the replay window past the pending epoch elapsed?"""
        return (self._verify_pending is not None
                and self.verify_every is not None
                and execs >= self._verify_pending[1] + self.verify_every)

    def _verify_now(self) -> None:
        """Differential-check the pending epoch against live state.

        Reads the parent's state without mutating it (snapshot +
        checksum are pure), spawns the verifier subprocess and folds
        its findings into ``verify_findings`` plus the host counters.
        """
        from repro.analysis.statediff import state_digest, verify_checkpoint
        from repro.perf.macro import stats_checksum
        epoch, _ckpt_execs = self._verify_pending
        self._verify_pending = None
        if epoch not in self.checkpoints.epochs():
            return  # pruned before the replay window elapsed
        stats = self.fuzzer.stats
        expected_digest, _trunc = state_digest(self.fuzzer.snapshot_state())
        findings = verify_checkpoint(
            self.directory, epoch, stats.execs,
            stats_checksum(stats), expected_digest, kind=self.kind)
        stats.checkpoint_verifications += 1
        stats.checkpoint_divergences += len(findings)
        self.verify_findings.extend(findings)
        self.journal.append("verify", {
            "epoch": epoch, "execs": stats.execs,
            "findings": len(findings)})

    def _graceful_stop(self) -> None:
        self.save_checkpoint("graceful-stop")
        self.journal.append("graceful_stop", {
            "execs": self.fuzzer.stats.execs,
            "clock": self.fuzzer.clock.now})
        self.journal.close()

    def _finalize(self, stats) -> None:
        from repro.fuzz.persist import save_campaign
        from repro.perf.macro import stats_checksum
        self.save_checkpoint("final")
        save_campaign(self.fuzzer, str(self.directory))
        checksum = stats_checksum(stats)
        _atomic_write_text(self.directory / "final.json", json.dumps({
            "kind": self.kind,
            "stats_checksum": checksum,
            "execs": stats.execs,
            "edges": stats.final_edges,
            "sim_seconds": stats.end_time,
            "crashes": sorted(self.fuzzer.crashes.records),
        }, indent=2, sort_keys=True))
        self.journal.append("complete", {"execs": stats.execs,
                                         "stats_checksum": checksum})
        self.journal.close()
        self.completed = True

    def close(self) -> None:
        """Release file handles without checkpointing (abandon)."""
        self.journal.close()


# ----------------------------------------------------------------------
# durable parallel campaigns
# ----------------------------------------------------------------------

class DurableParallelCampaign:
    """Durability wrapper around a :class:`ParallelCampaign`.

    One campaign-level journal records fleet events (quarantines,
    retirements, sync rounds, total-exec watermarks, checkpoints); each
    worker gets its own journal for corpus adds and crashes.  On resume
    the per-worker journals are merged into one recovery summary, and
    quarantine tallies plus per-worker backoff counters come back from
    the checkpoint, so supervision state persists fleet-wide.
    """

    kind = "parallel"

    def __init__(self, campaign, directory, checkpoint_every: int = 1000,
                 manifest: Optional[dict] = None,
                 journal_sync: bool = True,
                 verify_every: Optional[int] = None) -> None:
        self.campaign = campaign
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.verify_every = (max(1, int(verify_every))
                             if verify_every else None)
        self.verify_findings: List = []
        self._verify_pending: Optional[Tuple[int, int]] = None
        self.checkpoints = CheckpointStore(self.directory / "checkpoints")
        if manifest is not None and not (
                self.directory / "manifest.json").exists():
            write_manifest(self.directory, manifest)
        self.journal = Journal(self.directory / "journal.wal",
                               sync=journal_sync)
        self.worker_journals = [
            Journal(self.directory / "workers" / ("w%02d" % w.worker_id)
                    / "journal.wal", sync=journal_sync)
            for w in campaign.workers]
        self.spec = campaign.spec
        self.resumed_from: Optional[int] = None
        self.recovered: dict = {}
        self.completed = False
        self._stop: Optional[Callable[[], bool]] = None
        self._ckpt_execs = 0
        self._corpus_marks = [0] * len(campaign.workers)
        self._crash_marks: List[set] = [set() for _ in campaign.workers]
        self._quarantine_mark: Dict[int, int] = {}
        self._retired_mark: set = set()
        self._sync_mark = 0

    # -- resume ---------------------------------------------------------

    def _restore(self) -> None:
        epoch, state, warns = self.checkpoints.load_latest()
        for message in warns:
            warnings.warn(message)
        if epoch is None:
            self.recovered = self._merge_tails()
            return
        self.campaign.restore_state(state["campaign"])
        self.resumed_from = epoch
        self.completed = state.get("phase") == "final"
        self._ckpt_execs = self.campaign.total_execs()
        for i, worker in enumerate(self.campaign.workers):
            self._corpus_marks[i] = worker.fuzzer.corpus.next_id
            self._crash_marks[i] = set(worker.fuzzer.crashes.records)
        self._quarantine_mark = dict(self.campaign._entry_failures)
        self._retired_mark = {w.worker_id for w in self.campaign.workers
                              if w.retired}
        self._sync_mark = len(self.campaign.coverage_series)
        self.recovered = self._merge_tails()

    def _merge_tails(self) -> dict:
        """Merge every worker journal's tail into one recovery view."""
        merged = {"corpus_adds": 0, "crashes": 0, "journal_execs": None}
        for i, journal in enumerate(self.worker_journals):
            tail = _tail_summary(journal.records, self._corpus_marks[i],
                                 self._crash_marks[i])
            merged["corpus_adds"] += tail["corpus_adds"]
            merged["crashes"] += tail["crashes"]
        for kind, body in self.journal.records:
            if kind == "watermark":
                merged["journal_execs"] = body.get(
                    "execs", merged["journal_execs"])
        return merged

    # -- the durable loop -----------------------------------------------

    def run(self, stop: Optional[Callable[[], bool]] = None):
        """Run (or continue) the fleet; ``None`` on graceful stop."""
        if self.completed:
            aggregate = self.campaign.aggregate()
            if not (self.directory / "final.json").exists():
                self._finalize(aggregate)
            return aggregate
        self._stop = stop
        self.campaign.start()
        self._journal_progress()
        result = self.campaign.run(controller=self)
        if result is None:
            self._graceful_stop()
            return None
        self._finalize(result)
        return result

    # controller protocol consumed by ParallelCampaign.run
    def should_stop(self) -> bool:
        return bool(self._stop()) if self._stop is not None else False

    def after_slice(self, campaign, worker) -> None:
        self._journal_progress()
        if self._verify_due(campaign.total_execs()):
            self._verify_now()
        if campaign.total_execs() - self._ckpt_execs >= self.checkpoint_every:
            self.save_checkpoint("periodic")

    def _journal_progress(self) -> None:
        campaign = self.campaign
        for i, worker in enumerate(campaign.workers):
            journal = self.worker_journals[i]
            corpus = worker.fuzzer.corpus
            if corpus.next_id > self._corpus_marks[i]:
                for entry in corpus.export_entries(self._corpus_marks[i]):
                    journal.append("corpus_add",
                                   _entry_record(entry, self.spec))
                self._corpus_marks[i] = corpus.next_id
            for key, record in worker.fuzzer.crashes.records.items():
                if key not in self._crash_marks[i]:
                    self._crash_marks[i].add(key)
                    journal.append("crash", {"key": key,
                                             "found_at": record.found_at})
            journal.append("watermark", {"execs": worker.fuzzer.stats.execs,
                                         "clock": worker.fuzzer.clock.now})
        for checksum, failures in campaign._entry_failures.items():
            if self._quarantine_mark.get(checksum) != failures:
                self._quarantine_mark[checksum] = failures
                self.journal.append("quarantine", {"checksum": checksum,
                                                   "failures": failures})
        for worker in campaign.workers:
            if worker.retired and worker.worker_id not in self._retired_mark:
                self._retired_mark.add(worker.worker_id)
                self.journal.append("retire", {"worker": worker.worker_id})
        if len(campaign.coverage_series) > self._sync_mark:
            self._sync_mark = len(campaign.coverage_series)
            self.journal.append("sync", {
                "rounds": self._sync_mark,
                "edges": campaign.global_coverage.edge_count()})
        self.journal.append("watermark",
                            {"execs": campaign.total_execs()})

    def save_checkpoint(self, reason: str = "periodic") -> int:
        phase = "final" if reason == "final" else "running"
        state = {"phase": phase, "campaign": self.campaign.snapshot_state()}
        pruned_before = self.checkpoints.pruned_total
        epoch = self.checkpoints.save(state)
        # Fleet-level host counters live on worker 0's stats; merge()
        # sums them into the aggregate like every other host counter.
        stats = self.campaign.workers[0].fuzzer.stats
        stats.checkpoints_written += 1
        stats.checkpoint_epochs_pruned += (
            self.checkpoints.pruned_total - pruned_before)
        self._ckpt_execs = self.campaign.total_execs()
        if (self.verify_every is not None and self._verify_pending is None
                and reason == "periodic"):
            self._verify_pending = (epoch, self._ckpt_execs)
        self.journal.append("checkpoint", {
            "epoch": epoch, "reason": reason,
            "execs": self.campaign.total_execs()})
        return epoch

    # -- cross-process checkpoint verification ---------------------------

    def _verify_due(self, execs: int) -> bool:
        return (self._verify_pending is not None
                and self.verify_every is not None
                and execs >= self._verify_pending[1] + self.verify_every)

    def _verify_now(self) -> None:
        from repro.analysis.statediff import state_digest, verify_checkpoint
        from repro.perf.macro import stats_checksum
        epoch, _ckpt_execs = self._verify_pending
        self._verify_pending = None
        if epoch not in self.checkpoints.epochs():
            return  # pruned before the replay window elapsed
        campaign = self.campaign
        expected_digest, _trunc = state_digest(campaign.snapshot_state())
        expected_checksum = stats_checksum(campaign.aggregate().merged)
        findings = verify_checkpoint(
            self.directory, epoch, campaign.total_execs(),
            expected_checksum, expected_digest, kind=self.kind)
        stats = campaign.workers[0].fuzzer.stats
        stats.checkpoint_verifications += 1
        stats.checkpoint_divergences += len(findings)
        self.verify_findings.extend(findings)
        self.journal.append("verify", {
            "epoch": epoch, "execs": campaign.total_execs(),
            "findings": len(findings)})

    def _graceful_stop(self) -> None:
        self.save_checkpoint("graceful-stop")
        self.journal.append("graceful_stop",
                            {"execs": self.campaign.total_execs()})
        self.close()

    def _finalize(self, aggregate) -> None:
        from repro.fuzz.persist import save_parallel_campaign
        from repro.perf.macro import stats_checksum
        self.save_checkpoint("final")
        save_parallel_campaign(self.campaign, str(self.directory))
        checksum = stats_checksum(aggregate.merged)
        crash_keys = sorted({key for w in self.campaign.workers
                             for key in w.fuzzer.crashes.records})
        _atomic_write_text(self.directory / "final.json", json.dumps({
            "kind": self.kind,
            "stats_checksum": checksum,
            "execs": aggregate.merged.execs,
            "edges": aggregate.merged.final_edges,
            "sim_seconds": aggregate.merged.end_time,
            "crashes": crash_keys,
            "workers": len(self.campaign.workers),
        }, indent=2, sort_keys=True))
        self.journal.append("complete", {
            "execs": aggregate.merged.execs, "stats_checksum": checksum})
        self.close()
        self.completed = True

    def close(self) -> None:
        """Release every journal handle without checkpointing."""
        self.journal.close()
        for journal in self.worker_journals:
            journal.close()


# ----------------------------------------------------------------------
# resume entry point
# ----------------------------------------------------------------------

def resume_campaign(directory, journal_sync: bool = True):
    """Rebuild a durable campaign from its directory and restore it.

    Validates the manifest (format version, known target, spec digest),
    reconstructs the campaign deterministically through
    :mod:`repro.fuzz.campaign`, loads the newest valid checkpoint and
    truncates any torn journal tail.  Returns a :class:`DurableCampaign`
    or :class:`DurableParallelCampaign` ready to ``run()``.
    """
    from repro.targets import PROFILES
    manifest = read_manifest(directory)
    target = manifest.get("target")
    profile = PROFILES.get(target)
    if profile is None:
        raise DurabilityError(
            "campaign manifest names unknown target %r (see `repro "
            "targets`)" % target)
    _check_spec(manifest)
    checkpoint_every = int(manifest.get("checkpoint_every", 500))
    verify_every = manifest.get("verify_checkpoints")
    if manifest.get("kind") == "parallel":
        from repro.fuzz.campaign import build_parallel_campaign_from_manifest
        campaign = build_parallel_campaign_from_manifest(profile, manifest)
        durable = DurableParallelCampaign(
            campaign, directory, checkpoint_every=checkpoint_every,
            journal_sync=journal_sync, verify_every=verify_every)
    else:
        from repro.fuzz.campaign import build_campaign_from_manifest
        handles = build_campaign_from_manifest(profile, manifest)
        durable = DurableCampaign(
            handles, directory, checkpoint_every=checkpoint_every,
            journal_sync=journal_sync, verify_every=verify_every)
    durable._restore()
    return durable


def salvage_corpus_blobs(directory) -> List[Tuple[int, bytes]]:
    """Raw serialized inputs recorded in a campaign's journals.

    Works without (and independently of) a resume: the WAL keeps every
    corpus add's serialized bytecode, so finds survive even when no
    checkpoint ever landed.  Parallel worker journals are included.
    """
    root = pathlib.Path(directory)
    paths = [root / "journal.wal"]
    paths.extend(sorted(root.glob("workers/w*/journal.wal")))
    blobs: List[Tuple[int, bytes]] = []
    for path in paths:
        records, _end, _bad = scan_journal(path)
        for kind, body in records:
            if kind == "corpus_add" and body.get("blob") is not None:
                blobs.append((body["entry_id"], body["blob"]))
    return blobs
