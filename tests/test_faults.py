"""Fault injection, watchdog, self-healing snapshots and supervision.

Covers the robustness layer end to end: deterministic fault plans, the
injector's decision stream, guest-visible network faults absorbed by
target retry paths, checksum-validated incremental snapshots healing
from injected corruption, the per-exec watchdog, worker supervision in
parallel campaigns, and the atomic-persistence / tolerant-pcap /
fastest-reproducer satellites.
"""

import json
import pathlib

import pytest

from repro.emu.interceptor import Interceptor
from repro.emu.surface import AttackSurface
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.faults.plan import PlanError
from repro.fuzz.campaign import build_campaign, build_parallel_campaign
from repro.fuzz.crash import CrashDatabase
from repro.fuzz.executor import NyxExecutor
from repro.fuzz.input import packets_input
from repro.fuzz.queue import Corpus
from repro.guestos.errors import CrashKind, CrashReport
from repro.guestos.kernel import Kernel
from repro.sim.rng import DeterministicRandom
from repro.targets import PROFILES
from repro.vm.machine import Machine
from repro.vm.snapshot import SnapshotCorruption

from tests.helpers import EchoServer


def echo_rig(exec_timeout=None, fault_rate=0.0, fault_seed=0):
    """Echo server + interceptor + executor with an armed injector."""
    machine = Machine(memory_bytes=16 * 1024 * 1024)
    kernel = Kernel(machine)
    interceptor = Interceptor(kernel, AttackSurface.tcp_server(7))
    kernel.spawn(EchoServer(7))
    kernel.run()
    kernel.flush_to_memory(full=True)
    machine.capture_root()
    executor = NyxExecutor(machine, kernel, interceptor, tracer=None,
                           exec_timeout=exec_timeout)
    injector = FaultInjector(FaultPlan(seed=fault_seed, rate=fault_rate))
    interceptor.injector = injector
    machine.snapshots.injector = injector
    return machine, kernel, interceptor, executor, injector


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_plan_id_round_trip(self):
        plan = FaultPlan.for_campaign(seed=123, rate=0.1)
        assert plan.plan_id == "fp1:123:100000"
        assert FaultPlan.from_id(plan.plan_id) == FaultPlan(seed=123, rate=0.1)

    def test_bad_plan_ids_raise(self):
        for bad in ("fp2:1:2", "fp1:1", "fp1:x:y", "garbage", ""):
            with pytest.raises(PlanError):
                FaultPlan.from_id(bad)

    def test_validation(self):
        with pytest.raises(PlanError):
            FaultPlan(rate=1.5)
        with pytest.raises(PlanError):
            FaultPlan(seed=-1)

    def test_worker_plans_decouple(self):
        base = FaultPlan.for_campaign(seed=5, rate=0.2)
        w0, w1 = base.for_worker(0), base.for_worker(1)
        assert w0.seed != w1.seed != base.seed
        assert w0.rate == w1.rate == 0.2
        # Derivation is deterministic.
        assert base.for_worker(0) == w0

    def test_derived_rates(self):
        plan = FaultPlan(rate=0.2)
        assert plan.recv_rate == 0.2
        assert plan.send_rate == plan.readiness_rate == plan.snapshot_rate == 0.1


class TestInjectorDeterminism:
    def test_same_plan_same_stream(self):
        plan = FaultPlan(seed=42, rate=0.5)
        a, b = FaultInjector(plan), FaultInjector(plan)
        stream_a = [a.recv_fault() for _ in range(200)]
        stream_b = [b.recv_fault() for _ in range(200)]
        assert stream_a == stream_b
        assert a.faults_injected == b.faults_injected > 0
        assert a.by_kind == b.by_kind

    def test_forced_faults_precede_dice(self):
        injector = FaultInjector(FaultPlan(seed=0, rate=0.0))
        injector.force_next(FaultKind.CONN_RESET)
        assert injector.recv_fault() is FaultKind.CONN_RESET
        # Rate 0 and no forced fault left: the stream is silent.
        assert all(injector.recv_fault() is None for _ in range(50))

    def test_zero_rate_injects_nothing(self):
        injector = FaultInjector(FaultPlan(seed=9, rate=0.0))
        for _ in range(100):
            assert injector.recv_fault() is None
            assert injector.send_fault() is None
            assert not injector.delay_readiness()
        assert injector.faults_injected == 0


# ----------------------------------------------------------------------
# guest-visible network faults and the targets' retry paths
# ----------------------------------------------------------------------


class TestNetworkFaultRetryPaths:
    def test_eagain_burst_is_absorbed(self):
        """Spurious EAGAINs make the guest re-poll, not lose data
        (guestos sockets + EchoServer retry path)."""
        _m, _k, _i, executor, injector = echo_rig()
        injector.force_next(FaultKind.EAGAIN_BURST)
        result = executor.run_full(packets_input([b"hello", b"world"]))
        assert result.crash is None
        assert result.packets_consumed == 2
        assert injector.by_kind.get("eagain-burst", 0) >= 1

    def test_conn_reset_drops_connection_not_target(self):
        _m, _k, _i, executor, injector = echo_rig()
        injector.force_next(FaultKind.CONN_RESET)
        result = executor.run_full(packets_input([b"hello", b"world"]))
        # The reset clears the pending queue; the target survives.
        assert result.crash is None
        assert result.packets_consumed < 2
        assert injector.by_kind.get("conn-reset") == 1

    def test_short_read_splits_packets(self):
        _m, _k, _i, executor, injector = echo_rig()
        injector.force_next(FaultKind.SHORT_READ)
        result = executor.run_full(packets_input([b"0123456789abcdef"]))
        assert result.crash is None
        # The packet arrives in more than one recv; the remainder is
        # requeued and eventually consumed.
        assert result.packets_consumed >= 2

    def test_partial_send_truncates_response(self):
        _m, _k, interceptor, executor, injector = echo_rig()
        # Let the echo run once un-faulted to learn the response size.
        clean = executor.run_full(packets_input([b"payload-abcdef"]))
        assert clean.crash is None
        injector.force_next(FaultKind.PARTIAL_SEND)
        result = executor.run_full(packets_input([b"payload-abcdef"]))
        assert result.crash is None
        assert injector.by_kind.get("partial-send") == 1

    def test_message_server_survives_fault_soup(self):
        """A real MessageServer target (targets/base.py retry paths)
        absorbs a mixed forced-fault sequence without crashing."""
        handles = build_campaign(PROFILES["lightftp"], policy="none",
                                 seed=0, time_budget=1e9, max_execs=10)
        injector = FaultInjector(FaultPlan(seed=0, rate=0.0))
        handles.interceptor.injector = injector
        handles.machine.snapshots.injector = injector
        injector.force_next(FaultKind.EAGAIN_BURST, FaultKind.SHORT_READ,
                            FaultKind.CONN_RESET, FaultKind.EAGAIN_BURST)
        seed_input = PROFILES["lightftp"].seeds()[1]
        result = handles.executor.run_full(seed_input)
        assert result.crash is None
        assert injector.faults_injected >= 4

    def test_delayed_readiness_defers_but_delivers(self):
        # Needs a select()-driven target (the echo helper recvs
        # speculatively and never consults readiness).
        handles = build_campaign(PROFILES["lightftp"], policy="none",
                                 seed=0, time_budget=1e9, max_execs=10)
        injector = FaultInjector(FaultPlan(seed=0, rate=0.0))
        handles.interceptor.injector = injector
        handles.machine.snapshots.injector = injector
        injector.force_next(FaultKind.DELAYED_READINESS)
        result = handles.executor.run_full(PROFILES["lightftp"].seeds()[0])
        assert result.crash is None
        assert injector.by_kind.get("delayed-ready", 0) >= 1
        assert result.packets_consumed > 0


# ----------------------------------------------------------------------
# watchdog
# ----------------------------------------------------------------------


class TestWatchdog:
    def test_stall_trips_the_watchdog(self):
        # stall_seconds (0.05) > exec_timeout (0.01): one stall is
        # enough to blow the budget.
        _m, _k, _i, executor, injector = echo_rig(exec_timeout=0.01)
        injector.force_next(FaultKind.STALL)
        result = executor.run_full(packets_input([b"a", b"b", b"c"]))
        assert result.timed_out
        assert result.exec_time >= 0.01

    def test_no_timeout_without_budget(self):
        _m, _k, _i, executor, injector = echo_rig(exec_timeout=None)
        injector.force_next(FaultKind.STALL, FaultKind.STALL)
        result = executor.run_full(packets_input([b"a", b"b"]))
        assert not result.timed_out

    def test_watchdog_cleared_between_runs(self):
        """A timed-out run must not poison the next one: the kernel
        watchdog is uninstalled at the end of every execution."""
        _m, kernel, _i, executor, injector = echo_rig(exec_timeout=0.01)
        injector.force_next(FaultKind.STALL)
        assert executor.run_full(packets_input([b"x"])).timed_out
        assert kernel.watchdog is None
        clean = executor.run_full(packets_input([b"hello"]))
        assert not clean.timed_out
        assert clean.packets_consumed == 1

    def test_timeouts_counted_not_fuzzed_from(self):
        handles = build_campaign(PROFILES["lightftp"], policy="none", seed=3,
                                 time_budget=20.0, max_execs=150,
                                 fault_rate=0.2, exec_timeout=0.02)
        stats = handles.fuzzer.run_campaign()
        assert stats.timeouts > 0
        assert stats.execs >= stats.timeouts


# ----------------------------------------------------------------------
# self-healing snapshots
# ----------------------------------------------------------------------


class TestSelfHealingSnapshots:
    def corrupted_restore_rig(self):
        machine, kernel, _i, executor, injector = echo_rig()[0:5]
        return machine, kernel, executor, injector

    def test_bitflip_detected_and_healed_to_root(self):
        machine, kernel, _e, injector = self.corrupted_restore_rig()
        # Dirty guest state past the root, then snapshot it.
        kernel.fs.write_file(machine.disk, "/state", b"A" * 5000)
        kernel.touch("fs")
        kernel.flush_to_memory()
        machine.create_incremental()
        assert machine.snapshots.mirror_private_pages()
        injector.force_next(FaultKind.SNAPSHOT_BITFLIP)
        with pytest.raises(SnapshotCorruption):
            machine.restore_incremental()
        assert not machine.snapshots.incremental_active
        assert machine.snapshots.stats.corruption_detected == 1
        # The root is untouched and restores cleanly.
        machine.restore_root()

    def test_reset_for_next_test_falls_back_to_root(self):
        machine, kernel, _e, injector = self.corrupted_restore_rig()
        kernel.fs.write_file(machine.disk, "/state", b"B" * 5000)
        kernel.touch("fs")
        kernel.flush_to_memory()
        machine.create_incremental()
        injector.force_next(FaultKind.SNAPSHOT_BITFLIP)
        machine.reset_for_next_test()  # must not raise
        assert machine.snapshot_corruptions == 1
        assert not machine.snapshots.incremental_active

    def test_bitflip_never_touches_shared_root_pages(self):
        machine, kernel, _e, injector = self.corrupted_restore_rig()
        kernel.fs.write_file(machine.disk, "/state", b"C" * 5000)
        kernel.touch("fs")
        kernel.flush_to_memory()
        machine.create_incremental()
        root_page_ids = {id(p) for p in machine.snapshots.root.pages}
        for idx in machine.snapshots.mirror_private_pages():
            assert id(machine.snapshots._mirror[idx]) not in root_page_ids
        injector.force_next(FaultKind.SNAPSHOT_BITFLIP)
        injector.on_incremental_restore(machine.snapshots)
        # Root page contents unchanged by the flip.
        assert {id(p) for p in machine.snapshots.root.pages} == root_page_ids

    def test_executor_rebuilds_incremental_after_corruption(self):
        handles = build_campaign(PROFILES["lightftp"], policy="none",
                                 seed=0, time_budget=1e9, max_execs=1000)
        injector = FaultInjector(FaultPlan(seed=0, rate=0.0))
        handles.interceptor.injector = injector
        handles.machine.snapshots.injector = injector
        seed_input = PROFILES["lightftp"].seeds()[1]  # 7 packets
        handles.executor.run_full(seed_input, snapshot_after_packet=4)
        resume = handles.executor.suffix_resume_index
        assert resume is not None
        # Corrupt the *next* incremental restore; the suffix run after
        # it must transparently rebuild from the root.
        injector.force_next(FaultKind.SNAPSHOT_BITFLIP)
        handles.executor.run_suffix(seed_input)  # restore poisoned at reset
        result = handles.executor.run_suffix(seed_input)
        assert result.suffix_run
        assert handles.executor.snapshot_rebuilds >= 1
        assert not handles.executor.degraded_root_only
        assert handles.machine.snapshot_corruptions >= 1

    def test_degrades_to_root_only_after_repeated_failures(self):
        handles = build_campaign(PROFILES["lightftp"], policy="none",
                                 seed=0, time_budget=1e9, max_execs=1000)
        seed_input = PROFILES["lightftp"].seeds()[1]
        handles.executor.run_full(seed_input, snapshot_after_packet=4)
        # Amputate the rebuild recipe and kill the snapshot: healing
        # cannot succeed, so the executor must degrade, not loop.
        handles.executor._suffix.base_input = None
        handles.machine.snapshots.discard_incremental()
        result = handles.executor.run_suffix(seed_input)
        assert handles.executor.degraded_root_only
        assert not result.suffix_run  # ran from the root instead


# ----------------------------------------------------------------------
# worker supervision (parallel campaigns)
# ----------------------------------------------------------------------


def tiny_parallel_campaign(backoff=0.0, **overrides):
    kwargs = dict(workers=2, policy="none", seed=1, time_budget=3.0,
                  max_total_execs=300)
    kwargs.update(overrides)
    campaign = build_parallel_campaign(PROFILES["lighttpd"], **kwargs)
    # Zero backoff keeps a failing worker schedulable within the tiny
    # exec budget (the real default would starve it of slices, which is
    # the intended production behaviour but not what these tests pin).
    campaign.config.failure_backoff = backoff
    return campaign


class TestWorkerSupervision:
    def test_flaky_worker_is_retried_and_survives(self):
        campaign = tiny_parallel_campaign()
        victim = campaign.workers[0]
        real_step = victim.fuzzer.step
        blows = {"left": 2}

        def flaky_step():
            if blows["left"] > 0:
                blows["left"] -= 1
                raise RuntimeError("injected worker failure")
            return real_step()

        victim.fuzzer.step = flaky_step
        aggregate = campaign.run()
        assert aggregate.merged.worker_failures == 2
        assert not victim.retired
        # Both workers still executed work.
        assert all(w.fuzzer.stats.execs > 0 for w in campaign.workers)

    def test_hopeless_worker_is_retired_campaign_continues(self):
        campaign = tiny_parallel_campaign()
        victim = campaign.workers[0]

        def always_raises():
            raise RuntimeError("injected permanent failure")

        victim.fuzzer.step = always_raises
        aggregate = campaign.run()
        assert victim.retired and victim.done
        assert campaign.retired_workers() == [victim.worker_id]
        # Retries are bounded.
        assert (victim.fuzzer.stats.worker_failures
                == campaign.config.max_worker_retries + 1)
        # The surviving worker carried the campaign.
        assert campaign.workers[1].fuzzer.stats.execs > 0

    def test_backoff_charges_failing_worker_clock(self):
        campaign = tiny_parallel_campaign(backoff=0.5)
        victim = campaign.workers[0]
        before = victim.fuzzer.clock.now
        campaign._handle_worker_failure(victim)
        assert victim.fuzzer.clock.now > before

    def test_killer_entry_is_quarantined_fleet_wide(self):
        campaign = tiny_parallel_campaign()
        for worker in campaign.workers:
            worker.fuzzer.begin_campaign()
        victim = campaign.workers[0]
        entry = victim.fuzzer.corpus.entries[0]
        assert entry.checksum is not None
        sizes_before = [len(w.fuzzer.corpus) for w in campaign.workers]
        victim.fuzzer.last_entry = entry
        for _ in range(campaign.config.quarantine_threshold):
            campaign._handle_worker_failure(victim)
        for worker, before in zip(campaign.workers, sizes_before):
            assert len(worker.fuzzer.corpus) < before
        assert victim.fuzzer.stats.quarantined_inputs == 1
        # Quarantined behaviour cannot sneak back in via corpus sync.
        assert entry.checksum in victim.fuzzer.corpus._seen_checksums

    def test_corpus_remove_keeps_cursor_consistent(self):
        corpus = Corpus(DeterministicRandom(0))
        entries = [corpus.add(packets_input([b"p%d" % i]), checksum=i)
                   for i in range(4)]
        corpus._cursor = 3
        assert corpus.remove(entries[0].entry_id)
        assert corpus._cursor == 2
        assert not corpus.remove(999)
        assert corpus.remove_by_checksum(2) == 1
        assert len(corpus) == 2
        # Scheduling still works after removals.
        assert corpus.next_entry() is not None


# ----------------------------------------------------------------------
# end-to-end acceptance: faulty campaign completes, deterministically
# ----------------------------------------------------------------------


class TestFaultCampaignAcceptance:
    def faulty_stats(self):
        handles = build_campaign(PROFILES["lightftp"], policy="aggressive",
                                 seed=0, time_budget=50.0, max_execs=400,
                                 fault_rate=0.1, exec_timeout=0.05)
        return handles.fuzzer.run_campaign()

    def test_campaign_reports_nonzero_robustness_counters(self):
        stats = self.faulty_stats()
        assert stats.timeouts > 0
        assert stats.faults_injected > 0
        assert stats.snapshot_rebuilds > 0
        d = stats.as_dict()
        for key in ("timeouts", "faults_injected", "snapshot_rebuilds",
                    "degraded_root_only", "worker_failures",
                    "quarantined_inputs"):
            assert key in d

    def test_same_seed_same_plan_is_bit_identical(self):
        a = json.dumps(self.faulty_stats().as_dict(), sort_keys=True,
                       separators=(",", ":"))
        b = json.dumps(self.faulty_stats().as_dict(), sort_keys=True,
                       separators=(",", ":"))
        assert a == b

    def test_replay_from_plan_id_matches(self):
        plan = FaultPlan.for_campaign(seed=0, rate=0.1)
        handles = build_campaign(PROFILES["lightftp"], policy="aggressive",
                                 seed=0, time_budget=30.0, max_execs=200,
                                 fault_plan=plan.plan_id, exec_timeout=0.05)
        by_plan = handles.fuzzer.run_campaign()
        handles2 = build_campaign(PROFILES["lightftp"], policy="aggressive",
                                  seed=0, time_budget=30.0, max_execs=200,
                                  fault_rate=0.1, exec_timeout=0.05)
        by_rate = handles2.fuzzer.run_campaign()
        assert json.dumps(by_plan.as_dict(), sort_keys=True) \
            == json.dumps(by_rate.as_dict(), sort_keys=True)

    def test_parallel_faulty_campaign_is_deterministic(self):
        def run():
            campaign = build_parallel_campaign(
                PROFILES["lightftp"], workers=2, policy="aggressive",
                seed=7, time_budget=10.0, max_total_execs=200,
                fault_rate=0.1, exec_timeout=0.05)
            return campaign.run().to_json()
        assert run() == run()


# ----------------------------------------------------------------------
# satellites: fastest reproducer, atomic persistence, tolerant pcap
# ----------------------------------------------------------------------


class TestFastestReproducer:
    def report(self):
        return CrashReport(CrashKind.SEGV, "bug-1", pid=1)

    def test_fastest_input_tracked_across_repeats(self):
        db = CrashDatabase()
        slow, fast = packets_input([b"slow"]), packets_input([b"fast"])
        assert db.add(self.report(), slow, now=1.0, exec_time=0.5)
        assert not db.add(self.report(), fast, now=2.0, exec_time=0.1)
        record = db.records["segv:bug-1"]
        assert record.count == 2
        assert record.input is slow  # first reproducer kept
        assert record.fastest_exec_time == 0.1
        assert record.fastest_input.payload_of(1) == b"fast"

    def test_slower_repeat_does_not_replace(self):
        db = CrashDatabase()
        db.add(self.report(), packets_input([b"a"]), now=1.0, exec_time=0.1)
        db.add(self.report(), packets_input([b"b"]), now=2.0, exec_time=0.9)
        assert db.records["segv:bug-1"].fastest_exec_time == 0.1

    def test_add_without_exec_time_still_works(self):
        db = CrashDatabase()
        assert db.add(self.report(), packets_input([b"x"]), 1.0)
        assert db.records["segv:bug-1"].fastest_input is None


class TestAtomicPersistence:
    def test_no_temp_files_left_behind(self, tmp_path):
        handles = build_campaign(PROFILES["lighttpd"], policy="none", seed=0,
                                 time_budget=5.0, max_execs=40)
        handles.fuzzer.run_campaign()
        from repro.fuzz.persist import save_campaign
        save_campaign(handles.fuzzer, str(tmp_path))
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []
        assert (tmp_path / "stats.json").exists()
        payload = json.loads((tmp_path / "stats.json").read_text())
        assert "timeouts" in payload and "faults_injected" in payload

    def test_load_corpus_skips_unreadable_with_warning(self, tmp_path):
        handles = build_campaign(PROFILES["lighttpd"], policy="none", seed=0,
                                 time_budget=5.0, max_execs=40)
        handles.fuzzer.run_campaign()
        from repro.fuzz.persist import load_corpus, save_campaign
        save_campaign(handles.fuzzer, str(tmp_path))
        good = len(load_corpus(str(tmp_path)))
        assert good > 0
        # Plant a corrupt entry; loading must warn and skip it.
        (tmp_path / "queue" / "id_999999.nyx").write_bytes(b"\xff" * 16)
        with pytest.warns(UserWarning, match="skipping unreadable"):
            seeds = load_corpus(str(tmp_path))
        assert len(seeds) == good

    def test_fastest_reproducer_persisted_when_distinct(self, tmp_path):
        from repro.fuzz.fuzzer import NyxNetFuzzer
        from repro.fuzz.persist import save_campaign
        handles = build_campaign(PROFILES["lighttpd"], policy="none", seed=0,
                                 time_budget=5.0, max_execs=5)
        fuzzer = handles.fuzzer
        report = CrashReport(CrashKind.SEGV, "bug-x", pid=1)
        fuzzer.crashes.add(report, packets_input([b"first"]), 1.0,
                           exec_time=0.9)
        fuzzer.crashes.add(report, packets_input([b"faster"]), 2.0,
                           exec_time=0.1)
        save_campaign(fuzzer, str(tmp_path))
        crash_dir = tmp_path / "crashes"
        assert (crash_dir / "segv_bug-x.nyx").exists()
        assert (crash_dir / "segv_bug-x.fastest.nyx").exists()
        assert "fastest:" in (crash_dir / "segv_bug-x.txt").read_text()


class TestTolerantPcap:
    def make_capture(self):
        from repro.spec.pcap import PcapWriter
        writer = PcapWriter()
        client, server = ("10.0.0.1", 40000), ("10.0.0.2", 21)
        writer.add_tcp(client, server, b"", syn=True)
        writer.add_tcp(client, server, b"USER alice\r\n")
        writer.add_tcp(server, client, b"331 ok\r\n")
        writer.add_tcp(client, server, b"PASS hunter2\r\n")
        return writer.getvalue()

    def test_truncated_record_yields_partial_flows(self):
        from repro.spec.pcap import PcapReader, extract_flows
        blob = self.make_capture()
        truncated = blob[:len(blob) - 10]  # cut mid-record
        reader = PcapReader(truncated)
        packets = list(reader)  # must not raise
        assert reader.skipped_records == 1
        flows = extract_flows(truncated)
        assert flows and flows[0].client_payloads()  # partial seeds

    def test_garbage_length_field_stops_cleanly(self):
        import struct
        from repro.spec.pcap import PcapReader
        blob = self.make_capture()
        # A bogus record header claiming a gigantic incl_len.
        bad = blob + struct.pack("<IIII", 0, 0, 0xFFFFFF, 0xFFFFFF) + b"xx"
        packets = list(PcapReader(bad))
        assert len(packets) == 4  # everything before the damage

    def test_intact_capture_unchanged(self):
        from repro.spec.pcap import PcapReader
        reader = PcapReader(self.make_capture())
        assert len(list(reader)) == 4
        assert reader.skipped_records == 0

    def test_header_errors_still_raise(self):
        from repro.spec.pcap import PcapError, PcapReader
        with pytest.raises(PcapError):
            PcapReader(b"\x00" * 10)
        with pytest.raises(PcapError):
            PcapReader(b"\x00" * 24)
