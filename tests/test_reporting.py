"""Tests for the benchmark statistics and table rendering."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.profuzzbench import BenchConfig, MatrixResult, RunResult
from repro.bench.reporting import (coverage_series_csv, coverage_table,
                                   crash_matrix, crash_table, format_table,
                                   mann_whitney_u, median,
                                   throughput_table, time_to_coverage_table)
from repro.fuzz.stats import CampaignStats


def _run(fuzzer, target, seed=0, edges=100, execs=1000, end=10.0,
         crashes=(), na=False, series=None):
    stats = CampaignStats(fuzzer_name=fuzzer, target_name=target)
    stats.execs = execs
    stats.end_time = end
    for t, e in (series or [(end, edges)]):
        stats.coverage_series.append((t, e))
    return RunResult(fuzzer, target, seed, stats, tuple(crashes),
                     not_applicable=na)


def _matrix(runs):
    matrix = MatrixResult(BenchConfig(seeds=1))
    for run in runs:
        matrix.add(run)
    return matrix


class TestMannWhitney:
    def test_identical_samples_not_significant(self):
        assert mann_whitney_u([1, 2, 3], [1, 2, 3]) > 0.5

    def test_clearly_separated_samples(self):
        a = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        b = [101, 102, 103, 104, 105, 106, 107, 108, 109, 110]
        assert mann_whitney_u(a, b) < 0.05

    def test_empty_sample_returns_one(self):
        assert mann_whitney_u([], [1, 2]) == 1.0

    def test_symmetry(self):
        a, b = [1, 5, 9, 12], [3, 4, 20, 30]
        assert mann_whitney_u(a, b) == pytest.approx(mann_whitney_u(b, a))

    def test_matches_scipy_when_available(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        a = [12, 15, 9, 22, 30, 7, 18, 25, 11, 16]
        b = [28, 33, 40, 21, 36, 19, 45, 31, 27, 38]
        ours = mann_whitney_u(a, b)
        ref = scipy_stats.mannwhitneyu(a, b, alternative="two-sided",
                                       method="asymptotic").pvalue
        assert ours == pytest.approx(ref, rel=0.15)

    @given(st.lists(st.floats(0, 100), min_size=2, max_size=15),
           st.lists(st.floats(0, 100), min_size=2, max_size=15))
    @settings(max_examples=50)
    def test_p_value_in_range(self, a, b):
        p = mann_whitney_u(a, b)
        assert 0.0 <= p <= 1.0 and not math.isnan(p)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bee"], [["1", "2"], ["333", "4"]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_coverage_table_deltas(self):
        matrix = _matrix([
            _run("aflnet", "t1", edges=100),
            _run("nyx-none", "t1", edges=150),
            _run("afl++", "t1", na=True),
        ])
        table = coverage_table(matrix, fuzzers=("aflnet", "nyx-none",
                                                "afl++"))
        assert "+50.0%" in table
        assert "n/a" in table

    def test_throughput_table_mean_std(self):
        matrix = _matrix([
            _run("aflnet", "t1", execs=100, end=10.0, seed=0),
            _run("aflnet", "t1", execs=300, end=10.0, seed=1),
        ])
        table = throughput_table(matrix, fuzzers=("aflnet",))
        assert "20.0 ± 10.0" in table

    def test_crash_table_filters_empty_targets(self):
        matrix = _matrix([
            _run("aflnet", "boring"),
            _run("aflnet", "buggy", crashes=("segv:deep-bug",)),
        ])
        table = crash_table(matrix, fuzzers=("aflnet",))
        assert "buggy" in table and "boring" not in table
        assert "deep-bug" in table

    def test_crash_matrix_raw(self):
        matrix = _matrix([_run("aflnet", "t", crashes=("a:b", "c:d"))])
        assert crash_matrix(matrix)[("aflnet", "t")] == ["a:b", "c:d"]

    def test_time_to_coverage_speedup(self):
        matrix = _matrix([
            _run("aflnet", "t1", edges=100, series=[(100.0, 100)]),
            _run("nyx-none", "t1", edges=120,
                 series=[(1.0, 100), (5.0, 120)]),
        ])
        table = time_to_coverage_table(matrix, nyx_fuzzers=("nyx-none",))
        assert "100x" in table

    def test_time_to_coverage_dash_when_never_matched(self):
        matrix = _matrix([
            _run("aflnet", "t1", edges=100, series=[(100.0, 100)]),
            _run("nyx-none", "t1", edges=50, series=[(1.0, 50)]),
        ])
        table = time_to_coverage_table(matrix, nyx_fuzzers=("nyx-none",))
        assert "-" in table.splitlines()[-1]

    def test_coverage_series_csv(self):
        matrix = _matrix([_run("aflnet", "t1",
                               series=[(1.0, 10), (2.0, 20)])])
        csv = coverage_series_csv(matrix)
        assert "t1,aflnet,0,1.000,10" in csv
        assert csv.splitlines()[0].startswith("target,")


class TestCampaignStats:
    def test_edges_at_step_function(self):
        stats = CampaignStats()
        stats.coverage_series = [(1.0, 10), (5.0, 30)]
        assert stats.edges_at(0.5) == 0
        assert stats.edges_at(1.0) == 10
        assert stats.edges_at(10.0) == 30

    def test_time_to_edges(self):
        stats = CampaignStats()
        stats.coverage_series = [(1.0, 10), (5.0, 30)]
        assert stats.time_to_edges(10) == 1.0
        assert stats.time_to_edges(25) == 5.0
        assert stats.time_to_edges(99) is None

    def test_record_coverage_dedups(self):
        stats = CampaignStats()
        stats.record_coverage(1.0, 10)
        stats.record_coverage(2.0, 10)
        stats.record_coverage(3.0, 20)
        assert len(stats.coverage_series) == 2

    def test_crash_recorded_once(self):
        stats = CampaignStats()
        stats.record_crash("segv:x", 1.0)
        stats.record_crash("segv:x", 2.0)
        assert stats.crash_times["segv:x"] == 1.0
        assert stats.crashes_found == 1

    def test_median_helper(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
