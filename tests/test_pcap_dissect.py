"""Tests for the pcap reader/writer, flow extraction and dissectors."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spec.dissect import (crlf_dissector, dicom_dissector,
                                dissector_for, length_prefixed_dissector,
                                line_dissector, raw_dissector,
                                tls_record_dissector)
from repro.spec.pcap import (PcapError, PcapReader, PcapWriter, extract_flows)


CLIENT = ("10.0.0.2", 51000)
SERVER = ("10.0.0.1", 21)


class TestPcapRoundtrip:
    def test_writer_reader_roundtrip(self):
        w = PcapWriter()
        w.add_tcp(CLIENT, SERVER, b"", syn=True)
        w.add_tcp(CLIENT, SERVER, b"USER anon\r\n", ts=0.1)
        w.add_tcp(SERVER, CLIENT, b"331 ok\r\n", ts=0.2)
        packets = list(PcapReader(w.getvalue()))
        assert len(packets) == 3
        assert packets[0].syn
        assert packets[1].payload == b"USER anon\r\n"
        assert packets[2].src == SERVER

    def test_udp_packets(self):
        w = PcapWriter()
        w.add_udp(CLIENT, ("10.0.0.1", 53), b"query")
        (p,) = list(PcapReader(w.getvalue()))
        assert p.proto == "udp"
        assert p.payload == b"query"

    def test_bad_magic_raises(self):
        with pytest.raises(PcapError):
            PcapReader(b"\x00" * 40)

    def test_truncated_header_raises(self):
        with pytest.raises(PcapError):
            PcapReader(b"\xd4\xc3\xb2\xa1")

    def test_timestamps_preserved(self):
        w = PcapWriter()
        w.add_tcp(CLIENT, SERVER, b"x", ts=12.5)
        (p,) = list(PcapReader(w.getvalue()))
        assert abs(p.ts - 12.5) < 1e-3


class TestFlowExtraction:
    def test_client_direction_inferred(self):
        w = PcapWriter()
        w.add_tcp(CLIENT, SERVER, b"USER a\r\n")
        w.add_tcp(SERVER, CLIENT, b"331\r\n")
        w.add_tcp(CLIENT, SERVER, b"PASS b\r\n")
        (flow,) = extract_flows(w.getvalue())
        assert flow.client == CLIENT
        assert flow.client_payloads() == [b"USER a\r\n", b"PASS b\r\n"]
        assert flow.server_payloads() == [b"331\r\n"]

    def test_multiple_flows_separated(self):
        w = PcapWriter()
        w.add_tcp(CLIENT, SERVER, b"flow1")
        w.add_tcp(("10.0.0.3", 52000), SERVER, b"flow2")
        flows = extract_flows(w.getvalue())
        assert len(flows) == 2

    def test_empty_payloads_skipped(self):
        w = PcapWriter()
        w.add_tcp(CLIENT, SERVER, b"", syn=True)
        w.add_tcp(CLIENT, SERVER, b"data")
        (flow,) = extract_flows(w.getvalue())
        assert flow.client_payloads() == [b"data"]


class TestDissectors:
    def test_crlf(self):
        stream = b"USER anon\r\nPASS x\r\nQUIT"
        assert crlf_dissector(stream) == [b"USER anon\r\n", b"PASS x\r\n",
                                          b"QUIT"]

    def test_crlf_empty(self):
        assert crlf_dissector(b"") == []

    def test_line(self):
        assert line_dissector(b"a\nb\n") == [b"a\n", b"b\n"]

    def test_length_prefixed(self):
        stream = struct.pack(">I", 3) + b"abc" + struct.pack(">I", 2) + b"de"
        assert length_prefixed_dissector(stream) == [
            struct.pack(">I", 3) + b"abc", struct.pack(">I", 2) + b"de"]

    def test_length_prefixed_trailing_garbage(self):
        stream = struct.pack(">I", 3) + b"abc" + b"\xff\xff"
        packets = length_prefixed_dissector(stream)
        assert packets[-1] == b"\xff\xff"

    def test_dicom(self):
        pdu = bytes([1, 0]) + struct.pack(">I", 4) + b"body"
        assert dicom_dissector(pdu + pdu) == [pdu, pdu]

    def test_tls_records(self):
        rec = bytes([22, 3, 3]) + struct.pack(">H", 5) + b"hello"
        assert tls_record_dissector(rec * 3) == [rec] * 3

    def test_raw(self):
        assert raw_dissector(b"blob") == [b"blob"]
        assert raw_dissector(b"") == []

    def test_registry(self):
        assert dissector_for("ftp") is crlf_dissector
        assert dissector_for("DICOM") is dicom_dissector
        with pytest.raises(KeyError):
            dissector_for("gopher")

    @given(st.binary(max_size=300))
    @settings(max_examples=60)
    def test_crlf_reassembles_exactly(self, stream):
        assert b"".join(crlf_dissector(stream)) == stream

    @given(st.binary(max_size=300))
    @settings(max_examples=60)
    def test_dissectors_never_crash(self, stream):
        for name in ("ftp", "dns", "dicom", "tls", "ssh", "raw"):
            dissector_for(name)(stream)


class TestPcapToSeeds:
    def test_ftp_capture_to_input(self):
        from repro.fuzz.input import packets_input
        w = PcapWriter()
        for line in (b"USER anon\r\n", b"PASS x\r\nQUIT\r\n"):
            w.add_tcp(CLIENT, SERVER, line)
        (flow,) = extract_flows(w.getvalue())
        stream = b"".join(flow.client_payloads())
        packets = dissector_for("ftp")(stream)
        # TCP segments re-fragmented at protocol boundaries (§4.4).
        assert packets == [b"USER anon\r\n", b"PASS x\r\n", b"QUIT\r\n"]
        inp = packets_input(packets)
        assert inp.num_packets == 3
