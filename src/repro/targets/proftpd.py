"""proftpd: a featureful FTP server with a deep, Nyx-only bug.

proftpd is the target where the paper reports its biggest coverage win
(+70% over AFLNet, Table 2) and one of the two new crashes that "no
other fuzzer is able to uncover" (Table 1).  We model that with a
large command surface (proftpd modules: core, ls, site, facts) and a
bug buried behind a four-step stateful sequence — realistic for a
use-after-free in a rarely exercised module — that a fuzzer at a few
executions per second is overwhelmingly unlikely to assemble.
"""

from __future__ import annotations

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashKind
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 2123


class ProftpdServer(MessageServer):
    name = "proftpd"
    port = PORT
    startup_cost = 0.08  # parses a big config at boot

    def on_boot(self, api) -> None:
        api.write_whole_file(
            "/etc/proftpd.conf",
            b"ServerName proftpd\nPort 2123\nUmask 022\n"
            b"<Limit LOGIN>\nAllowAll\n</Limit>\n")
        api.write_whole_file("/srv/ftp/index.html", b"<html></html>")

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        if conn.state == "new":
            self.reply(api, conn, b"220 ProFTPD Server ready\r\n")
            conn.state = "greeted"
        conn.buffer += data
        while b"\n" in conn.buffer:
            idx = conn.buffer.find(b"\n")
            line, conn.buffer = conn.buffer[:idx], conn.buffer[idx + 1:]
            self._command(api, conn, line.strip())

    def _command(self, api, conn: ConnCtx, line: bytes) -> None:
        parts = line.split(None, 1)
        cmd = parts[0].upper() if parts else b""
        arg = parts[1] if len(parts) > 1 else b""
        if cmd == b"USER":
            conn.vars["user"] = arg
            self.reply(api, conn, b"331 Password required for %s\r\n" % arg[:32])
        elif cmd == b"PASS":
            if conn.vars.get("user"):
                conn.state = "authed"
                self.reply(api, conn, b"230 User logged in\r\n")
            else:
                self.reply(api, conn, b"503 Login first\r\n")
        elif cmd == b"QUIT":
            self.reply(api, conn, b"221 Goodbye\r\n")
            conn.state = "quit"
        elif conn.state != "authed":
            self.reply(api, conn, b"530 Please login with USER and PASS\r\n")
        elif cmd == b"EPSV":
            conn.vars["data_mode"] = "extended"
            self.reply(api, conn, b"229 Entering Extended Passive (|||2124|)\r\n")
        elif cmd == b"PASV":
            conn.vars["data_mode"] = "passive"
            self.reply(api, conn, b"227 Entering Passive Mode\r\n")
        elif cmd == b"MODE":
            mode = arg.upper()
            if mode in (b"S", b"B", b"C"):
                conn.vars["mode"] = mode
                self.reply(api, conn, b"200 Mode set to %s\r\n" % mode)
            elif mode == b"Z":
                # mod_deflate: compressed mode — first step of the bug.
                conn.vars["mode"] = b"Z"
                self.reply(api, conn, b"200 MODE Z ok\r\n")
            else:
                self.reply(api, conn, b"504 Unsupported mode\r\n")
        elif cmd == b"OPTS":
            sub = arg.split(None, 1)
            key = sub[0].upper() if sub else b""
            if key == b"MLST":
                conn.vars["facts"] = sub[1] if len(sub) > 1 else b""
                self.reply(api, conn, b"200 MLST OPTS %s\r\n"
                           % conn.vars["facts"][:64])
            elif key == b"UTF8":
                self.reply(api, conn, b"200 UTF8 set\r\n")
            elif key == b"Z":
                # mod_deflate options: step two — stores an engine
                # object that MODE resets can leave dangling.
                conn.vars["z_engine"] = arg[2:]
                self.reply(api, conn, b"200 Z OPTS ok\r\n")
            else:
                self.reply(api, conn, b"501 Bad OPTS\r\n")
        elif cmd == b"MLST" or cmd == b"MLSD":
            facts = conn.vars.get("facts", b"type;size;")
            self.reply(api, conn, b"250-Listing\r\n type=file;size=12; index\r\n"
                       b"250 End (%s)\r\n" % facts[:32])
        elif cmd == b"MFMT":
            sub = arg.split(None, 1)
            if len(sub) == 2 and sub[0].isdigit() and len(sub[0]) == 14:
                self.reply(api, conn, b"213 Modify=%s\r\n" % sub[0])
            else:
                self.reply(api, conn, b"501 Invalid MFMT\r\n")
        elif cmd == b"SITE":
            self._site(api, conn, arg)
        elif cmd == b"RETR":
            if conn.vars.get("mode") == b"Z" and "z_engine" in conn.vars:
                if conn.vars.pop("dangling", False):
                    # Step four: transfer through the freed deflate
                    # engine — the Nyx-only use-after-free.
                    self.crash(CrashKind.ASAN_USE_AFTER_FREE,
                               "proftpd-deflate-uaf",
                               "RETR through freed z_engine")
                self.reply(api, conn, b"150 Compressed transfer\r\n226 Done\r\n")
            elif not conn.vars.get("data_mode"):
                self.reply(api, conn, b"425 Unable to build data connection\r\n")
            else:
                self.reply(api, conn, b"150 Opening\r\n226 Transfer complete\r\n")
        elif cmd == b"ABOR":
            # Step three: aborting a compressed transfer frees the
            # deflate engine but leaves conn.vars["z_engine"] set.
            if conn.vars.get("mode") == b"Z" and "z_engine" in conn.vars:
                conn.vars["dangling"] = True
            self.reply(api, conn, b"226 Abort successful\r\n")
        elif cmd == b"LIST" or cmd == b"NLST":
            if conn.vars.get("data_mode"):
                self.reply(api, conn, b"150 Opening ASCII mode\r\n226 Done\r\n")
            else:
                self.reply(api, conn, b"425 Use PASV or EPSV first\r\n")
        elif cmd == b"TYPE":
            self.reply(api, conn, b"200 Type set to %s\r\n" % arg[:8])
        elif cmd == b"CWD" or cmd == b"XCWD":
            conn.vars["cwd"] = arg[:256]
            self.reply(api, conn, b"250 CWD command successful\r\n")
        elif cmd == b"FEAT":
            self.reply(api, conn,
                       b"211-Features:\r\n EPSV\r\n MLST type*;size*;\r\n"
                       b" MODE Z\r\n MFMT\r\n211 End\r\n")
        elif cmd == b"HELP":
            self.reply(api, conn, b"214-Commands\r\n214 Direct comments to root\r\n")
        elif cmd == b"NOOP":
            self.reply(api, conn, b"200 NOOP command successful\r\n")
        else:
            self.reply(api, conn, b"500 %s not understood\r\n" % cmd[:16])

    def _site(self, api, conn: ConnCtx, arg: bytes) -> None:
        sub = arg.split(None, 1)
        key = sub[0].upper() if sub else b""
        rest = sub[1] if len(sub) > 1 else b""
        if key == b"CHMOD":
            bits = rest.split(None, 1)
            if bits and bits[0].isdigit() and len(bits[0]) == 3:
                self.reply(api, conn, b"200 SITE CHMOD successful\r\n")
            else:
                self.reply(api, conn, b"501 Bad mode\r\n")
        elif key == b"CHGRP":
            self.reply(api, conn, b"200 SITE CHGRP successful\r\n")
        elif key == b"QUOTA":
            self.reply(api, conn, b"202 Quotas off\r\n")
        else:
            self.reply(api, conn, b"500 SITE %s unknown\r\n" % key[:16])


# Line-framed tokens: inserted after any newline they form complete
# commands, which is how the spec-derived dictionary expresses whole
# opcodes.
DICTIONARY = [b"USER ", b"PASS ", b"MODE Z\r\n", b"OPTS Z level=9\r\n",
              b"ABOR\r\n", b"RETR x\r\n", b"EPSV\r\n", b"MLST",
              b"OPTS MLST type;size;", b"MFMT ", b"SITE CHMOD 644 ",
              b"FEAT", b"QUIT", b"\r\n"]


def make_seeds():
    spec = default_network_spec()
    seeds = []
    for session in (
        [b"USER ftp\r\n", b"PASS ftp\r\n", b"FEAT\r\n", b"PWD\r\n",
         b"QUIT\r\n"],
        [b"USER ftp\r\n", b"PASS ftp\r\n", b"EPSV\r\n", b"TYPE I\r\n",
         b"LIST\r\n", b"RETR index.html\r\n", b"QUIT\r\n"],
        [b"USER ftp\r\n", b"PASS ftp\r\n", b"MODE Z\r\n", b"EPSV\r\n",
         b"RETR index.html\r\n", b"QUIT\r\n"],
        [b"USER ftp\r\n", b"PASS ftp\r\n", b"MODE Z\r\n",
         b"OPTS Z level=7\r\n", b"EPSV\r\n", b"RETR index.html\r\n",
         b"QUIT\r\n"],
        [b"USER ftp\r\n", b"PASS ftp\r\n", b"OPTS MLST type;size;\r\n",
         b"MLST index.html\r\n", b"MFMT 20210101000000 index.html\r\n",
         b"QUIT\r\n"],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for line in session:
            builder.packet(con, line)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="proftpd",
    protocol="ftp",
    make_program=ProftpdServer,
    surface_factory=lambda: AttackSurface.tcp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.08,
    libpreeny_compatible=False,
    planted_bugs=("asan-use-after-free:proftpd-deflate-uaf",),
    notes="Deep MODE Z / OPTS Z / ABOR / RETR use-after-free; Nyx-only "
          "crash in Table 1 and the +70% coverage row of Table 2.",
)
