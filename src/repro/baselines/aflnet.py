"""AFLNet: the state-machine-aware network fuzzer (Pham et al.).

Faithful to the workflow §2.1 describes (and criticizes):

* the server runs *persistently*; each test case opens a fresh TCP/UDP
  connection through the (simulated) real network stack;
* fixed sleeps: a server-wait after every (re)start and an inter-packet
  delay so responses can arrive;
* a user-supplied **cleanup script** runs periodically to roll back
  external state (we model it as a full state reset + its cost);
* response codes form a state machine; inputs reaching new states are
  favored (the ``state_aware`` flag off gives AFLNET-no-state);
* mutation is region-based over the dissected packets (we reuse the
  packet-level mutation engine, without Nyx's spec dictionary).

The persistent server is exactly what makes AFLNet noisy: in-process
state (spool buffers, corruption) accumulates across test cases until
a restart — reproducing the dcmtk and pure-ftpd rows of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.common import (BaselineHarness, boot_target, drain_crash,
                                    respond_payloads)
from repro.coverage.bitmap import CoverageMap
from repro.fuzz.crash import CrashDatabase
from repro.fuzz.input import FuzzInput
from repro.fuzz.mutators import MutationEngine
from repro.fuzz.queue import Corpus
from repro.fuzz.stats import CampaignStats
from repro.guestos.errors import GuestError
from repro.sim.rng import DeterministicRandom
from repro.targets.base import TargetProfile


@dataclass
class AflNetConfig:
    """Tunables for an AFLNet campaign."""

    seed: int = 0
    time_budget: float = 60.0
    max_execs: Optional[int] = None
    #: Use response-code state feedback (False = AFLNET-no-state).
    state_aware: bool = True
    #: Restart the server + run the cleanup script every N tests.
    #: The no-state variant never restarts voluntarily — which is how
    #: it (alone) reaches pure-ftpd's internal OOM (Table 1 *).
    restart_interval: int = 50
    #: Run the periodic restart/cleanup regardless of state awareness
    #: (AFLNwe keeps the cleanup script but drops the state machine).
    periodic_restart: bool = None  # type: ignore[assignment]
    mutations_per_entry: int = 20

    def __post_init__(self) -> None:
        if self.periodic_restart is None:
            self.periodic_restart = self.state_aware


class AflNetFuzzer:
    """One AFLNet campaign against one target."""

    name = "aflnet"

    def __init__(self, profile: TargetProfile, config: Optional[AflNetConfig] = None,
                 asan: bool = False) -> None:
        self.profile = profile
        self.config = config or AflNetConfig()
        self.harness: BaselineHarness = boot_target(profile, asan=asan)
        self.rng = DeterministicRandom(self.config.seed)
        self.mutator = MutationEngine(self.rng)  # no spec dictionary
        self.coverage = CoverageMap()
        self.corpus = Corpus(self.rng)
        self.crashes = CrashDatabase()
        variant = "aflnet" if self.config.state_aware else "aflnet-no-state"
        self.stats = CampaignStats(fuzzer_name=variant,
                                   target_name=profile.name)
        #: Response-code state machine: set of state sequences seen.
        self.states_seen: set = set()
        self._tests_since_restart = 0
        self._dgram = profile.surface().datagram
        # AFLNet pays the initial server start + wait once up front.
        self.harness.machine.clock.charge(
            self.harness.machine.costs.aflnet_server_wait)

    @property
    def clock(self):
        return self.harness.machine.clock

    # ------------------------------------------------------------------
    # campaign
    # ------------------------------------------------------------------

    def run_campaign(self) -> CampaignStats:
        for seed_input in self.profile.seeds():
            if self._budget_exhausted():
                break
            self._run_and_process(seed_input, force_keep=True)
        while not self._budget_exhausted():
            if not self.corpus.entries:
                self._run_and_process(FuzzInput([]), force_keep=True)
                continue
            entry = self.corpus.next_entry()
            for _ in range(self.config.mutations_per_entry):
                if self._budget_exhausted():
                    break
                child = self.mutator.mutate(
                    entry.input, splice_donor=self.corpus.splice_donor(entry))
                self._run_and_process(child)
            self.stats.record_execs(self.clock.now)
        self.stats.end_time = self.clock.now
        self.stats.queue_size = len(self.corpus)
        return self.stats

    def _budget_exhausted(self) -> bool:
        if self.clock.now >= self.config.time_budget:
            return True
        cap = self.config.max_execs
        return cap is not None and self.stats.execs >= cap

    # ------------------------------------------------------------------
    # one test case over the real network path
    # ------------------------------------------------------------------

    def _run_and_process(self, input_: FuzzInput, force_keep: bool = False) -> None:
        trace, states, crash = self._execute(input_)
        self.stats.execs += 1
        now = self.clock.now
        if crash is not None and self.crashes.add(crash, input_, now):
            self.stats.record_crash(crash.dedup_key, now)
        new_cov = self.coverage.has_new_bits(trace)
        new_state = (self.config.state_aware and states is not None
                     and states not in self.states_seen)
        if states is not None:
            self.states_seen.add(states)
        if new_cov == CoverageMap.NEW_EDGE or new_state or force_keep:
            self.stats.record_coverage(now, self.coverage.edge_count())
            self.corpus.add(input_.copy(), exec_time=0.0,
                            new_edges=self.coverage.edge_count(), found_at=now)
        elif new_cov == CoverageMap.NEW_COUNT:
            self.stats.record_coverage(now, self.coverage.edge_count())

    def _execute(self, input_: FuzzInput) -> Tuple[dict, Optional[tuple], object]:
        harness = self.harness
        kernel = harness.kernel
        machine = harness.machine
        costs = machine.costs
        self._maybe_restart()
        harness.tracer.begin()
        crash = None
        responses: List[bytes] = []
        try:
            conn = kernel.external_connect(
                self.profile.surface().addresses[0], dgram=self._dgram)
        except GuestError:
            # Server is down (previous crash): restart and count the
            # test as a failed run — AFLNet's restart path.
            self._restart_server()
            self.stats.record_execs(self.clock.now)
            return harness.tracer.take_trace(), None, None
        for payload in respond_payloads(input_.ops):
            machine.clock.charge(costs.aflnet_packet_delay)
            try:
                conn.send(payload)
            except GuestError:
                break  # connection died mid-test
            kernel.run()
            responses.extend(conn.recv())
            if kernel.crash_reports:
                break
        try:
            conn.close()
        except GuestError:
            pass
        kernel.run()
        crash = drain_crash(kernel)
        self._tests_since_restart += 1
        states = tuple(r[:3] for r in responses[:16]) if responses else ()
        if crash is not None:
            self._restart_server()
        elif not self._server_alive():
            self._restart_server()
        return harness.tracer.take_trace(), states, crash

    # ------------------------------------------------------------------
    # restart / cleanup
    # ------------------------------------------------------------------

    def _server_alive(self) -> bool:
        return any(p.alive for p in self.harness.kernel.processes.values())

    def _maybe_restart(self) -> None:
        if not self.config.periodic_restart:
            return  # no-state: keeps the dirty server running forever
        if self._tests_since_restart >= self.config.restart_interval:
            self._restart_server(run_cleanup=True)

    def _restart_server(self, run_cleanup: bool = True) -> None:
        """Kill + restart the server; optionally run the cleanup script."""
        harness = self.harness
        harness.silent_restore()
        charge = harness.respawn_server_cost()
        if run_cleanup:
            charge += harness.machine.costs.aflnet_cleanup_script
        harness.machine.clock.charge(charge)
        self._tests_since_restart = 0
