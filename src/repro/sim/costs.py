"""Cost model for simulated time.

All durations are in seconds of simulated time.  The constants are
calibrated against the figures reported in the paper rather than
measured on any particular machine:

* §4.2: "Nyx is able to reset the VM about 12,000 times per second" for
  small targets — a reset with a few hundred dirty pages must land near
  80 microseconds.
* §2.1: AFLNet commonly achieves "single digit test executions per
  second" — dominated by fixed sleeps, connection setup and server
  restarts.
* §3.2: creating a connection inside the VM involves "dozens of context
  switches"; the emulation layer replaces this with what amounts to a
  memcpy.
* §5.3 / Figure 6: incremental snapshot creation is "about as cheap as
  resetting the snapshot once", and Agamotto pays a whole-bitmap walk
  plus snapshot-tree and LRU maintenance.

Only *ratios* between these constants matter for the reproduced tables;
the absolute values are synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Simulated durations charged by the VM, guest OS and fuzzers."""

    # --- CPU / syscall layer -------------------------------------------------
    #: One guest/host context switch (syscall entry+exit).
    context_switch: float = 2e-6
    #: CPU cost per byte of protocol parsing done by a target.
    parse_byte: float = 2e-9
    #: Fixed CPU cost for a target to handle one message.
    handle_message: float = 5e-6

    # --- real (non-emulated) network path ------------------------------------
    #: Establishing a TCP connection through the guest kernel
    #: ("dozens of context switches", §3.2).
    net_connect: float = 1.2e-4
    #: Per-packet cost on the real kernel network path.
    net_packet: float = 5e-5
    #: Per-byte cost on the real network path.
    net_byte: float = 5e-9

    # --- emulated network path (Nyx-Net interceptor) -------------------------
    #: Delivering one packet through the emulation layer (a memcpy).
    emu_packet: float = 2e-6
    #: Per-byte copy cost in the emulation layer.
    emu_byte: float = 5e-10

    # --- snapshots ------------------------------------------------------------
    #: Fixed cost of any snapshot hypercall (VM exit + bookkeeping).
    snapshot_fixed: float = 5e-5
    #: Copying / restoring one 4 KiB page via the Nyx dirty stack.
    page_copy: float = 1e-7
    #: Walking one bitmap entry (Agamotto-style whole-bitmap scan).
    bitmap_walk_entry: float = 1e-9
    #: Nyx's fast emulated-device reset (§2.3, custom reset mechanism).
    device_reset_fast: float = 1e-5
    #: QEMU-style device serialize/deserialize (used by Agamotto).
    device_reset_slow: float = 5e-4
    #: Copying one page when capturing the *root* snapshot (full copy).
    root_page_copy: float = 5e-8
    #: Restoring one disk sector from a snapshot overlay.
    sector_copy: float = 2e-7

    # --- process model ---------------------------------------------------------
    #: fork() of a process, charged per resident page (copy page tables).
    fork_per_page: float = 2e-8
    #: Fixed fork() overhead.
    fork_fixed: float = 8e-5

    # --- AFLNet-style harness costs --------------------------------------------
    #: Fixed sleep AFLNet inserts while waiting for the server to boot.
    aflnet_server_wait: float = 5e-2
    #: Fixed inter-packet delay AFLNet uses so responses can arrive
    #: (ProFuzzBench configures tens of milliseconds of usleep).
    aflnet_packet_delay: float = 3e-2
    #: Running the user-supplied cleanup script after each test case.
    aflnet_cleanup_script: float = 2e-2
    #: Killing and reaping the old server process.
    aflnet_kill_server: float = 5e-3

    # --- AFL++ forkserver ---------------------------------------------------
    #: AFL++ persistent-mode/forkserver fixed overhead per execution.
    forkserver_exec: float = 2e-4
    #: De-socketed servers linger until AFL++'s exec timeout kicks in:
    #: they wait for network events that never come.
    desock_exec_linger: float = 2e-2

    def connect_cost(self, emulated: bool) -> float:
        """Cost of establishing one connection on either path."""
        return self.emu_packet if emulated else self.net_connect

    def packet_cost(self, nbytes: int, emulated: bool) -> float:
        """Cost of delivering one ``nbytes`` packet on either path."""
        if emulated:
            return self.emu_packet + nbytes * self.emu_byte
        return self.net_packet + nbytes * self.net_byte


#: A shared default instance; campaigns that do not care about the cost
#: model use this one.
DEFAULT_COSTS = CostModel()
