"""Overlay-chain snapshot tests (multi-depth incremental snapshots).

Covers the QCOW2-style backing chain the bandit placement runs over:
push/restore/commit/discard semantics, device and disk capture per
layer, accounting, corruption teardown — plus a hypothesis state
machine that checks any interleaving of chain operations against a
flat model that stores every layer as a full state copy, and a
depth-1 equivalence test pinning the chain API to the classic
single-incremental path (state *and* sim clock).
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.vm.machine import Machine
from repro.vm.memory import PAGE_SIZE
from repro.vm.snapshot import SnapshotCorruption, SnapshotError


def small_machine() -> Machine:
    return Machine(memory_bytes=256 * PAGE_SIZE, disk_sectors=64)


def chain_machine(layers):
    """A machine with one chain layer per ``layers`` entry; entry i
    writes ``layers[i]`` at page i before capturing."""
    m = small_machine()
    m.capture_root()
    for i, payload in enumerate(layers):
        m.memory.write(i * PAGE_SIZE, payload)
        if i == 0:
            m.create_incremental()
        else:
            m.push_overlay()
    return m


class TestChainBasics:
    def test_push_requires_incremental(self):
        m = small_machine()
        m.capture_root()
        with pytest.raises(SnapshotError):
            m.push_overlay()

    def test_push_requires_deepest_base(self):
        m = chain_machine([b"one", b"two"])
        m.restore_to_depth(1)
        with pytest.raises(SnapshotError):
            m.push_overlay()

    def test_restore_to_each_depth(self):
        m = chain_machine([b"one", b"two", b"three"])
        assert m.snapshots.chain_depth == 3
        for depth, visible in ((1, 1), (3, 3), (2, 2)):
            m.memory.write(20 * PAGE_SIZE, b"junk")
            m.restore_to_depth(depth)
            for i in range(3):
                want = [b"one", b"two", b"three"][i] if i < visible else b""
                got = m.memory.read(i * PAGE_SIZE, 5).rstrip(b"\x00")
                assert got == want, (depth, i)
            assert m.memory.read(20 * PAGE_SIZE, 4) == bytes(4)

    def test_deeper_layers_survive_shallow_restore(self):
        m = chain_machine([b"one", b"two"])
        m.restore_to_depth(1)
        assert m.snapshots.chain_depth == 2
        m.restore_to_depth(2)
        assert m.memory.read(PAGE_SIZE, 3) == b"two"

    def test_restore_depth_bounds(self):
        m = chain_machine([b"one", b"two"])
        with pytest.raises(SnapshotError):
            m.restore_to_depth(0)
        with pytest.raises(SnapshotError):
            m.restore_to_depth(3)

    def test_chain_captures_devices_and_disk(self):
        m = small_machine()
        m.capture_root()
        m.devices.nic.on_rx(64)
        m.disk.write_sector(3, b"a" * 512)
        m.create_incremental()
        m.devices.nic.on_rx(64)
        m.disk.write_sector(3, b"b" * 512)
        m.push_overlay()
        m.devices.nic.on_rx(64)
        m.disk.write_sector(3, b"c" * 512)
        m.restore_to_depth(2)
        assert m.devices.nic.rx_packets == 2
        assert m.disk.read_sector(3) == b"b" * 512
        m.restore_to_depth(1)
        assert m.devices.nic.rx_packets == 1
        assert m.disk.read_sector(3) == b"a" * 512

    def test_commit_folds_child_into_parent(self):
        m = chain_machine([b"one", b"two", b"three"])
        m.snapshots.commit_overlay()
        assert m.snapshots.chain_depth == 2
        # The parent *is* the child's snapshot now, one level down.
        m.memory.write(20 * PAGE_SIZE, b"junk")
        m.restore_to_depth(2)
        assert m.memory.read(2 * PAGE_SIZE, 5) == b"three"

    def test_commit_to_depth_one(self):
        m = chain_machine([b"one", b"two"])
        m.snapshots.commit_overlay()
        assert m.snapshots.chain_depth == 1
        m.memory.write(20 * PAGE_SIZE, b"junk")
        m.restore_incremental()
        assert m.memory.read(PAGE_SIZE, 3) == b"two"

    def test_commit_without_overlay_raises(self):
        m = chain_machine([b"one"])
        with pytest.raises(SnapshotError):
            m.snapshots.commit_overlay()

    def test_discard_deepest_drops_layer(self):
        m = chain_machine([b"one", b"two", b"three"])
        m.snapshots.discard_deepest()
        assert m.snapshots.chain_depth == 2
        with pytest.raises(SnapshotError):
            m.restore_to_depth(3)
        m.restore_to_depth(2)
        assert m.memory.read(PAGE_SIZE, 3) == b"two"
        assert m.memory.read(2 * PAGE_SIZE, 5) == bytes(5)

    def test_discard_deepest_at_depth_one_discards_incremental(self):
        m = chain_machine([b"one"])
        m.snapshots.discard_deepest()
        assert not m.snapshots.incremental_active
        assert m.snapshots.chain_depth == 0

    def test_create_incremental_replaces_chain(self):
        m = chain_machine([b"one", b"two"])
        m.memory.write(5 * PAGE_SIZE, b"fresh")
        m.create_incremental()
        assert m.snapshots.chain_depth == 1
        m.memory.write(5 * PAGE_SIZE, b"junk!")
        m.restore_incremental()
        assert m.memory.read(5 * PAGE_SIZE, 5) == b"fresh"
        assert m.memory.read(PAGE_SIZE, 3) == b"two"

    def test_reset_for_next_test_uses_chain_base(self):
        m = chain_machine([b"one", b"two"])
        m.memory.write(20 * PAGE_SIZE, b"junk")
        m.reset_for_next_test()
        assert m.memory.read(PAGE_SIZE, 3) == b"two"
        assert m.memory.read(20 * PAGE_SIZE, 4) == bytes(4)


class TestChainAccounting:
    def test_stats_counters(self):
        m = chain_machine([b"one", b"two", b"three"])
        m.restore_to_depth(2)
        m.restore_to_depth(3)
        m.snapshots.commit_overlay()
        stats = m.snapshots.stats
        assert stats.overlay_pushes == 2
        assert stats.chain_restores == 2
        assert stats.overlay_commits == 1
        assert stats.deepest_chain == 3

    def test_depth_one_chain_api_matches_legacy(self):
        """restore_to_depth(1) on a depth-1 chain is byte- and
        cost-identical to restore_incremental — the identity that keeps
        ``--max-chain-depth 1`` campaigns on the pre-chain trajectory."""
        ops = [("w", 3, b"dirty"), ("r",), ("w", 7, b"more!"), ("w", 3, b"x"),
               ("r",), ("r",)]
        machines = [small_machine(), small_machine()]
        for m in machines:
            m.capture_root()
            m.memory.write(0, b"prefix")
            m.create_incremental()
        legacy, chained = machines
        for op in ops:
            if op[0] == "w":
                legacy.memory.write(op[1] * PAGE_SIZE, op[2])
                chained.memory.write(op[1] * PAGE_SIZE, op[2])
            else:
                legacy.restore_incremental()
                chained.restore_to_depth(1)
        assert legacy.clock.now == chained.clock.now
        for page in (0, 3, 7):
            assert (legacy.memory.page(page) == chained.memory.page(page))

    def test_reset_set_grows_with_distance(self):
        """Hopping across more layers resets more pages: the reset set
        is the symmetric difference of the two nodes' views, so a
        same-depth restore touches nothing extra."""
        layers = [bytes([65 + i]) * 64 for i in range(4)]
        near, far = chain_machine(layers), chain_machine(layers)
        assert near.restore_to_depth(4) == 0
        # Depth 1 undoes the pages layers 2..4 captured privately.
        assert far.restore_to_depth(1) == 3


class TestChainCorruption:
    def test_corrupt_overlay_detected_and_chain_torn_down(self):
        m = chain_machine([b"one", b"two", b"three"])
        overlay = m.snapshots._overlays[0]
        idx = next(iter(overlay.checksums))
        overlay.mirror[idx] = b"\xff" * PAGE_SIZE
        with pytest.raises(SnapshotCorruption):
            m.restore_to_depth(2)
        # One corrupt layer poisons everything deeper: the chain (and
        # the depth-1 snapshot under it) is gone, the root still works.
        assert m.snapshots.chain_depth == 0
        assert m.snapshots.stats.corruption_detected == 1
        m.restore_root()

    def test_reset_for_next_test_falls_back_to_root(self):
        m = chain_machine([b"one", b"two"])
        overlay = m.snapshots._overlays[0]
        idx = next(iter(overlay.checksums))
        overlay.mirror[idx] = b"\xff" * PAGE_SIZE
        m.memory.write(20 * PAGE_SIZE, b"junk")
        m.reset_for_next_test()
        assert m.memory.read(20 * PAGE_SIZE, 4) == bytes(4)
        assert m.memory.read(0, 3) == bytes(3)  # back at the root


N_PAGES = 32


def _tiny_machine():
    return Machine(memory_bytes=N_PAGES * PAGE_SIZE, disk_sectors=16)


class ChainModel(RuleBasedStateMachine):
    """Chain ops against a flat model: every layer a full state copy.

    The model stores each chain node as a complete (memory, nic, timer,
    disk) state — the semantics a chain of CoW overlays must be
    observationally indistinguishable from.  ``base`` mirrors which
    node the live state descends from (pushes are only legal from the
    deepest node, as in the real manager).
    """

    def __init__(self):
        super().__init__()
        self.machine = _tiny_machine()
        self.machine.capture_root()
        self.live_mem = {}      # page -> byte value
        self.live_nic = 0
        self.live_disk = {}     # sector -> byte value
        self.stack = []         # depth k -> full state at stack[k-1]
        self.base = 0

    def _state(self):
        return (dict(self.live_mem), self.live_nic, dict(self.live_disk))

    @rule(page=st.integers(0, N_PAGES - 1), value=st.integers(1, 255))
    def write(self, page, value):
        self.machine.memory.write(page * PAGE_SIZE, bytes([value]))
        self.live_mem[page] = value

    @rule(sector=st.integers(0, 15), value=st.integers(1, 255))
    def write_disk(self, sector, value):
        self.machine.disk.write_sector(sector, bytes([value]) * 512)
        self.live_disk[sector] = value

    @rule()
    def rx_packet(self):
        self.machine.devices.nic.on_rx(64)
        self.live_nic += 1

    @precondition(lambda self: not self.stack)
    @rule()
    def create_incremental(self):
        self.machine.create_incremental()
        self.stack = [self._state()]
        self.base = 1

    @precondition(lambda self: self.stack
                  and self.base == len(self.stack) < 5)
    @rule()
    def push_overlay(self):
        self.machine.push_overlay()
        self.stack.append(self._state())
        self.base = len(self.stack)

    @precondition(lambda self: self.stack)
    @rule(data=st.data())
    def restore_to_depth(self, data):
        depth = data.draw(st.integers(1, len(self.stack)))
        self.machine.restore_to_depth(depth)
        mem, nic, disk = self.stack[depth - 1]
        self.live_mem = dict(mem)
        self.live_nic = nic
        self.live_disk = dict(disk)
        self.base = depth

    @precondition(lambda self: len(self.stack) >= 2)
    @rule()
    def commit_overlay(self):
        # Fold: the parent becomes the child's snapshot, one shallower.
        self.machine.snapshots.commit_overlay()
        self.stack[-2] = self.stack[-1]
        self.stack.pop()
        self.base = min(self.base, len(self.stack))

    @precondition(lambda self: self.stack)
    @rule()
    def discard_deepest(self):
        self.machine.snapshots.discard_deepest()
        self.stack.pop()
        self.base = min(self.base, len(self.stack))

    @invariant()
    def machine_matches_model(self):
        memory = self.machine.memory
        for page in range(N_PAGES):
            want = self.live_mem.get(page, 0)
            assert memory.page(page)[0] == want, page
        assert self.machine.devices.nic.rx_packets == self.live_nic
        for sector in range(16):
            want = self.live_disk.get(sector, 0)
            assert self.machine.disk.read_sector(sector)[0] == want, sector
        assert self.machine.snapshots.chain_depth == len(self.stack)


ChainModel.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None)
TestChainModel = ChainModel.TestCase


def test_chain_operations_are_deterministic():
    """The same op sequence replayed on a fresh machine lands on the
    same sim clock and the same state — chains stay replayable."""
    def run():
        m = chain_machine([b"one", b"two", b"three"])
        m.restore_to_depth(1)
        m.memory.write(9 * PAGE_SIZE, b"dirty")
        m.restore_to_depth(3)
        m.snapshots.commit_overlay()
        m.memory.write(4 * PAGE_SIZE, b"again")
        m.restore_to_depth(2)
        return m
    a, b = run(), run()
    assert a.clock.now == b.clock.now
    for page in range(12):
        assert a.memory.page(page) == b.memory.page(page)
