#!/usr/bin/env python3
"""Corpus management workflow: pack → fuzz → distill → persist → replay.

Shows the operational side of the reproduction: bundling a target's
campaign inputs into a share folder (§5.4 step 4), fuzzing from it,
shrinking the resulting corpus with afl-cmin-style distillation, and
persisting everything for a later resume.

Run:  python examples/corpus_workflow.py [workdir]
"""

import sys
import tempfile

from repro import PROFILES, build_campaign
from repro.fuzz.persist import load_corpus, save_campaign
from repro.fuzz.trim import distill_corpus, trim_input
from repro.spec.nodes import default_network_spec
from repro.spec.share import load_share, pack_share


def main() -> None:
    workdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-corpus-")
    profile = PROFILES["lightftp"]

    # 1. Pack the share folder and load the campaign back from it.
    written = pack_share(profile, default_network_spec(),
                         workdir + "/share")
    manifest, _spec, seeds, _dict, _surface = load_share(workdir + "/share")
    print("packed %d files; loaded %d seeds for %s"
          % (written, len(seeds), manifest["target"]))

    # 2. Fuzz from the share's seeds.
    handles = build_campaign(profile, policy="balanced", seed=5,
                             time_budget=60.0, max_execs=1200, seeds=seeds)
    stats = handles.fuzzer.run_campaign()
    print(stats.summary())

    # 3. Trim the biggest corpus entry, then distill the whole corpus.
    entries = handles.fuzzer.corpus.entries
    biggest = max(entries, key=lambda e: e.input.total_payload_bytes())
    trimmed, execs = trim_input(handles.executor, biggest.input,
                                stats=stats)
    print("trimmed largest entry: %d -> %d packets (%d execs; "
          "%d ops removed statically, %d by execution)"
          % (biggest.input.num_packets, trimmed.num_packets, execs,
             stats.trim_ops_static, stats.trim_ops_exec))
    chosen = distill_corpus(handles.executor, [e.input for e in entries])
    print("distilled corpus: %d -> %d inputs" % (len(entries), len(chosen)))

    # 4. Persist, then prove the corpus reloads.
    save_campaign(handles.fuzzer, workdir + "/campaign")
    reloaded = load_corpus(workdir + "/campaign")
    print("persisted and reloaded %d corpus entries under %s"
          % (len(reloaded), workdir))


if __name__ == "__main__":
    main()
