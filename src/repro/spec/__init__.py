"""Nyx's affine-typed bytecode specification engine (§2.2, §3.5, §4.4).

Inputs to the fuzzer are sequences of typed opcodes ("nodes").  A
:class:`~repro.spec.nodes.Spec` declares data types, edge (value)
types and node types; :mod:`repro.spec.bytecode` serializes op
sequences to a flat bytecode and validates affine-type rules;
:class:`~repro.spec.builder.Builder` is the meta-programmed Python
seed-authoring library from Listing 2; :mod:`repro.spec.pcap` and
:mod:`repro.spec.dissect` turn packet captures into seed inputs.
"""

from repro.spec.types import DataType, U8, U16, U32, ByteVec
from repro.spec.nodes import EdgeType, NodeType, Spec, SpecError, default_network_spec
from repro.spec.bytecode import (Op, OpSequence, serialize, deserialize,
                                 normalize_markers, parse, validate)
from repro.spec.builder import Builder, TrackedValue
from repro.spec.pcap import PcapReader, PcapWriter, TcpFlow, extract_flows
from repro.spec.dissect import (crlf_dissector, length_prefixed_dissector,
                                raw_dissector, dissector_for)

__all__ = [
    "DataType", "U8", "U16", "U32", "ByteVec",
    "EdgeType", "NodeType", "Spec", "SpecError", "default_network_spec",
    "Op", "OpSequence", "serialize", "deserialize", "validate",
    "parse", "normalize_markers",
    "Builder", "TrackedValue",
    "PcapReader", "PcapWriter", "TcpFlow", "extract_flows",
    "crlf_dissector", "length_prefixed_dissector", "raw_dissector",
    "dissector_for",
]
