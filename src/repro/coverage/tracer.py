"""``sys.settrace``-based edge tracer for guest target code.

This is the reproduction's stand-in for AFL compile-time
instrumentation (§4.5): instead of instrumenting basic blocks at
compile time, we trace line events of the target's *actual Python
code* and fold ``(previous site, current site)`` transitions into a
sparse AFL-style trace, using AFL's ``cur ^ (prev >> 1)`` edge formula.

Only code whose filename matches the configured path fragments is
traced, so the kernel, fuzzer and harness never pollute coverage —
the analogue of only instrumenting the target binary.

The tracer sits on the hottest host path there is — every line of
every target function of every execution — so the work is split into
a record phase and a fold phase, producing bit-identical traces to the
straightforward implementation:

* the **global** callback is a closure over pre-bound locals whose
  per-code decision is one dict probe; untraced code (the kernel, the
  fuzzer, libraries) costs exactly that probe per call;
* each traced code object gets its own **specialized local callback**
  that appends one precomputed *site* integer per line event to a flat
  stream — no edge arithmetic inside the callback;
* :meth:`take_trace` folds the site stream into the sparse edge trace
  once per execution, vectorized with numpy when available (the pure
  Python fallback computes the identical dict).
"""

from __future__ import annotations

import sys
from array import array as _array
from typing import Callable, Dict, List, Optional, Tuple

from repro.coverage.bitmap import MAP_SIZE

try:  # Optional acceleration for the per-exec fold; results identical.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is normally available
    _np = None

try:  # C-level "count into a dict" helper used by Counter itself.
    from collections import _count_elements
except ImportError:  # pragma: no cover - CPython always has it
    def _count_elements(mapping: Dict[int, int], iterable) -> None:
        get = mapping.get
        for item in iterable:
            mapping[item] = get(item, 0) + 1

#: Path fragments identifying "instrumented" code.  The Mario *engine*
#: is deliberately absent: like IJON's original experiment, game
#: progress feedback comes from the IJON state annotation, not from
#: line coverage of the physics loop (and tracing 2,000 frames of
#: physics per execution would dominate host time).
DEFAULT_TRACED_FRAGMENTS = ("/repro/targets/", "/repro/mario/target")

#: Bitmap region where IJON state annotations land (distinct from the
#: hash range used by code edges only probabilistically, like IJON).
IJON_BASE = 0xF000


def _stable_site(text: str) -> int:
    """FNV-1a site hash, stable across processes.

    Built-in ``hash`` of strings is randomized per process and ``id()``
    is a memory address: deriving edge indices from either makes two
    same-seed campaign runs disagree on their coverage maps (the
    determinism self-lint's NYX02x family exists to keep exactly this
    class of leak out of the fuzzer).
    """
    value = 0x811C9DC5
    for byte in text.encode():
        value = ((value ^ byte) * 0x01000193) & 0xFFFFFFFF
    return value


class EdgeTracer:
    """Collects sparse edge traces from traced module code."""

    def __init__(self, traced_fragments: Tuple[str, ...] = DEFAULT_TRACED_FRAGMENTS,
                 map_size: int = MAP_SIZE) -> None:
        self.traced_fragments = traced_fragments
        self.map_size = map_size
        #: Sparse trace of the last folded execution (edge -> count);
        #: refreshed by :meth:`take_trace`.
        self.trace: Dict[int, int] = {}
        #: Flat stream of site values in execution order.  Persistent
        #: list (cleared in place) so the callbacks can capture its
        #: bound ``append`` once.
        self._stream: List[int] = []
        #: IJON state hits land directly on edges (they bypass the
        #: prev-site chain), so they live outside the site stream.
        self._ijon: Dict[int, int] = {}
        #: Per-code-object cache: id(code) -> stable site base for
        #: traced code, None for untraced.  (id() is only the cache
        #: key — sites themselves come from :func:`_stable_site`.)
        self._code_cache: Dict[int, Optional[int]] = {}
        #: id(code) -> (base, specialized local callback) for traced
        #: code, None for untraced.
        self._entry_cache: Dict[int, Optional[Tuple[int, Callable]]] = {}
        #: Fold memo: packed site stream -> folded edge trace.  Mutated
        #: inputs mostly retrace known paths, so identical streams
        #: recur constantly; keying on the exact packed stream keeps
        #: the memo collision-proof (bytes equality compares it all).
        self._fold_cache: Dict[bytes, Dict[int, int]] = {}
        self._global = self._build_global()
        self._depth = 0

    # -- per-test lifecycle --------------------------------------------------

    def begin(self) -> None:
        """Reset the trace for a new test case."""
        del self._stream[:]
        self._ijon.clear()
        self.trace = {}

    def take_trace(self) -> Dict[int, int]:
        """Fold the site stream into the sparse edge trace.

        Returns a fresh dict each call; the stream itself is only
        cleared by :meth:`begin`, so repeated calls agree.
        """
        stream = self._stream
        # Bytes key: one C-level pack + hash instead of building and
        # hashing a 300-element tuple per execution.
        key = _array("Q", stream).tobytes()
        cached = self._fold_cache.get(key)
        if cached is not None:
            trace = dict(cached)
        else:
            size = self.map_size
            if _np is not None and len(stream) > 64:
                sites = _np.frombuffer(key, dtype=_np.uint64)
                edges = _np.empty(len(sites), _np.uint64)
                edges[0] = sites[0]  # the initial prev-site is 0
                _np.bitwise_xor(sites[1:], sites[:-1] >> 1, out=edges[1:])
                edges %= size
                trace = {}
                _count_elements(trace, edges.tolist())
            else:
                trace = {}
                trace_get = trace.get
                prev = 0
                for site in stream:
                    edge = (site ^ (prev >> 1)) % size
                    prev = site
                    trace[edge] = trace_get(edge, 0) + 1
            if len(self._fold_cache) >= 8192:
                # Deterministic pressure valve; a campaign's distinct
                # control-flow paths rarely approach this.
                self._fold_cache.clear()
            self._fold_cache[key] = dict(trace)
        if self._ijon:
            trace_get = trace.get
            for edge, count in self._ijon.items():
                trace[edge] = trace_get(edge, 0) + count
        self.trace = trace
        return trace

    def ijon_set(self, slot: int) -> None:
        """IJON-style state feedback: mark a state slot as reached.

        Mirrors IJON-SET/IJON-MAX: the annotated state value selects a
        bitmap entry, so novel states look like novel edges to the
        fuzzer's novelty check.
        """
        edge = (IJON_BASE + slot) % self.map_size
        ijon = self._ijon
        ijon[edge] = ijon.get(edge, 0) + 1

    # -- execution wrapper --------------------------------------------------

    def run(self, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` with tracing enabled.

        Re-entrant: nested calls keep the existing trace hook.
        """
        if self._depth == 0:
            sys.settrace(self._global)
        self._depth += 1
        try:
            fn(*args)
        finally:
            self._depth -= 1
            if self._depth == 0:
                sys.settrace(None)

    # -- trace hooks -----------------------------------------------------------

    def _build_global(self) -> Callable:
        """The ``sys.settrace`` global callback, specialized once.

        Invoked for every 'call' event in the trace window — including
        every untraced kernel/library call made by target code — so the
        miss path is a single dict hit returning None.
        """
        entry_cache = self._entry_cache
        make_entry = self._make_entry
        append = self._stream.append

        def global_trace(frame, event, arg):
            code = frame.f_code
            try:
                entry = entry_cache[id(code)]
            except KeyError:
                entry = make_entry(code)
            if entry is None:
                return None
            # The call edge: the code's base site enters the stream.
            append(entry[0])
            return entry[1]

        return global_trace

    def _make_entry(self, code) -> Optional[Tuple[int, Callable]]:
        """Build (and cache) the specialized local callback for ``code``."""
        filename = code.co_filename
        if not any(fragment in filename
                   for fragment in self.traced_fragments):
            self._entry_cache[id(code)] = None
            self._code_cache[id(code)] = None
            return None
        base = _stable_site("%s:%s:%d" % (filename, code.co_name,
                                          code.co_firstlineno))
        self._code_cache[id(code)] = base
        base33 = base * 33
        append = self._stream.append

        def local_trace(frame, event, arg):
            if event == "line":
                append((base33 + frame.f_lineno) & 0xFFFFFFFF)
            return local_trace

        entry = (base, local_trace)
        self._entry_cache[id(code)] = entry
        return entry

    def _code_site(self, code) -> Optional[int]:
        """Stable site base for a code object (None = not traced)."""
        try:
            return self._code_cache[id(code)]
        except KeyError:
            entry = self._make_entry(code)
            return None if entry is None else entry[0]
