"""The network-emulation interceptor (agent component).

Host-side implementation of the paper's in-guest LD_PRELOAD library:
it observes every socket-related syscall via the hooks the kernel
calls, identifies attack-surface sockets, and — once fuzzing starts —
serves fuzzer packets directly to ``recv()`` on those sockets while
faking readiness in ``select``/``poll``/``epoll``.  Data the target
sends on surface connections is swallowed (and retained for
inspection) instead of traversing the network stack.

Connection identity: the fuzzer addresses connections by small integer
ids in bytecode order; ``open_connection`` binds the next id to a
freshly fabricated in-guest connection (server mode) or to the
target's own outgoing connection (client mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.emu.surface import AttackSurface, SurfaceMode
from repro.guestos.errors import Errno, GuestError
from repro.guestos.sockets import EXTERNAL_PEER, SockState, SockType, Socket


@dataclass
class _ConnState:
    """Host-side state for one hooked connection."""

    conn_id: int
    sid: Optional[int] = None          # guest socket id once known
    queue: List[bytes] = field(default_factory=list)
    closed_by_fuzzer: bool = False
    packets_delivered: int = 0
    responses: List[bytes] = field(default_factory=list)


class Interceptor:
    """Hooks the kernel's syscall surface for one machine."""

    def __init__(self, kernel, surface: AttackSurface) -> None:
        self.kernel = kernel
        self.surface = surface
        kernel.interceptor = self
        #: Surface listener socket ids (server mode).
        self.listener_sids: Dict[int, object] = {}
        #: Hooked datagram socket ids mapped to their address.
        self.dgram_sids: Dict[int, object] = {}
        # One-way latch: auto-mode surface placement ("first bind
        # wins") must survive resets by design.
        self._seen_any_bind = False  # nyx: allow[reset]
        self._conns: Dict[int, _ConnState] = {}
        self._sid_to_conn: Dict[int, int] = {}
        #: Connections fabricated but not yet accepted by the target.
        self._pending_accept: List[int] = []
        #: Client-mode: target sockets that connected to the surface
        #: before the fuzzer opened a connection id for them.
        self._unbound_client_sids: List[int] = []
        #: Set when the target first attempts to read fuzz input —
        #: the automatic root-snapshot placement signal (§3.3).  A
        #: one-way latch: deliberately never reset.
        self.saw_first_read = False  # nyx: allow[reset]
        # Cumulative campaign counters, read via deltas; resetting
        # them would zero the fuzzer's throughput accounting.
        self.stats_packets = 0  # nyx: allow[reset]
        self.stats_bytes = 0  # nyx: allow[reset]
        #: Optional :class:`~repro.faults.injector.FaultInjector`: when
        #: set, the emulated network paths inject guest-visible faults
        #: (short reads, EAGAIN bursts, resets, partial sends, stalls).
        self.injector: Optional[Any] = None

    # ------------------------------------------------------------------
    # fuzzer-facing API
    # ------------------------------------------------------------------

    def adopt_surface_state(self, source: "Interceptor") -> None:
        """Copy boot-time surface bookkeeping from a golden instance.

        Workers that :meth:`~repro.vm.machine.Machine.adopt_root` a
        shared root snapshot never observe the target's boot-time
        ``bind``/``listen``/``connect`` calls — those happened on the
        golden VM.  Guest socket ids are part of the adopted memory
        image and therefore identical across instances, so the golden
        interceptor's listener/datagram tables carry over verbatim.
        """
        self.listener_sids = dict(source.listener_sids)
        self.dgram_sids = dict(source.dgram_sids)
        self._seen_any_bind = source._seen_any_bind
        self._unbound_client_sids = list(source._unbound_client_sids)
        self.saw_first_read = source.saw_first_read

    def reset_for_test(self) -> None:
        """Drop all per-test connection state (before each execution)."""
        self._conns = {}
        self._sid_to_conn = {}
        self._pending_accept = []
        # Forget client sockets that did not survive the snapshot
        # reset; boot-time connections keep their slots.
        self._unbound_client_sids = [
            sid for sid in self._unbound_client_sids
            if sid in self.kernel.sockets]
        self._client_cursor = 0
        self.reset_stale_surface()

    def reset_stale_surface(self) -> None:
        """Drop surface sockets that did not survive the last restore.

        A surface-matching ``bind`` *during* an execution lands in
        :attr:`listener_sids`/:attr:`dgram_sids`, but the guest socket
        behind it is rolled back by the snapshot reset.  Keeping the
        stale sid skews the round-robin listener choice in
        :meth:`open_connection` (and EBADFs on lookup), so the same
        input diverges between executions — exactly the residual-state
        corruption the reset invariant forbids.  Boot-time surface
        sockets are part of the root image and always survive.
        """
        self.listener_sids = {
            sid: addr for sid, addr in self.listener_sids.items()
            if sid in self.kernel.sockets}
        self.dgram_sids = {
            sid: addr for sid, addr in self.dgram_sids.items()
            if sid in self.kernel.sockets}

    def open_connection(self, conn_id: int) -> None:  # nyx: hot
        """Bind connection id to a new hooked connection.

        Server mode: fabricate an established connection and park it in
        the surface listener's accept queue — without any real network
        traffic (one emulated-packet charge).  Datagram surfaces bind
        the id straight to the bound socket.  Client mode: the id waits
        for the target's own connect().
        """
        if conn_id in self._conns:
            raise ValueError("connection id %d already open" % conn_id)
        if len(self._conns) >= self.surface.max_connections:
            raise GuestError(Errno.ECONNREFUSED, "surface connection limit")
        state = _ConnState(conn_id)
        self._conns[conn_id] = state
        machine = self.kernel.machine
        machine.clock.charge(machine.costs.connect_cost(emulated=True))
        if self.surface.mode is SurfaceMode.CLIENT:
            # Bind to the next target socket that already connected
            # out, or wait for the next connect() (on_connect fills
            # the sid in).  The cursor resets every test, so the same
            # boot-time connection serves every execution.
            cursor = getattr(self, "_client_cursor", 0)
            while cursor < len(self._unbound_client_sids):
                sid = self._unbound_client_sids[cursor]
                cursor += 1
                if sid in self.kernel.sockets:
                    self._client_cursor = cursor
                    state.sid = sid
                    self._sid_to_conn[sid] = conn_id
                    return
            self._client_cursor = cursor
            self._pending_accept.append(conn_id)
            return
        if self.surface.datagram:
            if not self.dgram_sids:
                raise GuestError(Errno.ECONNREFUSED, "no bound datagram surface")
            sid = next(iter(self.dgram_sids))
            state.sid = sid
            self._sid_to_conn.setdefault(sid, conn_id)
            return
        if not self.listener_sids:
            raise GuestError(Errno.ECONNREFUSED, "no surface listener")
        # Multi-channel targets (Firefox IPC, §5.6): successive
        # connection ids round-robin across the hooked listeners, so
        # one input can speak on several channels at once.
        listeners = list(self.listener_sids)
        listener_sid = listeners[conn_id % len(listeners)]
        listener = self.kernel.sock(listener_sid)
        conn = self.kernel.new_socket(listener.domain, SockType.STREAM)
        conn.state = SockState.CONNECTED
        conn.peer = EXTERNAL_PEER
        conn.refcount = 1  # accept-queue reference
        listener.accept_queue.append(conn.sid)
        self.kernel.touch("sock:%d" % listener.sid)
        self.kernel._activity += 1
        state.sid = conn.sid
        self._sid_to_conn[conn.sid] = conn_id

    def queue_packet(self, conn_id: int, data: bytes) -> None:
        """Make ``data`` the next packet the target reads on conn_id."""
        state = self._require(conn_id)
        state.queue.append(data)
        self.kernel._activity += 1

    def close_connection(self, conn_id: int) -> None:
        """Signal EOF on the connection (the shutdown opcode)."""
        self._require(conn_id).closed_by_fuzzer = True
        self.kernel._activity += 1

    def pending_packets(self, conn_id: int) -> int:
        return len(self._require(conn_id).queue)

    def responses(self, conn_id: int) -> List[bytes]:
        """Data the target wrote to this connection."""
        return list(self._require(conn_id).responses)

    def _require(self, conn_id: int) -> _ConnState:
        state = self._conns.get(conn_id)
        if state is None:
            raise KeyError("connection id %d is not open" % conn_id)
        return state

    def _conn_for_sid(self, sid: int) -> Optional[_ConnState]:
        conn_id = self._sid_to_conn.get(sid)
        if conn_id is None:
            return None
        return self._conns.get(conn_id)

    # ------------------------------------------------------------------
    # kernel hooks (the ~30 intercepted libc calls)
    # ------------------------------------------------------------------

    def on_socket(self, pid: int, fd: int, sock: Socket) -> None:
        pass  # tracked lazily at bind/connect time

    def on_bind(self, pid: int, fd: int, sock: Socket, addr) -> None:
        if self.surface.mode is not SurfaceMode.SERVER:
            return
        if not self.surface.matches(addr, self._seen_any_bind):
            return
        self._seen_any_bind = True
        if sock.type is SockType.DGRAM or self.surface.datagram:
            self.dgram_sids[sock.sid] = addr
        else:
            self.listener_sids[sock.sid] = addr

    def on_listen(self, pid: int, fd: int, sock: Socket) -> None:
        pass  # bind already classified the socket

    def on_accept(self, pid: int, fd: int, conn: Socket, listener: Socket) -> None:
        pass  # fabricated conns are mapped at open_connection time

    def claims_connect(self, addr) -> bool:
        """Whether client-mode emulation will serve a connect to addr."""
        return (self.surface.mode is SurfaceMode.CLIENT
                and self.surface.matches(addr, self._seen_any_bind))

    def on_connect(self, pid: int, fd: int, sock: Socket, addr) -> None:
        if not self.claims_connect(addr):
            return
        self._seen_any_bind = True
        if not self._pending_accept:
            # Target connected before the fuzzer opened a connection
            # id (typical: outgoing connect during startup).
            self._unbound_client_sids.append(sock.sid)
            return
        conn_id = self._pending_accept.pop(0)
        state = self._conns[conn_id]
        state.sid = sock.sid
        self._sid_to_conn[sock.sid] = conn_id

    def on_recv(self, pid: int, fd: int, sock: Socket,
                max_bytes: int) -> Optional[Tuple[bytes, Optional[object]]]:
        """Serve fuzz input on surface connections.

        Returns None for non-surface sockets (normal kernel path).
        Preserves packet boundaries: one queued packet per recv call,
        truncated (remainder requeued) if the buffer is smaller.
        """
        # _conn_for_sid inlined: this hook runs on every recv attempt.
        conn_id = self._sid_to_conn.get(sock.sid)
        state = None if conn_id is None else self._conns.get(conn_id)
        if state is None:
            return None
        self.saw_first_read = True
        machine = self.kernel.machine
        if not state.queue:
            if state.closed_by_fuzzer:
                return (b"", None)
            raise GuestError(Errno.EAGAIN, "no fuzz packet pending")
        # Faults disrupt *deliveries*: a speculative recv on an idle
        # connection already sees EAGAIN naturally and must not burn a
        # fault decision (targets poll far more often than data lands).
        if self.injector is not None:
            max_bytes = self._inject_recv_fault(state, machine, max_bytes)
        packet = state.queue[0]
        if len(packet) <= max_bytes or sock.type is SockType.DGRAM:
            state.queue.pop(0)
            data = packet[:max_bytes]
        else:
            data = packet[:max_bytes]
            state.queue[0] = packet[max_bytes:]
        state.packets_delivered += 1
        self.stats_packets += 1
        self.stats_bytes += len(data)
        machine.clock.charge(machine.costs.packet_cost(len(data), emulated=True))
        # Datagram reads get a synthetic source address for the reply
        # path; replies to it are swallowed by on_send anyway.
        source = "fuzzer" if sock.sid in self.dgram_sids else None
        return (data, source)

    def _inject_recv_fault(self, state: _ConnState, machine,
                           max_bytes: int) -> int:
        """Apply one recv-path fault decision; returns the (possibly
        reduced) buffer size.  Raised errors model transient (`EAGAIN`)
        and hard (`ECONNRESET`) failures the target must absorb."""
        from repro.faults.plan import FaultKind
        fault = self.injector.recv_fault()
        if fault is None:
            return max_bytes
        if fault is FaultKind.STALL:
            # The "peer" goes silent mid-read: the target blocks and
            # the stall burns simulated time the watchdog accounts for.
            machine.clock.charge(self.injector.stall_seconds())
            return max_bytes
        if fault is FaultKind.EAGAIN_BURST:
            raise GuestError(Errno.EAGAIN, "injected fault: EAGAIN burst")
        if fault is FaultKind.CONN_RESET:
            # The connection dies mid-stream: pending input is lost and
            # further reads see EOF, like a real RST.
            state.queue.clear()
            state.closed_by_fuzzer = True
            raise GuestError(Errno.ECONNRESET, "injected fault: peer reset")
        if fault is FaultKind.SHORT_READ:
            return self.injector.short_read_bytes(max_bytes)
        return max_bytes

    def on_send(self, pid: int, fd: int, sock: Socket, data: bytes) -> bool:
        """Swallow responses on surface connections (returns True if
        handled, so the kernel skips the real path)."""
        state = self._conn_for_sid(sock.sid)
        if state is None:
            return False
        machine = self.kernel.machine
        if self.injector is not None and len(data) > 1:
            from repro.faults.plan import FaultKind
            if self.injector.send_fault() is FaultKind.PARTIAL_SEND:
                # Only a prefix makes it onto the wire before the
                # (emulated) buffer fills; the tail is lost.
                data = data[:self.injector.partial_send_bytes(len(data))]
        machine.clock.charge(machine.costs.packet_cost(len(data), emulated=True))
        state.responses.append(data)
        return True

    def accept_delay_override(self, sid: int) -> bool:
        """Whether a pending connection's readiness should lag.

        Consulted by the kernel's accept() while a fabricated
        connection is parked in the queue: a DELAYED_READINESS fault
        makes that accept spuriously fail with EAGAIN (the connection
        is delivered on the target's next poll round instead).
        """
        if self.injector is None or sid not in self.listener_sids:
            return False
        return self.injector.delay_readiness()

    def readable_override(self, sid: int) -> Optional[bool]:
        """Readiness for surface fds follows the input bytecode."""
        state = self._conn_for_sid(sid)
        if state is None:
            if sid in self.listener_sids or sid in self.dgram_sids:
                # Listening surface socket: readable iff a fabricated
                # connection is parked in its queue (server mode), or a
                # packet waits on a hooked datagram socket.
                return None  # the default queue/buffer check is right
            return None
        ready = bool(state.queue) or state.closed_by_fuzzer
        if ready and self.injector is not None \
                and self.injector.delay_readiness():
            # Readiness lags the data: select/poll/epoll miss a round,
            # exercising the target's re-poll path.
            return False
        return ready

    def on_close(self, pid: int, fd: int) -> None:
        pass  # refcounting happens in the kernel; see on_socket_closed

    def on_socket_closed(self, sid: int) -> None:
        """Last reference to a socket dropped."""
        conn_id = self._sid_to_conn.pop(sid, None)
        if conn_id is not None:
            state = self._conns.get(conn_id)
            if state is not None:
                state.sid = None

    def on_dup(self, pid: int, old_fd: int, new_fd: int) -> None:
        pass  # fd aliases resolve to the same sid; nothing to track

    def on_fork(self, parent_pid: int, child_pid: int) -> None:
        pass  # sids are shared across fork; conn mapping is by sid
