"""Corpus and crash persistence.

Campaigns can save their queue and unique crashes to a directory (one
flat-bytecode file per input, like Nyx's share-folder layout) and
resume later campaigns from it.  Useful for long-running work and for
shipping reproducers.

Layout::

    <dir>/queue/id_000000.nyx      flat bytecode (spec-checked on load)
    <dir>/crashes/<dedup-key>.nyx  the first input triggering each bug
    <dir>/crashes/<dedup-key>.txt  human-readable crash report
    <dir>/stats.json               campaign summary
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Optional

from repro.fuzz.fuzzer import NyxNetFuzzer
from repro.fuzz.input import FuzzInput
from repro.spec.bytecode import SpecError, deserialize, serialize
from repro.spec.nodes import Spec, default_network_spec


def save_campaign(fuzzer: NyxNetFuzzer, directory: str,
                  spec: Optional[Spec] = None) -> int:
    """Persist the corpus, crashes and stats; returns files written."""
    spec = spec or default_network_spec()
    root = pathlib.Path(directory)
    queue_dir = root / "queue"
    crash_dir = root / "crashes"
    queue_dir.mkdir(parents=True, exist_ok=True)
    crash_dir.mkdir(parents=True, exist_ok=True)
    written = 0
    for entry in fuzzer.corpus.entries:
        path = queue_dir / ("id_%06d.nyx" % entry.entry_id)
        try:
            path.write_bytes(serialize(spec, entry.input.ops))
        except SpecError:
            continue  # inputs from foreign specs are skipped
        written += 1
    for key, record in fuzzer.crashes.records.items():
        safe = key.replace(":", "_").replace("/", "_")
        if record.input is not None:
            try:
                (crash_dir / (safe + ".nyx")).write_bytes(
                    serialize(spec, record.input.ops))
                written += 1
            except SpecError:
                pass
        (crash_dir / (safe + ".txt")).write_text(
            "bug:      %s\nkind:     %s\ndetail:   %s\nfound_at: %.3f "
            "(simulated seconds)\ncount:    %d\n"
            % (record.report.bug_id, record.report.kind.value,
               record.report.detail, record.found_at, record.count))
        written += 1
    stats = fuzzer.stats
    (root / "stats.json").write_text(json.dumps({
        "fuzzer": stats.fuzzer_name,
        "target": stats.target_name,
        "execs": stats.execs,
        "suffix_execs": stats.suffix_execs,
        "edges": stats.final_edges,
        "crashes": sorted(fuzzer.crashes.records),
        "sim_seconds": stats.end_time,
        "queue": len(fuzzer.corpus),
    }, indent=2))
    return written + 1


def save_parallel_campaign(campaign, directory: str,
                           spec: Optional[Spec] = None) -> int:
    """Persist a :class:`~repro.fuzz.parallel.ParallelCampaign`.

    The fleet's corpora are merged into one queue directory (dedup by
    serialized bytecode — peers share imported entries, which would
    otherwise be written N times), crashes keep the earliest discovery
    of each bug, and ``stats.json`` holds the aggregate view plus the
    per-worker breakdown.  The layout stays loadable by
    :func:`load_corpus`, so parallel campaigns resume like single ones.
    """
    spec = spec or default_network_spec()
    root = pathlib.Path(directory)
    queue_dir = root / "queue"
    crash_dir = root / "crashes"
    queue_dir.mkdir(parents=True, exist_ok=True)
    crash_dir.mkdir(parents=True, exist_ok=True)
    written = 0
    seen_blobs = set()
    for worker in campaign.workers:
        for entry in worker.fuzzer.corpus.entries:
            try:
                blob = serialize(spec, entry.input.ops)
            except SpecError:
                continue
            if blob in seen_blobs:
                continue
            seen_blobs.add(blob)
            (queue_dir / ("id_%06d.nyx" % len(seen_blobs))).write_bytes(blob)
            written += 1
    first_records = {}
    for worker in campaign.workers:
        for key, record in worker.fuzzer.crashes.records.items():
            kept = first_records.get(key)
            if kept is None or record.found_at < kept.found_at:
                first_records[key] = record
    for key, record in sorted(first_records.items()):
        safe = key.replace(":", "_").replace("/", "_")
        if record.input is not None:
            try:
                (crash_dir / (safe + ".nyx")).write_bytes(
                    serialize(spec, record.input.ops))
                written += 1
            except SpecError:
                pass
        (crash_dir / (safe + ".txt")).write_text(
            "bug:      %s\nkind:     %s\ndetail:   %s\nfound_at: %.3f "
            "(simulated seconds)\ncount:    %d\n"
            % (record.report.bug_id, record.report.kind.value,
               record.report.detail, record.found_at, record.count))
        written += 1
    aggregate = campaign.aggregate()
    payload = aggregate.as_dict()
    payload["footprint"] = campaign.unique_page_footprint()
    (root / "stats.json").write_text(json.dumps(payload, indent=2,
                                                sort_keys=True))
    return written + 1


def load_corpus(directory: str, spec: Optional[Spec] = None,
                limit: Optional[int] = None) -> List[FuzzInput]:
    """Load persisted queue entries as seed inputs."""
    spec = spec or default_network_spec()
    queue_dir = pathlib.Path(directory) / "queue"
    seeds: List[FuzzInput] = []
    if not queue_dir.is_dir():
        return seeds
    for path in sorted(queue_dir.glob("*.nyx")):
        try:
            ops = deserialize(spec, path.read_bytes())
        except (SpecError, ValueError):
            continue  # corrupt or foreign file: skip, never crash
        seeds.append(FuzzInput(ops, origin="persisted"))
        if limit is not None and len(seeds) >= limit:
            break
    return seeds
