"""Corpus and crash persistence.

Campaigns can save their queue and unique crashes to a directory (one
flat-bytecode file per input, like Nyx's share-folder layout) and
resume later campaigns from it.  Useful for long-running work and for
shipping reproducers.

Layout::

    <dir>/queue/id_000000.nyx       flat bytecode (spec-checked on load)
    <dir>/crashes/<dedup-key>.nyx   the first input triggering each bug
    <dir>/crashes/<dedup-key>.fastest.nyx  fastest reproducer (if distinct)
    <dir>/crashes/<dedup-key>.txt   human-readable crash report
    <dir>/stats.json                campaign summary

All files are written atomically (temp file + ``os.replace``) so a
campaign killed mid-save never leaves a half-written corpus behind;
:func:`load_corpus` skips anything unreadable with a warning instead
of refusing to resume.
"""

from __future__ import annotations

import json
import os
import pathlib
import warnings
from typing import List, Optional

from repro.fuzz.fuzzer import NyxNetFuzzer
from repro.fuzz.input import FuzzInput
from repro.spec.bytecode import SpecError, deserialize, serialize
from repro.spec.nodes import Spec, default_network_spec


def _fsync_dir(directory: pathlib.Path) -> None:
    """Flush a directory entry to disk; best-effort on platforms that
    refuse to open directories (the rename is still atomic there)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write_bytes(path: pathlib.Path, data: bytes) -> None:
    """Write-temp-then-rename, durably.

    Readers never observe a partial file (rename is atomic), and the
    data survives power loss, not just process death: the temp file is
    fsync'd before the rename and the parent directory entry after it.
    The temp name carries the writer's pid so two processes persisting
    the same path never clobber each other's in-flight temp file.
    """
    tmp = path.with_name("%s.tmp.%d" % (path.name, os.getpid()))
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    _atomic_write_bytes(path, text.encode("utf-8"))


def _crash_report_text(record) -> str:
    text = ("bug:      %s\nkind:     %s\ndetail:   %s\nfound_at: %.3f "
            "(simulated seconds)\ncount:    %d\n"
            % (record.report.bug_id, record.report.kind.value,
               record.report.detail, record.found_at, record.count))
    if record.fastest_exec_time is not None:
        text += "fastest:  %.6f (simulated seconds)\n" % record.fastest_exec_time
    return text


def _write_crash_record(crash_dir: pathlib.Path, key: str, record,
                        spec: Spec) -> int:
    """Write one unique bug's reproducers and report; returns files."""
    safe = key.replace(":", "_").replace("/", "_")
    written = 0
    first_blob = None
    if record.input is not None:
        try:
            first_blob = serialize(spec, record.input.ops)
            _atomic_write_bytes(crash_dir / (safe + ".nyx"), first_blob)
            written += 1
        except SpecError:
            pass
    if record.fastest_input is not None:
        try:
            fastest_blob = serialize(spec, record.fastest_input.ops)
            if fastest_blob != first_blob:
                _atomic_write_bytes(crash_dir / (safe + ".fastest.nyx"),
                                    fastest_blob)
                written += 1
        except SpecError:
            pass
    _atomic_write_text(crash_dir / (safe + ".txt"),
                       _crash_report_text(record))
    return written + 1


def save_campaign(fuzzer: NyxNetFuzzer, directory: str,
                  spec: Optional[Spec] = None) -> int:
    """Persist the corpus, crashes and stats; returns files written."""
    spec = spec or default_network_spec()
    root = pathlib.Path(directory)
    queue_dir = root / "queue"
    crash_dir = root / "crashes"
    queue_dir.mkdir(parents=True, exist_ok=True)
    crash_dir.mkdir(parents=True, exist_ok=True)
    written = 0
    for entry in fuzzer.corpus.entries:
        path = queue_dir / ("id_%06d.nyx" % entry.entry_id)
        try:
            _atomic_write_bytes(path, serialize(spec, entry.input.ops))
        except SpecError:
            continue  # inputs from foreign specs are skipped
        written += 1
    for key, record in fuzzer.crashes.records.items():
        written += _write_crash_record(crash_dir, key, record, spec)
    stats = fuzzer.stats
    _atomic_write_text(root / "stats.json", json.dumps({
        "fuzzer": stats.fuzzer_name,
        "target": stats.target_name,
        "execs": stats.execs,
        "suffix_execs": stats.suffix_execs,
        "edges": stats.final_edges,
        "crashes": sorted(fuzzer.crashes.records),
        "sim_seconds": stats.end_time,
        "queue": len(fuzzer.corpus),
        "timeouts": stats.timeouts,
        "faults_injected": stats.faults_injected,
        "snapshot_rebuilds": stats.snapshot_rebuilds,
        "degraded_root_only": stats.degraded_root_only,
        "trim_ops_static": stats.trim_ops_static,
        "trim_ops_exec": stats.trim_ops_exec,
    }, indent=2))
    return written + 1


def save_parallel_campaign(campaign, directory: str,
                           spec: Optional[Spec] = None) -> int:
    """Persist a :class:`~repro.fuzz.parallel.ParallelCampaign`.

    The fleet's corpora are merged into one queue directory (dedup by
    serialized bytecode — peers share imported entries, which would
    otherwise be written N times), crashes keep the earliest discovery
    of each bug, and ``stats.json`` holds the aggregate view plus the
    per-worker breakdown.  The layout stays loadable by
    :func:`load_corpus`, so parallel campaigns resume like single ones.
    """
    spec = spec or default_network_spec()
    root = pathlib.Path(directory)
    queue_dir = root / "queue"
    crash_dir = root / "crashes"
    queue_dir.mkdir(parents=True, exist_ok=True)
    crash_dir.mkdir(parents=True, exist_ok=True)
    written = 0
    seen_blobs = set()
    for worker in campaign.workers:
        for entry in worker.fuzzer.corpus.entries:
            try:
                blob = serialize(spec, entry.input.ops)
            except SpecError:
                continue
            if blob in seen_blobs:
                continue
            # Number before recording the blob so the merged queue
            # starts at id_000000 like save_campaign's.
            index = len(seen_blobs)
            seen_blobs.add(blob)
            _atomic_write_bytes(queue_dir / ("id_%06d.nyx" % index), blob)
            written += 1
    first_records = {}
    for worker in campaign.workers:
        for key, record in worker.fuzzer.crashes.records.items():
            kept = first_records.get(key)
            if kept is None or record.found_at < kept.found_at:
                first_records[key] = record
    for key, record in sorted(first_records.items()):
        written += _write_crash_record(crash_dir, key, record, spec)
    aggregate = campaign.aggregate()
    payload = aggregate.as_dict()
    payload["footprint"] = campaign.unique_page_footprint()
    _atomic_write_text(root / "stats.json",
                       json.dumps(payload, indent=2, sort_keys=True))
    return written + 1


def load_corpus(directory: str, spec: Optional[Spec] = None,
                limit: Optional[int] = None,
                repair: bool = True) -> List[FuzzInput]:
    """Load persisted queue entries as seed inputs.

    Entries that decode but fail affine validation (a foreign tool's
    corpus, damage introduced before the atomic-write era) are run
    through the static analyzer's fix-its — ill-typed ops dropped,
    dead ops eliminated, snapshot markers normalized — and loaded with
    origin ``"repaired"`` instead of being refused (``repair=False``
    restores the old skip behaviour).  Structurally corrupt or
    unreadable files are still skipped with a warning: a damaged
    corpus directory degrades to a smaller seed set, never a refused
    resume.
    """
    spec = spec or default_network_spec()
    queue_dir = pathlib.Path(directory) / "queue"
    seeds: List[FuzzInput] = []
    if not queue_dir.is_dir():
        return seeds
    for path in sorted(queue_dir.glob("*.nyx")):
        try:
            blob = path.read_bytes()
        except OSError as err:
            warnings.warn("skipping unreadable corpus entry %s in %s: %s"
                          % (path.name, directory, err))
            continue
        try:
            ops = deserialize(spec, blob)
            seeds.append(FuzzInput(ops, origin="persisted"))
        except (SpecError, ValueError) as err:
            repaired = None
            if repair:
                from repro.analysis.fixes import repair_blob
                repaired = repair_blob(spec, blob)
            if repaired is None:
                warnings.warn("skipping unreadable corpus entry %s in %s: %s"
                              % (path.name, directory, err))
                continue  # corrupt or foreign file: skip, never crash
            warnings.warn("repaired damaged corpus entry %s in %s (%s)"
                          % (path.name, directory, err))
            seeds.append(FuzzInput(repaired, origin="repaired"))
        if limit is not None and len(seeds) >= limit:
            break
    return seeds
