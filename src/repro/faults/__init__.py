"""Fault injection: deterministic network and host fault plans.

Nyx-Net's reliability story is that a clean snapshot restore makes any
single execution disposable — a hung, killed or misbehaving target can
never poison the campaign.  This package supplies the other half of
that story for the reproduction: *provoking* the failure modes on
purpose (short reads, ``EAGAIN`` bursts, mid-stream resets, partial
sends, stalls, snapshot corruption, slow resets) so every recovery
path runs constantly instead of only in production.

All faults derive from a :class:`FaultPlan` — a pure value object
identified by a plan ID string — so any observed failure replays
bit-identically from the ID alone.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, PlanError

__all__ = ["FaultInjector", "FaultKind", "FaultPlan", "PlanError"]
