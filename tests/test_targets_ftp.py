"""Protocol tests for the FTP-family targets (lightftp, bftpd,
pure-ftpd, proftpd)."""

import pytest

from repro.guestos.errors import CrashKind
from repro.targets.bftpd import PROFILE as BFTPD
from repro.targets.lightftp import PROFILE as LIGHTFTP
from repro.targets.proftpd import PROFILE as PROFTPD
from repro.targets.pure_ftpd import PROFILE as PURE_FTPD

from tests.target_harness import TargetHarness


class TestLightFtp:
    @pytest.fixture()
    def ftp(self):
        return TargetHarness(LIGHTFTP)

    def test_greeting_and_login(self, ftp):
        responses = ftp.send(b"USER anonymous\r\n", b"PASS guest\r\n")
        assert responses[0].startswith(b"220")
        assert b"331" in b"".join(responses)
        assert b"230" in b"".join(responses)

    def test_wrong_password_rejected(self, ftp):
        responses = ftp.send(b"USER root\r\n", b"PASS wrong\r\n")
        assert b"530" in b"".join(responses)

    def test_commands_require_auth(self, ftp):
        responses = ftp.send(b"USER u\r\n", b"PWD\r\n")
        assert b"530" in b"".join(responses)

    def test_full_session_with_transfer(self, ftp):
        responses = ftp.send(
            b"USER anonymous\r\n", b"PASS x\r\n", b"TYPE I\r\n",
            b"PASV\r\n", b"SIZE readme.txt\r\n", b"RETR readme.txt\r\n")
        joined = b"".join(responses)
        assert b"227" in joined      # PASV
        assert b"213" in joined      # SIZE
        assert b"226" in joined      # transfer complete

    def test_retr_requires_pasv(self, ftp):
        responses = ftp.send(b"USER anonymous\r\n", b"PASS x\r\n",
                             b"RETR readme.txt\r\n")
        assert b"425" in b"".join(responses)

    def test_stor_and_dele_roundtrip(self, ftp):
        ftp.send(b"USER anonymous\r\n", b"PASS x\r\n", b"PASV\r\n",
                 b"STOR new.bin\r\n", b"DELE new.bin\r\n")
        assert not ftp.kernel.fs.exists("/srv/ftp/new.bin")

    def test_unknown_command(self, ftp):
        responses = ftp.send(b"FROB x\r\n")
        assert b"502" in b"".join(responses)

    def test_no_planted_crash(self, ftp):
        ftp.send(b"USER a\r\n", b"PASS x\r\n", b"\xff" * 200 + b"\r\n")
        assert ftp.crash() is None


class TestBftpd:
    @pytest.fixture()
    def ftp(self):
        return TargetHarness(BFTPD)

    def test_forks_worker_per_connection(self, ftp):
        ftp.send(b"USER ftp\r\n")
        assert len(ftp.kernel.processes) == 2
        worker = max(ftp.kernel.processes.values(), key=lambda p: p.pid)
        assert worker.program.name == "bftpd-worker"

    def test_worker_serves_session(self, ftp):
        responses = ftp.send(b"USER ftp\r\n", b"PASS ftp\r\n", b"PWD\r\n")
        joined = b"".join(responses)
        assert b"230" in joined and b"257" in joined

    def test_snapshot_reaps_workers(self, ftp):
        ftp.send(b"USER ftp\r\n")
        assert len(ftp.kernel.processes) == 2
        ftp.reset()
        assert len(ftp.kernel.processes) == 1

    def test_site_subcommands(self, ftp):
        responses = ftp.send(b"USER u\r\n", b"PASS p\r\n",
                             b"SITE CHMOD 644 f\r\n", b"SITE HELP\r\n",
                             b"SITE BOGUS\r\n")
        joined = b"".join(responses)
        assert b"200 CHMOD" in joined
        assert b"214" in joined
        assert b"500 Unknown SITE" in joined

    def test_quit_exits_worker(self, ftp):
        ftp.send(b"USER u\r\n", b"QUIT\r\n")
        workers = [p for p in ftp.kernel.processes.values()
                   if p.program.name == "bftpd-worker"]
        assert workers and not workers[0].alive


class TestPureFtpd:
    def test_session_spool_accumulates(self):
        ftp = TargetHarness(PURE_FTPD)
        ftp.send(b"USER a\r\n", b"PASS b\r\n", b"APPE f\r\n")
        assert ftp.program.global_spool > 0

    def test_snapshot_resets_spool(self):
        ftp = TargetHarness(PURE_FTPD)
        ftp.send(b"USER a\r\n", b"PASS b\r\n", b"APPE f\r\n")
        ftp.reset()
        server = next(p for p in ftp.kernel.processes.values())
        assert server.program.global_spool == 0

    def test_internal_oom_without_resets(self):
        """The Table 1 (*) crash: only reachable by accumulating
        sessions without any state reset (AFLNET-no-state)."""
        ftp = TargetHarness(PURE_FTPD)
        report = None
        for _ in range(400):
            ftp.send(b"USER a\r\n", b"PASS b\r\n",
                     b"APPE spoolfile-%d\r\n" % id(ftp))
            report = ftp.crash()
            if report:
                break
        assert report is not None
        assert report.kind is CrashKind.OOM
        assert "pure-ftpd-internal-oom" in report.dedup_key

    def test_oom_unreachable_with_per_test_reset(self):
        ftp = TargetHarness(PURE_FTPD)
        for _ in range(60):
            report = ftp.run_session(
                [b"USER a\r\n", b"PASS b\r\n", b"APPE f\r\n"])
            assert report is None


class TestProftpd:
    @pytest.fixture()
    def ftp(self):
        return TargetHarness(PROFTPD)

    def login(self, ftp):
        return [b"USER ftp\r\n", b"PASS ftp\r\n"]

    def test_feat_lists_mode_z(self, ftp):
        responses = ftp.send(*self.login(ftp), b"FEAT\r\n")
        assert b"MODE Z" in b"".join(responses)

    def test_mlst_facts_roundtrip(self, ftp):
        responses = ftp.send(*self.login(ftp),
                             b"OPTS MLST type;size;\r\n", b"MLST f\r\n")
        assert b"250" in b"".join(responses)

    def test_deflate_uaf_needs_all_four_steps(self, ftp):
        # Without OPTS Z there is no engine to free: no crash.
        assert ftp.run_session(self.login(ftp) + [
            b"MODE Z\r\n", b"EPSV\r\n", b"ABOR\r\n",
            b"RETR index.html\r\n"]) is None
        # Without ABOR the engine is never freed: no crash.
        assert ftp.run_session(self.login(ftp) + [
            b"MODE Z\r\n", b"OPTS Z level=9\r\n", b"EPSV\r\n",
            b"RETR index.html\r\n"]) is None
        # The full sequence crashes (the Nyx-only Table 1 entry).
        report = ftp.run_session(self.login(ftp) + [
            b"MODE Z\r\n", b"OPTS Z level=9\r\n", b"EPSV\r\n",
            b"ABOR\r\n", b"RETR index.html\r\n"])
        assert report is not None
        assert report.kind is CrashKind.ASAN_USE_AFTER_FREE

    def test_uaf_state_reset_by_snapshot(self, ftp):
        # Arm the dangling engine, then reset: the next RETR is safe.
        ftp.send(*self.login(ftp), b"MODE Z\r\n", b"OPTS Z level=9\r\n",
                 b"EPSV\r\n", b"ABOR\r\n")
        ftp.reset()
        report = ftp.run_session(self.login(ftp) + [
            b"EPSV\r\n", b"RETR index.html\r\n"])
        assert report is None
