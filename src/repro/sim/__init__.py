"""Simulated time and cost model for the Nyx-Net reproduction.

The paper's evaluation runs real 24-hour campaigns on Xeon servers; we
replace wall-clock time with a deterministic simulated clock whose costs
are charged according to :mod:`repro.sim.costs`.  All throughput numbers
(Table 3), coverage-over-time curves (Figures 5/7) and time-to-solve
results (Table 4) are expressed in this simulated time.
"""

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.rng import DeterministicRandom

__all__ = ["SimClock", "CostModel", "DeterministicRandom"]
