"""Dependency-free ASCII plotting for the reproduced figures.

The paper's figures are matplotlib plots; offline we render compact
ASCII charts into ``results/`` so a terminal user can eyeball the
curve shapes (the CSVs remain the plot-ready ground truth).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

_GLYPHS = "o*x+#@%&"


def _log_or_linear(values: List[float], log: bool) -> List[float]:
    if not log:
        return values
    return [math.log10(v) if v > 0 else 0.0 for v in values]


def ascii_chart(series: Dict[str, Series], width: int = 72, height: int = 16,
                title: str = "", x_label: str = "", y_label: str = "",
                log_x: bool = False, log_y: bool = False) -> str:
    """Render named (x, y) series as an ASCII scatter/step chart."""
    points = [(x, y) for s in series.values() for x, y in s]
    if not points:
        return title + "\n(no data)"
    xs = _log_or_linear([p[0] for p in points], log_x)
    ys = _log_or_linear([p[1] for p in points], log_y)
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, data) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        legend.append("%s %s" % (glyph, name))
        last_col_row = None
        for x, y in data:
            fx = _log_or_linear([x], log_x)[0]
            fy = _log_or_linear([y], log_y)[0]
            col = int((fx - x_min) / x_span * (width - 1))
            row = height - 1 - int((fy - y_min) / y_span * (height - 1))
            grid[row][col] = glyph
            # Step-connect horizontally from the previous point.
            if last_col_row is not None:
                pcol, prow = last_col_row
                for c in range(min(pcol, col) + 1, max(pcol, col)):
                    if grid[prow][c] == " ":
                        grid[prow][c] = "."
            last_col_row = (col, row)

    lines = []
    if title:
        lines.append(title)
    y_hi = "%.3g" % (10 ** y_max if log_y else y_max)
    y_lo = "%.3g" % (10 ** y_min if log_y else y_min)
    label_width = max(len(y_hi), len(y_lo), len(y_label))
    for i, row in enumerate(grid):
        prefix = y_hi if i == 0 else (y_lo if i == height - 1 else
                                      (y_label if i == height // 2 else ""))
        lines.append(prefix.rjust(label_width) + " |" + "".join(row))
    x_hi = "%.3g" % (10 ** x_max if log_x else x_max)
    x_lo = "%.3g" % (10 ** x_min if log_x else x_min)
    lines.append(" " * label_width + " +" + "-" * width)
    axis = x_lo + x_label.center(width - len(x_lo) - len(x_hi)) + x_hi
    lines.append(" " * label_width + "  " + axis)
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)


def coverage_chart(runs: Dict[str, Series], target: str,
                   budget: float) -> str:
    """Figure 5-style chart: coverage over (log) time for one target."""
    # Extend every series to the full budget (step function).
    extended = {}
    for name, data in runs.items():
        data = list(data)
        if data and data[-1][0] < budget:
            data.append((budget, data[-1][1]))
        extended[name] = [(max(t, 1e-3), e) for t, e in data]
    return ascii_chart(extended, title="coverage over time — %s" % target,
                       x_label="sim seconds (log)", y_label="edges",
                       log_x=True)


def fig6_chart(rows: Sequence[Tuple[str, int, int, str, float, float]],
               op: str, vm_mb: int, use_host_time: bool = False) -> str:
    """Figure 6-style chart from the snapshot-overhead CSV rows."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for impl, mb, n, row_op, sim, host in rows:
        if row_op != op or mb != vm_mb:
            continue
        value = host if use_host_time else sim
        series.setdefault(impl, []).append((float(n), value))
    for data in series.values():
        data.sort()
    unit = "host s" if use_host_time else "sim s"
    return ascii_chart(series,
                       title="snapshot %s, %d MiB VM (%s)" % (op, vm_mb, unit),
                       x_label="dirty pages (log)", log_x=True, log_y=True)
