"""dnsmasq: a DNS forwarder/server over UDP.

A genuine (if compact) DNS wire-format parser: header, question
section with label decompression, a handful of record types, plus a
tiny DHCP-ish lease table to give the target state.  The planted bug
mirrors the kind of crash every fuzzer found in Table 1: a
NULL-dereference reachable from a single malformed datagram
(compression pointer loop exhausting the resolver, then dereferencing
the failed result).
"""

from __future__ import annotations

import struct

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashKind
from repro.guestos.sockets import SockType
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 5353

QTYPE_A = 1
QTYPE_NS = 2
QTYPE_CNAME = 5
QTYPE_SOA = 6
QTYPE_PTR = 12
QTYPE_MX = 15
QTYPE_TXT = 16
QTYPE_AAAA = 28
QTYPE_ANY = 255


class DnsmasqServer(MessageServer):
    name = "dnsmasq"
    port = PORT
    sock_type = SockType.DGRAM
    startup_cost = 0.02

    def __init__(self) -> None:
        super().__init__()
        self.cache = {"router.lan": "192.168.0.1", "nas.lan": "192.168.0.2"}
        self.queries_served = 0

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        if len(data) < 12:
            return  # short datagrams are silently dropped
        (txid, flags, qdcount, ancount,
         nscount, arcount) = struct.unpack_from(">HHHHHH", data, 0)
        if flags & 0x8000:
            return  # a response, not a query
        if qdcount == 0 or qdcount > 8:
            self.reply(api, conn, self._error(txid, 1))  # FORMERR
            return
        offset = 12
        questions = []
        for _ in range(qdcount):
            name, offset, poisoned = self._parse_name(data, offset)
            if offset + 4 > len(data):
                self.reply(api, conn, self._error(txid, 1))
                return
            qtype, qclass = struct.unpack_from(">HH", data, offset)
            offset += 4
            if poisoned and (qtype == QTYPE_ANY or qdcount >= 2):
                # The bug: a malformed/looping name makes _parse_name
                # bail with a NULL name; the ANY handler and the
                # multi-question loop both dereference it without a
                # check.  Every fuzzer in Table 1 found this one.
                self.crash(CrashKind.NULL_DEREF, "dnsmasq-ptrloop-null",
                           "poisoned name dereferenced (qtype=%d)" % qtype)
            questions.append((name, qtype, qclass))
        self.queries_served += 1
        self.reply(api, conn, self._answer(txid, questions))

    # -- wire format ----------------------------------------------------------

    def _parse_name(self, data: bytes, offset: int):
        """Decode a possibly-compressed name.

        Returns (name, next_offset, poisoned) where poisoned means the
        decoder hit its loop guard and gave up.
        """
        labels = []
        jumps = 0
        pos = offset
        next_offset = None
        while pos < len(data):
            length = data[pos]
            if length == 0:
                pos += 1
                break
            if length & 0xC0 == 0xC0:
                if pos + 1 >= len(data):
                    return "", pos + 1, True
                target = ((length & 0x3F) << 8) | data[pos + 1]
                if next_offset is None:
                    next_offset = pos + 2
                jumps += 1
                if jumps > 8 or target >= len(data):
                    return "", next_offset, True  # loop guard tripped
                pos = target
                continue
            if length > 63 or pos + 1 + length > len(data):
                return "", (next_offset or pos + 1), True
            labels.append(data[pos + 1:pos + 1 + length])
            pos += 1 + length
            if len(labels) > 32:
                return "", (next_offset or pos), True
        name = b".".join(labels).decode("latin1")
        return name, (next_offset if next_offset is not None else pos), False

    def _answer(self, txid: int, questions) -> bytes:
        answers = b""
        count = 0
        nxdomain = False
        for name, qtype, _qclass in questions:
            if qtype == QTYPE_A:
                if name in self.cache:
                    ip = bytes(int(x) for x in self.cache[name].split("."))
                    answers += self._rr(name, QTYPE_A, ip)
                    count += 1
                else:
                    nxdomain = True
            elif qtype == QTYPE_TXT:
                answers += self._rr(name, QTYPE_TXT, b"\x09dnsmasq ok")
                count += 1
            elif qtype == QTYPE_PTR:
                answers += self._rr(name, QTYPE_PTR, b"\x05local\x00")
                count += 1
            elif qtype in (QTYPE_AAAA, QTYPE_MX, QTYPE_NS, QTYPE_SOA,
                           QTYPE_CNAME):
                pass  # NOERROR, no data
        rcode = 3 if (nxdomain and not count) else 0
        header = struct.pack(">HHHHHH", txid, 0x8180 | rcode,
                             len(questions), count, 0, 0)
        question_bytes = b""
        for name, qtype, qclass in questions:
            question_bytes += self._encode_name(name)
            question_bytes += struct.pack(">HH", qtype, qclass)
        return header + question_bytes + answers

    def _rr(self, name: str, rtype: int, rdata: bytes) -> bytes:
        return (self._encode_name(name)
                + struct.pack(">HHIH", rtype, 1, 60, len(rdata)) + rdata)

    def _encode_name(self, name: str) -> bytes:
        out = b""
        for label in name.split("."):
            encoded = label.encode("latin1")[:63]
            if encoded:
                out += bytes([len(encoded)]) + encoded
        return out + b"\x00"

    def _error(self, txid: int, rcode: int) -> bytes:
        return struct.pack(">HHHHHH", txid, 0x8000 | rcode, 0, 0, 0, 0)


def _query(txid: int, name: bytes, qtype: int) -> bytes:
    out = struct.pack(">HHHHHH", txid, 0x0100, 1, 0, 0, 0)
    for label in name.split(b"."):
        out += bytes([len(label)]) + label
    out += b"\x00" + struct.pack(">HH", qtype, 1)
    return out


DICTIONARY = [b"\xc0\x0c", b"\x00\x01\x00\x01", b"router", b"lan",
              struct.pack(">H", QTYPE_ANY), struct.pack(">H", QTYPE_TXT),
              b"\x00\x00\x29"]  # EDNS OPT


def make_seeds():
    spec = default_network_spec()
    seeds = []
    for packets in (
        [_query(0x1234, b"router.lan", QTYPE_A)],
        [_query(0x1111, b"nas.lan", QTYPE_A),
         _query(0x1112, b"nas.lan", QTYPE_TXT)],
        [_query(0x2222, b"host.example.com", QTYPE_AAAA),
         _query(0x2223, b"4.3.2.1.in-addr.arpa", QTYPE_PTR),
         _query(0x2224, b"example.com", QTYPE_MX)],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for packet in packets:
            builder.packet(con, packet)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="dnsmasq",
    protocol="dns",
    make_program=DnsmasqServer,
    surface_factory=lambda: AttackSurface.udp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.02,
    libpreeny_compatible=True,
    planted_bugs=("null-deref:dnsmasq-ptrloop-null",),
    notes="Shallow one-datagram NULL deref; found by every fuzzer in Table 1.",
)
