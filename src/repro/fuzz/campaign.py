"""Campaign assembly: target profile -> ready-to-run fuzzer.

Reproduces the five usage steps of §5.4: take the target (program),
pick a spec (the default network spec via the profile), load seeds,
bundle (spawn into the guest, install the agent/interceptor), run.
The root snapshot is placed automatically when the freshly started
target goes quiescent waiting for its first input (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.coverage.backends import make_tracer
from repro.emu.interceptor import Interceptor
from repro.fuzz.executor import NyxExecutor
from repro.fuzz.fuzzer import FuzzerConfig, NyxNetFuzzer
from repro.guestos.kernel import Kernel
from repro.targets.base import TargetProfile
from repro.vm.machine import Machine


@dataclass
class CampaignHandles:
    """All the moving parts of one assembled campaign."""

    machine: Machine
    kernel: Kernel
    interceptor: Interceptor
    executor: NyxExecutor
    fuzzer: NyxNetFuzzer
    profile: TargetProfile


def boot_target(profile: TargetProfile,
                asan: bool = True,
                memory_bytes: int = 64 * 1024 * 1024,
                heap_slack: Optional[int] = None):
    """Boot the target in a fresh VM up to the root snapshot.

    Returns ``(machine, kernel, interceptor)`` with the root snapshot
    already captured — the golden image a parallel campaign's workers
    adopt, or the starting point of a single-instance campaign.
    """
    machine = Machine(memory_bytes=memory_bytes)
    kernel = Kernel(machine)
    interceptor = Interceptor(kernel, profile.surface())

    program = profile.make_program()
    if hasattr(program, "asan"):
        program.asan = asan
    if heap_slack is not None and hasattr(program, "heap_slack"):
        program.heap_slack = heap_slack
    kernel.spawn(program)

    # Boot until the target blocks waiting for input, then take the
    # root snapshot — the §3.3 automatic placement.
    kernel.run(max_rounds=256)
    kernel.flush_to_memory(full=True)
    machine.capture_root()
    return machine, kernel, interceptor


def build_campaign(profile: TargetProfile,
                   policy: str = "balanced",
                   seed: int = 0,
                   time_budget: float = 60.0,
                   max_execs: Optional[int] = None,
                   asan: bool = True,
                   memory_bytes: int = 64 * 1024 * 1024,
                   iterations_per_snapshot: int = 50,
                   heap_slack: Optional[int] = None,
                   fault_rate: float = 0.0,
                   fault_plan: Optional[str] = None,
                   exec_timeout: Optional[float] = None,
                   sanitize_every: Optional[int] = None,
                   coverage_backend: str = "auto",
                   max_chain_depth: int = 1,
                   seeds=None) -> CampaignHandles:
    """Boot the target in a fresh VM and wire up a Nyx-Net fuzzer.

    ``asan=False`` models fuzzing the plain binary (Table 1's dcmtk
    footnote); ``heap_slack`` then controls how much silent corruption
    the initial heap layout absorbs.  ``fault_rate`` (or an explicit
    ``fault_plan`` id) arms the fault injector on the network and
    snapshot paths; ``exec_timeout`` arms the per-exec watchdog;
    ``sanitize_every`` arms the NYX05x reset sanitizer every N execs.
    ``coverage_backend`` picks the tracer backend (``auto`` resolves to
    ``sys.monitoring`` on 3.12+, ``sys.settrace`` otherwise); backends
    are byte-equivalent, so campaign results do not depend on it.
    ``max_chain_depth`` > 1 enables overlay snapshot chains (see
    docs/snapshots.md); 1 keeps the paper's single incremental
    snapshot and is byte-identical to a pre-chain build.
    """
    machine, kernel, interceptor = boot_target(
        profile, asan=asan, memory_bytes=memory_bytes,
        heap_slack=heap_slack)

    tracer = make_tracer(coverage_backend)
    executor = NyxExecutor(machine, kernel, interceptor, tracer,
                           exec_timeout=exec_timeout,
                           max_chain_depth=max_chain_depth)
    if fault_plan is not None or fault_rate != 0.0:
        # A non-zero (even negative) rate reaches FaultPlan validation,
        # which rejects anything outside [0, 1] with a PlanError.
        from repro.faults import FaultInjector, FaultPlan
        if fault_plan is not None:
            plan = FaultPlan.from_id(fault_plan)
        else:
            plan = FaultPlan.for_campaign(seed, fault_rate)
        injector = FaultInjector(plan)
        interceptor.injector = injector
        machine.snapshots.injector = injector
    config = FuzzerConfig(policy=policy, seed=seed,
                          time_budget=time_budget, max_execs=max_execs,
                          iterations_per_snapshot=iterations_per_snapshot,
                          dictionary=tuple(profile.dictionary),
                          sanitize_every=sanitize_every,
                          max_chain_depth=max_chain_depth)
    fuzzer = NyxNetFuzzer(executor,
                          seeds if seeds is not None else profile.seeds(),
                          config)
    fuzzer.stats.target_name = profile.name
    return CampaignHandles(machine, kernel, interceptor, executor,
                           fuzzer, profile)


def build_parallel_campaign(profile: TargetProfile,
                            workers: int = 2,
                            policy: str = "balanced",
                            seed: int = 0,
                            time_budget: float = 60.0,
                            max_total_execs: Optional[int] = None,
                            asan: bool = True,
                            memory_bytes: int = 64 * 1024 * 1024,
                            iterations_per_snapshot: int = 50,
                            sync_interval: float = 5.0,
                            image_pages: int = 0,
                            fault_rate: float = 0.0,
                            exec_timeout: Optional[float] = None,
                            coverage_backend: str = "auto",
                            seeds=None):
    """Boot one golden VM and assemble an N-worker parallel campaign.

    Workers adopt the golden root snapshot instead of re-booting (§5.3
    shared root snapshots) and sync corpora AFL-style every
    ``sync_interval`` simulated seconds.
    """
    from repro.coverage.backends import resolve_backend_name
    from repro.fuzz.parallel import ParallelCampaign, ParallelConfig
    # Fail fast on a bad/unavailable backend, before booting the
    # golden VM (workers build their tracers lazily).
    resolve_backend_name(coverage_backend)
    config = ParallelConfig(workers=workers, policy=policy, seed=seed,
                            time_budget=time_budget,
                            max_total_execs=max_total_execs,
                            iterations_per_snapshot=iterations_per_snapshot,
                            sync_interval=sync_interval,
                            memory_bytes=memory_bytes, asan=asan,
                            image_pages=image_pages,
                            fault_rate=fault_rate,
                            exec_timeout=exec_timeout,
                            coverage_backend=coverage_backend)
    return ParallelCampaign(profile, config, seeds=seeds)


# ----------------------------------------------------------------------
# durable-campaign resume (see repro.fuzz.journal)
# ----------------------------------------------------------------------

def build_campaign_from_manifest(profile: TargetProfile,
                                 manifest: dict) -> CampaignHandles:
    """Rebuild a single-instance campaign exactly as a durable
    campaign's ``manifest.json`` records it.

    Every knob that shapes the campaign's deterministic trajectory
    comes from the manifest, so the rebuilt campaign is bit-identical
    to the one that wrote it — the property checkpoint restore relies
    on.
    """
    return build_campaign(
        profile,
        policy=manifest["policy"],
        seed=manifest["seed"],
        time_budget=manifest["time_budget"],
        max_execs=manifest.get("max_execs"),
        asan=manifest.get("asan", True),
        iterations_per_snapshot=manifest.get("iterations_per_snapshot", 50),
        fault_rate=manifest.get("fault_rate", 0.0),
        fault_plan=manifest.get("fault_plan"),
        exec_timeout=manifest.get("exec_timeout"),
        sanitize_every=manifest.get("sanitize_every"),
        coverage_backend=manifest.get("coverage_backend", "auto"),
        max_chain_depth=manifest.get("max_chain_depth", 1))


def build_parallel_campaign_from_manifest(profile: TargetProfile,
                                          manifest: dict):
    """Parallel counterpart of :func:`build_campaign_from_manifest`."""
    return build_parallel_campaign(
        profile,
        workers=manifest.get("workers", 2),
        policy=manifest["policy"],
        seed=manifest["seed"],
        time_budget=manifest["time_budget"],
        max_total_execs=manifest.get("max_execs"),
        asan=manifest.get("asan", True),
        iterations_per_snapshot=manifest.get("iterations_per_snapshot", 50),
        sync_interval=manifest.get("sync_interval", 5.0),
        fault_rate=manifest.get("fault_rate", 0.0),
        exec_timeout=manifest.get("exec_timeout"),
        coverage_backend=manifest.get("coverage_backend", "auto"))
