"""lighttpd: HTTP server with the §5.5 case-study bug.

"We also used Nyx-Net on Lighttpd's development branch and found a
memory corruption issue where a negative amount of memory could be
allocated under specific circumstances."  We model that as an integer
underflow in chunked-request buffer sizing: a ``Content-Length``
interacting with a malformed ``Range`` suffix yields a negative
allocation size.
"""

from __future__ import annotations

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashKind
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 8080

PAGES = {
    b"/": b"<html><body>lighttpd repro</body></html>",
    b"/index.html": b"<html><body>index</body></html>",
    b"/about": b"<html><body>about</body></html>",
}


class LighttpdServer(MessageServer):
    name = "lighttpd"
    port = PORT
    startup_cost = 0.03

    def __init__(self) -> None:
        super().__init__()
        self.requests_served = 0

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        conn.buffer += data
        while True:
            idx = conn.buffer.find(b"\r\n\r\n")
            if idx < 0:
                return
            head = conn.buffer[:idx]
            rest = conn.buffer[idx + 4:]
            headers = self._headers(head)
            content_length = self._int_header(headers, b"CONTENT-LENGTH")
            body_len = max(content_length or 0, 0)
            if len(rest) < body_len:
                return  # wait for the body
            body, conn.buffer = rest[:body_len], rest[body_len:]
            self._request(api, conn, head, headers, body)

    def _headers(self, head: bytes) -> dict:
        headers = {}
        for line in head.split(b"\r\n")[1:]:
            key, sep, value = line.partition(b":")
            if sep:
                headers[key.strip().upper()] = value.strip()
        return headers

    def _int_header(self, headers: dict, name: bytes):
        raw = headers.get(name)
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            return None

    def _request(self, api, conn: ConnCtx, head: bytes, headers: dict,
                 body: bytes) -> None:
        self.requests_served += 1
        request_line = head.split(b"\r\n", 1)[0]
        parts = request_line.split()
        if len(parts) != 3:
            self._respond(api, conn, 400, b"bad request line")
            return
        method, url, version = parts
        if not version.startswith(b"HTTP/1."):
            self._respond(api, conn, 505, b"version not supported")
            return
        if method == b"GET" or method == b"HEAD":
            self._get(api, conn, url, headers, head=(method == b"HEAD"))
        elif method == b"POST" or method == b"PUT":
            self._post(api, conn, url, headers, body)
        elif method == b"OPTIONS":
            self._respond(api, conn, 200, b"", extra=b"Allow: GET, POST\r\n")
        else:
            self._respond(api, conn, 501, b"method not implemented")

    def _get(self, api, conn: ConnCtx, url: bytes, headers: dict,
             head: bool) -> None:
        page = PAGES.get(url.split(b"?")[0])
        if page is None:
            self._respond(api, conn, 404, b"not found")
            return
        range_header = headers.get(b"RANGE")
        if range_header is not None:
            self._ranged(api, conn, page, range_header, headers)
            return
        self._respond(api, conn, 200, b"" if head else page)

    def _ranged(self, api, conn: ConnCtx, page: bytes,
                range_header: bytes, headers: dict) -> None:
        if not range_header.startswith(b"bytes="):
            self._respond(api, conn, 416, b"bad range unit")
            return
        spec = range_header[6:]
        start_s, sep, end_s = spec.partition(b"-")
        try:
            if start_s == b"":
                # Suffix range: last N bytes.  The case-study bug: the
                # buffer size is computed as len(page) - suffix without
                # checking suffix <= len(page); combined with a
                # Content-Length that skips the sanity clamp, the
                # allocation size goes negative.
                suffix = int(end_s)
                alloc = len(page) - suffix
                if alloc < 0 and headers.get(b"CONTENT-LENGTH") is not None:
                    self.crash(CrashKind.INTEGER_UNDERFLOW,
                               "lighttpd-range-underflow",
                               "suffix range %d > body %d" % (suffix, len(page)))
                start = max(alloc, 0)
                end = len(page) - 1
            else:
                start = int(start_s)
                end = int(end_s) if end_s else len(page) - 1
        except ValueError:
            self._respond(api, conn, 416, b"unparsable range")
            return
        if start > end or start >= len(page):
            self._respond(api, conn, 416, b"range not satisfiable")
            return
        chunk = page[start:end + 1]
        self._respond(api, conn, 206, chunk,
                      extra=b"Content-Range: bytes %d-%d/%d\r\n"
                      % (start, end, len(page)))

    def _post(self, api, conn: ConnCtx, url: bytes, headers: dict,
              body: bytes) -> None:
        if url == b"/upload":
            api.write_whole_file("/var/www/upload_%d" % self.requests_served,
                                 body[:1024])
            self._respond(api, conn, 201, b"created")
        else:
            self._respond(api, conn, 403, b"forbidden")

    def _respond(self, api, conn: ConnCtx, code: int, body: bytes,
                 extra: bytes = b"") -> None:
        reason = {200: b"OK", 201: b"Created", 206: b"Partial Content",
                  400: b"Bad Request", 403: b"Forbidden", 404: b"Not Found",
                  416: b"Range Not Satisfiable", 501: b"Not Implemented",
                  505: b"HTTP Version Not Supported"}.get(code, b"Error")
        self.reply(api, conn,
                   b"HTTP/1.1 %d %s\r\nServer: lighttpd-repro\r\n%s"
                   b"Content-Length: %d\r\n\r\n%s"
                   % (code, reason, extra, len(body), body))


# Full header lines (CRLF-terminated) so spec-generated insertions
# after any newline form valid headers.
DICTIONARY = [b"GET / HTTP/1.1", b"POST /upload HTTP/1.1",
              b"Range: bytes=-99999\r\n", b"Range: bytes=0-9\r\n",
              b"Content-Length: 0\r\n", b"Host: a\r\n", b"HEAD ",
              b"/index.html", b"\r\n\r\n"]


def make_seeds():
    spec = default_network_spec()
    seeds = []
    for packets in (
        [b"GET / HTTP/1.1\r\nHost: a\r\n\r\n"],
        [b"GET /index.html HTTP/1.1\r\nHost: a\r\nRange: bytes=0-9\r\n\r\n",
         b"GET /about HTTP/1.1\r\nHost: a\r\nContent-Length: 0\r\n"
         b"Range: bytes=-25\r\n\r\n"],
        [b"POST /upload HTTP/1.1\r\nHost: a\r\nContent-Length: 4\r\n\r\nDATA",
         b"OPTIONS / HTTP/1.1\r\nHost: a\r\n\r\n"],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for packet in packets:
            builder.packet(con, packet)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="lighttpd",
    protocol="http",
    make_program=LighttpdServer,
    surface_factory=lambda: AttackSurface.tcp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.03,
    libpreeny_compatible=True,
    planted_bugs=("integer-underflow:lighttpd-range-underflow",),
    notes="§5.5 case study: negative allocation from suffix Range + "
          "Content-Length interaction.",
)
