"""AFL++ with libpreeny's desock: socket-to-stdin fuzzing.

libpreeny's ``desock.c`` hooks ``accept()`` and hands the target a
descriptor whose reads come from stdin (§2.1, §5.1).  Consequences we
model faithfully:

* only targets whose accept/recv loop tolerates a plain stream can run
  at all — forking servers, multi-socket targets and clients fail to
  even start (the "n/a" rows of Tables 2 and 3);
* the whole test case is a single byte blob delivered as one stream:
  **message boundaries vanish**, so multi-message protocols parse the
  concatenation (often only the first message survives framing);
* per-exec resets come from the forkserver (process state only); the
  de-socketed server then lingers until AFL++'s exec timeout, which
  dominates the cost per execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.common import (BaselineHarness, boot_target, drain_crash)
from repro.coverage.bitmap import CoverageMap
from repro.fuzz.crash import CrashDatabase
from repro.fuzz.input import FuzzInput
from repro.fuzz.mutators import MutationEngine
from repro.fuzz.queue import Corpus
from repro.fuzz.stats import CampaignStats
from repro.sim.rng import DeterministicRandom
from repro.targets.base import TargetProfile


class DesockError(Exception):
    """The target cannot run under desock at all (an "n/a" row)."""


@dataclass
class DesockConfig:
    seed: int = 0
    time_budget: float = 60.0
    max_execs: Optional[int] = None
    mutations_per_entry: int = 25


class AflPlusPlusDesockFuzzer:
    """AFL++ + libpreeny driving one de-socketed target."""

    name = "aflpp-desock"

    def __init__(self, profile: TargetProfile,
                 config: Optional[DesockConfig] = None,
                 asan: bool = False) -> None:
        if not profile.libpreeny_compatible:
            raise DesockError("%s cannot run under desock (n/a)" % profile.name)
        self.profile = profile
        self.config = config or DesockConfig()
        # Reuse the emulation interceptor purely as the desock shim: a
        # single fabricated connection whose reads come from "stdin".
        # It must be installed before the server binds.
        self.harness: BaselineHarness = boot_target(profile, asan=asan,
                                                    with_interceptor=True)
        self.interceptor = self.harness.interceptor
        self.rng = DeterministicRandom(self.config.seed)
        self.mutator = MutationEngine(self.rng)
        self.coverage = CoverageMap()
        self.corpus = Corpus(self.rng)
        self.crashes = CrashDatabase()
        self.stats = CampaignStats(fuzzer_name="afl++-desock",
                                   target_name=profile.name)

    @property
    def clock(self):
        return self.harness.machine.clock

    def run_campaign(self) -> CampaignStats:
        for seed in self.profile.seeds():
            if self._budget_exhausted():
                break
            self._run_and_process(seed, force_keep=True)
        while not self._budget_exhausted():
            if not self.corpus.entries:
                break
            entry = self.corpus.next_entry()
            for _ in range(self.config.mutations_per_entry):
                if self._budget_exhausted():
                    break
                child = self.mutator.mutate(
                    entry.input, splice_donor=self.corpus.splice_donor(entry))
                self._run_and_process(child)
            self.stats.record_execs(self.clock.now)
        self.stats.end_time = self.clock.now
        self.stats.queue_size = len(self.corpus)
        return self.stats

    def _budget_exhausted(self) -> bool:
        if self.clock.now >= self.config.time_budget:
            return True
        cap = self.config.max_execs
        return cap is not None and self.stats.execs >= cap

    def _run_and_process(self, input_: FuzzInput, force_keep: bool = False) -> None:
        harness = self.harness
        kernel = harness.kernel
        machine = harness.machine
        harness.tracer.begin()
        self.interceptor.reset_for_test()
        # Forkserver exec: fixed dispatch cost + stdin delivery of the
        # whole blob as ONE chunk (boundaries destroyed), then the
        # linger timeout while the server waits for more network data.
        machine.clock.charge(machine.costs.forkserver_exec)
        blob = b"".join(bytes(arg) for op in input_.ops for arg in op.args
                        if isinstance(arg, (bytes, bytearray)))
        try:
            self.interceptor.open_connection(0)
            if blob:
                self.interceptor.queue_packet(0, blob)
            self.interceptor.close_connection(0)
        except Exception:
            pass  # no surface this run; still costs an exec
        kernel.run()
        machine.clock.charge(machine.costs.desock_exec_linger)
        crash = drain_crash(kernel)
        trace = harness.tracer.take_trace()
        kernel.flush_to_memory()
        harness.silent_restore()  # the forkserver's reset (cost above)
        self.stats.execs += 1
        now = self.clock.now
        if crash is not None and self.crashes.add(crash, input_, now):
            self.stats.record_crash(crash.dedup_key, now)
        verdict = self.coverage.has_new_bits(trace)
        if verdict == CoverageMap.NEW_EDGE or force_keep:
            self.stats.record_coverage(now, self.coverage.edge_count())
            self.corpus.add(input_.copy(), new_edges=self.coverage.edge_count(),
                            found_at=now)
        elif verdict == CoverageMap.NEW_COUNT:
            self.stats.record_coverage(now, self.coverage.edge_count())
