"""Tests for the generative (seedless) input synthesis."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.campaign import build_campaign
from repro.sim.rng import DeterministicRandom
from repro.spec.bytecode import validate
from repro.spec.generate import generate_input
from repro.spec.nodes import Spec, default_network_spec
from repro.targets import PROFILES


class TestGenerateInput:
    def test_generates_valid_sequences(self):
        spec = default_network_spec()
        rng = DeterministicRandom(3)
        for _ in range(50):
            ops = generate_input(spec, rng)
            validate(spec, ops)  # raises on any affine violation

    @given(st.integers(0, 2**31), st.integers(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_valid_for_any_seed_and_length(self, seed, max_ops):
        spec = default_network_spec()
        ops = generate_input(spec, DeterministicRandom(seed), max_ops=max_ops)
        validate(spec, ops)
        assert len(ops) <= max_ops

    def test_dictionary_tokens_used(self):
        spec = default_network_spec()
        rng = DeterministicRandom(1)
        token_seen = False
        for _ in range(30):
            ops = generate_input(spec, rng, dictionary=[b"MAGIC-TOKEN"])
            for op in ops:
                if any(arg == b"MAGIC-TOKEN" for arg in op.args):
                    token_seen = True
        assert token_seen

    def test_consume_respected(self):
        """After shutdown consumes the only connection, no packet may
        reference it — generation must never retry it."""
        spec = default_network_spec()
        rng = DeterministicRandom(9)
        for _ in range(100):
            ops = generate_input(spec, rng, max_ops=8)
            consumed = set()
            for op in ops:
                if op.node == "shutdown":
                    consumed.add(op.refs[0])
                elif op.node == "packet":
                    assert op.refs[0] not in consumed

    def test_spec_without_producers(self):
        spec = Spec("no-producer")
        e = spec.edge_type("thing")
        spec.node_type("use", borrows=[e])
        ops = generate_input(spec, DeterministicRandom(0))
        assert ops == []  # nothing satisfiable, never crashes

    def test_deterministic(self):
        spec = default_network_spec()
        a = generate_input(spec, DeterministicRandom(5))
        b = generate_input(spec, DeterministicRandom(5))
        assert [(o.node, o.refs, o.args) for o in a] == \
            [(o.node, o.refs, o.args) for o in b]


class TestSeedlessCampaign:
    def test_campaign_without_seeds_still_fuzzes(self):
        handles = build_campaign(PROFILES["lightftp"], policy="none",
                                 seed=2, time_budget=1e9, max_execs=120,
                                 seeds=[])
        stats = handles.fuzzer.run_campaign()
        assert stats.execs == 120
        assert stats.final_edges > 0
        origins = {e.input.origin for e in handles.fuzzer.corpus.entries}
        assert "generated" in origins or "havoc" in origins
