"""Fix-its: mechanical repairs for op sequences.

Three repairs, composable through :func:`apply_fixes`:

* :func:`repair_ops` — drop ill-typed ops (NYX013) with cascade: refs
  are interpreted in the authored value numbering, ops referencing a
  dropped op's outputs are dropped too, and surviving refs are
  remapped to the compacted numbering.  Marker placement errors
  (NYX012) are normalized away.  The result always passes
  ``bytecode.validate``.
* :func:`eliminate_dead_ops` — remove dead *pure producers* (NYX010/
  NYX011) from an already-valid sequence.  Only ops with no operands,
  no data fields and no used outputs are touched, so payload bytes
  reaching the attack surface are identical before and after.
* :func:`normalize_markers` (re-exported from ``spec.bytecode``) —
  at most one snapshot marker, never first or last.

``repair_blob`` is the persistence hook: it turns a damaged ``.nyx``
flat-bytecode blob back into a valid op sequence, or returns ``None``
when the damage is structural (truncation, foreign spec) and nothing
can be salvaged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.spec.bytecode import (Op, OpSequence, normalize_markers, parse,
                                 validate)
from repro.spec.nodes import Spec, SpecError


@dataclass
class FixResult:
    """What :func:`apply_fixes` did to a sequence."""

    ops: OpSequence
    dropped_invalid: int = 0
    eliminated_dead: int = 0
    markers_removed: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.dropped_invalid or self.eliminated_dead
                    or self.markers_removed)

    def describe(self) -> str:
        return ("dropped %d ill-typed op(s), eliminated %d dead op(s), "
                "removed %d snapshot marker(s)"
                % (self.dropped_invalid, self.eliminated_dead,
                   self.markers_removed))


def repair_ops(spec: Spec, ops: Sequence[Op]) -> Tuple[OpSequence, int]:
    """Drop ill-typed ops (cascading) and remap surviving refs.

    Returns ``(repaired ops, ops dropped)``.  Markers are kept as-is
    (normalize separately); the op stream itself type-checks after.
    """
    #: authored value slot -> (edge name, compacted index or None)
    values: List[Tuple[str, Optional[int]]] = []
    consumed: set = set()
    out: OpSequence = []
    dropped = 0
    kept_values = 0
    for op in ops:
        if op.is_snapshot_marker():
            if op.refs or op.args:
                dropped += 1
                continue
            out.append(Op("snapshot"))
            continue
        try:
            node = spec.node_by_name(op.node)
        except SpecError:
            dropped += 1
            continue  # unknown vocabulary: no outputs to account for
        expected = list(node.borrows) + list(node.consumes)
        ok = (len(op.refs) == len(expected)
              and len(op.args) == len(node.data))
        new_refs: List[int] = []
        if ok:
            for ref, edge in zip(op.refs, expected):
                if not 0 <= ref < len(values):
                    ok = False
                    break
                edge_name, new_index = values[ref]
                if (new_index is None or edge_name != edge.name
                        or ref in consumed):
                    ok = False
                    break
                new_refs.append(new_index)
        if ok:
            for ref in op.refs[len(node.borrows):]:
                consumed.add(ref)
            out.append(Op(op.node, tuple(new_refs), op.args))
            for edge in node.outputs:
                values.append((edge.name, kept_values))
                kept_values += 1
        else:
            dropped += 1
            for edge in node.outputs:
                values.append((edge.name, None))
    return out, dropped


def eliminate_dead_ops(spec: Spec,
                       ops: Sequence[Op]) -> Tuple[OpSequence, int]:
    """Remove dead pure-producer ops from a *valid* sequence.

    An op is removable iff it takes no operands, carries no data and
    none of its outputs is ever borrowed or consumed.  Refs of the
    surviving ops are remapped.  Raises ``SpecError`` if the input
    sequence does not validate.
    """
    validate(spec, ops)
    producer_of: List[int] = []  # value slot -> producing op index
    uses: dict = {}
    out_slots = {}               # op index -> (start, end)
    for index, op in enumerate(ops):
        if op.is_snapshot_marker():
            continue
        node = spec.node_by_name(op.node)
        for ref in op.refs:
            uses[ref] = uses.get(ref, 0) + 1
        start = len(producer_of)
        producer_of.extend([index] * len(node.outputs))
        out_slots[index] = (start, len(producer_of))
    removed: set = set()
    for index in range(len(ops) - 1, -1, -1):
        op = ops[index]
        if op.is_snapshot_marker() or op.refs or op.args:
            continue
        node = spec.node_by_name(op.node)
        if node.data or node.borrows or node.consumes:
            continue
        start, end = out_slots[index]
        if all(uses.get(slot, 0) == 0 for slot in range(start, end)):
            removed.add(index)
    if not removed:
        return list(ops), 0
    remap = {}
    compacted = 0
    for slot, producer in enumerate(producer_of):
        if producer not in removed:
            remap[slot] = compacted
            compacted += 1
    out: OpSequence = []
    for index, op in enumerate(ops):
        if index in removed:
            continue
        if op.is_snapshot_marker():
            out.append(Op("snapshot"))
            continue
        out.append(Op(op.node, tuple(remap[r] for r in op.refs), op.args))
    return out, len(removed)


def apply_fixes(spec: Spec, ops: Sequence[Op]) -> FixResult:
    """Full repair + cleanup pipeline; the result always validates.

    Payload bytes of well-typed payload-carrying ops are preserved
    verbatim — only ill-typed ops, dead pure producers and misplaced
    snapshot markers are removed.
    """
    repaired, dropped = repair_ops(spec, ops)
    markers_before = sum(1 for op in repaired if op.is_snapshot_marker())
    repaired = normalize_markers(repaired)
    reduced, eliminated = eliminate_dead_ops(spec, repaired)
    # Elimination can strand a marker at the edge (e.g. a dead leading
    # producer exposing a marker as the new first op).
    reduced = normalize_markers(reduced)
    markers_after = sum(1 for op in reduced if op.is_snapshot_marker())
    result = FixResult(reduced, dropped_invalid=dropped,
                       eliminated_dead=eliminated,
                       markers_removed=markers_before - markers_after)
    validate(spec, result.ops)
    return result


def repair_blob(spec: Spec, blob: bytes) -> Optional[OpSequence]:
    """Repair a damaged flat-bytecode blob into a valid op sequence.

    Returns ``None`` when nothing can be salvaged: structural
    corruption, a foreign spec checksum, or a repair that leaves no
    ops behind.
    """
    try:
        ops = parse(spec, blob)
    except SpecError:
        return None
    result = apply_fixes(spec, ops)
    if not result.ops:
        return None
    return result.ops
