"""Tests for the baseline fuzzers: AFLNet, AFLNwe, AFL++/desock,
Agamotto."""

import pytest

from repro.baselines.aflnet import AflNetConfig, AflNetFuzzer
from repro.baselines.aflnwe import AflNweFuzzer
from repro.baselines.aflpp_desock import (AflPlusPlusDesockFuzzer,
                                          DesockConfig, DesockError)
from repro.baselines.agamotto import AgamottoSnapshotter
from repro.fuzz.input import packets_input
from repro.targets.bftpd import PROFILE as BFTPD
from repro.targets.lightftp import PROFILE as LIGHTFTP
from repro.targets.dnsmasq import PROFILE as DNSMASQ
from repro.vm.machine import Machine
from repro.vm.memory import PAGE_SIZE


class TestAflNet:
    def test_campaign_runs_and_finds_coverage(self):
        fuzzer = AflNetFuzzer(LIGHTFTP, AflNetConfig(
            seed=1, time_budget=1e9, max_execs=120))
        stats = fuzzer.run_campaign()
        assert stats.execs == 120
        assert stats.final_edges > 30
        assert stats.fuzzer_name == "aflnet"

    def test_throughput_is_single_digit_ish(self):
        fuzzer = AflNetFuzzer(LIGHTFTP, AflNetConfig(
            seed=1, time_budget=1e9, max_execs=100))
        stats = fuzzer.run_campaign()
        # "single digit test executions per second" territory (§2.1):
        # far below even 100/s, orders below Nyx-Net.
        assert stats.execs_per_second() < 100

    def test_state_feedback_tracks_response_codes(self):
        fuzzer = AflNetFuzzer(LIGHTFTP, AflNetConfig(
            seed=1, time_budget=1e9, max_execs=80))
        fuzzer.run_campaign()
        assert len(fuzzer.states_seen) >= 2

    def test_no_state_variant_never_restarts(self):
        fuzzer = AflNetFuzzer(LIGHTFTP, AflNetConfig(
            seed=1, time_budget=1e9, max_execs=120, state_aware=False,
            restart_interval=10))
        fuzzer.run_campaign()
        assert fuzzer.stats.fuzzer_name == "aflnet-no-state"
        # The persistent server accumulated sessions across all tests.
        server = next(p for p in fuzzer.harness.kernel.processes.values())
        assert getattr(server.program, "conns", None) is not None

    def test_stateful_variant_restarts_periodically(self):
        fuzzer = AflNetFuzzer(LIGHTFTP, AflNetConfig(
            seed=1, time_budget=1e9, max_execs=60, restart_interval=10))
        t_before = fuzzer.clock.now
        fuzzer.run_campaign()
        # Restart + cleanup costs show up in the simulated clock.
        assert fuzzer.clock.now > t_before + 5 * (
            fuzzer.harness.machine.costs.aflnet_cleanup_script)

    def test_works_on_udp_targets(self):
        fuzzer = AflNetFuzzer(DNSMASQ, AflNetConfig(
            seed=1, time_budget=1e9, max_execs=60))
        stats = fuzzer.run_campaign()
        assert stats.final_edges > 20


class TestAflNwe:
    def test_flattening_destroys_boundaries(self):
        fuzzer = AflNweFuzzer(LIGHTFTP, AflNetConfig(
            seed=1, time_budget=1e9, max_execs=10))
        flat = fuzzer._flatten(packets_input([b"USER a\r\n", b"PASS b\r\n"]))
        payloads = [flat.payload_of(i) for i in flat.packet_indices()]
        assert payloads == [b"USER a\r\nPASS b\r\n"]  # one merged chunk

    def test_campaign_runs(self):
        fuzzer = AflNweFuzzer(LIGHTFTP, AflNetConfig(
            seed=1, time_budget=1e9, max_execs=80))
        stats = fuzzer.run_campaign()
        assert stats.fuzzer_name == "aflnwe"
        assert stats.execs == 80


class TestAflPlusPlusDesock:
    def test_incompatible_target_is_na(self):
        with pytest.raises(DesockError):
            AflPlusPlusDesockFuzzer(BFTPD)  # forking server

    def test_compatible_target_runs(self):
        fuzzer = AflPlusPlusDesockFuzzer(LIGHTFTP, DesockConfig(
            seed=1, time_budget=1e9, max_execs=60))
        stats = fuzzer.run_campaign()
        assert stats.execs == 60
        assert stats.final_edges > 10

    def test_exec_cost_dominated_by_linger(self):
        fuzzer = AflPlusPlusDesockFuzzer(LIGHTFTP, DesockConfig(
            seed=1, time_budget=1e9, max_execs=40))
        stats = fuzzer.run_campaign()
        costs = fuzzer.harness.machine.costs
        assert stats.end_time >= 40 * costs.desock_exec_linger


class TestAgamotto:
    def machine(self):
        return Machine(memory_bytes=512 * PAGE_SIZE)

    def test_snapshot_restore_roundtrip(self):
        machine = self.machine()
        machine.memory.write(0, b"base")
        snap = AgamottoSnapshotter(machine)
        machine.memory.write(0, b"gen1")
        s1 = snap.create_snapshot()
        machine.memory.write(0, b"gen2")
        snap.restore(s1)
        assert machine.memory.read(0, 4) == b"gen1"
        snap.restore(0)
        assert machine.memory.read(0, 4) == b"base"

    def test_tree_of_snapshots(self):
        machine = self.machine()
        snap = AgamottoSnapshotter(machine)
        machine.memory.write(0, b"A")
        s1 = snap.create_snapshot()
        machine.memory.write(PAGE_SIZE, b"B")
        s2 = snap.create_snapshot()
        machine.memory.write(0, b"X")
        snap.restore(s2)
        assert machine.memory.read(0, 1) == b"A"
        assert machine.memory.read(PAGE_SIZE, 1) == b"B"
        snap.restore(s1)
        assert machine.memory.read(PAGE_SIZE, 1) == b"\x00"

    def test_lru_eviction_under_budget_pressure(self):
        machine = self.machine()
        snap = AgamottoSnapshotter(machine, storage_budget=40 * PAGE_SIZE)
        ids = []
        for i in range(12):
            for page in range(8):
                machine.memory.write(page * PAGE_SIZE, b"gen %d" % i)
            ids.append(snap.create_snapshot())
        assert snap.evictions > 0
        # The most recent snapshot must always survive.
        snap.restore(ids[-1])
        assert machine.memory.read(0, 6) == b"gen 11"

    def test_restoring_evicted_snapshot_raises(self):
        machine = self.machine()
        snap = AgamottoSnapshotter(machine, storage_budget=20 * PAGE_SIZE)
        ids = []
        for i in range(10):
            for page in range(6):
                machine.memory.write(page * PAGE_SIZE, b"g%d" % i)
            ids.append(snap.create_snapshot())
        evicted = next(i for i in ids if i not in snap._snapshots)
        with pytest.raises(KeyError):
            snap.restore(evicted)

    def test_agamotto_charges_more_than_nyx(self):
        """The Figure 6 asymmetry, at the cost-model level."""
        machine_nyx = self.machine()
        machine_nyx.capture_root()
        machine_nyx.memory.write(0, b"d")
        t0 = machine_nyx.clock.now
        machine_nyx.create_incremental()
        nyx_cost = machine_nyx.clock.now - t0

        machine_aga = self.machine()
        snap = AgamottoSnapshotter(machine_aga)
        machine_aga.memory.write(0, b"d")
        t0 = machine_aga.clock.now
        snap.create_snapshot()
        aga_cost = machine_aga.clock.now - t0
        assert aga_cost > nyx_cost
