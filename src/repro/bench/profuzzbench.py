"""The ProFuzzBench campaign matrix (Tables 1-3, 5; Figures 5/7).

Runs every (fuzzer, target, seed) campaign with a shared simulated
time budget, memoizing results so the table-specific benches reuse one
matrix run.  All seven fuzzer configurations of the paper are driven
through their real implementations:

    aflnet, aflnet-no-state, aflnwe, afl++ (libpreeny desock),
    nyx-none, nyx-balanced, nyx-aggressive
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.aflnet import AflNetConfig, AflNetFuzzer
from repro.baselines.aflnwe import AflNweFuzzer
from repro.baselines.aflpp_desock import (AflPlusPlusDesockFuzzer,
                                          DesockConfig, DesockError)
from repro.fuzz.campaign import build_campaign
from repro.fuzz.stats import CampaignStats
from repro.targets import PROFILES, PROFUZZBENCH

FUZZER_NAMES = ("aflnet", "aflnet-no-state", "aflnwe", "afl++",
                "nyx-none", "nyx-balanced", "nyx-aggressive")


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return default


@dataclass(frozen=True)
class BenchConfig:
    """Scale parameters for a matrix run."""

    sim_budget: float = _env_float("REPRO_SIM_BUDGET", 600.0)
    seeds: int = _env_int("REPRO_SEEDS", 2)
    exec_cap_nyx: int = _env_int("REPRO_EXEC_CAP_NYX", 6000)
    exec_cap_afl: int = _env_int("REPRO_EXEC_CAP_AFL", 2200)
    exec_cap_aflpp: int = _env_int("REPRO_EXEC_CAP_AFLPP", 1200)
    #: ASAN on for Nyx (its crash-detection mode in Table 1); the
    #: AFL-family ProFuzzBench binaries run without it.
    asan_nyx: bool = True

    def scaled(self, factor: float) -> "BenchConfig":
        return BenchConfig(
            sim_budget=self.sim_budget * factor,
            seeds=self.seeds,
            exec_cap_nyx=max(100, int(self.exec_cap_nyx * factor)),
            exec_cap_afl=max(50, int(self.exec_cap_afl * factor)),
            exec_cap_aflpp=max(50, int(self.exec_cap_aflpp * factor)),
            asan_nyx=self.asan_nyx)


@dataclass
class RunResult:
    """One campaign's outcome."""

    fuzzer: str
    target: str
    seed: int
    stats: CampaignStats
    crashes: Tuple[str, ...]
    not_applicable: bool = False

    @property
    def final_coverage(self) -> int:
        return self.stats.final_edges

    @property
    def execs_per_second(self) -> float:
        return self.stats.execs_per_second()


@dataclass
class MatrixResult:
    """All runs, indexed by (fuzzer, target)."""

    config: BenchConfig
    runs: Dict[Tuple[str, str], List[RunResult]] = field(default_factory=dict)

    def of(self, fuzzer: str, target: str) -> List[RunResult]:
        return self.runs.get((fuzzer, target), [])

    def add(self, result: RunResult) -> None:
        self.runs.setdefault((result.fuzzer, result.target), []).append(result)


def run_fuzzer_once(fuzzer: str, target: str, seed: int,
                    config: BenchConfig) -> RunResult:
    """Run a single campaign; returns an n/a result where the tool
    cannot run the target at all (AFL++ + desock)."""
    profile = PROFILES[target]
    if fuzzer in ("nyx-none", "nyx-balanced", "nyx-aggressive"):
        policy = fuzzer.split("-", 1)[1]
        handles = build_campaign(profile, policy=policy, seed=seed,
                                 time_budget=config.sim_budget,
                                 max_execs=config.exec_cap_nyx,
                                 asan=config.asan_nyx)
        stats = handles.fuzzer.run_campaign()
        crashes = tuple(sorted(handles.fuzzer.crashes.records))
        stats.fuzzer_name = fuzzer
        return RunResult(fuzzer, target, seed, stats, crashes)
    if fuzzer in ("aflnet", "aflnet-no-state"):
        afl_config = AflNetConfig(seed=seed, time_budget=config.sim_budget,
                                  max_execs=config.exec_cap_afl,
                                  state_aware=(fuzzer == "aflnet"))
        runner = AflNetFuzzer(profile, afl_config)
        stats = runner.run_campaign()
        return RunResult(fuzzer, target, seed, stats,
                         tuple(sorted(runner.crashes.records)))
    if fuzzer == "aflnwe":
        afl_config = AflNetConfig(seed=seed, time_budget=config.sim_budget,
                                  max_execs=config.exec_cap_afl)
        runner = AflNweFuzzer(profile, afl_config)
        stats = runner.run_campaign()
        return RunResult(fuzzer, target, seed, stats,
                         tuple(sorted(runner.crashes.records)))
    if fuzzer == "afl++":
        try:
            runner = AflPlusPlusDesockFuzzer(
                profile, DesockConfig(seed=seed,
                                      time_budget=config.sim_budget,
                                      max_execs=config.exec_cap_aflpp))
        except DesockError:
            return RunResult(fuzzer, target, seed,
                             CampaignStats(fuzzer_name="afl++-desock",
                                           target_name=target),
                             (), not_applicable=True)
        stats = runner.run_campaign()
        return RunResult(fuzzer, target, seed, stats,
                         tuple(sorted(runner.crashes.records)))
    raise ValueError("unknown fuzzer %r" % fuzzer)


# Memoized matrix runs keyed by (config, fuzzers, targets) so the
# table benches share one expensive pass.
_MATRIX_CACHE: Dict[tuple, MatrixResult] = {}


def run_matrix(targets: Optional[Sequence[str]] = None,
               fuzzers: Sequence[str] = FUZZER_NAMES,
               config: Optional[BenchConfig] = None,
               progress: bool = False) -> MatrixResult:
    """Run (or reuse) the full campaign matrix."""
    config = config or BenchConfig()
    targets = tuple(targets if targets is not None else PROFUZZBENCH)
    fuzzers = tuple(fuzzers)
    key = (config, fuzzers, targets)
    cached = _MATRIX_CACHE.get(key)
    if cached is not None:
        return cached
    matrix = MatrixResult(config)
    for target in targets:
        for fuzzer in fuzzers:
            for seed in range(config.seeds):
                result = run_fuzzer_once(fuzzer, target, seed, config)
                matrix.add(result)
                if progress:  # pragma: no cover - console feedback
                    print("  %-14s %-18s seed=%d  cov=%-5d execs/s=%.1f %s"
                          % (target, fuzzer, seed, result.final_coverage,
                             result.execs_per_second,
                             "n/a" if result.not_applicable else ""))
    _MATRIX_CACHE[key] = matrix
    return matrix
