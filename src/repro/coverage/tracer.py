"""``sys.settrace``-based edge tracer for guest target code.

This is the reproduction's stand-in for AFL compile-time
instrumentation (§4.5): instead of instrumenting basic blocks at
compile time, we trace line events of the target's *actual Python
code* and fold ``(previous site, current site)`` transitions into a
sparse AFL-style trace, using AFL's ``cur ^ (prev >> 1)`` edge formula.

Only code whose filename matches the configured path fragments is
traced, so the kernel, fuzzer and harness never pollute coverage —
the analogue of only instrumenting the target binary.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Optional, Tuple

from repro.coverage.bitmap import MAP_SIZE

#: Path fragments identifying "instrumented" code.  The Mario *engine*
#: is deliberately absent: like IJON's original experiment, game
#: progress feedback comes from the IJON state annotation, not from
#: line coverage of the physics loop (and tracing 2,000 frames of
#: physics per execution would dominate host time).
DEFAULT_TRACED_FRAGMENTS = ("/repro/targets/", "/repro/mario/target")

#: Bitmap region where IJON state annotations land (distinct from the
#: hash range used by code edges only probabilistically, like IJON).
IJON_BASE = 0xF000


class EdgeTracer:
    """Collects sparse edge traces from traced module code."""

    def __init__(self, traced_fragments: Tuple[str, ...] = DEFAULT_TRACED_FRAGMENTS,
                 map_size: int = MAP_SIZE) -> None:
        self.traced_fragments = traced_fragments
        self.map_size = map_size
        #: Sparse trace of the current execution: edge index -> count.
        self.trace: Dict[int, int] = {}
        self._prev_site = 0
        #: Per-code-object decision cache: id(code) -> bool.
        self._code_cache: Dict[int, bool] = {}
        self._depth = 0

    # -- per-test lifecycle --------------------------------------------------

    def begin(self) -> None:
        """Reset the trace for a new test case."""
        self.trace = {}
        self._prev_site = 0

    def take_trace(self) -> Dict[int, int]:
        """Return the sparse trace collected since :meth:`begin`."""
        return self.trace

    def ijon_set(self, slot: int) -> None:
        """IJON-style state feedback: mark a state slot as reached.

        Mirrors IJON-SET/IJON-MAX: the annotated state value selects a
        bitmap entry, so novel states look like novel edges to the
        fuzzer's novelty check.
        """
        edge = (IJON_BASE + slot) % self.map_size
        trace = self.trace
        trace[edge] = trace.get(edge, 0) + 1

    # -- execution wrapper --------------------------------------------------

    def run(self, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` with tracing enabled.

        Re-entrant: nested calls keep the existing trace hook.
        """
        if self._depth == 0:
            sys.settrace(self._global_trace)
        self._depth += 1
        try:
            fn(*args)
        finally:
            self._depth -= 1
            if self._depth == 0:
                sys.settrace(None)

    # -- trace hooks -----------------------------------------------------------

    def _is_traced(self, code) -> bool:
        key = id(code)
        cached = self._code_cache.get(key)
        if cached is None:
            filename = code.co_filename
            cached = any(fragment in filename
                         for fragment in self.traced_fragments)
            self._code_cache[key] = cached
        return cached

    def _global_trace(self, frame, event, arg) -> Optional[Callable]:
        if event == "call" and self._is_traced(frame.f_code):
            # Record the call edge itself, then trace lines inside.
            self._hit(hash((frame.f_code.co_filename, frame.f_code.co_firstlineno)))
            return self._local_trace
        return None

    def _local_trace(self, frame, event, arg) -> Optional[Callable]:
        if event == "line":
            self._hit(hash((id(frame.f_code), frame.f_lineno)))
        return self._local_trace

    def _hit(self, site: int) -> None:
        site &= 0xFFFFFFFF
        edge = (site ^ (self._prev_site >> 1)) % self.map_size
        self._prev_site = site
        trace = self.trace
        trace[edge] = trace.get(edge, 0) + 1
