"""Flat bytecode serialization and affine-type validation of op
sequences.

Wire format (little endian)::

    header:  magic "NYXR" | u32 spec checksum | u32 op count
    op:      u16 node_id | operand refs (u16 each, borrows then
             consumes) | data fields (per the node's data types)

Operand refs index into the sequence of *values* produced so far (in
output order across all previous ops).  The special snapshot marker op
(node id 0xFFFF) carries no operands or data.

``validate`` enforces the affine rules: refs must exist, must have the
right edge type, and consumed values must not be used again.  Snapshot
markers must be *interior*: never the first or last op, and never
duplicated back to back (``normalize_markers`` repairs all three).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

from repro.spec.nodes import Spec, SpecError

MAGIC = b"NYXR"


@dataclass
class Op:
    """One opcode instance in an input."""

    node: str
    #: Operand value indices (borrows then consumes).
    refs: Tuple[int, ...] = ()
    #: Data field values, matching the node type's data types.
    args: Tuple[Any, ...] = ()

    def is_snapshot_marker(self) -> bool:
        return self.node == "snapshot"


#: An input is simply a list of ops.
OpSequence = List[Op]

#: The fuzzer-injected snapshot marker (not part of any spec).
SNAPSHOT_OP = Op("snapshot")


def validate(spec: Spec, ops: Sequence[Op]) -> List[Tuple[int, str]]:
    """Type-check an op sequence against the spec.

    Returns the list of (value index, edge type name) produced, in
    order.  Raises :class:`SpecError` on any violation.
    """
    values: List[Tuple[int, str]] = []  # (producing op index, edge name)
    consumed: set = set()
    seen_real_op = False
    prev_was_marker = False
    for op_index, op in enumerate(ops):
        if op.is_snapshot_marker():
            if op.refs or op.args:
                raise SpecError("snapshot marker carries no operands")
            if not seen_real_op:
                raise SpecError(
                    "op %d: snapshot marker before any op (nothing to "
                    "snapshot)" % op_index)
            if prev_was_marker:
                raise SpecError(
                    "op %d: consecutive duplicate snapshot markers"
                    % op_index)
            prev_was_marker = True
            continue
        prev_was_marker = False
        seen_real_op = True
        node = spec.node_by_name(op.node)
        expected = list(node.borrows) + list(node.consumes)
        if len(op.refs) != len(expected):
            raise SpecError(
                "op %d (%s): %d operand refs, expected %d"
                % (op_index, op.node, len(op.refs), len(expected)))
        for ref, edge in zip(op.refs, expected):
            if not 0 <= ref < len(values):
                raise SpecError(
                    "op %d (%s): ref %d out of range" % (op_index, op.node, ref))
            if values[ref][1] != edge.name:
                raise SpecError(
                    "op %d (%s): ref %d has type %s, expected %s"
                    % (op_index, op.node, ref, values[ref][1], edge.name))
            if ref in consumed:
                raise SpecError(
                    "op %d (%s): ref %d already consumed (affine violation)"
                    % (op_index, op.node, ref))
        n_borrows = len(node.borrows)
        for ref in op.refs[n_borrows:]:
            consumed.add(ref)
        if len(op.args) != len(node.data):
            raise SpecError(
                "op %d (%s): %d data args, expected %d"
                % (op_index, op.node, len(op.args), len(node.data)))
        for _ in node.outputs:
            values.append((op_index, _.name))
    if prev_was_marker:
        raise SpecError(
            "trailing snapshot marker (no op left to resume into)")
    return values


def normalize_markers(ops: Sequence[Op]) -> OpSequence:
    """Return ``ops`` with snapshot markers normalized.

    At most one marker survives — the *last* interior one (later
    snapshot points retain more of the prefix-skipping benefit, and
    with several markers the executor's final snapshot is the last
    one anyway).  Markers before the first real op, after the last
    real op, or duplicated are dropped.  Real ops are untouched.
    """
    real = [i for i, op in enumerate(ops) if not op.is_snapshot_marker()]
    if not real:
        return []
    interior = [i for i, op in enumerate(ops)
                if op.is_snapshot_marker() and real[0] < i < real[-1]]
    keep = interior[-1] if interior else None
    return [op for i, op in enumerate(ops)
            if not op.is_snapshot_marker() or i == keep]


def serialize(spec: Spec, ops: Sequence[Op]) -> bytes:
    """Serialize a validated op sequence to flat bytecode."""
    validate(spec, ops)
    out = bytearray()
    out += MAGIC
    out += struct.pack("<II", spec.checksum(), len(ops))
    for op in ops:
        if op.is_snapshot_marker():
            out += struct.pack("<H", Spec.SNAPSHOT_NODE_ID)
            continue
        node = spec.node_by_name(op.node)
        out += struct.pack("<H", node.node_id)
        for ref in op.refs:
            out += struct.pack("<H", ref)
        for dtype, value in zip(node.data, op.args):
            out += dtype.pack(value)
    return bytes(out)


def parse(spec: Spec, blob: bytes) -> OpSequence:
    """Decode flat bytecode into an op sequence *without* validating.

    Structural corruption — a short header, a node id past the spec,
    refs or data fields running past the end of the buffer — raises
    :class:`SpecError` (never a bare ``struct.error``/``IndexError``).
    The result may still be ill-typed; callers that need the affine
    guarantees use :func:`deserialize` or run :func:`validate`.
    """
    if len(blob) < 12:
        raise SpecError("truncated bytecode: %d-byte blob is shorter than "
                        "the 12-byte header" % len(blob))
    if blob[:4] != MAGIC:
        raise SpecError("bad magic")
    checksum, count = struct.unpack_from("<II", blob, 4)
    if checksum != spec.checksum():
        raise SpecError("bytecode was built for a different spec")
    offset = 12
    ops: OpSequence = []
    try:
        for _ in range(count):
            (node_id,) = struct.unpack_from("<H", blob, offset)
            offset += 2
            if node_id == Spec.SNAPSHOT_NODE_ID:
                ops.append(Op("snapshot"))
                continue
            node = spec.node_by_id(node_id)
            refs = []
            for _ref in range(node.arity):
                (ref,) = struct.unpack_from("<H", blob, offset)
                offset += 2
                refs.append(ref)
            args = []
            for dtype in node.data:
                value, offset = dtype.unpack(blob, offset)
                args.append(value)
            ops.append(Op(node.name, tuple(refs), tuple(args)))
    except (struct.error, IndexError, ValueError) as err:
        raise SpecError("truncated or corrupt bytecode at offset %d "
                        "(op %d of %d): %s"
                        % (offset, len(ops), count, err)) from err
    return ops


def deserialize(spec: Spec, blob: bytes) -> OpSequence:
    """Parse flat bytecode back into an op sequence (and validate)."""
    ops = parse(spec, blob)
    validate(spec, ops)
    return ops
