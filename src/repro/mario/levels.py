"""Procedural Super Mario levels 1-1 … 8-4.

Levels are generated deterministically from their (world, stage) name
with difficulty scaling in the world number: wider pits, more enemies,
taller steps.  Two hand-placed signatures match the paper:

* **2-1** contains a pit that is too wide for any regular jump, with a
  tall wall on its far side — only the wall-jump glitch crosses it
  (IJON believed the level unsolvable; Nyx-Net solved it).
* **8-x** levels are long with dense hazards (the hardest rows of
  Table 4).
"""

from __future__ import annotations

import random  # nyx: allow[NYX021] -- only random.Random(world*100+stage): seeded, deterministic
from typing import Dict, List, Set, Tuple

from repro.mario.engine import Level

#: Ground row (rows grow downward; ground occupies rows GROUND..).
GROUND_ROW = 12
HEIGHT = 15

LEVEL_NAMES = ["%d-%d" % (world, stage)
               for world in range(1, 9) for stage in range(1, 5)]

_cache: Dict[str, Level] = {}


def load_level(name: str) -> Level:
    """Build (and cache) the level with the given "W-S" name."""
    if name in _cache:
        return _cache[name]
    world_s, _, stage_s = name.partition("-")
    world, stage = int(world_s), int(stage_s)
    if not (1 <= world <= 8 and 1 <= stage <= 4):
        raise ValueError("no such level: %r" % name)
    level = _generate(world, stage)
    _cache[name] = level
    return level


def _generate(world: int, stage: int) -> Level:
    rng = random.Random(world * 100 + stage)
    width = 70 + world * 8 + stage * 5
    solids: Set[Tuple[int, int]] = set()
    enemies: List[Tuple[int, int]] = []

    # Base ground with gaps (pits).
    col = 0
    pit_chance = 0.05 + world * 0.012
    max_pit = min(3 + world // 2, 6)
    while col < width:
        if col > 12 and col < width - 12 and rng.random() < pit_chance:
            pit = rng.randint(2, max_pit)
            col += pit
            continue
        run = rng.randint(4, 10)
        for c in range(col, min(col + run, width)):
            for row in range(GROUND_ROW, HEIGHT):
                solids.add((c, row))
        col += run

    # Platforms, steps and pipes.
    for _ in range(4 + world * 2):
        px = rng.randint(15, width - 15)
        py = GROUND_ROW - rng.randint(3, 5)
        for c in range(px, px + rng.randint(2, 5)):
            solids.add((c, py))
    for _ in range(2 + world):
        px = rng.randint(20, width - 20)
        h = rng.randint(1, 2 + world // 3)
        if _ground_under(solids, px):
            for row in range(GROUND_ROW - h, GROUND_ROW):
                solids.add((px, row))
                solids.add((px + 1, row))

    # Enemies on solid ground.
    for _ in range(3 + world * 2 + stage):
        ex = rng.randint(12, width - 10)
        if _ground_under(solids, ex):
            # Feet coordinate: standing on the ground row's top edge.
            enemies.append((ex, GROUND_ROW))

    # The 2-1 signature: an uncrossable pit + tall far wall (wall-jump
    # glitch required).
    if (world, stage) == (2, 1):
        gap_start = width // 2
        # The pit ends in a sheer wall taller than any jump: crossing
        # requires jumping into the wall face and climbing it with the
        # wall-jump glitch.  The gap itself only needs to deny a
        # landing spot short of the wall.
        gap = 5
        wall_col = gap_start + gap
        # Carve the pit.
        for c in range(gap_start, wall_col):
            for row in range(GROUND_ROW, HEIGHT):
                solids.discard((c, row))
        # No floating platforms may bridge it (the glitch must be the
        # only way across), and no enemies camp the approach.
        for c in range(gap_start - 6, wall_col + 8):
            for row in range(0, GROUND_ROW):
                solids.discard((c, row))
        enemies = [(ex, ey) for ex, ey in enemies
                   if not gap_start - 8 <= ex <= wall_col + 10]
        # Guarantee a takeoff runway and the tall far wall.
        for c in range(gap_start - 6, gap_start):
            for row in range(GROUND_ROW, HEIGHT):
                solids.add((c, row))
        wall_col = gap_start + gap
        for row in range(GROUND_ROW - 6, HEIGHT):
            solids.add((wall_col, row))
            for c in range(wall_col, min(wall_col + 6, width)):
                solids.add((c, GROUND_ROW))
                for r2 in range(GROUND_ROW, HEIGHT):
                    solids.add((c, r2))

    # Guarantee a runway at the start and the flag at the end.
    for c in range(0, 12):
        for row in range(GROUND_ROW, HEIGHT):
            solids.add((c, row))
    flag_x = width - 6
    for c in range(width - 12, width):
        for row in range(GROUND_ROW, HEIGHT):
            solids.add((c, row))

    return Level(
        name="%d-%d" % (world, stage),
        width=width,
        height=HEIGHT,
        solids=frozenset(solids),
        enemy_spawns=tuple(enemies),
        flag_x=flag_x,
        start=(2, GROUND_ROW - 1),
    )


def _ground_under(solids: Set[Tuple[int, int]], col: int) -> bool:
    return (col, GROUND_ROW) in solids


def render(level: Level) -> str:
    """ASCII rendering (debugging / docs)."""
    rows = []
    spawn_set = set(level.enemy_spawns)
    for row in range(level.height):
        line = []
        for col in range(level.width):
            if (col, row) in level.solids:
                line.append("#")
            elif (col, row) in spawn_set:
                line.append("E")
            elif col == level.flag_x and row < GROUND_ROW:
                line.append("F")
            else:
                line.append(".")
        rows.append("".join(line))
    return "\n".join(rows)
