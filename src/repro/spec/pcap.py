"""A minimal libpcap reader/writer and TCP/UDP flow extraction.

The paper converts Wireshark PCAPs into seed inputs via pyshark
(§4.4); offline we implement the classic libpcap container format and
just enough Ethernet/IPv4/TCP/UDP parsing to recover per-flow,
per-direction payload sequences.  A writer is included so the examples
and tests can fabricate realistic captures.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

PCAP_MAGIC = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1

_ETH_HEADER = struct.Struct(">6s6sH")
_ETHERTYPE_IPV4 = 0x0800
_PROTO_TCP = 6
_PROTO_UDP = 17


class PcapError(Exception):
    """Malformed capture file."""


@dataclass(frozen=True)
class Packet:
    """One captured frame's parsed L3/L4 content."""

    ts: float
    src: Tuple[str, int]     # (ip, port)
    dst: Tuple[str, int]
    proto: str               # "tcp" | "udp"
    payload: bytes
    syn: bool = False
    fin: bool = False


@dataclass
class TcpFlow:
    """One bidirectional flow, with client->server payloads in order."""

    client: Tuple[str, int]
    server: Tuple[str, int]
    proto: str
    #: (direction, payload); direction True = client-to-server.
    messages: List[Tuple[bool, bytes]] = field(default_factory=list)

    def client_payloads(self) -> List[bytes]:
        return [data for to_server, data in self.messages if to_server and data]

    def server_payloads(self) -> List[bytes]:
        return [data for to_server, data in self.messages if not to_server and data]


class PcapReader:
    """Iterates parsed packets out of a classic-format pcap blob."""

    def __init__(self, blob: bytes) -> None:
        if len(blob) < 24:
            raise PcapError("truncated global header")
        magic = struct.unpack_from("<I", blob, 0)[0]
        if magic == PCAP_MAGIC:
            self._endian = "<"
        elif struct.unpack_from(">I", blob, 0)[0] == PCAP_MAGIC:
            self._endian = ">"
        else:
            raise PcapError("bad pcap magic: %#x" % magic)
        (self.version_major, self.version_minor, _tz, _sigfigs,
         self.snaplen, self.linktype) = struct.unpack_from(
            self._endian + "HHiIII", blob, 4)
        if self.linktype != LINKTYPE_ETHERNET:
            raise PcapError("unsupported linktype %d" % self.linktype)
        self._blob = blob
        #: Records dropped by the tolerant iterator: a truncated tail
        #: (capture cut off mid-record) or an absurd length field.
        self.skipped_records = 0

    def __iter__(self) -> Iterator[Packet]:
        """Iterate records *tolerantly*: a malformed or truncated
        record ends iteration (everything after it is unframeable)
        instead of raising, so a damaged capture still yields the
        packets before the damage — partial seeds beat no seeds."""
        blob = self._blob
        offset = 24
        rec = struct.Struct(self._endian + "IIII")
        while offset + 16 <= len(blob):
            ts_sec, ts_usec, incl_len, _orig_len = rec.unpack_from(blob, offset)
            offset += 16
            frame = blob[offset:offset + incl_len]
            if len(frame) < incl_len:
                # Truncated final record, or garbage in the length
                # field desynchronizing the framing: stop here.
                self.skipped_records += 1
                return
            offset += incl_len
            packet = _parse_frame(ts_sec + ts_usec / 1e6, frame)
            if packet is not None:
                yield packet
        if offset < len(blob):
            # Trailing bytes too short to be a record header.
            self.skipped_records += 1


def _parse_frame(ts: float, frame: bytes) -> Optional[Packet]:
    if len(frame) < 14:
        return None
    _dst_mac, _src_mac, ethertype = _ETH_HEADER.unpack_from(frame, 0)
    if ethertype != _ETHERTYPE_IPV4:
        return None
    ip = frame[14:]
    if len(ip) < 20:
        return None
    ihl = (ip[0] & 0x0F) * 4
    total_len = struct.unpack_from(">H", ip, 2)[0]
    proto = ip[9]
    src_ip = ".".join(str(b) for b in ip[12:16])
    dst_ip = ".".join(str(b) for b in ip[16:20])
    l4 = ip[ihl:total_len]
    if proto == _PROTO_TCP:
        if len(l4) < 20:
            return None
        sport, dport = struct.unpack_from(">HH", l4, 0)
        data_off = ((l4[12] >> 4) & 0xF) * 4
        flags = l4[13]
        payload = l4[data_off:]
        return Packet(ts, (src_ip, sport), (dst_ip, dport), "tcp",
                      payload, syn=bool(flags & 0x02), fin=bool(flags & 0x01))
    if proto == _PROTO_UDP:
        if len(l4) < 8:
            return None
        sport, dport, length = struct.unpack_from(">HHH", l4, 0)
        return Packet(ts, (src_ip, sport), (dst_ip, dport), "udp",
                      l4[8:length])
    return None


def extract_flows(blob: bytes) -> List[TcpFlow]:
    """Group a capture into flows, inferring the client side.

    The client is whoever sent the first SYN; for UDP (or SYN-less
    truncated captures) the sender of the first packet is the client.
    """
    flows: Dict[Tuple, TcpFlow] = {}
    for packet in PcapReader(blob):
        key_fwd = (packet.proto, packet.src, packet.dst)
        key_rev = (packet.proto, packet.dst, packet.src)
        flow = flows.get(key_fwd)
        to_server = True
        if flow is None and key_rev in flows:
            flow = flows[key_rev]
            to_server = False
        if flow is None:
            flow = TcpFlow(client=packet.src, server=packet.dst,
                           proto=packet.proto)
            flows[key_fwd] = flow
        if packet.payload:
            flow.messages.append((to_server, packet.payload))
    return list(flows.values())


class PcapWriter:
    """Builds classic-format pcap blobs for tests and examples."""

    def __init__(self) -> None:
        self._records: List[bytes] = []
        self._seq: Dict[Tuple, int] = {}

    def add_tcp(self, src: Tuple[str, int], dst: Tuple[str, int],
                payload: bytes, ts: float = 0.0,
                syn: bool = False, fin: bool = False) -> None:
        flags = 0x18  # PSH|ACK
        if syn:
            flags = 0x02
        if fin:
            flags |= 0x01
        tcp = struct.pack(">HHIIBBHHH", src[1], dst[1],
                          self._next_seq(src, dst, len(payload)), 0,
                          5 << 4, flags, 65535, 0, 0) + payload
        self._add_ipv4(src[0], dst[0], _PROTO_TCP, tcp, ts)

    def add_udp(self, src: Tuple[str, int], dst: Tuple[str, int],
                payload: bytes, ts: float = 0.0) -> None:
        udp = struct.pack(">HHHH", src[1], dst[1], 8 + len(payload), 0) + payload
        self._add_ipv4(src[0], dst[0], _PROTO_UDP, udp, ts)

    def _next_seq(self, src, dst, advance: int) -> int:
        key = (src, dst)
        seq = self._seq.get(key, 1000)
        self._seq[key] = seq + max(advance, 1)
        return seq

    def _add_ipv4(self, src_ip: str, dst_ip: str, proto: int,
                  l4: bytes, ts: float) -> None:
        total = 20 + len(l4)
        ip = struct.pack(">BBHHHBBH4s4s", 0x45, 0, total, 0, 0, 64, proto, 0,
                         bytes(int(x) for x in src_ip.split(".")),
                         bytes(int(x) for x in dst_ip.split(".")))
        frame = b"\x02" * 6 + b"\x04" * 6 + struct.pack(">H", _ETHERTYPE_IPV4) \
            + ip + l4
        sec = int(ts)
        usec = int((ts - sec) * 1e6)
        self._records.append(
            struct.pack("<IIII", sec, usec, len(frame), len(frame)) + frame)

    def getvalue(self) -> bytes:
        header = struct.pack("<IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65535,
                             LINKTYPE_ETHERNET)
        return header + b"".join(self._records)
