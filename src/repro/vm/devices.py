"""Emulated device state with fast and slow reset paths.

The paper (§2.3, §5.3) notes that Nyx "implements a custom reset
mechanism for the state of emulated devices that is much faster than
QEMU's native device serialization/deserialization routine" and that
Nyx-Net "uses faster emulated device resets, reducing the fixed cost of
resetting devices".  We model both paths:

* :meth:`DeviceBoard.capture_fast` / :meth:`restore_fast` — Nyx's
  direct field copy (cheap, charged ``device_reset_fast``).
* :meth:`DeviceBoard.capture_slow` / :meth:`restore_slow` — the
  QEMU-style full serialize/deserialize that the Agamotto baseline pays
  (charged ``device_reset_slow``).

The devices themselves are deliberately small but stateful, so that a
botched restore is observable in tests.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class TimerDevice:
    """A periodic timer: guest code reads ticks, configures the period."""

    ticks: int = 0
    period_us: int = 10_000
    armed: bool = True

    def tick(self) -> None:
        if self.armed:
            self.ticks += 1

    def fields(self) -> Tuple:
        return (self.ticks, self.period_us, self.armed)

    def load_fields(self, fields: Tuple) -> None:
        self.ticks, self.period_us, self.armed = fields


@dataclass
class SerialDevice:
    """Serial console; the guest's stdout ends up here."""

    tx_buffer: List[bytes] = field(default_factory=list)
    bytes_written: int = 0

    def write(self, data: bytes) -> None:
        self.tx_buffer.append(data)
        self.bytes_written += len(data)

    def fields(self) -> Tuple:
        return (list(self.tx_buffer), self.bytes_written)

    def load_fields(self, fields: Tuple) -> None:
        buf, count = fields
        self.tx_buffer = list(buf)
        self.bytes_written = count


@dataclass
class VirtioNetDevice:
    """Virtual NIC counters; the emulation layer bypasses it, the real
    network path bumps its counters."""

    rx_packets: int = 0
    tx_packets: int = 0
    rx_bytes: int = 0
    tx_bytes: int = 0

    def on_rx(self, nbytes: int) -> None:
        self.rx_packets += 1
        self.rx_bytes += nbytes

    def on_tx(self, nbytes: int) -> None:
        self.tx_packets += 1
        self.tx_bytes += nbytes

    def fields(self) -> Tuple:
        return (self.rx_packets, self.tx_packets, self.rx_bytes, self.tx_bytes)

    def load_fields(self, fields: Tuple) -> None:
        (self.rx_packets, self.tx_packets,
         self.rx_bytes, self.tx_bytes) = fields


@dataclass
class RtcDevice:
    """Real-time clock: guest-visible time, frozen by snapshots."""

    epoch_us: int = 1_600_000_000_000_000

    def advance(self, us: int) -> None:
        self.epoch_us += us

    def fields(self) -> Tuple:
        return (self.epoch_us,)

    def load_fields(self, fields: Tuple) -> None:
        (self.epoch_us,) = fields


class DeviceBoard:
    """The full set of emulated devices attached to a machine."""

    def __init__(self) -> None:
        self.timer = TimerDevice()
        self.serial = SerialDevice()
        self.nic = VirtioNetDevice()
        self.rtc = RtcDevice()
        self._devices = {
            "timer": self.timer,
            "serial": self.serial,
            "nic": self.nic,
            "rtc": self.rtc,
        }

    # -- Nyx fast path: direct field copies --------------------------------

    def capture_fast(self) -> Dict[str, Tuple]:
        """Capture device state as plain field tuples (Nyx fast path)."""
        return {name: dev.fields() for name, dev in self._devices.items()}

    def restore_fast(self, state: Dict[str, Tuple]) -> None:
        """Restore from :meth:`capture_fast` output."""
        for name, fields in state.items():
            self._devices[name].load_fields(fields)

    # -- QEMU slow path: full serialize / deserialize -----------------------

    def capture_slow(self) -> bytes:
        """Serialize all devices the way QEMU's migration code would."""
        return pickle.dumps(self.capture_fast(), protocol=pickle.HIGHEST_PROTOCOL)

    def restore_slow(self, blob: bytes) -> None:
        """Deserialize a :meth:`capture_slow` blob."""
        self.restore_fast(pickle.loads(blob))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DeviceBoard(ticks=%d, rx=%d, tx=%d)" % (
            self.timer.ticks, self.nic.rx_packets, self.nic.tx_packets)
