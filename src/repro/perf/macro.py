"""End-to-end campaign benchmark: wall-clock *and* sim-clock execs/s.

One seeded single-instance campaign against a real target profile
(lighttpd by default), measured on both clocks:

* ``wall_execs_per_sec`` — host throughput, the number the hot-path
  optimizations move;
* ``sim_execs_per_sec`` — cost-model throughput, the number the
  reproduced tables report.  It must NOT move when host-side
  optimizations land; the report carries a canonical checksum of the
  full campaign stats so any sim-visible drift is caught exactly.

Results land in ``BENCH_fuzz.json`` (see docs/performance.md).
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from typing import Dict, Optional

from repro.perf.timers import wall_now


def stats_checksum(stats) -> str:
    """sha1 over the canonical JSON of a campaign's full stats dict.

    Identical sim behaviour => identical checksum; any change to exec
    counts, coverage timestamps or crash times shows up here even when
    the headline rates round to the same value.
    """
    payload = json.dumps(stats.as_dict(), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


def run_macro(target: str = "lighttpd", seed: int = 1,
              execs: int = 2000, policy: str = "aggressive",
              sanitize_every: Optional[int] = None,
              coverage_backend: str = "auto",
              max_chain_depth: int = 1) -> Dict[str, object]:
    """Run one seeded campaign and report both clocks.

    The campaign is capped by host-side execution count (not sim time)
    so the measured wall window covers a fixed amount of work.  With
    ``sanitize_every`` the NYX05x reset sanitizer runs during the
    campaign and its leak count is reported (and should be zero).
    ``coverage_backend`` only changes *how fast* the host computes the
    campaign: ``stats_checksum`` and every sim metric must come out
    identical across backends (CI's per-backend bench-smoke pins this).
    ``max_chain_depth`` 1 (the default) is the paper's single
    incremental snapshot; its ``stats_checksum`` must match a build
    without chain support at all — that identity is what the committed
    baseline pins.
    """
    from repro.fuzz.campaign import build_campaign
    from repro.targets import PROFILES
    profile = PROFILES[target]

    boot_start = wall_now()
    handles = build_campaign(profile, policy=policy, seed=seed,
                             time_budget=1e9, max_execs=execs,
                             sanitize_every=sanitize_every,
                             coverage_backend=coverage_backend,
                             max_chain_depth=max_chain_depth)
    boot_seconds = wall_now() - boot_start

    run_start = wall_now()
    stats = handles.fuzzer.run_campaign()
    wall_seconds = wall_now() - run_start

    sim_seconds = stats.duration()
    payload: Dict[str, object] = {
        "kind": "macro",
        "target": target,
        "policy": policy,
        "max_chain_depth": max_chain_depth,
        "seed": seed,
        "execs": stats.execs,
        "suffix_execs": stats.suffix_execs,
        "boot_seconds": round(boot_seconds, 4),
        "wall_seconds": round(wall_seconds, 4),
        "wall_execs_per_sec": round(stats.execs / wall_seconds, 2)
        if wall_seconds > 0 else 0.0,
        "sim_seconds": round(sim_seconds, 6),
        "sim_execs_per_sec": round(stats.execs_per_second(), 4),
        "final_edges": stats.final_edges,
        "crashes_found": stats.crashes_found,
        "stats_checksum": stats_checksum(stats),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        # Host-side counters: how cheaply the campaign was computed.
        # Deliberately outside stats_checksum (which hashes the sim
        # view only) so backends and elision stay byte-comparable.
        "coverage_backend": stats.coverage_backend,
        "host_counters": stats.host_counters(),
    }
    if sanitize_every is not None:
        payload["sanitizer_checks"] = stats.sanitizer_checks
        payload["sanitizer_leaks"] = stats.sanitizer_leaks
    return payload


#: Deep-state chain scenario: one full anonymous FTP session against
#: the lightftp profile.  Long enough (22 packets) that re-executing
#: the prefix dominates a suffix iteration's cost — the regime overlay
#: chains exist for.  Short seeds make fixed per-exec costs dominate
#: and chains cannot win there, which is exactly what the depth-1 rows
#: of the micro suite already cover.
DEEP_SESSION = tuple(
    cmd + b"\r\n" for cmd in (
        b"USER anonymous", b"PASS guest", b"SYST", b"FEAT", b"PWD",
        b"TYPE I", b"CWD /srv/ftp", b"LIST", b"SIZE readme.txt",
        b"RETR readme.txt", b"MKD upload", b"CWD upload", b"PWD",
        b"CDUP", b"STAT", b"NOOP", b"HELP", b"SIZE motd",
        b"RETR motd", b"DELE upload", b"LIST", b"QUIT",
    ))


def deep_session_input():
    """The scenario seed as a :class:`FuzzInput` (fresh copy)."""
    from repro.fuzz.input import packets_input
    return packets_input(list(DEEP_SESSION))


def _run_chain_leg(target: str, policy: str, seed: int, execs: int,
                   max_chain_depth: int,
                   coverage_backend: str) -> Dict[str, object]:
    """One scenario campaign (ref or chain leg) over the deep seed."""
    from repro.fuzz.campaign import build_campaign
    from repro.targets import PROFILES
    profile = PROFILES[target]
    handles = build_campaign(profile, policy=policy, seed=seed,
                             time_budget=1e9, max_execs=execs,
                             coverage_backend=coverage_backend,
                             max_chain_depth=max_chain_depth,
                             seeds=[deep_session_input()])
    run_start = wall_now()
    stats = handles.fuzzer.run_campaign()
    wall_seconds = wall_now() - run_start
    return {
        "policy": policy,
        "max_chain_depth": max_chain_depth,
        "execs": stats.execs,
        "suffix_execs": stats.suffix_execs,
        "wall_seconds": round(wall_seconds, 4),
        "wall_execs_per_sec": round(stats.execs / wall_seconds, 2)
        if wall_seconds > 0 else 0.0,
        "sim_execs_per_sec": round(stats.execs_per_second(), 4),
        "final_edges": stats.final_edges,
        "stats_checksum": stats_checksum(stats),
        "host_counters": stats.host_counters(),
    }


def run_chain_macro(target: str = "lightftp", seed: int = 1,
                    execs: int = 600, depth: int = 4,
                    coverage_backend: str = "auto") -> Dict[str, object]:
    """Deep-state macro scenario: overlay chains vs single-incremental.

    Runs the same 22-packet FTP session seed through two campaigns —
    the reference (``balanced`` policy, the paper's single incremental
    snapshot) and the chain leg (``bandit`` placement at ``depth``) —
    and reports both wall rates plus their ratio ``chain_speedup``.
    Both legs are deterministic campaigns, so their ``stats_checksum``
    values pin sim-clock behaviour exactly like the plain macro's.
    """
    ref = _run_chain_leg(target, "balanced", seed, execs, 1,
                         coverage_backend)
    chain = _run_chain_leg(target, "bandit", seed, execs, depth,
                           coverage_backend)
    ref_wall = float(ref["wall_execs_per_sec"])
    chain_wall = float(chain["wall_execs_per_sec"])
    return {
        "kind": "chain_macro",
        "target": target,
        "seed": seed,
        "execs": execs,
        "depth": depth,
        "session_packets": len(DEEP_SESSION),
        "ref": ref,
        "chain": chain,
        "chain_speedup": round(chain_wall / ref_wall, 3)
        if ref_wall > 0 else 0.0,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "coverage_backend": coverage_backend,
    }
