"""Unit tests for the fuzzer core: inputs, mutators, queue, policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.input import FuzzInput, packets_input
from repro.fuzz.mutators import MutationEngine
from repro.fuzz.policies import (AggressivePolicy, BalancedPolicy, NonePolicy,
                                 AGGRESSIVE_PATIENCE, make_policy)
from repro.fuzz.queue import Corpus, QueueEntry
from repro.sim.rng import DeterministicRandom
from repro.spec.bytecode import Op
from repro.spec.nodes import default_network_spec


def simple_input(n_packets=5):
    return packets_input([b"packet-%02d" % i for i in range(n_packets)])


class TestFuzzInput:
    def test_packet_indices_skip_connection(self):
        inp = simple_input(3)
        assert inp.packet_indices() == [1, 2, 3]
        assert inp.num_packets == 3

    def test_payload_roundtrip(self):
        inp = simple_input(2)
        inp.with_payload(1, b"replaced")
        assert inp.payload_of(1) == b"replaced"

    def test_copy_is_deep_for_ops(self):
        inp = simple_input(2)
        clone = inp.copy()
        clone.with_payload(1, b"changed")
        assert inp.payload_of(1) == b"packet-00"

    def test_total_payload_bytes(self):
        assert simple_input(3).total_payload_bytes() == 27

    def test_validates_against_default_spec(self):
        simple_input(2).validate_against(default_network_spec())


class TestMutationEngine:
    def setup_method(self):
        self.rng = DeterministicRandom(42)
        self.engine = MutationEngine(self.rng, dictionary=[b"TOKEN"])

    def test_mutate_changes_something(self):
        parent = simple_input(4)
        changed = 0
        for _ in range(20):
            child = self.engine.mutate(parent)
            if [o.args for o in child.ops] != [o.args for o in parent.ops] \
                    or len(child.ops) != len(parent.ops):
                changed += 1
        assert changed >= 15

    def test_from_index_protects_prefix(self):
        parent = simple_input(6)
        for _ in range(50):
            child = self.engine.mutate(parent, from_index=4)
            # Ops before index 4 must be byte-identical.
            for i in range(4):
                assert child.ops[i].args == parent.ops[i].args

    def test_parent_never_mutated(self):
        parent = simple_input(4)
        snapshot = [o.args for o in parent.ops]
        for _ in range(50):
            self.engine.mutate(parent)
        assert [o.args for o in parent.ops] == snapshot

    def test_splice_uses_donor(self):
        parent = simple_input(4)
        donor = packets_input([b"DONOR-A", b"DONOR-B"])
        spliced = 0
        donor_material_seen = False
        for _ in range(200):
            child = self.engine.mutate(parent, splice_donor=donor)
            if child.origin == "splice":
                spliced += 1
                payloads = [child.payload_of(i) for i in child.packet_indices()]
                if any(b"DONOR" in p for p in payloads):
                    donor_material_seen = True
        assert spliced > 0
        # Havoc may scramble individual spliced packets, but across
        # many tries donor bytes must show up somewhere.
        assert donor_material_seen

    def test_deterministic_given_seed(self):
        parent = simple_input(4)
        a = MutationEngine(DeterministicRandom(7)).mutate(parent)
        b = MutationEngine(DeterministicRandom(7)).mutate(parent)
        assert [o.args for o in a.ops] == [o.args for o in b.ops]

    def test_deterministic_children_bounded(self):
        parent = simple_input(3)
        children = self.engine.deterministic_children(parent, budget=10)
        assert 0 < len(children) <= 10
        assert all(c.origin == "det" for c in children)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_mutation_never_crashes(self, seed):
        engine = MutationEngine(DeterministicRandom(seed))
        parent = packets_input([b"", b"x", b"yy" * 100])
        child = engine.mutate(parent)
        assert isinstance(child, FuzzInput)


class TestCorpus:
    def test_add_and_cycle(self):
        corpus = Corpus(DeterministicRandom(0))
        for i in range(5):
            corpus.add(simple_input(i + 1))
        seen = {corpus.next_entry().entry_id for _ in range(50)}
        assert len(seen) >= 3

    def test_empty_raises(self):
        with pytest.raises(IndexError):
            Corpus(DeterministicRandom(0)).next_entry()

    def test_splice_donor_excludes_self(self):
        corpus = Corpus(DeterministicRandom(0))
        only = corpus.add(simple_input())
        assert corpus.splice_donor(only) is None
        corpus.add(simple_input())
        assert corpus.splice_donor(only) is not None

    def test_favored_refresh(self):
        corpus = Corpus(DeterministicRandom(0))
        fast = corpus.add(simple_input(), exec_time=0.001, new_edges=10)
        slow = corpus.add(simple_input(), exec_time=1.0, new_edges=1)
        assert fast.favored

    def test_fuzzable_packets_respects_consumed(self):
        corpus = Corpus(DeterministicRandom(0))
        entry = corpus.add(simple_input(10), packets_consumed=4)
        assert entry.fuzzable_packets() == 4
        entry2 = corpus.add(simple_input(3), packets_consumed=0)
        assert entry2.fuzzable_packets() == 3


class TestPolicies:
    def entry(self, n_packets, consumed=0):
        return QueueEntry(0, simple_input(n_packets),
                          effective_packets=consumed)

    def test_none_policy(self):
        policy = NonePolicy()
        assert policy.choose(self.entry(20), DeterministicRandom(0)) is None

    def test_balanced_small_inputs_use_root(self):
        policy = BalancedPolicy()
        rng = DeterministicRandom(0)
        for _ in range(50):
            assert policy.choose(self.entry(4), rng) is None

    def test_balanced_distribution(self):
        policy = BalancedPolicy()
        rng = DeterministicRandom(1)
        entry = self.entry(20)
        picks = [policy.choose(entry, rng) for _ in range(500)]
        roots = sum(1 for p in picks if p is None)
        assert 0 < roots < 50  # ~4%
        indices = [p for p in picks if p is not None]
        assert all(0 <= p < 20 for p in indices)
        second_half = sum(1 for p in indices if p >= 10)
        assert second_half > len(indices) * 0.5  # biased towards the end

    def test_aggressive_starts_at_end_and_walks_back(self):
        policy = AggressivePolicy()
        rng = DeterministicRandom(0)
        entry = self.entry(10)
        first = policy.choose(entry, rng)
        assert first == 8  # after the second-to-last packet
        policy.feedback(entry, False, AGGRESSIVE_PATIENCE)
        assert policy.choose(entry, rng) == 7

    def test_aggressive_wraps_to_end(self):
        policy = AggressivePolicy()
        rng = DeterministicRandom(0)
        entry = self.entry(6)
        for _ in range(20):
            policy.choose(entry, rng)
            policy.feedback(entry, False, AGGRESSIVE_PATIENCE)
        # After wrapping, the cursor must be back in range.
        assert policy.choose(entry, rng) in range(0, 5)

    def test_aggressive_success_resets_patience(self):
        policy = AggressivePolicy()
        rng = DeterministicRandom(0)
        entry = self.entry(10)
        start = policy.choose(entry, rng)
        policy.feedback(entry, True, AGGRESSIVE_PATIENCE)
        assert policy.choose(entry, rng) == start

    def test_aggressive_respects_consumed_packets(self):
        policy = AggressivePolicy()
        rng = DeterministicRandom(0)
        entry = self.entry(20, consumed=8)
        assert policy.choose(entry, rng) == 6

    def test_factory(self):
        assert make_policy("NONE").name == "none"
        assert make_policy("balanced").name == "balanced"
        assert make_policy("aggressive").name == "aggressive"
        with pytest.raises(ValueError):
            make_policy("bogus")
