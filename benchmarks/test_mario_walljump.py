"""§5.3's 2-1 claim: the wall-jump glitch makes the level solvable.

"Nyx-Net is routinely able to solve a level (2-1) by exploiting a
wall jump glitch.  IJON was unable to find this glitch and the authors
of IJON believed 2-1 might be impossible to solve."

We verify the mechanism directly (the pit is uncrossable by a regular
jump; a scripted wall-jump crosses it) and the "faster than light"
arithmetic of §5.3 (52-core aggregate throughput vs the speedrun).
"""

from __future__ import annotations

from repro.mario.engine import Buttons, MarioEngine
from repro.mario.levels import GROUND_ROW, load_level
from repro.mario.solver import solve_level, speedrun_seconds


def _pit_bounds(level):
    """The 2-1 signature pit: the gap ending in the sheer wall."""
    gap_start = None
    run = 0
    for col in range(8, level.width - 8):
        if (col, GROUND_ROW) not in level.solids:
            if run == 0:
                gap_start = col
            run += 1
        else:
            if run >= 4 and (col, GROUND_ROW - 5) in level.solids:
                return gap_start, run  # gap bounded by a tall wall
            run = 0
    raise AssertionError("2-1 should contain the wall-bounded pit")


def test_21_pit_uncrossable_by_regular_jump(benchmark):
    def attempt():
        level = load_level("2-1")
        gap_start, gap = _pit_bounds(level)
        engine = MarioEngine(level)
        run = int(Buttons.RIGHT | Buttons.B)
        jump = run | int(Buttons.A)
        best = 0.0
        # Try every takeoff frame for a single full jump (A released
        # after the press window: no glitch re-trigger possible).
        for jump_at in range(20, 200):
            state = engine.new_game()
            for frame in range(1200):
                engine.step(state, jump if jump_at <= frame < jump_at + 18
                            else run)
                if not state.alive or state.won:
                    break
            best = max(best, state.max_x)
            # Never past the wall without the glitch.
            assert state.max_x < gap_start + gap + 1
        return best

    benchmark.pedantic(attempt, rounds=1, iterations=1)


def test_21_wall_jump_crosses_the_pit(benchmark):
    def attempt():
        level = load_level("2-1")
        gap_start, gap = _pit_bounds(level)
        engine = MarioEngine(level)
        run = int(Buttons.RIGHT | Buttons.B)
        jump = run | int(Buttons.A)
        # Jump into the wall face and keep holding A while pushing
        # right: every falling wall contact re-triggers the glitch
        # jump, climbing the face (exactly the tape the fuzzer's
        # all-jump dictionary token produces).
        for jump_at in range(20, 120):
            state = engine.new_game()
            for frame in range(1200):
                buttons = run if frame < jump_at else jump
                engine.step(state, buttons)
                if not state.alive:
                    break
                if state.max_x > gap_start + gap + 1:
                    return True
        return False

    crossed = benchmark.pedantic(attempt, rounds=1, iterations=1)
    assert crossed, "the wall-jump glitch must make the 2-1 pit crossable"


def test_faster_than_light_arithmetic(benchmark):
    """§5.3: 52 parallel instances beat a flawless speedrun on 1-1."""
    def check():
        result = solve_level("1-1", "nyx-aggressive", seed=0, max_execs=8000)
        return result

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    if not result.solved:
        return  # covered by Table 4; no claim possible this run
    wall_52_cores = result.time_to_solve / 52.0
    light = speedrun_seconds("1-1")
    print("\n1-1: solved in %.1fs sim; /52 cores = %.1fs; speedrun = %.1fs"
          % (result.time_to_solve, wall_52_cores, light))
    assert wall_52_cores < light * 3, (
        "52-core Nyx-Net should approach (or beat) speedrun time")
