"""Property-based tests on the mutation engine's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.input import packets_input
from repro.fuzz.mutators import MutationEngine, _digit_runs
from repro.sim.rng import DeterministicRandom
from repro.spec.bytecode import deserialize, serialize, validate
from repro.spec.nodes import default_network_spec

SPEC = default_network_spec()
NODE_VOCAB = {node.name for node in SPEC.node_types}

payloads_strategy = st.lists(st.binary(max_size=120), min_size=1, max_size=12)
dict_strategy = st.lists(st.binary(min_size=1, max_size=16), max_size=4)


@given(payloads_strategy, st.integers(0, 2**31), dict_strategy)
@settings(max_examples=120, deadline=None)
def test_children_always_validate(payloads, seed, dictionary):
    """Any mutated child remains a well-typed op sequence: the fuzzer
    never produces inputs the bytecode serializer would reject."""
    parent = packets_input(payloads)
    engine = MutationEngine(DeterministicRandom(seed), dictionary)
    for _ in range(5):
        child = engine.mutate(parent)
        validate(SPEC, child.ops)


@given(payloads_strategy, st.integers(0, 2**31),
       st.integers(0, 12), dict_strategy)
@settings(max_examples=120, deadline=None)
def test_prefix_immutable_under_from_index(payloads, seed, from_index,
                                           dictionary):
    """Suffix fuzzing may never rewrite ops before the snapshot point
    (§4.3: 'the fuzzer continues fuzzing starting from the next packet
    only')."""
    parent = packets_input(payloads)
    engine = MutationEngine(DeterministicRandom(seed), dictionary)
    child = engine.mutate(parent, from_index=from_index)
    bound = min(from_index, len(parent.ops))
    for i in range(bound):
        assert child.ops[i].node == parent.ops[i].node
        assert child.ops[i].args == parent.ops[i].args


@given(payloads_strategy, st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_splice_children_validate(payloads, seed):
    parent = packets_input(payloads)
    donor = packets_input([b"donor-1", b"donor-2", b"donor-3"])
    engine = MutationEngine(DeterministicRandom(seed))
    for _ in range(5):
        child = engine.mutate(parent, splice_donor=donor)
        validate(SPEC, child.ops)


@given(st.binary(max_size=60))
@settings(max_examples=80)
def test_digit_runs_are_exact(data):
    runs = _digit_runs(bytearray(data))
    covered = set()
    for start, end in runs:
        assert start < end
        assert all(0x30 <= data[i] <= 0x39 for i in range(start, end))
        # maximal: neighbors are not digits
        if start > 0:
            assert not 0x30 <= data[start - 1] <= 0x39
        if end < len(data):
            assert not 0x30 <= data[end] <= 0x39
        covered.update(range(start, end))
    for i, byte in enumerate(data):
        if 0x30 <= byte <= 0x39:
            assert i in covered


@given(payloads_strategy, st.integers(0, 2**31), dict_strategy)
@settings(max_examples=100, deadline=None)
def test_children_round_trip_through_bytecode(payloads, seed, dictionary):
    """serialize ∘ deserialize is the identity on mutated children:
    what a worker exports during corpus sync (or persists to disk) is
    exactly what the peer reconstructs."""
    parent = packets_input(payloads)
    engine = MutationEngine(DeterministicRandom(seed), dictionary)
    donor = packets_input([b"USER x", b"PASS y"])
    for _ in range(5):
        child = engine.mutate(parent, splice_donor=donor)
        restored = deserialize(SPEC, serialize(SPEC, child.ops))
        assert [(op.node, tuple(op.refs), tuple(op.args))
                for op in restored] == \
            [(op.node, tuple(op.refs), tuple(op.args)) for op in child.ops]


@given(payloads_strategy, st.integers(0, 2**31), dict_strategy)
@settings(max_examples=100, deadline=None)
def test_children_preserve_packet_boundary_structure(payloads, seed,
                                                     dictionary):
    """Mutations rearrange *packets* only: every op stays in the spec
    vocabulary, every packet op carries exactly one payload, and the
    non-packet skeleton (connection/shutdown ops) survives unchanged —
    snapshot placement indexes packets, so boundaries must stay crisp."""
    parent = packets_input(payloads)
    skeleton = [(op.node, op.refs, op.args) for i, op in enumerate(parent.ops)
                if i not in set(parent.packet_indices())]
    engine = MutationEngine(DeterministicRandom(seed), dictionary)
    for _ in range(8):
        child = engine.mutate(parent)
        packet_at = set(child.packet_indices())
        for i, op in enumerate(child.ops):
            assert op.node in NODE_VOCAB
            payload_args = [a for a in op.args
                            if isinstance(a, (bytes, bytearray))]
            if i in packet_at:
                assert len(payload_args) == 1
            else:
                assert payload_args == []
        assert [(op.node, op.refs, op.args)
                for i, op in enumerate(child.ops)
                if i not in packet_at] == skeleton


@given(payloads_strategy, st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_mutation_is_pure_wrt_parent(payloads, seed):
    parent = packets_input(payloads)
    snapshot = [(op.node, op.refs, op.args) for op in parent.ops]
    engine = MutationEngine(DeterministicRandom(seed), [b"TOK"])
    for _ in range(10):
        engine.mutate(parent)
    assert [(op.node, op.refs, op.args) for op in parent.ops] == snapshot
