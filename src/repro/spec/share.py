"""Share-folder bundling (§5.4 step 4).

Nyx campaigns are driven from a *share folder*: "the packer script
[...] copies the target, all of its dependencies, and the seeds into
the share folder.  It also parses the specification and auto-generates
the LD_PRELOAD library."  Our analogue bundles everything a campaign
needs into one directory:

    <share>/manifest.json     target name, surface config, spec shape
    <share>/spec.json         serialized specification
    <share>/seeds/*.nyx       flat-bytecode seed inputs
    <share>/dict/*.tok        dictionary tokens (one file each)

``pack_share`` writes it, ``load_share`` reconstructs the pieces —
so a campaign can be shipped to another machine (or checked into a
repo) and re-run bit-identically.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Tuple

from repro.emu.surface import AttackSurface, SurfaceMode
from repro.fuzz.input import FuzzInput
from repro.spec.bytecode import SpecError, deserialize, serialize
from repro.spec.nodes import Spec
from repro.spec.types import ByteVec, U8, U16, U32
from repro.targets.base import TargetProfile

_TYPE_NAMES = {"u8": U8, "u16": U16, "u32": U32}


def spec_to_dict(spec: Spec) -> Dict:
    """Serialize a spec's shape to a JSON-able dict."""
    return {
        "name": spec.name,
        "edges": [edge.name for edge in spec.edge_types],
        "nodes": [
            {
                "name": node.name,
                "outputs": [e.name for e in node.outputs],
                "borrows": [e.name for e in node.borrows],
                "consumes": [e.name for e in node.consumes],
                "data": [_dtype_to_dict(d) for d in node.data],
            }
            for node in spec.node_types
        ],
    }


def _dtype_to_dict(dtype) -> Dict:
    if isinstance(dtype, ByteVec):
        return {"kind": "vec", "name": dtype.name,
                "element": _dtype_to_dict(dtype.element)}
    for key, cls in _TYPE_NAMES.items():
        if type(dtype) is cls:
            return {"kind": key, "name": dtype.name}
    raise SpecError("unserializable data type %r" % dtype)


def spec_from_dict(data: Dict) -> Spec:
    """Rebuild a spec from :func:`spec_to_dict` output."""
    spec = Spec(data["name"])
    edges = {name: spec.edge_type(name) for name in data["edges"]}
    for node in data["nodes"]:
        spec.node_type(
            node["name"],
            outputs=[edges[n] for n in node["outputs"]],
            borrows=[edges[n] for n in node["borrows"]],
            consumes=[edges[n] for n in node["consumes"]],
            data=[_dtype_from_dict(spec, d) for d in node["data"]],
        )
    return spec


def _dtype_from_dict(spec: Spec, data: Dict):
    if data["kind"] == "vec":
        return ByteVec(data["name"], _dtype_from_dict(spec, data["element"]))
    return _TYPE_NAMES[data["kind"]](data["name"])


def pack_share(profile: TargetProfile, spec: Spec,
               directory: str) -> int:
    """Bundle a profile's campaign inputs; returns files written."""
    root = pathlib.Path(directory)
    seeds_dir = root / "seeds"
    dict_dir = root / "dict"
    seeds_dir.mkdir(parents=True, exist_ok=True)
    dict_dir.mkdir(parents=True, exist_ok=True)
    written = 0
    for index, seed in enumerate(profile.seeds()):
        (seeds_dir / ("seed_%03d.nyx" % index)).write_bytes(
            serialize(spec, seed.ops))
        written += 1
    for index, token in enumerate(profile.dictionary):
        (dict_dir / ("tok_%03d.tok" % index)).write_bytes(bytes(token))
        written += 1
    surface = profile.surface()
    manifest = {
        "target": profile.name,
        "protocol": profile.protocol,
        "notes": profile.notes,
        "surface": {
            "mode": surface.mode.value,
            "addresses": list(surface.addresses),
            "datagram": surface.datagram,
            "max_connections": surface.max_connections,
        },
        "startup_cost": profile.startup_cost,
    }
    (root / "manifest.json").write_text(json.dumps(manifest, indent=2))
    (root / "spec.json").write_text(json.dumps(spec_to_dict(spec), indent=2))
    return written + 2


def load_share(directory: str) -> Tuple[Dict, Spec, List[FuzzInput],
                                        List[bytes], AttackSurface]:
    """Load a share folder: (manifest, spec, seeds, dictionary, surface)."""
    root = pathlib.Path(directory)
    manifest = json.loads((root / "manifest.json").read_text())
    spec = spec_from_dict(json.loads((root / "spec.json").read_text()))
    seeds: List[FuzzInput] = []
    for path in sorted((root / "seeds").glob("*.nyx")):
        seeds.append(FuzzInput(deserialize(spec, path.read_bytes()),
                               origin="share"))
    dictionary = [path.read_bytes()
                  for path in sorted((root / "dict").glob("*.tok"))]
    raw = manifest["surface"]
    surface = AttackSurface(
        mode=SurfaceMode(raw["mode"]),
        addresses=list(raw["addresses"]),
        datagram=raw["datagram"],
        max_connections=raw["max_connections"],
    )
    return manifest, spec, seeds, dictionary, surface
