"""Differential tests for the pluggable coverage backends and
prefix-trace elision.

The contract under test: backend choice (``settrace`` vs
``sys.monitoring``) and prefix-trace elision are pure host-side
performance knobs — edge maps, hit-count buckets, IJON slots and the
campaign ``stats_checksum`` must come out byte-identical however the
trace was collected.  The monitoring half runs only on CPython 3.12+
(PEP 669); everything else runs everywhere.
"""

import sys

import pytest

from repro.coverage.backends import (BACKEND_CHOICES, BackendUnavailable,
                                     default_backend_name, make_tracer,
                                     resolve_backend_name)
from repro.coverage.tracer import EdgeTracer
from repro.emu.interceptor import Interceptor
from repro.emu.surface import AttackSurface
from repro.fuzz.campaign import build_campaign, build_parallel_campaign
from repro.fuzz.executor import NyxExecutor
from repro.fuzz.input import FuzzInput, packets_input
from repro.fuzz.stats import CampaignStats
from repro.guestos.kernel import Kernel
from repro.perf.macro import stats_checksum
from repro.spec.bytecode import Op
from repro.targets.lightftp import PROFILE as LIGHTFTP
from repro.vm.machine import Machine

from tests.helpers import EchoServer

HAS_MONITORING = hasattr(sys, "monitoring")

needs_monitoring = pytest.mark.skipif(
    not HAS_MONITORING, reason="sys.monitoring needs CPython 3.12+")


def traced_echo(backend="settrace", trace_elision=True):
    """Echo rig whose guest code is actually traced (the default
    fragments only match target modules, not tests.helpers)."""
    machine = Machine(memory_bytes=16 * 1024 * 1024)
    kernel = Kernel(machine)
    interceptor = Interceptor(kernel, AttackSurface.tcp_server(7))
    kernel.spawn(EchoServer(7))
    kernel.run()
    kernel.flush_to_memory(full=True)
    machine.capture_root()
    tracer = make_tracer(backend, traced_fragments=("helpers",))
    executor = NyxExecutor(machine, kernel, interceptor, tracer,
                           trace_elision=trace_elision)
    return machine, kernel, interceptor, executor


# ----------------------------------------------------------------------
# backend registry / selection
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_choices(self):
        assert BACKEND_CHOICES == ("auto", "settrace", "monitoring")

    def test_default_matches_interpreter(self):
        expected = "monitoring" if HAS_MONITORING else "settrace"
        assert default_backend_name() == expected
        assert resolve_backend_name("auto") == expected
        assert resolve_backend_name() == expected

    def test_explicit_settrace_resolves(self):
        assert resolve_backend_name("settrace") == "settrace"

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendUnavailable):
            resolve_backend_name("qemu")

    @pytest.mark.skipif(HAS_MONITORING,
                        reason="monitoring IS available here")
    def test_monitoring_unavailable_raises(self):
        with pytest.raises(BackendUnavailable) as err:
            resolve_backend_name("monitoring")
        assert "3.12" in str(err.value)

    @pytest.mark.skipif(HAS_MONITORING,
                        reason="monitoring IS available here")
    def test_parallel_campaign_fails_fast_on_bad_backend(self):
        # The eager check fires before the golden VM boots (workers
        # only build their tracers lazily inside run()).
        with pytest.raises(BackendUnavailable):
            build_parallel_campaign(LIGHTFTP, workers=2,
                                    coverage_backend="monitoring")

    def test_make_tracer_settrace(self):
        tracer = make_tracer("settrace")
        assert isinstance(tracer, EdgeTracer)
        assert tracer.backend_name == "settrace"

    def test_make_tracer_kwargs_pass_through(self):
        tracer = make_tracer("settrace", fold_memo_limit=7,
                             traced_fragments=("x",))
        assert tracer.fold_memo_limit == 7
        assert tracer.traced_fragments == ("x",)

    @needs_monitoring
    def test_make_tracer_monitoring(self):
        from repro.coverage.monitoring import MonitoringTracer, deactivate
        tracer = make_tracer("monitoring")
        try:
            assert isinstance(tracer, MonitoringTracer)
            assert tracer.backend_name == "monitoring"
        finally:
            deactivate()


# ----------------------------------------------------------------------
# fold-memo LRU bound
# ----------------------------------------------------------------------


def _branchy(n):
    total = 0
    for i in range(n):
        if i % 2:
            total += i
        else:
            total -= i
    return total


class TestFoldMemoBound:
    def test_cache_stays_bounded_and_counts_evictions(self):
        tracer = EdgeTracer(traced_fragments=("test_coverage_backends",),
                            fold_memo_limit=4)
        for n in range(10):
            tracer.begin()
            tracer.run(_branchy, n)
            tracer.take_trace()
        assert len(tracer._fold_cache) <= 4
        assert tracer.fold_evictions > 0

    def test_refold_after_eviction_is_identical(self):
        # An evicted stream re-folds to the same trace a fresh,
        # unbounded tracer computes: the memo is a cache, not state.
        small = EdgeTracer(traced_fragments=("test_coverage_backends",),
                           fold_memo_limit=2)
        first = {}
        for n in (3, 4, 5, 6):
            small.begin()
            small.run(_branchy, n)
            trace = dict(small.take_trace())
            if n == 3:
                first = trace
        small.begin()
        small.run(_branchy, 3)  # 3 was evicted by now
        refolded = dict(small.take_trace())
        assert refolded == first

        fresh = EdgeTracer(traced_fragments=("test_coverage_backends",))
        fresh.begin()
        fresh.run(_branchy, 3)
        assert dict(fresh.take_trace()) == first

    def test_campaign_stamps_eviction_counter(self):
        handles = build_campaign(LIGHTFTP, policy="balanced", seed=2,
                                 time_budget=1e9, max_execs=80,
                                 coverage_backend="settrace")
        handles.executor.tracer.fold_memo_limit = 2
        stats = handles.fuzzer.run_campaign()
        assert stats.fold_memo_evictions > 0
        assert stats.coverage_backend == "settrace"


# ----------------------------------------------------------------------
# host counters stay out of the sim-pure stats dict
# ----------------------------------------------------------------------


class TestHostCounterPurity:
    HOST_KEYS = ("coverage_backend", "prefix_elisions", "prefix_elided_ops",
                 "elision_invalidations", "fold_memo_evictions",
                 "checkpoints_written", "checkpoint_epochs_pruned",
                 "checkpoint_verifications", "checkpoint_divergences",
                 "chain_pushes", "chain_commits", "chain_restores",
                 "chain_deepest")

    def test_as_dict_excludes_host_counters(self):
        stats = CampaignStats()
        stats.coverage_backend = "settrace"
        stats.prefix_elisions = 9
        as_dict = stats.as_dict()
        for key in self.HOST_KEYS:
            assert key not in as_dict
        counters = stats.host_counters()
        assert set(counters) == set(self.HOST_KEYS)
        assert counters["prefix_elisions"] == 9

    def test_merge_sums_host_counters(self):
        a, b = CampaignStats(), CampaignStats()
        a.prefix_elisions, b.prefix_elisions = 2, 3
        a.fold_memo_evictions, b.fold_memo_evictions = 1, 4
        b.coverage_backend = "settrace"
        merged = CampaignStats.merge([a, b])
        assert merged.prefix_elisions == 5
        assert merged.fold_memo_evictions == 5
        assert merged.coverage_backend == "settrace"

    def test_checksum_blind_to_host_counters(self):
        stats = CampaignStats()
        before = stats_checksum(stats)
        stats.prefix_elisions = 1000
        stats.fold_memo_evictions = 50
        stats.coverage_backend = "monitoring"
        assert stats_checksum(stats) == before


# ----------------------------------------------------------------------
# prefix-trace elision: elided == fully traced
# ----------------------------------------------------------------------


class TestPrefixElision:
    def test_from_root_elision_matches_full_trace(self):
        machine, kernel, interceptor, executor = traced_echo()
        base = packets_input([b"alpha", b"beta", b"gamma", b"delta"])
        parent = executor.run_full(base)
        assert parent.recording is not None
        assert parent.recording.packed  # the echo server IS traced
        assert executor.remember_trace(1, parent)

        child = base.copy()
        child.with_payload(3, b"MUTATED")  # ops 0..2 still shared
        elided = executor.run_full(child, parent_key=1)
        assert executor.prefix_elisions == 1
        assert executor.prefix_elided_ops > 0

        executor.trace_elision = False
        reference = executor.run_full(child)
        assert elided.trace == reference.trace
        assert elided.trace  # and it is not trivially empty

    def test_whole_run_elision_reproduces_parent_trace(self):
        machine, kernel, interceptor, executor = traced_echo()
        base = packets_input([b"one", b"two", b"three"])
        parent = executor.run_full(base)
        executor.remember_trace(1, parent)
        rerun = executor.run_full(base, parent_key=1)
        assert executor.prefix_elisions == 1
        assert rerun.trace == parent.trace

    def test_suffix_elision_matches_full_trace(self):
        # Marker-op snapshots leave the recording unclamped (the marker
        # charges every run of these ops identically), so suffix runs
        # elide their unmutated sub-prefix against the capture run.
        machine, kernel, interceptor, executor = traced_echo()
        ops = [Op("connection"), Op("packet", (0,), (b"aa",)),
               Op("packet", (0,), (b"bb",)), Op("snapshot"),
               Op("packet", (0,), (b"cc",)), Op("packet", (0,), (b"dd",))]
        base = FuzzInput(ops)
        executor.run_full(base)
        child = base.copy()
        child.with_payload(5, b"XX")  # op 4 (cc) still shared
        elided = executor.run_suffix(child)
        assert executor.prefix_elisions >= 1
        executor.trace_elision = False
        reference = executor.run_suffix(child)
        assert elided.trace == reference.trace
        assert elided.trace

    def test_policy_snapshot_clamps_elision(self):
        # A policy-chosen snapshot charges the sim clock mid-run; a
        # child eliding against the capture recording must stop at the
        # snapshot op, never elide the whole run.
        machine, kernel, interceptor, executor = traced_echo()
        base = packets_input([b"p1", b"p2", b"p3"])
        parent = executor.run_full(base, snapshot_after_packet=1)
        assert parent.recording.charge_index is not None
        executor.remember_trace(1, parent)
        executor.finish_snapshot_cycle()
        rerun = executor.run_full(base, parent_key=1)
        # Elided ops never exceed the charge clamp.
        assert executor.prefix_elided_ops <= parent.recording.charge_index
        executor.trace_elision = False
        executor.finish_snapshot_cycle()
        reference = executor.run_full(base)
        assert rerun.trace == reference.trace

    def test_elision_disarmed_while_injector_armed(self):
        from repro.faults import FaultInjector, FaultPlan
        machine, kernel, interceptor, executor = traced_echo()
        base = packets_input([b"x", b"y", b"z"])
        parent = executor.run_full(base)
        executor.remember_trace(1, parent)
        injector = FaultInjector(FaultPlan(seed=0, rate=0.0))
        interceptor.injector = injector
        machine.snapshots.injector = injector
        rerun = executor.run_full(base, parent_key=1)
        assert executor.prefix_elisions == 0
        assert rerun.trace == parent.trace  # rate 0: nothing injected

    def test_recording_cache_is_lru_bounded(self):
        machine, kernel, interceptor, executor = traced_echo()
        executor.recording_cache_limit = 2
        for key, payload in enumerate([b"a", b"b", b"c"]):
            result = executor.run_full(packets_input([payload, b"t"]))
            executor.remember_trace(key, result)
        assert len(executor._recordings) == 2
        assert 0 not in executor._recordings  # oldest evicted
        # A child keyed to the evicted parent just runs fully traced.
        before = executor.prefix_elisions
        executor.run_full(packets_input([b"a", b"t"]), parent_key=0)
        assert executor.prefix_elisions == before

    def test_remember_trace_replace_false_keeps_existing(self):
        machine, kernel, interceptor, executor = traced_echo()
        first = executor.run_full(packets_input([b"a", b"b"]))
        second = executor.run_full(packets_input([b"a", b"b"]))
        assert executor.remember_trace(1, first)
        assert not executor.remember_trace(1, second, replace=False)
        assert executor._recordings[1] is first.recording


# ----------------------------------------------------------------------
# stale-fold invalidation (regression: heal must drop recordings)
# ----------------------------------------------------------------------


class TestElisionInvalidation:
    @staticmethod
    def _rig_with_recording():
        machine, kernel, interceptor, executor = traced_echo()
        ops = [Op("connection"), Op("packet", (0,), (b"pre",)),
               Op("snapshot"), Op("packet", (0,), (b"post",))]
        base = FuzzInput(ops)
        parent = executor.run_full(base)
        executor.remember_trace(1, parent)
        child = base.copy()
        child.with_payload(3, b"CHILD")
        return machine, executor, base, child

    @staticmethod
    def _tamper(rec):
        # Stand-in for any event that makes a cached fold stale: the
        # recorded site stream no longer describes what the prefix
        # would cover.
        assert rec.packed
        rec.packed = bytes(len(rec.packed))

    @staticmethod
    def _ground_truth(executor, base, child):
        # From-root reference trace of the child with elision off.
        # Marker runs park the machine on the incremental snapshot, so
        # return to the root first — and again after — to keep every
        # from-root run in this test starting from identical state.
        executor.finish_snapshot_cycle()
        executor.trace_elision = False
        trace = executor.run_full(child).trace
        executor.trace_elision = True
        executor.finish_snapshot_cycle()
        # Re-establish the incremental snapshot the heal path needs.
        executor.run_full(base)
        return trace

    def test_heal_invalidates_recordings(self):
        machine, executor, base, child = self._rig_with_recording()
        ground_truth = self._ground_truth(executor, base, child)

        self._tamper(executor._recordings[1])
        machine.snapshots.discard_incremental()  # force the heal path
        executor.run_suffix(base)
        assert executor.elision_invalidations >= 1
        assert not executor._recordings
        assert executor._suffix.capture_rec is None

        # With the recordings dropped, the child runs fully traced and
        # the tampered fold can do no harm.
        executor.finish_snapshot_cycle()
        healed = executor.run_full(child, parent_key=1)
        assert healed.trace == ground_truth

    def test_missing_invalidation_would_corrupt_traces(self):
        # Inject the bug: neuter the invalidation hook and show the
        # differential assertion above really would catch its absence —
        # the stale fold is served and the trace comes out wrong.
        machine, executor, base, child = self._rig_with_recording()
        ground_truth = self._ground_truth(executor, base, child)

        executor.invalidate_trace_recordings = lambda: None  # the bug
        self._tamper(executor._recordings[1])
        machine.snapshots.discard_incremental()
        executor.run_suffix(base)
        assert 1 in executor._recordings  # stale recording survived

        executor.finish_snapshot_cycle()
        bugged = executor.run_full(child, parent_key=1)
        assert executor.prefix_elisions >= 1
        assert bugged.trace != ground_truth


# ----------------------------------------------------------------------
# settrace <-> monitoring differential suite (CPython 3.12+)
# ----------------------------------------------------------------------


def _shape_loop_branch(n):
    total = 0
    for i in range(n):
        if i % 3 == 0:
            total += i
        elif i % 3 == 1:
            total -= i
    return total


def _shape_one_line_while(n):
    while n > 0: n -= 1  # noqa: E701 - one-line while is the point
    return n


def _shape_comprehensions(n):
    squares = [i * i for i in range(n)]
    odds = {i for i in squares if i % 2}
    return sum(squares) + len(odds)


def _shape_generator(n):
    def gen():
        for i in range(n):
            yield i * 2
    return sum(gen())


def _shape_exceptions(n):
    total = 0
    for i in range(n):
        try:
            if i % 2:
                raise ValueError(i)
            total += 1
        except ValueError:
            total += 2
    return total


def _shape_recursion(n):
    if n <= 1:
        return 1
    return n * _shape_recursion(n - 1)


def _shape_nested_calls(n):
    def inner(x):
        return x + 1
    total = 0
    for i in range(n):
        total = inner(total)
    return total


_SHAPES = [
    (_shape_loop_branch, 7),
    (_shape_one_line_while, 5),
    (_shape_comprehensions, 6),
    (_shape_generator, 5),
    (_shape_exceptions, 6),
    (_shape_recursion, 6),
    (_shape_nested_calls, 4),
]


@needs_monitoring
class TestBackendDifferential:
    def _trace_with(self, backend, fn, arg):
        from repro.coverage import monitoring
        tracer = make_tracer(backend,
                             traced_fragments=("test_coverage_backends",))
        try:
            tracer.begin()
            tracer.run(fn, arg)
            trace = dict(tracer.take_trace())
            return trace, bytes(tracer.last_packed)
        finally:
            monitoring.deactivate()

    @pytest.mark.parametrize("fn,arg", _SHAPES,
                             ids=[fn.__name__ for fn, _ in _SHAPES])
    def test_shapes_trace_identically(self, fn, arg):
        settrace_trace, settrace_stream = self._trace_with(
            "settrace", fn, arg)
        monitoring_trace, monitoring_stream = self._trace_with(
            "monitoring", fn, arg)
        assert settrace_trace  # shapes must actually produce coverage
        # Byte-identical site streams, not just equal fold results.
        assert monitoring_stream == settrace_stream
        assert monitoring_trace == settrace_trace

    def test_ijon_slots_identical(self):
        from repro.coverage import monitoring
        traces = {}
        for backend in ("settrace", "monitoring"):
            tracer = make_tracer(backend)
            try:
                tracer.begin()
                tracer.ijon_set(3)
                tracer.ijon_set(3)
                tracer.ijon_set(9)
                traces[backend] = dict(tracer.take_trace())
            finally:
                monitoring.deactivate()
        assert traces["settrace"] == traces["monitoring"]

    def test_campaign_checksums_identical(self):
        from repro.coverage import monitoring
        checksums = {}
        for backend in ("settrace", "monitoring"):
            try:
                handles = build_campaign(LIGHTFTP, policy="balanced",
                                         seed=3, time_budget=1e9,
                                         max_execs=80,
                                         coverage_backend=backend)
                stats = handles.fuzzer.run_campaign()
                checksums[backend] = (stats_checksum(stats),
                                      stats.final_edges)
                assert stats.coverage_backend == backend
            finally:
                monitoring.deactivate()
        assert checksums["settrace"] == checksums["monitoring"]
