"""Specifications: edge types, node types and the spec registry.

A :class:`Spec` declares the interaction vocabulary for one target, as
in Listing 1 of the paper::

    s = Spec("multi-connection")
    d_bytes = s.data_vec("bytes", s.data_u8("u8"))
    e_con = s.edge_type("connection")
    n_con = s.node_type("connection", outputs=[e_con])
    n_pkt = s.node_type("pkt", borrows=[e_con], data=[d_bytes])

Values produced by a node's *outputs* can be *borrowed* (used, possibly
repeatedly) or *consumed* (used up — affine!) by later nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.spec.types import ByteVec, DataType, U8, U16, U32


class SpecError(Exception):
    """Malformed specification or ill-typed op sequence."""


@dataclass(frozen=True)
class EdgeType:
    """A value ("affine") type, e.g. a connection handle."""

    type_id: int
    name: str


@dataclass(frozen=True)
class NodeType:
    """One opcode: what it borrows, consumes, outputs and carries."""

    node_id: int
    name: str
    outputs: Sequence[EdgeType] = ()
    borrows: Sequence[EdgeType] = ()
    consumes: Sequence[EdgeType] = ()
    data: Sequence[DataType] = ()

    @property
    def arity(self) -> int:
        return len(self.borrows) + len(self.consumes)


class Spec:
    """A registry of edge types, node types and data types."""

    #: Reserved node id for the fuzzer-injected snapshot marker (§4.3:
    #: "we introduce a special 'snapshot' opcode that the fuzzer
    #: injects at arbitrary positions in the input stream").
    SNAPSHOT_NODE_ID = 0xFFFF

    def __init__(self, name: str) -> None:
        self.name = name
        self.edge_types: List[EdgeType] = []
        self.node_types: List[NodeType] = []
        self._nodes_by_name: Dict[str, NodeType] = {}

    # -- declaration API (mirrors the paper's) ------------------------------

    def data_u8(self, name: str) -> U8:
        return U8(name)

    def data_u16(self, name: str) -> U16:
        return U16(name)

    def data_u32(self, name: str) -> U32:
        return U32(name)

    def data_vec(self, name: str, element: DataType) -> ByteVec:
        return ByteVec(name, element)

    def edge_type(self, name: str) -> EdgeType:
        edge = EdgeType(len(self.edge_types), name)
        self.edge_types.append(edge)
        return edge

    def node_type(self, name: str, outputs: Sequence[EdgeType] = (),
                  borrows: Sequence[EdgeType] = (),
                  consumes: Sequence[EdgeType] = (),
                  data: Sequence[DataType] = ()) -> NodeType:
        if name in self._nodes_by_name:
            raise SpecError("duplicate node type %r" % name)
        node = NodeType(len(self.node_types), name,
                        tuple(outputs), tuple(borrows), tuple(consumes),
                        tuple(data))
        self.node_types.append(node)
        self._nodes_by_name[name] = node
        return node

    # -- lookup ----------------------------------------------------------------

    def node_by_name(self, name: str) -> NodeType:
        node = self._nodes_by_name.get(name)
        if node is None:
            raise SpecError("unknown node type %r" % name)
        return node

    def node_by_id(self, node_id: int) -> NodeType:
        if not 0 <= node_id < len(self.node_types):
            raise SpecError("unknown node id %d" % node_id)
        return self.node_types[node_id]

    def checksum(self) -> int:
        """Stable hash of the spec shape (embedded in bytecode headers)."""
        shape = tuple(
            (n.name, tuple(e.name for e in n.outputs),
             tuple(e.name for e in n.borrows),
             tuple(e.name for e in n.consumes),
             tuple(d.name for d in n.data))
            for n in self.node_types)
        total = 0
        for item in shape:
            total = (total * 1000003 + _stable_hash(repr(item))) & 0xFFFFFFFF
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Spec(%r, %d nodes)" % (self.name, len(self.node_types))


def _stable_hash(text: str) -> int:
    """FNV-1a, stable across processes (unlike built-in str hash)."""
    value = 0x811C9DC5
    for byte in text.encode():
        value = ((value ^ byte) * 0x01000193) & 0xFFFFFFFF
    return value


def default_network_spec(name: str = "raw-network") -> Spec:
    """The generic default spec "that assumes raw packets" (§5.4).

    Nodes: ``connection`` (opens the hooked connection), ``packet``
    (delivers one raw payload on a connection), ``shutdown`` (consumes
    the connection, closing the write side).
    """
    spec = Spec(name)
    d_bytes = spec.data_vec("bytes", spec.data_u8("u8"))
    e_con = spec.edge_type("connection")
    spec.node_type("connection", outputs=[e_con])
    spec.node_type("packet", borrows=[e_con], data=[d_bytes])
    spec.node_type("shutdown", consumes=[e_con])
    return spec
