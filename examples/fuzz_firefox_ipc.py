#!/usr/bin/env python3
"""The §5.6 case study: fuzzing Firefox's IPC layer.

The privileged parent process serves several Unix-domain channels
(content, gfx) used by sandboxed child processes; the threat model
assumes a compromised child, so everything on those channels is
attacker-controlled.  The agent hooks the channels and the fuzzer
plays the child, mutating tagged actor messages.

The paper: "While fuzzing Firefox, we found three bugs and the Firefox
team found two additional security issues" — our planted bugs mirror
that: three NULL derefs at increasing protocol depth plus a deeper
exploitable use-after-free in actor teardown.

Run:  python examples/fuzz_firefox_ipc.py
"""

from repro import PROFILES, build_campaign


def main() -> None:
    profile = PROFILES["firefox-ipc"]
    print("Target: %s" % profile.notes)
    print("Channels under fuzz: content + gfx Unix sockets")
    print()

    found = {}
    for seed in range(3):
        handles = build_campaign(profile, policy="aggressive", seed=seed,
                                 time_budget=120.0, max_execs=2500)
        stats = handles.fuzzer.run_campaign()
        for bug, record in handles.fuzzer.crashes.records.items():
            found.setdefault(bug, record.found_at)
        print("seed %d: %5d execs, %3d edges, bugs so far: %d"
              % (seed, stats.execs, stats.final_edges, len(found)))

    print()
    print("unique findings (cf. §5.6/§5.7 of the paper):")
    for bug, t in sorted(found.items(), key=lambda kv: kv[1]):
        severity = ("exploitable" if "use-after-free" in bug
                    else "high (null deref)")
        print("  %-40s t=%6.2fs  severity: %s" % (bug, t, severity))
    if not any("use-after-free" in bug for bug in found):
        print("  (the deep actor-teardown UAF needs longer campaigns — "
              "the two 'additional' Mozilla findings were deeper, too)")


if __name__ == "__main__":
    main()
