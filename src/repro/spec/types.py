"""Data types usable in node specifications.

Mirrors Nyx's typed opcode arguments: fixed-width integers and
length-prefixed byte vectors (``s.data_vec("bytes", s.data_u8("u8"))``
from Listing 1 of the paper).
"""

from __future__ import annotations

import struct
from typing import Any, Tuple


class DataType:
    """Base class: knows how to pack/unpack one field value."""

    name = "abstract"

    def pack(self, value: Any) -> bytes:
        raise NotImplementedError

    def unpack(self, data: bytes, offset: int) -> Tuple[Any, int]:
        """Return (value, new_offset)."""
        raise NotImplementedError

    def default(self) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<%s>" % self.name


class _UInt(DataType):
    fmt = "<B"
    width = 1

    def __init__(self, name: str) -> None:
        self.name = name

    def pack(self, value: Any) -> bytes:
        mask = (1 << (8 * self.width)) - 1
        return struct.pack(self.fmt, int(value) & mask)

    def unpack(self, data: bytes, offset: int) -> Tuple[int, int]:
        (value,) = struct.unpack_from(self.fmt, data, offset)
        return value, offset + self.width

    def default(self) -> int:
        return 0


class U8(_UInt):
    fmt = "<B"
    width = 1


class U16(_UInt):
    fmt = "<H"
    width = 2


class U32(_UInt):
    fmt = "<I"
    width = 4


class ByteVec(DataType):
    """A length-prefixed byte vector (the packet payload type)."""

    def __init__(self, name: str, element: DataType) -> None:
        self.name = name
        self.element = element

    def pack(self, value: Any) -> bytes:
        data = bytes(value)
        return struct.pack("<I", len(data)) + data

    def unpack(self, data: bytes, offset: int) -> Tuple[bytes, int]:
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        if offset + length > len(data):
            raise ValueError("byte vector extends past end of bytecode")
        return data[offset:offset + length], offset + length

    def default(self) -> bytes:
        return b""
