"""Fault plans: seed-derived, replayable fault schedules.

A :class:`FaultPlan` is a frozen value object describing *which* faults
a campaign may see and *how often*.  It deliberately contains no
mutable state: the actual decision stream lives in
:class:`~repro.faults.injector.FaultInjector`, which draws from a
:class:`~repro.sim.rng.DeterministicRandom` seeded by the plan.  Two
injectors built from the same plan therefore make identical decisions
at identical decision points, which is what makes any fault-induced
failure replayable from the plan ID alone.

Plan IDs are compact strings (``fp1:<seed>:<rate-ppm>``) suitable for
log lines and CLI round trips: ``--fault-plan fp1:123:100000``
reconstructs the exact plan of a previous ``--seed 123 --fault-rate
0.1`` run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Plan ID format version prefix.
_PLAN_PREFIX = "fp1"


class FaultKind(enum.Enum):
    """The fault taxonomy (see docs/robustness.md)."""

    # Guest-visible network faults, injected at the interceptor
    # boundary (the emulated recv/send/readiness paths).
    SHORT_READ = "short-read"            # recv returns fewer bytes
    EAGAIN_BURST = "eagain-burst"        # a run of spurious EAGAINs
    CONN_RESET = "conn-reset"            # mid-stream ECONNRESET
    PARTIAL_SEND = "partial-send"        # send() transmits a prefix
    DELAYED_READINESS = "delayed-ready"  # readiness lags queued data
    STALL = "stall"                      # target blocks (sim time burn)

    # Host-side faults, injected into the snapshot machinery.
    SNAPSHOT_BITFLIP = "snapshot-bitflip"  # corrupt one CoW mirror page
    SLOW_RESET = "slow-reset"              # restore takes extra time


#: Relative weights of the recv-path fault kinds once a recv fault
#: fires.  Chosen so stalls and transient errors dominate (the classes
#: a watchdog and retry loops must absorb) while hard resets stay rare.
RECV_FAULT_WEIGHTS = (
    (FaultKind.SHORT_READ, 3),
    (FaultKind.EAGAIN_BURST, 3),
    (FaultKind.STALL, 3),
    (FaultKind.CONN_RESET, 1),
)


class PlanError(ValueError):
    """Malformed plan ID."""


@dataclass(frozen=True)
class FaultPlan:
    """A replayable description of a campaign's fault behaviour."""

    seed: int = 0
    #: Base fault probability per decision point (0.0 disables).
    rate: float = 0.0
    #: Simulated seconds one STALL fault burns (the watchdog's prey).
    stall_seconds: float = 0.05
    #: Maximum length of an EAGAIN burst.
    max_burst: int = 3
    #: Simulated seconds of extra reset latency per SLOW_RESET.
    slow_reset_seconds: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise PlanError("fault rate must be in [0, 1]: %r" % self.rate)
        if self.seed < 0:
            raise PlanError("plan seed must be non-negative: %r" % self.seed)

    # -- derived per-site rates -------------------------------------------

    @property
    def recv_rate(self) -> float:
        """Fault probability per intercepted recv."""
        return self.rate

    @property
    def send_rate(self) -> float:
        """PARTIAL_SEND probability per intercepted send."""
        return self.rate / 2.0

    @property
    def readiness_rate(self) -> float:
        """DELAYED_READINESS probability per readiness override."""
        return self.rate / 2.0

    @property
    def snapshot_rate(self) -> float:
        """SNAPSHOT_BITFLIP probability per incremental restore."""
        return self.rate / 2.0

    @property
    def slow_reset_rate(self) -> float:
        """SLOW_RESET probability per snapshot restore."""
        return self.rate / 5.0

    # -- identity ----------------------------------------------------------

    @property
    def plan_id(self) -> str:
        """Compact replayable identity (seed + rate in ppm)."""
        return "%s:%d:%d" % (_PLAN_PREFIX, self.seed,
                             round(self.rate * 1_000_000))

    @classmethod
    def from_id(cls, plan_id: str) -> "FaultPlan":
        """Reconstruct the plan a previous run printed."""
        parts = plan_id.strip().split(":")
        if len(parts) != 3 or parts[0] != _PLAN_PREFIX:
            raise PlanError("bad fault plan id: %r" % plan_id)
        try:
            seed = int(parts[1])
            rate_ppm = int(parts[2])
        except ValueError:
            raise PlanError("bad fault plan id: %r" % plan_id)
        return cls(seed=seed, rate=rate_ppm / 1_000_000)

    @classmethod
    def for_campaign(cls, seed: int, rate: float) -> "FaultPlan":
        """The plan a campaign derives from its own seed and rate."""
        return cls(seed=seed, rate=rate)

    def for_worker(self, worker_id: int) -> "FaultPlan":
        """A decoupled per-worker plan inside a parallel campaign.

        Uses the same golden-ratio stride as the worker RNG seeds so
        worker fault streams never alias each other or the campaign's.
        """
        derived = (self.seed + (worker_id + 1) * 0x9E3779B1) % (1 << 31)
        return FaultPlan(seed=derived, rate=self.rate,
                         stall_seconds=self.stall_seconds,
                         max_burst=self.max_burst,
                         slow_reset_seconds=self.slow_reset_seconds)
