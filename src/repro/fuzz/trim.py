"""Input trimming and corpus distillation.

Two classic corpus-hygiene tools adapted to packet-structured inputs:

* :func:`trim_input` — afl-tmin style: drop packets (and shrink
  payloads) while the input's coverage signature is preserved.
  Shorter inputs replay faster and give snapshot placement fewer,
  more meaningful positions.
* :func:`distill_corpus` — afl-cmin style: greedy set cover selecting
  a minimal subset of inputs that together retain every edge the
  corpus reaches.  Useful before persisting a corpus as seeds.

Both drive real executions through a :class:`NyxExecutor`, so they
charge simulated time like any other fuzzing work.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.coverage.bitmap import BUCKET_LOOKUP
from repro.fuzz.executor import NyxExecutor
from repro.fuzz.input import FuzzInput


def _signature(trace: Dict[int, int], counts: bool = False) -> int:
    """Order-independent hash of a trace.

    By default the *edge set* is hashed: the Python line tracer's hit
    counts shift with every replayed packet, so count-sensitive
    trimming (afl-tmin's exact rule) would refuse nearly all removals.
    Pass ``counts=True`` for the strict classified-count signature.
    """
    if not counts:
        return hash(frozenset(trace))
    lookup = BUCKET_LOOKUP
    total = 0
    for idx, count in trace.items():
        total ^= hash((idx, lookup[count if count < 256 else 255]))
    return total


def trim_input(executor: NyxExecutor, input_: FuzzInput,
               shrink_payloads: bool = True,
               max_execs: int = 64) -> Tuple[FuzzInput, int]:
    """Shrink an input while preserving its coverage signature.

    Returns (trimmed input, executions spent).  The result is always
    signature-equivalent to the original.
    """
    baseline = executor.run_full(input_)
    target_sig = _signature(baseline.trace)
    execs = 1
    current = input_.copy()

    # Pass 1: drop packets back to front (later packets depend on
    # earlier state, not vice versa).
    changed = True
    while changed and execs < max_execs:
        changed = False
        for index in reversed(current.packet_indices()):
            if len(current.packet_indices()) <= 1 or execs >= max_execs:
                break
            candidate = current.copy()
            del candidate.ops[index]
            result = executor.run_full(candidate)
            execs += 1
            if _signature(result.trace) == target_sig:
                current = candidate
                changed = True

    # Pass 2: halve payloads while the signature holds.
    if shrink_payloads:
        for index in current.packet_indices():
            payload = current.payload_of(index)
            while len(payload) > 1 and execs < max_execs:
                candidate = current.copy()
                candidate.with_payload(index, payload[:len(payload) // 2])
                result = executor.run_full(candidate)
                execs += 1
                if _signature(result.trace) != target_sig:
                    break
                current = candidate
                payload = current.payload_of(index)

    current.origin = "trimmed"
    return current, execs


def distill_corpus(executor: NyxExecutor,
                   inputs: Sequence[FuzzInput]) -> List[FuzzInput]:
    """Greedy set cover: the smallest subset retaining all edges.

    Inputs are ranked by (edges contributed, then smaller first), the
    classic afl-cmin strategy.
    """
    traced: List[Tuple[FuzzInput, frozenset]] = []
    for input_ in inputs:
        result = executor.run_full(input_)
        traced.append((input_, frozenset(result.trace)))

    universe = set()
    for _input, edges in traced:
        universe |= edges
    chosen: List[FuzzInput] = []
    covered: set = set()
    remaining = list(traced)
    while covered != universe and remaining:
        remaining.sort(key=lambda pair: (-len(pair[1] - covered),
                                         pair[0].total_payload_bytes()))
        best_input, best_edges = remaining.pop(0)
        gain = best_edges - covered
        if not gain:
            break
        chosen.append(best_input)
        covered |= best_edges
    return chosen
