"""Snapshot placement policies (§3.4 of the paper).

A policy, given the queue entry about to be fuzzed, picks the *packet
index* after which the incremental snapshot is taken — or ``None`` for
the root snapshot.  The three shipped policies match the paper:

* **none** — "a policy that always selects the root snapshot".
* **balanced** — "On inputs with more than four packets, the balanced
  policy chooses the root snapshot in 4% of the cases.  Otherwise it
  selects a random index in the whole (50%), or only in the second
  half (50%)."  Inputs of four or fewer packets use the root.
* **aggressive** — "cycles all available indices [...]  The first time
  an input is scheduled, it creates the snapshot at the end of the
  input.  Each time no new inputs have been found by fuzzing this
  snapshot for 50 iterations, we place the snapshot one packet
  earlier.  When [it] reaches the smallest index, it starts again from
  the end."
"""

from __future__ import annotations

from typing import Optional

from repro.fuzz.queue import QueueEntry
from repro.sim.rng import DeterministicRandom

#: Minimum packet count before non-root snapshots are considered.
MIN_PACKETS_FOR_SNAPSHOT = 5
#: Aggressive policy: fruitless iterations before moving the cursor.
AGGRESSIVE_PATIENCE = 50


class SnapshotPolicy:
    """Interface: choose a snapshot packet index for an entry."""

    name = "abstract"

    def choose(self, entry: QueueEntry, rng: DeterministicRandom) -> Optional[int]:
        """Return a packet *position* (0-based, into the entry's packet
        list) after which to snapshot, or None for the root."""
        raise NotImplementedError

    def feedback(self, entry: QueueEntry, found_new: bool,
                 iterations: int) -> None:
        """Called after a snapshot cycle with its outcome."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<policy %s>" % self.name


class NonePolicy(SnapshotPolicy):
    """Nyx-Net-none: always the root snapshot."""

    name = "none"

    def choose(self, entry: QueueEntry, rng: DeterministicRandom) -> Optional[int]:
        return None


class BalancedPolicy(SnapshotPolicy):
    """Nyx-Net-balanced."""

    name = "balanced"

    def choose(self, entry: QueueEntry, rng: DeterministicRandom) -> Optional[int]:
        n = entry.fuzzable_packets()
        if n < MIN_PACKETS_FOR_SNAPSHOT:
            return None
        if rng.chance(0.04):
            return None
        if rng.chance(0.5):
            return rng.randrange(n - 1)          # anywhere (not the very end,
        return (n // 2) + rng.randrange(n - n // 2 - 1 or 1)  # second half

    def feedback(self, entry: QueueEntry, found_new: bool,
                 iterations: int) -> None:
        pass  # stateless


class AggressivePolicy(SnapshotPolicy):
    """Nyx-Net-aggressive: cycle the cursor from the end towards 0."""

    name = "aggressive"

    def choose(self, entry: QueueEntry, rng: DeterministicRandom) -> Optional[int]:
        n = entry.fuzzable_packets()
        if n < MIN_PACKETS_FOR_SNAPSHOT:
            return None
        last = n - 2  # snapshot after the second-to-last packet at most:
        # snapshotting after the final packet would leave nothing to fuzz.
        if last < 0:
            return None
        if entry.aggr_cursor is None or entry.aggr_cursor > last:
            entry.aggr_cursor = last
        return entry.aggr_cursor

    def feedback(self, entry: QueueEntry, found_new: bool,
                 iterations: int) -> None:
        if found_new:
            entry.aggr_fruitless = 0
            return
        entry.aggr_fruitless += iterations
        if entry.aggr_fruitless >= AGGRESSIVE_PATIENCE:
            entry.aggr_fruitless = 0
            if entry.aggr_cursor is None:
                return
            entry.aggr_cursor -= 1
            if entry.aggr_cursor < 0:
                entry.aggr_cursor = None  # wrap: back to the end next time


def make_policy(name: str) -> SnapshotPolicy:
    """Factory by paper name: none / balanced / aggressive."""
    policies = {
        "none": NonePolicy,
        "balanced": BalancedPolicy,
        "aggressive": AggressivePolicy,
    }
    try:
        return policies[name.lower()]()
    except KeyError:
        raise ValueError("unknown policy %r (want none/balanced/aggressive)"
                         % name)
