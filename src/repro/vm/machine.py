"""The virtual machine: memory + devices + disk + snapshots + clock.

A :class:`Machine` is the host-side object the fuzzer controls.  The
guest OS (:mod:`repro.guestos.kernel`) runs "inside" it, storing all of
its mutable state in guest memory so that snapshot restores genuinely
rewind guest execution.  Components that cache guest state host-side
register ``on_restore`` callbacks and reload themselves from memory
after every restore.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.sim.clock import SimClock
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.vm.devices import DeviceBoard
from repro.vm.disk import EmulatedDisk
from repro.vm.hypercall import Hypercall, HypercallEvent
from repro.vm.memory import GuestMemory, RegionAllocator
from repro.vm.snapshot import (RootSnapshot, SnapshotCorruption,
                               SnapshotManager)

#: Default VM geometry: enough pages for a busy guest without making
#: root snapshot captures slow in host time.
DEFAULT_MEMORY_BYTES = 64 * 1024 * 1024
DEFAULT_DISK_SECTORS = 8192


class Machine:
    """A simulated whole VM with two-level snapshot support."""

    def __init__(self, memory_bytes: int = DEFAULT_MEMORY_BYTES,
                 disk_sectors: int = DEFAULT_DISK_SECTORS,
                 costs: Optional[CostModel] = None,
                 clock: Optional[SimClock] = None,
                 snapshot_verify_every: int = 1) -> None:
        self.costs = costs or DEFAULT_COSTS
        self.clock = clock or SimClock()
        self.memory = GuestMemory(memory_bytes)
        self.devices = DeviceBoard()
        self.disk = EmulatedDisk(disk_sectors)
        self.allocator = RegionAllocator(self.memory)
        self.snapshots = SnapshotManager(
            self.memory, self.devices, self.disk, self.clock, self.costs,
            verify_every=snapshot_verify_every)
        # Boot-time host wiring (restore callbacks, hypercall handler):
        # registered once before the root snapshot, never per-exec.
        self._on_restore: List[Callable[[], None]] = []  # nyx: allow[reset]
        # Fuzzer-facing event log, consumed via drain_hypercalls();
        # hypervisor-side diagnostics, not guest state.
        self._hypercall_log: List[HypercallEvent] = []  # nyx: allow[reset]
        self._hypercall_handler: Optional[Callable[[HypercallEvent], None]] = None  # nyx: allow[reset]
        #: Incremental restores that failed validation and fell back to
        #: the root snapshot (see :meth:`reset_for_next_test`).
        self.snapshot_corruptions = 0

    # -- guest <-> host plumbing ------------------------------------------------

    def on_restore(self, callback: Callable[[], None]) -> None:
        """Register a callback invoked after every snapshot restore."""
        self._on_restore.append(callback)

    def set_hypercall_handler(self, handler: Callable[[HypercallEvent], None]) -> None:
        """Install the fuzzer-side hypercall handler."""
        self._hypercall_handler = handler

    def hypercall(self, call: Hypercall, **payload: Any) -> None:
        """Issue a hypercall from the guest (charges a VM exit)."""
        self.clock.charge(self.costs.context_switch)
        event = HypercallEvent(call, payload)
        self._hypercall_log.append(event)
        if self._hypercall_handler is not None:
            self._hypercall_handler(event)

    def drain_hypercalls(self) -> List[HypercallEvent]:
        """Return and clear the hypercall log."""
        log = self._hypercall_log
        self._hypercall_log = []
        return log

    # -- snapshot operations (fuzzer-facing) -----------------------------------

    def capture_root(self) -> RootSnapshot:
        """Take the root snapshot of the current VM state."""
        return self.snapshots.capture_root()

    def adopt_root(self, root: RootSnapshot) -> None:
        """Share another machine's root snapshot (§5.3 scalability)."""
        self.snapshots.adopt_root(root)
        self._notify_restore()

    def restore_root(self) -> int:
        """Reset to the root snapshot; returns pages reset."""
        n = self.snapshots.restore_root()
        self._notify_restore()
        return n

    def create_incremental(self) -> int:
        """Take the secondary snapshot at the current execution point."""
        return self.snapshots.create_incremental()

    def restore_incremental(self) -> int:
        """Reset to the secondary snapshot; returns pages reset."""
        n = self.snapshots.restore_incremental()
        self._notify_restore()
        return n

    def push_overlay(self) -> int:
        """Stack a new chain layer on the current state; returns pages
        captured."""
        return self.snapshots.push_overlay()

    def restore_to_depth(self, depth: int) -> int:
        """Reset to chain node ``depth``; returns pages reset."""
        n = self.snapshots.restore_to_depth(depth)
        self._notify_restore()
        return n

    def reset_for_next_test(self) -> int:
        """Reset to whichever snapshot is active (deepest chain node,
        else the incremental snapshot, else root).

        Self-healing: a snapshot layer that fails checksum validation
        is discarded (overlay chains are torn down wholesale) and the
        VM falls back to the (immutable, trustworthy) root snapshot
        instead of propagating corrupt state into the next execution.
        Callers holding suffix state notice via
        :attr:`SnapshotManager.incremental_active` going False and
        rebuild from the root.
        """
        snaps = self.snapshots
        if snaps.incremental_active:
            try:
                if snaps.chain_depth > 1:
                    return self.restore_to_depth(snaps.base_depth)
                return self.restore_incremental()
            except SnapshotCorruption:
                self.snapshot_corruptions += 1
        return self.restore_root()

    def _notify_restore(self) -> None:
        for callback in self._on_restore:
            callback()

    # -- introspection ------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Snapshot statistics merged with memory counters."""
        out = self.snapshots.stats.as_dict()
        out["total_pages"] = self.memory.num_pages
        out["pages_ever_dirtied"] = self.memory.total_dirtied
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Machine(%d MiB, t=%.3fs)" % (
            self.memory.size_bytes // (1024 * 1024), self.clock.now)


def unique_page_footprint(machines: Iterable[Machine],
                          roots: Iterable[RootSnapshot] = ()) -> int:
    """Distinct page objects across a fleet of machines plus their
    shared root images — the real memory cost of §5.3's shared root
    snapshots.  Machines holding CoW references into the same root (or
    the zero-page sentinel) contribute each shared page exactly once.
    """
    ids: set = set()
    for root in roots:
        ids.update(root.page_id_set())
    for machine in machines:
        ids.update(machine.snapshots.owned_page_identities())
    return len(ids)
