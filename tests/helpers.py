"""Shared guest programs and fixtures used across the test suite.

These live in an importable module (not inside test functions) because
processes — programs included — are pickled into guest memory.
"""

from __future__ import annotations

from repro.guestos.errors import Errno, GuestError
from repro.guestos.kernel import Kernel
from repro.guestos.process import Program
from repro.guestos.sockets import SockDomain, SockType
from repro.vm.machine import Machine


class EchoServer(Program):
    """Accepts TCP connections on a port and echoes chunks back,
    prefixing each with a running counter (observable state)."""

    name = "echo"

    def __init__(self, port: int = 7) -> None:
        self.port = port
        self.listen_fd = None
        self.conns = []
        self.counter = 0
        self.seen = []

    def on_start(self, api) -> None:
        self.listen_fd = api.socket(SockDomain.INET, SockType.STREAM)
        api.bind(self.listen_fd, self.port)
        api.listen(self.listen_fd)

    def poll(self, api) -> None:
        try:
            fd = api.accept(self.listen_fd)
            self.conns.append(fd)
        except GuestError as err:
            if err.errno is not Errno.EAGAIN:
                raise
        for fd in list(self.conns):
            try:
                data = api.recv(fd)
            except GuestError as err:
                if err.errno is Errno.EAGAIN:
                    continue
                raise
            if data == b"":
                api.close(fd)
                self.conns.remove(fd)
                continue
            self.counter += 1
            self.seen.append(data)
            api.send(fd, b"%d:" % self.counter + data)


class ForkingEchoServer(Program):
    """Echo server that forks a worker per connection (bftpd-style)."""

    name = "forking-echo"

    def __init__(self, port: int = 7) -> None:
        self.port = port
        self.listen_fd = None

    def on_start(self, api) -> None:
        self.listen_fd = api.socket(SockDomain.INET, SockType.STREAM)
        api.bind(self.listen_fd, self.port)
        api.listen(self.listen_fd)

    def poll(self, api) -> None:
        try:
            fd = api.accept(self.listen_fd)
        except GuestError as err:
            if err.errno is Errno.EAGAIN:
                return
            raise
        api.fork_child(EchoWorker(fd))
        api.close(fd)


class EchoWorker(Program):
    """Child process serving one accepted connection."""

    name = "echo-worker"

    def __init__(self, fd: int) -> None:
        self.fd = fd
        self.done = False

    def poll(self, api) -> None:
        if self.done:
            return
        try:
            data = api.recv(self.fd)
        except GuestError as err:
            if err.errno is Errno.EAGAIN:
                return
            raise
        if data == b"":
            api.close(self.fd)
            self.done = True
            api.exit(0)
            return
        api.send(self.fd, b"worker:" + data)


class FileWriter(Program):
    """Writes every received chunk to a guest file (state AFLNet would
    need a cleanup script to undo)."""

    name = "file-writer"

    def __init__(self, port: int = 9000, path: str = "/srv/upload.bin") -> None:
        self.port = port
        self.path = path
        self.listen_fd = None
        self.conn_fd = None

    def on_start(self, api) -> None:
        self.listen_fd = api.socket(SockDomain.INET, SockType.STREAM)
        api.bind(self.listen_fd, self.port)
        api.listen(self.listen_fd)

    def poll(self, api) -> None:
        if self.conn_fd is None:
            try:
                self.conn_fd = api.accept(self.listen_fd)
            except GuestError as err:
                if err.errno is Errno.EAGAIN:
                    return
                raise
        try:
            data = api.recv(self.conn_fd)
        except GuestError as err:
            if err.errno is Errno.EAGAIN:
                return
            raise
        if data:
            fd = api.open(self.path, create=True)
            api.write(fd, data)
            api.close(fd)


def make_machine(memory_mb: int = 16) -> Machine:
    return Machine(memory_bytes=memory_mb * 1024 * 1024)


def boot_echo(port: int = 7):
    """Machine + kernel with a running echo server, root snapshot taken."""
    machine = make_machine()
    kernel = Kernel(machine)
    kernel.spawn(EchoServer(port))
    kernel.run()
    kernel.flush_to_memory(full=True)
    machine.capture_root()
    return machine, kernel
