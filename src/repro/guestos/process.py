"""Guest processes and the program (target) execution model.

Targets run as *programs*: event-driven state machines that the kernel
polls whenever they may be able to make progress.  A program performs
non-blocking syscalls through the :class:`~repro.guestos.kernel.KernelApi`
passed to each callback and simply returns when it would block.  This
mirrors how real event-driven servers are structured and — crucially —
keeps all program state in picklable attributes, so the whole process
(program included) serializes into guest memory and is captured by
whole-VM snapshots.

``fork()``-per-connection servers are modelled with
:meth:`KernelApi.fork_child`: the child receives a cloned fd table
(bumping refcounts on shared sockets, exactly the aliasing the paper's
interceptor must track) and its own program object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.guestos.fds import FdTable


class Program:
    """Base class for guest programs (fuzz targets, helpers).

    Subclasses override the callbacks; all mutable state must live in
    instance attributes (picklable, no references to the kernel or any
    host object).
    """

    #: Human-readable program name (used in crash reports and logs).
    name = "program"
    #: If set, the kernel delivers :meth:`on_timer` roughly every
    #: ``timer_period`` simulated seconds — background activity that
    #: makes non-snapshot fuzzers noisy (§1).
    timer_period: Optional[float] = None

    def on_start(self, api: Any) -> None:
        """Called once when the process starts."""

    def poll(self, api: Any) -> None:
        """Called whenever the process may make progress."""

    def on_timer(self, api: Any) -> None:
        """Called when the process timer fires (if timer_period set)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<%s %r>" % (type(self).__name__, self.name)


@dataclass
class Process:  # nyx: state[memory]
    """A guest process: pid, fd table, program, liveness."""

    pid: int
    ppid: int
    program: Program
    fdtable: FdTable = field(default_factory=FdTable)
    alive: bool = True
    started: bool = False
    exit_code: Optional[int] = None
    crashed: bool = False
    #: Next simulated-time deadline for on_timer, if the program has one.
    timer_deadline: Optional[float] = None
    #: Free-form per-process scratch (environment, cwd, ...).
    env: Dict[str, str] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self.alive else (
            "crashed" if self.crashed else "exit=%s" % self.exit_code)
        return "Process(pid=%d, %s, %s)" % (self.pid, self.program.name, status)
