#!/usr/bin/env python3
"""The §5.3 Super Mario experiment: incremental snapshots vs IJON.

Fuzzes button tapes against a tile-based Super Mario level with IJON
max-x feedback, in the paper's four configurations.  The snapshot
policies place incremental snapshots "right in front of the difficult
jump" (Figure 2), so mutations replay only the hard part.

Run:  python examples/super_mario.py [level]    (default 1-1)
"""

import sys

from repro.mario.levels import load_level, render
from repro.mario.solver import MODES, solve_level, speedrun_seconds


def main() -> None:
    level_name = sys.argv[1] if len(sys.argv) > 1 else "1-1"
    level = load_level(level_name)
    print("Level %s: %d tiles wide, flag at x=%d"
          % (level_name, level.width, level.flag_x))
    art = render(level).splitlines()
    for row in art[6:]:           # show the playfield rows
        print("  " + row[:110])
    print()

    results = {}
    for mode in MODES:
        result = solve_level(level_name, mode, seed=1, max_execs=8000)
        results[mode] = result
        status = ("solved in %7.1fs (sim), %5d execs"
                  % (result.time_to_solve, result.execs)
                  if result.solved else
                  "unsolved after %d execs" % result.execs)
        print("%-16s %s" % (mode, status))

    ijon = results["ijon"]
    best = min((r for r in results.values() if r.solved and r.mode != "ijon"),
               key=lambda r: r.time_to_solve, default=None)
    if ijon.solved and best is not None:
        print("\nbest Nyx-Net policy is %.1fx faster than IJON (paper: "
              "10x-30x on most levels)"
              % (ijon.time_to_solve / best.time_to_solve))
    if best is not None:
        light = speedrun_seconds(level_name)
        cores = 52
        print("'faster than light' check: %.1fs / %d cores = %.2fs vs "
              "%.2fs speedrun" % (best.time_to_solve, cores,
                                  best.time_to_solve / cores, light))


if __name__ == "__main__":
    main()
