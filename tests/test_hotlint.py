"""Hot-path lint (NYX07x static prong) tests.

``repro.analysis.hotlint`` computes hot-path reachability from
``# nyx: hot`` roots and flags per-iteration allocation, unbatched RNG
draws, repeated attribute loads, redundant copies and indirection —
*only* on hot-reachable code.  The golden file pins the rendered
report; the registry tests extend ``validate_registry``'s self-test to
the new 70-79 range.
"""

import pathlib

import pytest

from repro.analysis.diagnostics import (FAMILIES, RULES, Report,
                                        validate_registry)
from repro.analysis.hotlint import (analyze_hot_source, analyze_hot_tree,
                                    hot_fixit_stubs, hot_sites)
from repro.cli import main as cli_main

GOLDEN = pathlib.Path(__file__).parent / "golden"
REPO_SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def assert_matches_golden(name, text):
    assert text == (GOLDEN / name).read_text()


def lint(source):
    return analyze_hot_source("mod.py", source)


#: One of everything on hot-reachable code: loop-invariant bytes()
#: rebuild and constant container literal (NYX070), a per-iteration RNG
#: append and a per-byte RNG comprehension (NYX071), a thrice-loaded
#: attribute chain (NYX072), a whole-slice copy (NYX073) and a
#: try/except in the innermost loop (NYX074) — plus a cold method whose
#: identical loop body must stay quiet.
FIXTURE = '''\
class Engine:
    def __init__(self, rng, kernel):
        self.rng = rng
        self.kernel = kernel
        self.header = b"\\x00" * 8

    def step(self, items):  # nyx: hot
        out = []
        for item in items:
            frame = bytes(self.header)
            tag = {"kind": "packet"}
            out.append(self.rng.randrange(256))
            self.kernel.costs.charge(item)
            self.kernel.costs.charge(frame)
            self.kernel.costs.charge(tag)
        return out

    def pad(self, n):  # nyx: hot
        return bytes(self.rng.randrange(256) for _ in range(n))

    def copy_all(self, buf):  # nyx: hot
        return buf[:]

    def risky(self, items):  # nyx: hot
        for item in items:
            try:
                item()
            except ValueError:
                pass

    def cold(self, items):
        for item in items:
            tag = {"kind": "packet"}
        return tag
'''


class TestRegistry:
    def test_repo_registry_is_valid(self):
        validate_registry()  # must not raise

    def test_nyx07x_family_is_registered(self):
        rng, module = FAMILIES["hot-path lint"]
        assert rng == (70, 79)
        assert module == "repro.analysis.hotlint"
        for code in ("NYX070", "NYX071", "NYX072", "NYX073", "NYX074",
                     "NYX075", "NYX076", "NYX077"):
            assert code in RULES

    def test_duplicate_code_in_range_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_registry(rules=["NYX070", "NYX070"])

    def test_family_overlapping_the_70s_rejected(self):
        bad = dict(FAMILIES)
        bad["intruder"] = ((75, 85), "m.intruder")
        with pytest.raises(ValueError, match="overlap"):
            validate_registry(rules=[], families=bad)

    def test_code_outside_the_family_table_rejected(self):
        only_hot = {"hot-path lint": ((70, 79), "repro.analysis.hotlint")}
        with pytest.raises(ValueError, match="no registered family"):
            validate_registry(rules=["NYX069"], families=only_hot)
        validate_registry(rules=["NYX078"], families=only_hot)  # in-range


class TestHotLint:
    def test_fixture_findings(self):
        assert [d.code for d in lint(FIXTURE)] == [
            "NYX070", "NYX070", "NYX071", "NYX072",
            "NYX071", "NYX073", "NYX074"]

    def test_invariant_bytes_rebuild_names_exact_line(self):
        found = [d for d in lint(FIXTURE) if d.code == "NYX070"]
        assert found[0].line == 10
        assert "bytes(self.header)" in found[0].message
        assert found[1].line == 11
        assert "constant container literal" in found[1].message

    def test_per_draw_rng_flags_both_shapes(self):
        found = [d for d in lint(FIXTURE) if d.code == "NYX071"]
        assert len(found) == 2
        assert all("some_bytes" in d.message for d in found)

    def test_repeated_attribute_load_is_fixable(self):
        found = [d for d in lint(FIXTURE) if d.code == "NYX072"]
        assert len(found) == 1
        assert "'self.kernel.costs.charge'" in found[0].message
        assert found[0].fixable

    def test_whole_slice_copy(self):
        found = [d for d in lint(FIXTURE) if d.code == "NYX073"]
        assert len(found) == 1 and "whole-slice" in found[0].message

    def test_pickle_round_trip_is_nyx073(self):
        src = ("import pickle\n"
               "class A:\n"
               "    def go(self, obj):  # nyx: hot\n"
               "        return pickle.loads(pickle.dumps(obj))\n")
        found = [d for d in lint(src) if d.code == "NYX073"]
        assert len(found) == 1 and "pickle round-trip" in found[0].message

    def test_try_in_innermost_loop(self):
        found = [d for d in lint(FIXTURE) if d.code == "NYX074"]
        assert len(found) == 1 and "try/except" in found[0].message

    def test_cold_code_is_never_flagged(self):
        assert not [d for d in lint(FIXTURE)
                    if "Engine.cold" in d.message or (d.line or 0) >= 31]

    def test_unannotated_source_is_silent(self):
        assert lint(FIXTURE.replace("  # nyx: hot", "")) == []

    def test_hot_reaches_through_self_calls(self):
        src = ("class A:\n"
               "    def root(self, items):  # nyx: hot\n"
               "        self.leaf(items)\n"
               "    def leaf(self, items):\n"
               "        for i in items:\n"
               "            tag = {'k': 1}\n")
        found = lint(src)
        assert [d.code for d in found] == ["NYX070"]
        assert "A.leaf" in found[0].message

    def test_class_line_marker_roots_every_method(self):
        src = ("class A:  # nyx: hot\n"
               "    def any_method(self, items):\n"
               "        for i in items:\n"
               "            tag = {'k': 1}\n")
        assert [d.code for d in lint(src)] == ["NYX070"]

    def test_misplaced_marker_is_nyx075(self):
        diags = lint("x = 1  # nyx: hot\n")
        assert [d.code for d in diags] == ["NYX075"]
        assert diags[0].line == 1

    def test_unresolvable_self_call_is_nyx075(self):
        src = ("class A:\n"
               "    def go(self):  # nyx: hot\n"
               "        self.missing()\n")
        diags = lint(src)
        assert [d.code for d in diags] == ["NYX075"]
        assert "self.missing()" in diags[0].message

    def test_parse_error_is_nyx075(self):
        assert [d.code for d in lint("def broken(:\n")] == ["NYX075"]

    def test_family_allow_on_class_line_suppresses_all(self):
        allowed = FIXTURE.replace(
            "class Engine:", "class Engine:  # nyx: allow[NYX07x] fixture")
        assert lint(allowed) == []

    def test_hot_token_on_def_line_suppresses_the_function(self):
        allowed = FIXTURE.replace(
            "def risky(self, items):  # nyx: hot",
            "def risky(self, items):  # nyx: hot  # nyx: allow[hot]")
        assert not [d for d in lint(allowed) if d.code == "NYX074"]

    def test_single_code_allow_leaves_other_rules(self):
        allowed = FIXTURE.replace(
            'tag = {"kind": "packet"}\n            out',
            'tag = {"kind": "packet"}  # nyx: allow[NYX070] marker\n'
            '            out')
        codes = [d.code for d in lint(allowed)]
        assert codes.count("NYX070") == 1  # the bytes() one survives
        assert "NYX072" in codes

    def test_fixit_stub_names_the_alias(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "class A:\n"
            "    def go(self, items):  # nyx: hot\n"
            "        for i in items:\n"
            "            self.kernel.costs.charge(i)\n"
            "            self.kernel.costs.charge(i)\n"
            "            self.kernel.costs.charge(i)\n")
        stubs = hot_fixit_stubs(str(tmp_path))
        (where, stub), = stubs.items()
        assert where.endswith("mod.py::A.go")
        assert "kernel_costs_charge = self.kernel.costs.charge" in stub

    def test_golden(self):
        report = Report()
        report.extend(lint(FIXTURE))
        assert_matches_golden("hotlint.txt", report.format_text() + "\n")


class TestRepoTree:
    def test_repo_tree_lints_clean(self):
        assert analyze_hot_tree(str(REPO_SRC)) == []

    def test_annotated_roots_are_hot(self):
        hot = hot_sites(str(REPO_SRC))
        assert "NyxExecutor.run_full" in hot["repro.fuzz.executor"]
        assert "Kernel.run" in hot["repro.guestos.kernel"]
        assert "KernelApi.recv" in hot["repro.guestos.kernel"]
        assert "GuestMemory.write" in hot["repro.vm.memory"]
        assert "MutationEngine.mutate" in hot["repro.fuzz.mutators"]
        assert "TracerCore.take_trace" in hot["repro.coverage.tracer"]

    def test_injected_hot_loop_allocation_is_caught(self):
        """The static half of the BOTH-prongs acceptance check (the
        runtime half lives in test_profiler.py): injecting a
        per-iteration allocation into the executor's annotated op loop
        is flagged with the exact file and line."""
        path = REPO_SRC / "fuzz" / "executor.py"
        lines = path.read_text().splitlines(True)
        needle = "            op = ops[index]\n"
        at = lines.index(needle)
        lines.insert(at, "            scratch = {'op': 'state'}\n")
        diags = analyze_hot_source(str(path), "".join(lines))
        hits = [d for d in diags if d.code == "NYX070"
                and d.line == at + 1]
        assert len(hits) == 1
        assert "NyxExecutor._run" in hits[0].message


class TestCli:
    def test_analyze_perf_clean_tree_exits_zero(self):
        assert cli_main(["analyze", "--perf", str(REPO_SRC)]) == 0

    def test_analyze_perf_bad_path_exits_two(self):
        assert cli_main(["analyze", "--perf", "/nonexistent-xyz"]) == 2

    def test_analyze_perf_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "class A:\n"
            "    def go(self, items):  # nyx: hot\n"
            "        for i in items:\n"
            "            tag = {'k': 1}\n")
        assert cli_main(["analyze", "--perf", str(tmp_path)]) == 1
        assert "NYX070" in capsys.readouterr().out
