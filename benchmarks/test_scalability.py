"""§5.3 scalability: shared root snapshots across many instances.

"We share the root snapshots between different instances.  As a
consequence, in our experiments, 80 instances of Nyx-Net only require
about 2x the memory of a single instance."  (Naive parallelization
would multiply the full VM image per instance.)

We measure page *ownership*: instances adopting a shared root hold CoW
references into one page array; only diverged pages are private.
"""

from __future__ import annotations

from repro.vm.machine import Machine
from repro.vm.memory import PAGE_SIZE

N_INSTANCES = 20
VM_PAGES = 4096  # 16 MiB per VM


def test_shared_root_memory_scaling(benchmark, save_artifact):
    def experiment():
        golden = Machine(memory_bytes=VM_PAGES * PAGE_SIZE)
        # Populate the golden image so sharing is meaningful.
        for page in range(0, VM_PAGES, 4):
            golden.memory.write(page * PAGE_SIZE, b"image" * 16)
        root = golden.capture_root()

        instances = []
        for i in range(N_INSTANCES):
            vm = Machine(memory_bytes=VM_PAGES * PAGE_SIZE)
            vm.adopt_root(root)
            # Each instance fuzzes: dirty a small working set.
            for page in range(16):
                vm.memory.write(page * PAGE_SIZE, b"worker %d" % i)
            instances.append(vm)

        # Unique page objects across ALL instances + the root = true
        # memory footprint.  A single instance's true footprint is the
        # root image's unique pages; the naive scheme would copy that
        # per instance.
        root_unique = {id(p) for p in root.pages}
        single = len(root_unique)
        unique_pages = set(root_unique)
        for vm in instances:
            for idx in range(vm.memory.num_pages):
                unique_pages.add(id(vm.memory.page(idx)))
        shared_footprint = len(unique_pages)
        naive_footprint = (N_INSTANCES + 1) * single
        return shared_footprint, naive_footprint, single

    shared, naive, single = benchmark.pedantic(experiment, rounds=1,
                                               iterations=1)
    report = (
        "Scalability (shared root snapshots):\n"
        "  instances:            %d\n"
        "  single VM pages:      %d\n"
        "  naive total pages:    %d\n"
        "  shared total pages:   %d  (%.2fx a single instance)\n"
        % (N_INSTANCES, single, naive, shared, shared / single))
    save_artifact("scalability_shared_root.txt", report)
    # The paper's claim at our scale: all instances together stay
    # within ~2x of one instance, far below the naive multiple.
    assert shared < 2.0 * single
    assert shared < naive / 8
