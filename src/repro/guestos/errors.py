"""Errno values, syscall errors and crash reports for the guest OS."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class Errno(enum.IntEnum):
    """The subset of POSIX errno values the guest kernel uses."""

    EPERM = 1
    ENOENT = 2
    EBADF = 9
    EAGAIN = 11
    ENOMEM = 12
    EACCES = 13
    EEXIST = 17
    EINVAL = 22
    EMFILE = 24
    ENOSPC = 28
    EPIPE = 32
    ENOTSOCK = 88
    EADDRINUSE = 98
    ENETUNREACH = 101
    ECONNRESET = 104
    ENOTCONN = 107
    ESHUTDOWN = 108
    ECONNREFUSED = 111
    EISCONN = 106


class GuestError(Exception):
    """A syscall failure, carrying the errno a real kernel would set.

    Raised (and immediately caught) on hot polling paths — every empty
    ``accept``/``recv`` attempt ends in an EAGAIN — so construction
    stores the raw parts and defers message formatting to the rare
    moment something actually prints the error.
    """

    def __init__(self, errno: Errno, message: str = "") -> None:
        self.errno = errno
        self.message = message

    def __str__(self) -> str:
        return "%s%s" % (self.errno.name,
                         (": " + self.message) if self.message else "")


class CrashKind(enum.Enum):
    """Classes of crash the guest can report, mirroring real signals
    and sanitizer verdicts."""

    SEGV = "segv"
    ABORT = "abort"
    OOM = "oom"
    ASAN_HEAP_OVERFLOW = "asan-heap-overflow"
    ASAN_OOB_READ = "asan-oob-read"
    ASAN_USE_AFTER_FREE = "asan-use-after-free"
    NULL_DEREF = "null-deref"
    INTEGER_UNDERFLOW = "integer-underflow"
    #: Not a crash: a goal event (e.g. a solved Mario level) reported
    #: through the same channel so campaigns can record its timestamp.
    SOLVED = "solved"

    @property
    def asan_only(self) -> bool:
        """Whether this crash is only *reliably* observable under ASAN.

        Models the paper's dcmtk case (Table 1): without ASAN, the
        memory corruption only sometimes manifests, depending on the
        initial heap layout.
        """
        return self in (CrashKind.ASAN_HEAP_OVERFLOW,
                        CrashKind.ASAN_OOB_READ,
                        CrashKind.ASAN_USE_AFTER_FREE)


class GuestCrash(Exception):
    """Raised by target code to signal a memory-safety violation.

    The kernel converts it into a :class:`CrashReport` and a PANIC
    hypercall.  ``bug_id`` identifies the planted bug so the evaluation
    can deduplicate crashes the way the paper's triage does.
    """

    def __init__(self, kind: CrashKind, bug_id: str, detail: str = "") -> None:
        super().__init__("%s in %s%s" % (kind.value, bug_id,
                                         (": " + detail) if detail else ""))
        self.kind = kind
        self.bug_id = bug_id
        self.detail = detail


@dataclass(frozen=True)
class CrashReport:
    """Host-side record of a guest crash."""

    kind: CrashKind
    bug_id: str
    pid: int
    detail: str = ""
    #: Coverage-bitmap-style tuple identifying the crash site.
    site: Optional[Tuple[str, int]] = None

    @property
    def dedup_key(self) -> str:
        """Key used to count unique bugs (paper triage granularity)."""
        return "%s:%s" % (self.kind.value, self.bug_id)
