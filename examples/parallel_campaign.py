#!/usr/bin/env python3
"""Parallel fuzzing over one shared root snapshot (§5.3/§6).

Boots the lighttpd target exactly once, then brings up four fuzzing
instances that adopt the golden root image as copy-on-write page
references — no re-boot, almost no extra memory.  The instances run
deterministically interleaved on the simulated clock and exchange
corpus entries AFL-style every half simulated second; a campaign-level
merged bitmap decides which entries are globally new before they are
broadcast.

Run:  python examples/parallel_campaign.py
"""

from repro import PROFILES, build_parallel_campaign


def main() -> None:
    profile = PROFILES["lighttpd"]
    print("Target: %s (%s protocol) — booting one golden VM..."
          % (profile.name, profile.protocol))

    campaign = build_parallel_campaign(
        profile,
        workers=4,            # instances sharing the root snapshot
        policy="aggressive",  # none | balanced | aggressive (§3.4)
        seed=1,
        time_budget=0.2,      # simulated seconds *per worker*
        sync_interval=0.05,   # sim seconds between corpus syncs
        image_pages=1024,     # simulated OS-image ballast in the root
    )
    aggregate = campaign.run()

    print()
    print(aggregate.summary())
    footprint = campaign.unique_page_footprint()
    print("fleet memory:   %d unique pages vs %d for one instance "
          "(%.2fx — the paper reports ~2x for 80 instances)"
          % (footprint["total"], footprint["single"], footprint["ratio"]))
    for stats in aggregate.workers:
        print("  %s: %d execs, %d edges, queue %d"
              % (stats.fuzzer_name, stats.execs, stats.final_edges,
                 stats.queue_size))
    crash_keys = sorted({key for w in campaign.workers
                         for key in w.fuzzer.crashes.records})
    if crash_keys:
        print("unique bugs found: %s" % crash_keys)


if __name__ == "__main__":
    main()
