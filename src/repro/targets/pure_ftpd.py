"""pure-ftpd: FTP server with an *internal* allocation limit.

Table 1 footnote (*): "On pure-ftpd, AFLNET-no-state managed to
trigger an OOM that was due to an internal limit and not the
ProFuzzBench limit."  We model it faithfully: the server keeps an
in-memory session spool that grows with commands such as ``APPE`` and
long arguments, and deliberately aborts (its internal out-of-memory
guard) once the *accumulated across sessions* global spool exceeds a
limit.  A fuzzer that resets all state between tests (snapshots, or a
proper cleanup script) can never accumulate enough; a no-state fuzzer
that keeps the server running without cleanup eventually trips it.
"""

from __future__ import annotations

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashKind
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 2122

#: The internal limit (bytes of spooled session data).
INTERNAL_SPOOL_LIMIT = 64 * 1024


class PureFtpdServer(MessageServer):
    name = "pure-ftpd"
    port = PORT
    startup_cost = 0.04

    def __init__(self) -> None:
        super().__init__()
        #: Global spool surviving connections — only ever reset by a
        #: server restart or a VM snapshot.
        self.global_spool = 0
        self.sessions_served = 0

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        if conn.state == "new":
            self.reply(api, conn, b"220 Pure-FTPd ready\r\n")
            conn.state = "greeted"
            self.sessions_served += 1
        conn.buffer += data
        while b"\n" in conn.buffer:
            idx = conn.buffer.find(b"\n")
            line, conn.buffer = conn.buffer[:idx], conn.buffer[idx + 1:]
            self._command(api, conn, line.strip())

    def _spool(self, amount: int) -> None:
        self.global_spool += amount
        if self.global_spool > INTERNAL_SPOOL_LIMIT:
            # pure-ftpd's internal OOM guard: die rather than thrash.
            self.crash(CrashKind.OOM, "pure-ftpd-internal-oom",
                       "session spool exceeded internal limit")

    def _command(self, api, conn: ConnCtx, line: bytes) -> None:
        parts = line.split(None, 1)
        cmd = parts[0].upper() if parts else b""
        arg = parts[1] if len(parts) > 1 else b""
        self._spool(len(line) + 16)  # command history ring
        if cmd == b"USER":
            conn.vars["user"] = arg[:128]
            self._spool(len(arg))
            self.reply(api, conn, b"331 Any password will do\r\n")
        elif cmd == b"PASS":
            if "user" in conn.vars:
                conn.state = "authed"
                self.reply(api, conn, b"230 Welcome\r\n")
            else:
                self.reply(api, conn, b"530 USER first\r\n")
        elif cmd == b"QUIT":
            self.reply(api, conn, b"221 Logout\r\n")
            conn.state = "quit"
        elif conn.state != "authed":
            self.reply(api, conn, b"530 You aren't logged in\r\n")
        elif cmd == b"STAT":
            self.reply(api, conn, b"211-Up. Sessions: %d\r\n211 End\r\n"
                       % self.sessions_served)
        elif cmd == b"APPE":
            # Append spools the whole pending payload server-side.
            self._spool(512 + len(arg) * 8)
            self.reply(api, conn, b"150 Appending\r\n226 Done\r\n")
        elif cmd == b"MLSD" or cmd == b"LIST":
            self._spool(256)
            self.reply(api, conn, b"150 Listing\r\n226 Done\r\n")
        elif cmd == b"PASV":
            conn.vars["pasv"] = True
            self.reply(api, conn, b"227 (127,0,0,1,12,7)\r\n")
        elif cmd == b"TYPE":
            self.reply(api, conn, b"200 TYPE is now %s\r\n" % arg[:8])
        elif cmd == b"CWD":
            conn.vars["cwd"] = arg[:256]
            self._spool(len(arg))
            self.reply(api, conn, b"250 OK. Current directory changed\r\n")
        elif cmd == b"SITE":
            if arg.upper().startswith(b"IDLE"):
                self.reply(api, conn, b"200 Idle time set\r\n")
            else:
                self.reply(api, conn, b"500 Unknown SITE command\r\n")
        elif cmd == b"FEAT":
            self.reply(api, conn, b"211-Extensions:\r\n MLSD\r\n211 End\r\n")
        elif cmd == b"NOOP":
            self.reply(api, conn, b"200 OK\r\n")
        else:
            self.reply(api, conn, b"500 Unknown command\r\n")


DICTIONARY = [b"USER ", b"PASS ", b"APPE ", b"MLSD", b"STAT", b"PASV",
              b"CWD ", b"SITE IDLE", b"FEAT", b"QUIT", b"\r\n"]


def make_seeds():
    spec = default_network_spec()
    seeds = []
    for session in (
        [b"USER joe\r\n", b"PASS pw\r\n", b"STAT\r\n", b"QUIT\r\n"],
        [b"USER joe\r\n", b"PASS pw\r\n", b"PASV\r\n", b"APPE log.txt\r\n",
         b"MLSD\r\n", b"QUIT\r\n"],
        [b"USER joe\r\n", b"PASS pw\r\n", b"CWD /var/spool\r\n", b"FEAT\r\n",
         b"SITE IDLE 30\r\n", b"QUIT\r\n"],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for line in session:
            builder.packet(con, line)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="pure-ftpd",
    protocol="ftp",
    make_program=PureFtpdServer,
    surface_factory=lambda: AttackSurface.tcp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.04,
    libpreeny_compatible=False,
    planted_bugs=("oom:pure-ftpd-internal-oom",),
    notes="Internal OOM only reachable by no-state fuzzing (Table 1 *).",
)
