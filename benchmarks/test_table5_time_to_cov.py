"""Table 5: time for Nyx-Net to reach AFLNet's final coverage.

Paper shape: speedups between 1x and ~1400x, with most targets in the
double-to-triple digits ("on around half of the targets, Nyx-Net finds
more coverage in the first five minutes than AFLNet in 24 hours").
"""

from __future__ import annotations

from repro.bench.profuzzbench import run_matrix
from repro.bench.reporting import time_to_coverage_table
from repro.targets import PROFUZZBENCH


def test_table5_time_to_equal_coverage(benchmark, bench_config, save_artifact):
    matrix = benchmark.pedantic(
        lambda: run_matrix(config=bench_config), rounds=1, iterations=1)
    save_artifact("table5_time_to_coverage.txt",
                  time_to_coverage_table(matrix))

    # Shape: on most targets some Nyx variant reaches AFLNet's final
    # coverage at least 10x faster in simulated time.
    big_speedups = 0
    for target in PROFUZZBENCH:
        base_runs = matrix.of("aflnet", target)
        if not base_runs:
            continue
        base = max(base_runs, key=lambda r: r.final_coverage)
        if not base.stats.coverage_series:
            continue
        base_cov = base.final_coverage
        base_time = base.stats.coverage_series[-1][0]
        for fuzzer in ("nyx-none", "nyx-balanced", "nyx-aggressive"):
            for run in matrix.of(fuzzer, target):
                t = run.stats.time_to_edges(base_cov)
                if t is not None and t > 0 and base_time / t >= 10:
                    big_speedups += 1
                    break
            else:
                continue
            break
    assert big_speedups >= len(PROFUZZBENCH) // 2, (
        "expected >=10x time-to-coverage speedups on at least half the "
        "targets, got %d" % big_speedups)
