"""A tiny POSIX-ish guest operating system.

This package substitutes for the Linux guest the paper runs inside the
VM.  It provides processes with file-descriptor tables and ``fork()``,
TCP/UDP/Unix-domain sockets with packet-boundary-preserving buffers, a
select/poll/epoll readiness layer, a minimal disk-backed filesystem and
timers.  All kernel and target state is serialized into guest memory
regions after every scheduling step, so whole-VM snapshots genuinely
capture and restore guest execution.
"""

from repro.guestos.errors import Errno, GuestError, GuestCrash, CrashKind
from repro.guestos.kernel import Kernel
from repro.guestos.process import Process, Program
from repro.guestos.sockets import Socket, SockType, SockState

__all__ = [
    "Errno",
    "GuestError",
    "GuestCrash",
    "CrashKind",
    "Kernel",
    "Process",
    "Program",
    "Socket",
    "SockType",
    "SockState",
]
