"""Runtime reset sanitizer (NYX05x): digest-diff the host object graph.

The static lint (:mod:`.resetlint`) proves what it can see; this
module checks the rest at runtime.  After the root snapshot is
captured, the sanitizer walks the kernel / interceptor / device object
graph and takes a **stable structural digest**: one entry per
attribute path, ordered (attributes sorted by name, dict keys by their
repr, sequences by index), with big leaves fingerprinted so the
baseline stays small.  Re-running the walk after any later snapshot
restore and diffing against that baseline names *exactly* which
attribute path diverged:

* NYX050 — a path changed value (classic reset leak),
* NYX051 — a path appeared or disappeared (structural leak),
* NYX052 — the walk hit the depth cap; part of the graph is unaudited.

Cycles are expected (``fd table -> socket -> kernel`` style backrefs)
and handled with an on-path visited set: revisiting an object on the
current path digests as ``<cycle>`` deterministically instead of
recursing forever.

Deliberate cross-reset state is excluded via the same registry the
static lint reads — ``# nyx: allow[reset]`` suppressions collected by
:func:`repro.analysis.resetlint.allowed_reset_attrs` — plus a small
set of structural backref names, so a suppression justified once in
the source silences both prongs.
"""

from __future__ import annotations

import enum
import hashlib
import pathlib
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic

#: Attribute names never walked: wiring backrefs (each root is walked
#: on its own, or deliberately excluded like the snapshot machinery)
#: and executor-managed callbacks.
DEFAULT_SKIP_ATTRS = frozenset({
    "machine", "kernel", "k", "interceptor", "injector", "coverage",
    "watchdog",
})
#: Leaf reprs longer than this are fingerprinted, not stored.
_LEAF_LIMIT = 96
DEFAULT_MAX_DEPTH = 16

_SCALARS = (type(None), bool, int, float, complex, str, bytes)


def _fingerprint(value: Any) -> str:
    text = repr(value)
    if len(text) <= _LEAF_LIMIT:
        return text
    digest = hashlib.sha1(text.encode("utf-8", "backslashreplace"))
    return "sha1:%s" % digest.hexdigest()


def _attr_names(obj: Any) -> List[str]:
    names: Set[str] = set()
    if hasattr(obj, "__dict__"):
        names.update(obj.__dict__)
    for klass in type(obj).__mro__:
        names.update(getattr(klass, "__slots__", ()))
    return sorted(n for n in names if not n.startswith("__"))


def structural_digest(roots: Dict[str, Any],
                      allowed: Iterable[Tuple[str, str]] = (),
                      skip_attrs: Iterable[str] = DEFAULT_SKIP_ATTRS,
                      max_depth: int = DEFAULT_MAX_DEPTH,
                      ) -> Tuple[Dict[str, str], bool]:
    """Digest an object graph into ``{path: fingerprint}``.

    Returns ``(digest, truncated)`` where ``truncated`` reports that
    some path hit ``max_depth`` (those paths digest as ``<depth>`` —
    stable, but blind to deeper divergence).
    """
    allowed = set(allowed)
    skip = set(skip_attrs)
    entries: Dict[str, str] = {}
    truncated = [False]

    def skip_attr(obj: Any, name: str) -> bool:
        if name in skip:
            return True
        cls = type(obj).__name__
        return (cls, name) in allowed or (cls, "*") in allowed

    def walk(path: str, obj: Any, depth: int, on_path: Set[int]) -> None:
        if isinstance(obj, _SCALARS) or isinstance(obj, enum.Enum):
            entries[path] = _fingerprint(obj)
            return
        if callable(obj) or isinstance(obj, type):
            return  # methods, callbacks, classes: not state
        if id(obj) in on_path:
            entries[path] = "<cycle>"
            return
        if depth >= max_depth:
            entries[path] = "<depth>"
            truncated[0] = True
            return
        on_path.add(id(obj))
        try:
            if isinstance(obj, dict):
                entries[path] = "<dict:%d>" % len(obj)
                for key in sorted(obj, key=repr):
                    walk("%s[%r]" % (path, key), obj[key], depth + 1,
                         on_path)
            elif isinstance(obj, (list, tuple)):
                entries[path] = "<seq:%d>" % len(obj)
                for index, item in enumerate(obj):
                    walk("%s[%d]" % (path, index), item, depth + 1,
                         on_path)
            elif isinstance(obj, (set, frozenset, bytearray)):
                # Unordered / flat: digest as one sorted leaf.
                if isinstance(obj, (set, frozenset)):
                    entries[path] = _fingerprint(sorted(obj, key=repr))
                else:
                    entries[path] = _fingerprint(bytes(obj))
            elif hasattr(obj, "__dict__") or hasattr(type(obj),
                                                     "__slots__"):
                entries[path] = "<%s>" % type(obj).__name__
                for name in _attr_names(obj):
                    if skip_attr(obj, name):
                        continue
                    try:
                        value = getattr(obj, name)
                    except AttributeError:
                        continue  # unset slot
                    if callable(value):
                        continue
                    walk("%s.%s" % (path, name), value, depth + 1,
                         on_path)
            else:
                # deque and friends: iterate if possible, else repr.
                try:
                    items = list(obj)
                except TypeError:
                    entries[path] = _fingerprint(obj)
                else:
                    entries[path] = "<seq:%d>" % len(items)
                    for index, item in enumerate(items):
                        walk("%s[%d]" % (path, index), item, depth + 1,
                             on_path)
        finally:
            on_path.discard(id(obj))

    for name in sorted(roots):
        walk(name, roots[name], 0, set())
    return entries, truncated[0]


def diff_digests(baseline: Dict[str, str],
                 current: Dict[str, str]) -> List[Diagnostic]:
    """NYX050/NYX051 findings for every path that diverged."""
    diags: List[Diagnostic] = []
    for path in sorted(set(baseline) | set(current)):
        before = baseline.get(path)
        after = current.get(path)
        if before == after:
            continue
        if before is None:
            diags.append(Diagnostic(
                "NYX051", "reset leak at %s: path appeared after "
                "restore (now %s)" % (path, after)))
        elif after is None:
            diags.append(Diagnostic(
                "NYX051", "reset leak at %s: path disappeared after "
                "restore (was %s)" % (path, before)))
        else:
            diags.append(Diagnostic(
                "NYX050", "reset leak at %s: %s -> %s"
                % (path, before, after)))
    return diags


def _default_allowed() -> Set[Tuple[str, str]]:
    from repro.analysis.resetlint import allowed_reset_attrs
    import repro
    return allowed_reset_attrs(str(pathlib.Path(repro.__file__).parent))


class ResetSanitizer:
    """Digest-diff checker for the post-restore object graph.

    Capture a baseline right after the root snapshot exists (clean,
    just-restored state), then :meth:`check` after any later restore;
    every digest divergence is a reset leak with its exact path.
    """

    def __init__(self, roots: Dict[str, Any],
                 allowed: Optional[Iterable[Tuple[str, str]]] = None,
                 skip_attrs: Iterable[str] = DEFAULT_SKIP_ATTRS,
                 max_depth: int = DEFAULT_MAX_DEPTH) -> None:
        self.roots = dict(roots)
        self.allowed = set(_default_allowed() if allowed is None
                           else allowed)
        self.skip_attrs = set(skip_attrs)
        self.max_depth = max_depth
        self.baseline: Optional[Dict[str, str]] = None
        self._truncation_flagged = False

    @classmethod
    def for_executor(cls, executor, **kwargs) -> "ResetSanitizer":
        """Sanitizer over a :class:`NyxExecutor`'s host object graph.

        Roots are the kernel, the interceptor and the device board —
        everything per-exec code touches.  The snapshot manager, the
        clock and guest memory are deliberately not roots: they *are*
        the reset mechanism and keep cross-exec bookkeeping.
        """
        roots = {
            "kernel": executor.kernel,
            "interceptor": executor.interceptor,
            "devices": executor.machine.devices,
        }
        return cls(roots, **kwargs)

    def _digest(self) -> Tuple[Dict[str, str], bool]:
        return structural_digest(self.roots, allowed=self.allowed,
                                 skip_attrs=self.skip_attrs,
                                 max_depth=self.max_depth)

    def capture_baseline(self) -> Dict[str, str]:
        self.baseline, self._baseline_truncated = self._digest()
        return self.baseline

    def check(self) -> List[Diagnostic]:
        """Digest now and diff against the baseline.

        Returns NYX050/NYX051 errors for leaks, plus at most one
        NYX052 info the first time the depth cap truncates the walk.
        """
        if self.baseline is None:
            raise RuntimeError("capture_baseline() before check()")
        current, truncated = self._digest()
        diags = diff_digests(self.baseline, current)
        if ((truncated or self._baseline_truncated)
                and not self._truncation_flagged):
            self._truncation_flagged = True
            diags.append(Diagnostic(
                "NYX052", "digest truncated at depth %d; deepen the "
                "cap or prune the graph to audit everything"
                % self.max_depth))
        return diags
