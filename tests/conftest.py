"""Shared test configuration: pinned hypothesis profiles.

CI runs with ``HYPOTHESIS_PROFILE=ci`` (derandomized, so every run
shrinks and reports identically across the version matrix); local runs
default to the ``dev`` profile, which keeps random exploration but
drops the wall-clock deadline — campaign-backed properties routinely
outlive hypothesis's default 200ms.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
