"""tinydtls: a DTLS server over UDP.

Parses DTLS record headers and handshake fragments (ClientHello with
cookie exchange, ClientKeyExchange, Finished).  The planted bug is the
style of crash all fuzzers found in Table 1: a fragment-length
mismatch in the handshake reassembly that reads out of bounds on a
single crafted datagram.
"""

from __future__ import annotations

import struct

from repro.emu.surface import AttackSurface
from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashKind
from repro.guestos.sockets import SockType
from repro.spec.builder import Builder
from repro.spec.nodes import default_network_spec
from repro.targets.base import ConnCtx, MessageServer, TargetProfile

PORT = 20220

CONTENT_HANDSHAKE = 22
CONTENT_ALERT = 21
CONTENT_APPDATA = 23
CONTENT_CCS = 20

HS_CLIENT_HELLO = 1
HS_SERVER_HELLO = 2
HS_HELLO_VERIFY = 3
HS_CLIENT_KEY_EXCHANGE = 16
HS_FINISHED = 20

DTLS_VERSION = 0xFEFD  # DTLS 1.2


class TinyDtlsServer(MessageServer):
    name = "tinydtls"
    port = PORT
    sock_type = SockType.DGRAM
    startup_cost = 0.03
    parse_cost = 6e-9  # crypto-ish work

    def __init__(self) -> None:
        super().__init__()
        self.cookie_secret = 0x5EED
        self.handshakes_completed = 0

    def handle_message(self, api, conn: ConnCtx, data: bytes) -> None:
        offset = 0
        while offset + 13 <= len(data):
            content_type = data[offset]
            (version,) = struct.unpack_from(">H", data, offset + 1)
            (epoch,) = struct.unpack_from(">H", data, offset + 3)
            (length,) = struct.unpack_from(">H", data, offset + 11)
            record = data[offset + 13:offset + 13 + length]
            if len(record) < length:
                return  # truncated datagram: drop (DTLS is lossy anyway)
            offset += 13 + length
            if version not in (DTLS_VERSION, 0xFEFF):
                continue  # silently ignore bad versions
            if content_type == CONTENT_HANDSHAKE:
                self._handshake(api, conn, record, epoch)
            elif content_type == CONTENT_CCS:
                if conn.state == "key-exchanged":
                    conn.state = "ccs"
            elif content_type == CONTENT_ALERT:
                conn.state = "new"
                conn.vars.clear()
            elif content_type == CONTENT_APPDATA:
                if conn.state == "established":
                    api.cpu(1e-6)  # decrypt
                    self.reply(api, conn, self._record(
                        CONTENT_APPDATA, b"echo:" + record[:64]))

    def _handshake(self, api, conn: ConnCtx, record: bytes, epoch: int) -> None:
        if len(record) < 12:
            return
        msg_type = record[0]
        msg_len = int.from_bytes(record[1:4], "big")
        frag_off = int.from_bytes(record[6:9], "big")
        frag_len = int.from_bytes(record[9:12], "big")
        body = record[12:]
        if frag_len != len(body):
            # The bug: reassembly trusts frag_len over the actual body
            # size and copies out of bounds (single-datagram OOB read).
            if frag_len > len(body) and frag_off + frag_len > msg_len:
                self.crash(CrashKind.ASAN_OOB_READ, "tinydtls-frag-oob",
                           "fragment length exceeds record body")
            return  # benign mismatch: drop fragment
        if msg_type == HS_CLIENT_HELLO:
            self._client_hello(api, conn, body)
        elif msg_type == HS_CLIENT_KEY_EXCHANGE:
            if conn.state == "hello-done":
                conn.state = "key-exchanged"
                api.cpu(2e-5)  # ECDH
        elif msg_type == HS_FINISHED:
            if conn.state == "ccs":
                conn.state = "established"
                self.handshakes_completed += 1
                self.reply(api, conn, self._record(
                    CONTENT_HANDSHAKE, bytes([HS_FINISHED]) + bytes(11)))

    def _client_hello(self, api, conn: ConnCtx, body: bytes) -> None:
        if len(body) < 34:
            return
        cookie_len = body[34] if len(body) > 34 else 0
        cookie = body[35:35 + cookie_len]
        expected = struct.pack(">H", self.cookie_secret)
        if cookie != expected:
            # First flight: demand a cookie (DoS protection).
            verify = bytes([HS_HELLO_VERIFY]) + bytes(11) + b"\x02" + expected
            self.reply(api, conn, self._record(CONTENT_HANDSHAKE, verify))
            conn.state = "verify-sent"
            return
        conn.state = "hello-done"
        server_hello = bytes([HS_SERVER_HELLO]) + bytes(11) + bytes(34)
        self.reply(api, conn, self._record(CONTENT_HANDSHAKE, server_hello))

    def _record(self, content_type: int, payload: bytes) -> bytes:
        return (bytes([content_type]) + struct.pack(">H", DTLS_VERSION)
                + bytes(8) + struct.pack(">H", len(payload)) + payload)


def _hs_record(msg_type: int, body: bytes, frag_len: int = None) -> bytes:
    frag = frag_len if frag_len is not None else len(body)
    hs = (bytes([msg_type]) + len(body).to_bytes(3, "big") + bytes(2)
          + (0).to_bytes(3, "big") + frag.to_bytes(3, "big") + body)
    return (bytes([CONTENT_HANDSHAKE]) + struct.pack(">H", DTLS_VERSION)
            + bytes(8) + struct.pack(">H", len(hs)) + hs)


def _client_hello(cookie: bytes = b"") -> bytes:
    body = bytes(34) + bytes([len(cookie)]) + cookie
    return _hs_record(HS_CLIENT_HELLO, body)


DICTIONARY = [bytes([CONTENT_HANDSHAKE]), struct.pack(">H", DTLS_VERSION),
              bytes([HS_CLIENT_HELLO]), bytes([HS_CLIENT_KEY_EXCHANGE]),
              bytes([HS_FINISHED]), struct.pack(">H", 0x5EED),
              bytes([CONTENT_CCS]) + struct.pack(">H", DTLS_VERSION)]


def make_seeds():
    spec = default_network_spec()
    cookie = struct.pack(">H", 0x5EED)
    ccs = (bytes([CONTENT_CCS]) + struct.pack(">H", DTLS_VERSION) + bytes(8)
           + struct.pack(">H", 1) + b"\x01")
    seeds = []
    for packets in (
        [_client_hello()],
        [_client_hello(), _client_hello(cookie)],
        [_client_hello(), _client_hello(cookie),
         _hs_record(HS_CLIENT_KEY_EXCHANGE, bytes(32)), ccs,
         _hs_record(HS_FINISHED, bytes(12)),
         bytes([CONTENT_APPDATA]) + struct.pack(">H", DTLS_VERSION) + bytes(8)
         + struct.pack(">H", 5) + b"hello"],
    ):
        builder = Builder(spec)
        con = builder.connection()
        for packet in packets:
            builder.packet(con, packet)
        seeds.append(FuzzInput(builder.build()))
    return seeds


PROFILE = TargetProfile(
    name="tinydtls",
    protocol="dtls",
    make_program=TinyDtlsServer,
    surface_factory=lambda: AttackSurface.udp_server(PORT),
    seed_factory=make_seeds,
    dictionary=DICTIONARY,
    startup_cost=0.03,
    libpreeny_compatible=False,
    planted_bugs=("asan-oob-read:tinydtls-frag-oob",),
    notes="Single-datagram OOB read in fragment reassembly; all fuzzers "
          "crash this target in Table 1.",
)
