"""Crash collection and deduplication.

The evaluation counts *unique bugs* per target (Table 1), so crashes
are deduplicated by their planted-bug identity plus crash kind —
the analogue of the paper's manual triage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fuzz.input import FuzzInput
from repro.guestos.errors import CrashReport


@dataclass
class CrashRecord:
    """First occurrence of one unique bug."""

    report: CrashReport
    input: Optional[FuzzInput]
    found_at: float
    count: int = 1


class CrashDatabase:
    """Unique-bug store for a campaign."""

    def __init__(self) -> None:
        self.records: Dict[str, CrashRecord] = {}

    def add(self, report: CrashReport, input_: Optional[FuzzInput],
            now: float) -> bool:
        """Record a crash; returns True if it is a new unique bug."""
        key = report.dedup_key
        existing = self.records.get(key)
        if existing is not None:
            existing.count += 1
            return False
        self.records[key] = CrashRecord(report, input_, now)
        return True

    @property
    def unique_bugs(self) -> List[str]:
        return sorted(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, key: str) -> bool:
        return key in self.records
