"""§6 parallel fuzzing: 8 instances, one shared root, real campaigns.

Extends the page-level scalability microbenchmark to the full
orchestrator: 8 workers fuzz lighttpd over one shared root snapshot
with periodic corpus sync.  Two claims are checked:

* **Memory** — the fleet's unique-page footprint stays within 2x of a
  single instance ("80 instances of Nyx-Net only require about 2x the
  memory of a single instance", §5.3/§6).  The golden VM carries 2048
  pages of image ballast so the measurement is against a realistically
  sized root image rather than the lean simulated boot.
* **Throughput** — aggregate executions scale: the fleet retires at
  least 4x the executions a single worker manages in the same
  simulated time.
"""

from __future__ import annotations

from repro.fuzz.campaign import build_campaign, build_parallel_campaign
from repro.targets import PROFILES

N_WORKERS = 8
IMAGE_PAGES = 2048
#: Both runs are bounded by *simulated time only* — each worker burns
#: the same sim budget as the solo baseline, so retired executions
#: measure throughput scaling rather than who hit an exec cap first.
SIM_BUDGET = 0.25
SYNC_INTERVAL = 0.05


def test_parallel_campaign_memory_and_throughput(benchmark, save_artifact):
    def experiment():
        campaign = build_parallel_campaign(
            PROFILES["lighttpd"], workers=N_WORKERS, seed=7,
            time_budget=SIM_BUDGET, sync_interval=SYNC_INTERVAL,
            image_pages=IMAGE_PAGES)
        aggregate = campaign.run()
        footprint = campaign.unique_page_footprint()

        # The same budget, one instance, for the scaling baseline.
        handles = build_campaign(PROFILES["lighttpd"], policy="balanced",
                                 seed=7, time_budget=SIM_BUDGET,
                                 max_execs=None)
        solo = handles.fuzzer.run_campaign()
        return aggregate, footprint, solo

    aggregate, footprint, solo = benchmark.pedantic(experiment, rounds=1,
                                                    iterations=1)
    report = (
        "Parallel campaign (shared root, %d workers on lighttpd):\n"
        "  single-instance pages: %d\n"
        "  fleet total pages:     %d  (%.2fx a single instance)\n"
        "  solo execs:            %d  (%.1f/s)\n"
        "  aggregate execs:       %d  (%.1f/s, %.1fx solo)\n"
        "  merged edges:          %d (solo %d)\n"
        % (N_WORKERS, footprint["single"], footprint["total"],
           footprint["ratio"], solo.execs, solo.execs_per_second(),
           aggregate.total_execs, aggregate.execs_per_second(),
           aggregate.total_execs / max(solo.execs, 1),
           aggregate.final_edges, solo.final_edges))
    save_artifact("parallel_campaign.txt", report)

    # §5.3/§6: the whole fleet within 2x of one instance's memory.
    assert footprint["total"] <= 2.0 * footprint["single"]
    # Throughput scales: 8 workers retire >= 4x one worker's execs in
    # the same simulated time budget.
    assert aggregate.total_execs >= 4 * solo.execs
    # Sharing a corpus never loses coverage against the solo run.
    assert aggregate.final_edges >= solo.final_edges
