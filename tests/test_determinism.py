"""Determinism guarantees: identical runs produce identical outcomes.

The paper's motivation for snapshot fuzzing is *noise-free* execution
(§1: background threads and leftover state make AFLNet's coverage
noisy).  These tests pin the property down: same input, same boot →
bit-identical traces, responses and simulated cost; and repeated
executions against a snapshot never drift.
"""

from repro.emu.interceptor import Interceptor
from repro.emu.surface import AttackSurface
from repro.coverage.tracer import EdgeTracer
from repro.fuzz.executor import NyxExecutor
from repro.fuzz.input import packets_input
from repro.guestos.kernel import Kernel
from repro.targets.lightftp import LightFtpServer, PORT
from repro.vm.machine import Machine


def fresh_executor():
    machine = Machine(memory_bytes=32 * 1024 * 1024)
    kernel = Kernel(machine)
    interceptor = Interceptor(kernel, AttackSurface.tcp_server(PORT))
    kernel.spawn(LightFtpServer())
    kernel.run(max_rounds=256)
    kernel.flush_to_memory(full=True)
    machine.capture_root()
    return NyxExecutor(machine, kernel, interceptor, EdgeTracer()), machine


SESSION = packets_input([b"USER anonymous\r\n", b"PASS x\r\n",
                         b"PASV\r\n", b"LIST\r\n", b"QUIT\r\n"])


class TestCrossMachineDeterminism:
    def test_identical_traces_and_costs(self):
        results = []
        for _ in range(2):
            executor, machine = fresh_executor()
            result = executor.run_full(SESSION)
            results.append((sorted(result.trace.items()),
                            result.packets_consumed,
                            round(result.exec_time, 12)))
        assert results[0] == results[1]

    def test_identical_responses(self):
        outs = []
        for _ in range(2):
            executor, _machine = fresh_executor()
            executor.run_full(SESSION)
            outs.append(executor.interceptor.responses(0))
        assert outs[0] == outs[1]


class TestWithinMachineStability:
    def test_hundred_replays_never_drift(self):
        executor, machine = fresh_executor()
        reference = None
        for i in range(100):
            result = executor.run_full(SESSION)
            key = (sorted(result.trace.items()), result.packets_consumed)
            if reference is None:
                reference = key
            assert key == reference, "drift at replay %d" % i

    def test_suffix_replays_never_drift(self):
        executor, machine = fresh_executor()
        executor.run_full(SESSION, snapshot_after_packet=2)
        reference = None
        for i in range(50):
            result = executor.run_suffix(SESSION)
            key = (result.packets_consumed,
                   tuple(executor.interceptor.responses(0)[-2:]))
            if reference is None:
                reference = key
            assert key == reference, "suffix drift at replay %d" % i

    def test_no_state_leak_between_different_inputs(self):
        executor, machine = fresh_executor()
        baseline = executor.run_full(SESSION)
        # Run something completely different...
        executor.run_full(packets_input([b"\xff" * 100, b"SYST\r\n"]))
        # ...then the original input again: identical to the baseline.
        again = executor.run_full(SESSION)
        assert sorted(again.trace.items()) == sorted(baseline.trace.items())
        assert again.packets_consumed == baseline.packets_consumed
