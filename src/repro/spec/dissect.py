"""Stream dissectors: fragmenting TCP streams into logical packets.

"To fragment TCP streams into logical packets, we use the same logic
that AFLNET uses.  While this is some protocol-specific code, the
dissectors are usually very simple.  For example, one of the more
common packet boundary dissector uses the CRLF newline sequence to
split the data stream into logical packets." (§4.4)

A dissector takes the concatenated client-to-server byte stream and
returns a list of logical packets.  ``dissector_for`` maps protocol
names (the ProFuzzBench targets) to their dissector.
"""

from __future__ import annotations

import struct
from typing import Callable, List

Dissector = Callable[[bytes], List[bytes]]


def raw_dissector(stream: bytes) -> List[bytes]:
    """No reassembly: the whole stream is one packet (if non-empty)."""
    return [stream] if stream else []


def crlf_dissector(stream: bytes) -> List[bytes]:
    """Split at CRLF boundaries, keeping the terminator (FTP/SMTP/SIP/RTSP)."""
    packets: List[bytes] = []
    start = 0
    while True:
        idx = stream.find(b"\r\n", start)
        if idx < 0:
            break
        packets.append(stream[start:idx + 2])
        start = idx + 2
    if start < len(stream):
        packets.append(stream[start:])
    return packets


def line_dissector(stream: bytes) -> List[bytes]:
    """Split at bare LF boundaries (looser line-based protocols)."""
    packets: List[bytes] = []
    start = 0
    while True:
        idx = stream.find(b"\n", start)
        if idx < 0:
            break
        packets.append(stream[start:idx + 1])
        start = idx + 1
    if start < len(stream):
        packets.append(stream[start:])
    return packets


def length_prefixed_dissector(stream: bytes, header: int = 4,
                              fmt: str = ">I") -> List[bytes]:
    """Split ``<length><body>`` framed protocols (DNS-over-TCP, DICOM).

    The length covers the body only; the header bytes are kept with
    each packet.  A trailing malformed fragment becomes one packet.
    """
    packets: List[bytes] = []
    offset = 0
    while offset + header <= len(stream):
        (length,) = struct.unpack_from(fmt, stream, offset)
        end = offset + header + length
        if end > len(stream) or length > 1 << 24:
            break
        packets.append(stream[offset:end])
        offset = end
    if offset < len(stream):
        packets.append(stream[offset:])
    return packets


def dicom_dissector(stream: bytes) -> List[bytes]:
    """DICOM upper layer PDUs: 1-byte type, 1 reserved, u32 length."""
    packets: List[bytes] = []
    offset = 0
    while offset + 6 <= len(stream):
        (length,) = struct.unpack_from(">I", stream, offset + 2)
        end = offset + 6 + length
        if end > len(stream) or length > 1 << 24:
            break
        packets.append(stream[offset:end])
        offset = end
    if offset < len(stream):
        packets.append(stream[offset:])
    return packets


def tls_record_dissector(stream: bytes) -> List[bytes]:
    """TLS records: type, version (2), u16 length (openssl/tinydtls)."""
    packets: List[bytes] = []
    offset = 0
    while offset + 5 <= len(stream):
        (length,) = struct.unpack_from(">H", stream, offset + 3)
        end = offset + 5 + length
        if end > len(stream):
            break
        packets.append(stream[offset:end])
        offset = end
    if offset < len(stream):
        packets.append(stream[offset:])
    return packets


#: Protocol name -> dissector, mirroring AFLNet's per-protocol parsers.
_DISSECTORS = {
    "ftp": crlf_dissector,
    "smtp": crlf_dissector,
    "sip": crlf_dissector,
    "rtsp": crlf_dissector,
    "http": crlf_dissector,
    "daap": crlf_dissector,
    "dns": raw_dissector,        # one datagram per packet already
    "dicom": dicom_dissector,
    "tls": tls_record_dissector,
    "dtls": raw_dissector,       # datagram based
    "ssh": length_prefixed_dissector,
    "mysql": raw_dissector,
    "raw": raw_dissector,
}


def dissector_for(protocol: str) -> Dissector:
    """Look up the stream dissector for a protocol name."""
    try:
        return _DISSECTORS[protocol.lower()]
    except KeyError:
        raise KeyError("no dissector for protocol %r (known: %s)"
                       % (protocol, ", ".join(sorted(_DISSECTORS))))
