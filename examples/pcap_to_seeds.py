#!/usr/bin/env python3
"""The §5.4 workflow: PCAP capture -> seed inputs -> fuzzing campaign.

The paper's five steps for fuzzing the MySQL client apply to any
target:  (1) pick the target, (2) pick a spec (the generic raw-packet
one), (3) capture traffic and split it into logical packets with a
protocol dissector, (4) build seed inputs with the meta-programmed
Builder, (5) run the fuzzer.

Here we fabricate a realistic FTP capture with the built-in pcap
writer (offline stand-in for Wireshark), then run the whole pipeline
against the lighttpd-style FTP target.

Run:  python examples/pcap_to_seeds.py
"""

from repro import PROFILES, build_campaign
from repro.fuzz.input import FuzzInput
from repro.spec.builder import Builder
from repro.spec.dissect import dissector_for
from repro.spec.nodes import default_network_spec
from repro.spec.pcap import PcapWriter, extract_flows

CLIENT = ("10.0.0.2", 51812)
SERVER = ("10.0.0.1", 2121)


def fabricate_capture() -> bytes:
    """Step 3a: 'dump network traffic' (normally: Wireshark)."""
    w = PcapWriter()
    w.add_tcp(CLIENT, SERVER, b"", syn=True)
    session = [
        (CLIENT, SERVER, b"USER anonymous\r\n"),
        (SERVER, CLIENT, b"331 Password required\r\n"),
        (CLIENT, SERVER, b"PASS guest@\r\n"),
        (SERVER, CLIENT, b"230 Logged in\r\n"),
        (CLIENT, SERVER, b"SYST\r\nTYPE I\r\n"),  # two commands, one segment
        (SERVER, CLIENT, b"215 UNIX Type: L8\r\n200 Type set\r\n"),
        (CLIENT, SERVER, b"PASV\r\nLIST\r\n"),
        (SERVER, CLIENT, b"227 Entering Passive Mode\r\n"),
        (CLIENT, SERVER, b"RETR readme.txt\r\nQUIT\r\n"),
    ]
    for i, (src, dst, payload) in enumerate(session):
        w.add_tcp(src, dst, payload, ts=0.1 * (i + 1))
    return w.getvalue()


def capture_to_seed(pcap_blob: bytes) -> FuzzInput:
    """Steps 3b + 4: dissect the stream, replay it into the Builder."""
    (flow,) = extract_flows(pcap_blob)
    stream = b"".join(flow.client_payloads())
    # "To fragment TCP streams into logical packets, we use the same
    # logic that AFLNet uses" — the CRLF dissector for FTP (§4.4).
    packets = dissector_for("ftp")(stream)
    print("dissected %d logical packets out of %d TCP segments:"
          % (len(packets), len(flow.client_payloads())))
    for packet in packets:
        print("   %r" % packet)

    spec = default_network_spec()
    builder = Builder(spec)
    con = builder.connection()
    for packet in packets:
        builder.packet(con, packet)
    bytecode = builder.build_bytecode()
    print("serialized to %d bytes of Nyx bytecode" % len(bytecode))
    return FuzzInput(builder.build())


def main() -> None:
    pcap_blob = fabricate_capture()
    print("capture: %d bytes of pcap" % len(pcap_blob))
    seed = capture_to_seed(pcap_blob)

    # Step 5: run the fuzzer with the imported seed.
    profile = PROFILES["lightftp"]
    handles = build_campaign(profile, policy="balanced", seed=7,
                             time_budget=30.0, max_execs=1200,
                             seeds=[seed])
    stats = handles.fuzzer.run_campaign()
    print()
    print(stats.summary())


if __name__ == "__main__":
    main()
