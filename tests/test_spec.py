"""Unit tests for the spec engine: types, nodes, bytecode, builder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spec.builder import Builder, TrackedValue
from repro.spec.bytecode import (Op, SpecError, deserialize,
                                 normalize_markers, parse, serialize,
                                 validate)
from repro.spec.nodes import Spec, default_network_spec
from repro.spec.types import U8, U16, U32, ByteVec


class TestDataTypes:
    def test_u8_roundtrip(self):
        u8 = U8("b")
        assert u8.unpack(u8.pack(200), 0) == (200, 1)

    def test_u16_masks_overflow(self):
        u16 = U16("w")
        assert u16.unpack(u16.pack(0x12345), 0)[0] == 0x2345

    def test_u32_roundtrip(self):
        u32 = U32("d")
        assert u32.unpack(u32.pack(0xDEADBEEF), 0) == (0xDEADBEEF, 4)

    def test_bytevec_roundtrip(self):
        vec = ByteVec("bytes", U8("u8"))
        packed = vec.pack(b"hello")
        assert vec.unpack(packed, 0) == (b"hello", 9)

    def test_bytevec_truncated_raises(self):
        vec = ByteVec("bytes", U8("u8"))
        packed = vec.pack(b"hello")[:-2]
        with pytest.raises(ValueError):
            vec.unpack(packed, 0)


class TestSpec:
    def test_listing1_shape(self):
        # The paper's Listing 1, verbatim structure.
        s = Spec("multi-connection")
        d_bytes = s.data_vec("bytes", s.data_u8("u8"))
        e_con = s.edge_type("connection")
        n_con = s.node_type("connection", outputs=[e_con])
        n_pkt = s.node_type("pkt", borrows=[e_con], data=[d_bytes])
        assert n_con.node_id == 0
        assert n_pkt.arity == 1
        assert s.node_by_name("pkt") is n_pkt

    def test_duplicate_node_rejected(self):
        s = Spec("x")
        s.node_type("a")
        with pytest.raises(SpecError):
            s.node_type("a")

    def test_checksum_stable_and_shape_sensitive(self):
        a, b = default_network_spec(), default_network_spec()
        assert a.checksum() == b.checksum()
        c = default_network_spec()
        c.node_type("extra")
        assert c.checksum() != a.checksum()


class TestValidate:
    def setup_method(self):
        self.spec = default_network_spec()

    def test_valid_sequence(self):
        ops = [Op("connection"), Op("packet", (0,), (b"hi",)),
               Op("shutdown", (0,))]
        values = validate(self.spec, ops)
        assert values == [(0, "connection")]

    def test_ref_out_of_range(self):
        with pytest.raises(SpecError):
            validate(self.spec, [Op("packet", (0,), (b"x",))])

    def test_consumed_value_rejected(self):
        ops = [Op("connection"), Op("shutdown", (0,)),
               Op("packet", (0,), (b"late",))]
        with pytest.raises(SpecError):
            validate(self.spec, ops)

    def test_wrong_arity(self):
        with pytest.raises(SpecError):
            validate(self.spec, [Op("connection", (0,))])

    def test_wrong_arg_count(self):
        with pytest.raises(SpecError):
            validate(self.spec, [Op("connection"), Op("packet", (0,), ())])

    def test_snapshot_marker_interior_ok(self):
        ops = [Op("connection"), Op("snapshot"),
               Op("packet", (0,), (b"x",))]
        validate(self.spec, ops)

    def test_snapshot_marker_before_any_op_rejected(self):
        ops = [Op("snapshot"), Op("connection"),
               Op("packet", (0,), (b"x",))]
        with pytest.raises(SpecError):
            validate(self.spec, ops)

    def test_trailing_snapshot_marker_rejected(self):
        ops = [Op("connection"), Op("packet", (0,), (b"x",)),
               Op("snapshot")]
        with pytest.raises(SpecError):
            validate(self.spec, ops)

    def test_consecutive_snapshot_markers_rejected(self):
        ops = [Op("connection"), Op("snapshot"), Op("snapshot"),
               Op("packet", (0,), (b"x",))]
        with pytest.raises(SpecError):
            validate(self.spec, ops)

    def test_normalize_markers_keeps_last_interior(self):
        ops = [Op("snapshot"), Op("connection"), Op("snapshot"),
               Op("packet", (0,), (b"a",)), Op("snapshot"),
               Op("packet", (0,), (b"b",)), Op("snapshot")]
        normalized = normalize_markers(ops)
        validate(self.spec, normalized)
        markers = [i for i, op in enumerate(normalized)
                   if op.is_snapshot_marker()]
        assert markers == [2]
        payloads = [op.args for op in normalized if op.node == "packet"]
        assert payloads == [(b"a",), (b"b",)]


class TestBytecode:
    def setup_method(self):
        self.spec = default_network_spec()

    def test_roundtrip(self):
        ops = [Op("connection"), Op("packet", (0,), (b"GET /",)),
               Op("snapshot"), Op("packet", (0,), (b"",)),
               Op("shutdown", (0,))]
        blob = serialize(self.spec, ops)
        back = deserialize(self.spec, blob)
        assert [(o.node, o.refs, o.args) for o in back] == \
            [(o.node, o.refs, o.args) for o in ops]

    def test_bad_magic(self):
        with pytest.raises(SpecError):
            deserialize(self.spec, b"XXXX" + bytes(100))

    def test_wrong_spec_checksum(self):
        other = Spec("other")
        other.node_type("solo")
        blob = serialize(other, [Op("solo")])
        with pytest.raises(SpecError):
            deserialize(self.spec, blob)

    def test_truncated_header_raises_spec_error(self):
        with pytest.raises(SpecError):
            deserialize(self.spec, b"NYXB\x01")

    def test_truncated_body_raises_spec_error(self):
        ops = [Op("connection"), Op("packet", (0,), (b"payload",))]
        blob = serialize(self.spec, ops)
        for cut in range(13, len(blob)):
            with pytest.raises(SpecError):
                deserialize(self.spec, blob[:cut])

    def test_empty_blob_raises_spec_error(self):
        with pytest.raises(SpecError):
            deserialize(self.spec, b"")

    def test_parse_skips_validation(self):
        # parse() decodes structurally but accepts ill-typed sequences;
        # deserialize() on the same blob must refuse.
        ops = [Op("connection"), Op("packet", (0,), (b"x",)),
               Op("snapshot")]  # trailing marker: ill-typed
        blob = bytearray(serialize(self.spec, ops[:2]))
        import struct
        blob += struct.pack("<H", Spec.SNAPSHOT_NODE_ID)
        blob[8:12] = struct.pack("<I", 3)  # patch op count
        decoded = parse(self.spec, bytes(blob))
        assert [o.node for o in decoded] == ["connection", "packet",
                                             "snapshot"]
        with pytest.raises(SpecError):
            deserialize(self.spec, bytes(blob))

    @given(st.lists(st.binary(max_size=64), min_size=0, max_size=10))
    @settings(max_examples=50)
    def test_roundtrip_any_payloads(self, payloads):
        ops = [Op("connection")]
        ops += [Op("packet", (0,), (p,)) for p in payloads]
        blob = serialize(self.spec, ops)
        back = deserialize(self.spec, blob)
        assert [o.args for o in back[1:]] == [(p,) for p in payloads]


class TestBuilder:
    def test_listing2(self):
        # The paper's Listing 2, nearly verbatim.
        spec = default_network_spec()
        b = Builder(spec)
        con = b.connection()
        b.packet(con, b"HTTP/1.1 200 OK")
        b.packet(con, b"Content-Type: text/html")
        ops = b.build()
        assert len(ops) == 3
        assert ops[1].args == (b"HTTP/1.1 200 OK",)
        assert ops[1].refs == (0,)

    def test_tracked_value_identity(self):
        b = Builder(default_network_spec())
        con = b.connection()
        assert isinstance(con, TrackedValue)
        assert con.edge_name == "connection"
        assert con.op_index == 0

    def test_wrong_operand_type_rejected(self):
        b = Builder(default_network_spec())
        with pytest.raises(SpecError):
            b.packet("not-a-value", b"data")

    def test_cross_builder_value_rejected(self):
        spec = default_network_spec()
        b1, b2 = Builder(spec), Builder(spec)
        con = b1.connection()
        with pytest.raises(SpecError):
            b2.packet(con, b"x")

    def test_snapshot_marker(self):
        b = Builder(default_network_spec())
        con = b.connection()
        b.packet(con, b"one")
        b.snapshot()
        b.packet(con, b"two")
        ops = b.build()
        assert ops[2].is_snapshot_marker()

    def test_bytecode_output_parses(self):
        spec = default_network_spec()
        b = Builder(spec)
        con = b.connection()
        b.packet(con, b"data")
        blob = b.build_bytecode()
        assert deserialize(spec, blob)[1].args == (b"data",)

    def test_consume_then_use_rejected_at_build(self):
        spec = default_network_spec()
        b = Builder(spec)
        con = b.connection()
        b.shutdown(con)
        b.packet(con, b"late")
        with pytest.raises(SpecError):
            b.build()
