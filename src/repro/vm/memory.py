"""Paged guest physical memory with hardware-style dirty logging.

This module substitutes for the VM physical memory managed by KVM in
the paper.  Two dirty-tracking structures are maintained side by side,
exactly as §2.3 describes:

* a **dirty bitmap** with one byte per page ("for some reason, KVM uses
  1 byte in the bitmap for each page"), and
* Nyx's **dirty-page stack**, which records each page the first time it
  is dirtied so a reset never needs to scan the whole bitmap.

Pages live in one of two tiers (the write-combining scheme from
docs/performance.md):

* **sealed** — an immutable ``bytes`` object.  Sealed pages are the
  only ones ever shared: root snapshots, incremental-snapshot mirrors
  and fleet-wide CoW all hold references to sealed pages, so sharing a
  reference *is* the copy-on-write primitive.  An all-zero page is
  shared via a sentinel, the analogue of lazily allocated guest memory.
* **unsealed** — a private mutable ``bytearray``.  The first write to a
  page since the last snapshot boundary copies it to a bytearray;
  subsequent writes mutate that buffer in place instead of rebuilding a
  4 KiB ``bytes`` object per store.  Unsealed pages are never visible
  outside this class: every API that could leak a page reference
  (:meth:`page`, :meth:`pages_snapshot`, :meth:`page_identities`) seals
  first, so the CoW invariant is preserved by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

PAGE_SIZE = 4096
#: ``PAGE_SIZE == 1 << PAGE_SHIFT``; the hot paths use shifts/masks
#: instead of ``divmod``.
PAGE_SHIFT = 12
PAGE_MASK = PAGE_SIZE - 1

_ZERO_PAGE = bytes(PAGE_SIZE)


class MemoryError_(Exception):
    """Raised on out-of-range guest physical accesses."""


class GuestMemory:  # nyx: allow[reset]
    """Guest physical memory: a page array plus dirty logging.

    Reset-lint suppression: the page array and dirty log *are* the
    snapshot substrate — the SnapshotManager rewrites pages and drains
    the dirty log on every restore; there is nothing above it to reset
    through.

    Parameters
    ----------
    size_bytes:
        Total guest physical memory.  Rounded up to whole pages.
    """

    def __init__(self, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ValueError("memory size must be positive")
        self.num_pages = -(-size_bytes // PAGE_SIZE)
        self.size_bytes = self.num_pages * PAGE_SIZE
        self._pages: List[bytes] = [_ZERO_PAGE] * self.num_pages
        #: Indices of pages currently in the unsealed (bytearray) tier.
        self._unsealed: set = set()
        #: KVM-style dirty bitmap, one byte per page.
        self.dirty_bitmap = bytearray(self.num_pages)
        #: Nyx-style stack of pages dirtied since the last flush.
        self.dirty_stack: List[int] = []
        #: Count of pages ever dirtied (statistics only).
        self.total_dirtied = 0

    # -- sealing -----------------------------------------------------------

    def seal_page(self, index: int) -> bytes:
        """Freeze page ``index`` back to immutable ``bytes`` and return it.

        Idempotent; sealed pages are returned as-is.  Does not touch the
        dirty log — sealing changes representation, not content.
        """
        page = self._pages[index]
        if type(page) is bytearray:
            page = bytes(page)
            self._pages[index] = page
            self._unsealed.discard(index)
        return page

    def seal_all(self) -> None:
        """Freeze every unsealed page (snapshot-boundary bulk seal)."""
        if not self._unsealed:
            return
        pages = self._pages
        for idx in sorted(self._unsealed):
            pages[idx] = bytes(pages[idx])
        self._unsealed.clear()

    # -- raw page access -------------------------------------------------

    def page(self, index: int) -> bytes:
        """Return the current content of page ``index`` (always sealed).

        The returned object is immutable and safe to alias in snapshot
        structures; if the page was unsealed it is sealed in place.
        """
        self._check_page(index)
        return self.seal_page(index)

    def set_page(self, index: int, content: bytes, *, log: bool = True) -> None:
        """Replace page ``index``; marks it dirty unless ``log`` is False.

        Restores pass ``log=False`` — resetting a page must not make it
        appear dirty again, or the next reset would do wasted work.
        ``content`` is coerced to immutable ``bytes``, so the page
        lands sealed (this is the path snapshot restores take with CoW
        references).
        """
        self._check_page(index)
        if len(content) != PAGE_SIZE:
            raise ValueError("page content must be exactly PAGE_SIZE bytes")
        if type(content) is not bytes:
            content = bytes(content)
        self._pages[index] = content
        self._unsealed.discard(index)
        if log:
            self.mark_dirty(index)

    def restore_pages(self, indices: Sequence[int],  # nyx: hot
                      source: List[bytes]) -> None:
        """Reset every page in ``indices`` to ``source[idx]`` without
        dirty-logging — the batch form of ``set_page(..., log=False)``
        used by snapshot restores (one call instead of one per page).

        ``source`` must hold sealed pages (snapshot page arrays do).
        """
        pages = self._pages
        unsealed = self._unsealed
        if unsealed:
            for idx in indices:
                pages[idx] = source[idx]
                unsealed.discard(idx)
        else:
            for idx in indices:
                pages[idx] = source[idx]

    def sealed_pages(self, indices) -> Dict[int, bytes]:  # nyx: hot
        """``{idx: sealed page}`` for every page in ``indices`` — the
        batch form of :meth:`page` used when a chain overlay captures
        its write delta (one call instead of one per touched page).
        """
        pages = self._pages
        unsealed = self._unsealed
        out: Dict[int, bytes] = {}
        if unsealed:
            for idx in indices:
                page = pages[idx]
                if idx in unsealed:
                    page = bytes(page)
                    pages[idx] = page
                    unsealed.discard(idx)
                out[idx] = page
        else:
            for idx in indices:
                out[idx] = pages[idx]
        return out

    def pages_snapshot(self) -> List[bytes]:
        """Shallow copy of the page array (CoW view of all memory).

        Seals every page first: the returned list must stay valid when
        shared across machines or stored in a root snapshot.
        """
        self.seal_all()
        return list(self._pages)

    def page_identities(self) -> List[int]:
        """``id()`` of every page object currently mapped.

        Pages shared with a root snapshot (or the zero-page sentinel)
        alias the same objects, so unique-id counting across a fleet of
        machines measures the true memory footprint of §5.3's shared
        root snapshots.  Seals first so identities are stable until the
        next write.
        """
        self.seal_all()
        return [id(p) for p in self._pages]

    # -- byte-granular access ---------------------------------------------

    def read(self, addr: int, length: int) -> bytes:  # nyx: hot
        """Read ``length`` bytes starting at guest physical ``addr``."""
        self._check_range(addr, length)
        if length == 0:
            return b""
        page_off = addr & PAGE_MASK
        end = page_off + length
        if end <= PAGE_SIZE:
            # Single-page fast path: one slice, no assembly buffer.
            chunk = self._pages[addr >> PAGE_SHIFT][page_off:end]
            return chunk if type(chunk) is bytes else bytes(chunk)
        parts = []
        remaining = length
        offset = addr
        while remaining:
            page_idx = offset >> PAGE_SHIFT
            page_off = offset & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - page_off)
            parts.append(self._pages[page_idx][page_off:page_off + chunk])
            offset += chunk
            remaining -= chunk
        return b"".join(parts)

    def write(self, addr: int, data: bytes) -> None:  # nyx: hot
        """Write ``data`` at guest physical ``addr``, dirtying pages."""
        length = len(data)
        self._check_range(addr, length)
        if not length:
            return
        page_off = addr & PAGE_MASK
        if page_off + length <= PAGE_SIZE:
            # Single-page fast path (the overwhelmingly common case).
            self._write_chunk(addr >> PAGE_SHIFT, page_off, data, length)
            return
        view = memoryview(data)
        page_idx = addr >> PAGE_SHIFT
        start = 0
        while start < length:
            chunk = min(length - start, PAGE_SIZE - page_off)
            self._write_chunk(page_idx, page_off,
                              view[start:start + chunk], chunk)
            start += chunk
            page_idx += 1
            page_off = 0

    def write_if_changed(self, addr: int, data: bytes) -> int:  # nyx: hot
        """Like :meth:`write`, but skip pages whose bytes are identical.

        Returns the number of pages actually written.  Used by the
        state-blob flush path: reserializing a component whose bytes
        landed unchanged must not dirty its pages (dirty pages are real
        reset work on the next restore).
        """
        length = len(data)
        self._check_range(addr, length)
        if not length:
            return 0
        pages = self._pages
        page_idx = addr >> PAGE_SHIFT
        page_off = addr & PAGE_MASK
        start = 0
        written = 0
        while start < length:
            chunk = min(length - start, PAGE_SIZE - page_off)
            # bytes slices on both sides: the comparison is a C-level
            # memcmp (a memoryview here would compare elementwise).
            piece = data[start:start + chunk]
            if pages[page_idx][page_off:page_off + chunk] != piece:
                self._write_chunk(page_idx, page_off, piece, chunk)
                written += 1
            start += chunk
            page_idx += 1
            page_off = 0
        return written

    def _write_chunk(self, page_idx: int, page_off: int, data, length: int) -> None:
        """Store one intra-page chunk, unsealing or replacing the page."""
        if length == PAGE_SIZE and page_off == 0:
            # Whole-page store: adopt immutable payloads by reference,
            # seal the page for free.
            if type(data) is bytes:
                self._pages[page_idx] = data
            else:
                self._pages[page_idx] = bytes(data)
            self._unsealed.discard(page_idx)
        else:
            page = self._pages[page_idx]
            if type(page) is bytearray:
                page[page_off:page_off + length] = data
            else:
                buf = bytearray(page)
                buf[page_off:page_off + length] = data
                self._pages[page_idx] = buf
                self._unsealed.add(page_idx)
        if not self.dirty_bitmap[page_idx]:
            self.dirty_bitmap[page_idx] = 1
            self.dirty_stack.append(page_idx)
            self.total_dirtied += 1

    # -- dirty logging -----------------------------------------------------

    def mark_dirty(self, index: int) -> None:
        """Record a write to page ``index``.

        The stack only records the *first* write since the last flush —
        the bitmap byte acts as the dedup filter, mirroring how Nyx's
        KVM extension maintains its stack.
        """
        if not self.dirty_bitmap[index]:
            self.dirty_bitmap[index] = 1
            self.dirty_stack.append(index)
            self.total_dirtied += 1

    @property
    def dirty_count(self) -> int:
        """Number of distinct pages dirtied since the last flush."""
        return len(self.dirty_stack)

    def take_dirty(self) -> List[int]:
        """Pop and return all dirty pages, clearing the log (Nyx path).

        This is O(number of dirty pages): the stack is drained and only
        the bitmap bytes it names are cleared.
        """
        pages = self.dirty_stack
        self.dirty_stack = []
        bitmap = self.dirty_bitmap
        for idx in pages:
            bitmap[idx] = 0
        return pages

    def scan_bitmap(self) -> List[int]:
        """Scan the whole bitmap for dirty pages (Agamotto path).

        O(total pages) regardless of how few are dirty — this is the
        cost asymmetry Figure 6 of the paper measures.  The log is
        cleared as a side effect, like ``take_dirty``.
        """
        pages = [i for i, b in enumerate(self.dirty_bitmap) if b]
        self.dirty_stack = []
        for idx in pages:
            self.dirty_bitmap[idx] = 0
        return pages

    def clear_dirty_log(self) -> None:
        """Drop all dirty state without reporting it."""
        self.take_dirty()

    # -- validation --------------------------------------------------------

    def _check_page(self, index: int) -> None:
        if not 0 <= index < self.num_pages:
            raise MemoryError_(
                "page %d out of range (memory has %d pages)" % (index, self.num_pages)
            )

    def _check_range(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size_bytes:
            raise MemoryError_(
                "access [%#x, +%d) outside guest memory of %d bytes"
                % (addr, length, self.size_bytes)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "GuestMemory(%d pages, %d dirty)" % (self.num_pages, self.dirty_count)


@dataclass(frozen=True)
class Region:
    """A page-aligned allocation of guest physical memory."""

    start_page: int
    num_pages: int

    @property
    def start_addr(self) -> int:
        return self.start_page * PAGE_SIZE

    @property
    def size(self) -> int:
        return self.num_pages * PAGE_SIZE


class RegionAllocator:  # nyx: allow[reset]
    """Bump allocator handing out page-aligned regions of guest memory.

    The guest OS stores every piece of mutable state (process control
    blocks, socket buffers, target state machines) in regions, so that
    whole-VM snapshots of the page array genuinely capture and restore
    guest state.  The bump pointer itself is part of guest state and is
    saved/restored through :meth:`state` / :meth:`set_state` — the
    reset-lint suppression above records that
    ``Kernel.reload_from_memory`` restores it on every snapshot
    restore, just not through a method name the lint recognises.
    """

    def __init__(self, memory: GuestMemory, first_page: int = 0) -> None:
        self._memory = memory
        self._next_page = first_page

    def alloc(self, nbytes: int) -> Region:
        """Allocate a region large enough for ``nbytes``."""
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        npages = -(-nbytes // PAGE_SIZE)
        if self._next_page + npages > self._memory.num_pages:
            raise MemoryError_(
                "guest out of memory: need %d pages, %d free"
                % (npages, self._memory.num_pages - self._next_page)
            )
        region = Region(self._next_page, npages)
        self._next_page += npages
        return region

    def write_blob(self, region: Region, blob: bytes) -> None:
        """Store ``blob`` (length-prefixed) into ``region``.

        Pages whose bytes come out identical to what they already hold
        are skipped entirely (no write, no dirty marking): rewriting a
        blob that only changed near its tail must not cost a reset of
        its unchanged leading pages.
        """
        framed = len(blob).to_bytes(8, "little") + blob
        if len(framed) > region.size:
            raise MemoryError_(
                "blob of %d bytes does not fit region of %d bytes"
                % (len(blob), region.size)
            )
        self._memory.write_if_changed(region.start_addr, framed)

    def read_blob(self, region: Region) -> bytes:
        """Read back a blob previously stored with :meth:`write_blob`."""
        length = int.from_bytes(self._memory.read(region.start_addr, 8), "little")
        if length > region.size - 8:
            raise MemoryError_("corrupt blob header in region %r" % (region,))
        return self._memory.read(region.start_addr + 8, length)

    def state(self) -> int:
        """The bump pointer, for inclusion in snapshotted state."""
        return self._next_page

    def set_state(self, next_page: int) -> None:
        """Restore the bump pointer from a snapshot."""
        self._next_page = next_page

    @property
    def pages_used(self) -> int:
        return self._next_page

    def writes_fit(self, blob_len: int, region: Optional[Region]) -> bool:
        """Whether a blob of ``blob_len`` fits ``region`` (None = no)."""
        return region is not None and blob_len + 8 <= region.size


def pages_for(nbytes: int) -> int:
    """Number of pages needed to hold ``nbytes``."""
    return -(-nbytes // PAGE_SIZE)


def iter_page_chunks(data: bytes) -> Iterable[bytes]:
    """Yield PAGE_SIZE chunks of ``data``, zero-padding the last one."""
    for off in range(0, len(data), PAGE_SIZE):
        chunk = data[off:off + PAGE_SIZE]
        if len(chunk) < PAGE_SIZE:
            chunk = chunk + bytes(PAGE_SIZE - len(chunk))
        yield chunk
