"""Statistics and table rendering for the reproduced evaluation.

Implements the paper's methodology: medians across repetitions,
Mann-Whitney U significance marking (Klees et al.'s recommendation,
§5.1), percentage deltas against the AFLNet column (Table 2), mean ±
std throughput (Table 3), the crash matrix (Table 1) and
time-to-equal-coverage speedups (Table 5).
"""

from __future__ import annotations

import math
import statistics
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bench.profuzzbench import FUZZER_NAMES, MatrixResult


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence."""
    return statistics.median(values)


def mann_whitney_u(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sided Mann-Whitney U p-value (normal approximation).

    Uses the tie-corrected normal approximation; exact enough for the
    significance marking the tables need.  Returns 1.0 when a sample
    is empty or too small to ever reach significance.
    """
    n1, n2 = len(a), len(b)
    if n1 == 0 or n2 == 0:
        return 1.0
    pooled = [(value, 0) for value in a] + [(value, 1) for value in b]
    pooled.sort(key=lambda pair: pair[0])
    # Mid-ranks with tie groups.
    ranks = [0.0] * len(pooled)
    i = 0
    tie_term = 0.0
    while i < len(pooled):
        j = i
        while j + 1 < len(pooled) and pooled[j + 1][0] == pooled[i][0]:
            j += 1
        rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[k] = rank
        t = j - i + 1
        tie_term += t ** 3 - t
        i = j + 1
    r1 = sum(rank for rank, (_v, group) in zip(ranks, pooled) if group == 0)
    u1 = r1 - n1 * (n1 + 1) / 2.0
    mu = n1 * n2 / 2.0
    n = n1 + n2
    sigma_sq = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if sigma_sq <= 0:
        return 1.0
    z = (u1 - mu) / math.sqrt(sigma_sq)
    # Two-sided p from the normal CDF.
    p = 2.0 * (1.0 - _phi(abs(z)))
    return min(max(p, 0.0), 1.0)


def _phi(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


# ----------------------------------------------------------------------
# generic table rendering
# ----------------------------------------------------------------------


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]],
                 title: str = "") -> str:
    """Plain-text table with aligned columns."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rows)
    return "\n".join(out)


# ----------------------------------------------------------------------
# Table 2: median branch coverage vs AFLNet
# ----------------------------------------------------------------------


def coverage_table(matrix: MatrixResult,
                   fuzzers: Sequence[str] = FUZZER_NAMES) -> str:
    """Median coverage; AFLNet absolute, others as % delta (Table 2)."""
    targets = sorted({target for _f, target in matrix.runs})
    headers = ["target", "aflnet"] + [f for f in fuzzers if f != "aflnet"]
    rows = []
    for target in targets:
        base_runs = matrix.of("aflnet", target)
        base_cov = [r.final_coverage for r in base_runs]
        base_median = median(base_cov) if base_cov else 0.0
        row = [target, "%.1f" % base_median]
        for fuzzer in fuzzers:
            if fuzzer == "aflnet":
                continue
            runs = matrix.of(fuzzer, target)
            if not runs or all(r.not_applicable for r in runs):
                row.append("n/a")
                continue
            cov = [r.final_coverage for r in runs]
            if base_median <= 0:
                row.append("+inf")
                continue
            delta = (median(cov) - base_median) / base_median * 100.0
            p = mann_whitney_u(base_cov, cov)
            marker = "*" if p < 0.05 else ""
            row.append("%+.1f%%%s" % (delta, marker))
        rows.append(row)
    note = ("\n(* = significant at p<0.05, Mann-Whitney U; needs >=4 "
            "seeds per config to be reachable — %d used)"
            % matrix.config.seeds)
    return format_table(headers, rows,
                        "Table 2: median branch coverage vs AFLNet") + note


# ----------------------------------------------------------------------
# Table 3: throughput
# ----------------------------------------------------------------------


def throughput_table(matrix: MatrixResult,
                     fuzzers: Sequence[str] = FUZZER_NAMES) -> str:
    """Mean ± std executions per simulated second (Table 3)."""
    targets = sorted({target for _f, target in matrix.runs})
    headers = ["target"] + list(fuzzers)
    rows = []
    for target in targets:
        row = [target]
        for fuzzer in fuzzers:
            runs = matrix.of(fuzzer, target)
            if not runs or all(r.not_applicable for r in runs):
                row.append("-")
                continue
            rates = [r.execs_per_second for r in runs]
            mean = statistics.fmean(rates)
            std = statistics.pstdev(rates) if len(rates) > 1 else 0.0
            row.append("%.1f ± %.1f" % (mean, std))
        rows.append(row)
    return format_table(headers, rows,
                        "Table 3: test throughput (execs / simulated second)")


# ----------------------------------------------------------------------
# Table 1: crash matrix
# ----------------------------------------------------------------------


def crash_table(matrix: MatrixResult,
                fuzzers: Sequence[str] = FUZZER_NAMES) -> str:
    """Which fuzzers crashed which targets (Table 1)."""
    targets = sorted({target for _f, target in matrix.runs})
    headers = ["target"] + list(fuzzers)
    rows = []
    for target in targets:
        row = [target]
        any_crash = False
        for fuzzer in fuzzers:
            runs = matrix.of(fuzzer, target)
            if not runs or all(r.not_applicable for r in runs):
                row.append("n/a")
                continue
            bugs = sorted({bug for r in runs for bug in r.crashes
                           if not bug.startswith("solved:")})
            if bugs:
                any_crash = True
                row.append("X (%s)" % ",".join(b.split(":")[1] for b in bugs))
            else:
                row.append("-")
        if any_crash:
            rows.append(row)
    return format_table(
        headers, rows,
        "Table 1: crashes found (targets with no findings omitted)")


def crash_matrix(matrix: MatrixResult) -> Dict[Tuple[str, str], List[str]]:
    """Raw (fuzzer, target) -> unique bug ids, for assertions."""
    out: Dict[Tuple[str, str], List[str]] = {}
    for (fuzzer, target), runs in matrix.runs.items():
        bugs = sorted({bug for r in runs for bug in r.crashes})
        out[(fuzzer, target)] = bugs
    return out


# ----------------------------------------------------------------------
# Table 5: time to equal coverage
# ----------------------------------------------------------------------


def time_to_coverage_table(matrix: MatrixResult,
                           nyx_fuzzers: Sequence[str] = (
                               "nyx-none", "nyx-balanced",
                               "nyx-aggressive")) -> str:
    """When AFLNet reached its final coverage vs Nyx-Net (Table 5)."""
    targets = sorted({target for _f, target in matrix.runs})
    headers = ["target", "aflnet t_final"] + ["%s speedup" % f
                                              for f in nyx_fuzzers]
    rows = []
    for target in targets:
        base_runs = matrix.of("aflnet", target)
        if not base_runs:
            continue
        base = max(base_runs, key=lambda r: r.final_coverage)
        base_cov = base.final_coverage
        base_time = (base.stats.coverage_series[-1][0]
                     if base.stats.coverage_series else 0.0)
        row = [target, "%.1fs" % base_time]
        for fuzzer in nyx_fuzzers:
            runs = matrix.of(fuzzer, target)
            speedups = []
            for run in runs:
                t = run.stats.time_to_edges(base_cov)
                if t is not None and t > 0:
                    speedups.append(base_time / t)
            if speedups:
                row.append("%.0fx" % median(speedups))
            else:
                row.append("-")  # never matched AFLNet's coverage
        rows.append(row)
    return format_table(headers, rows,
                        "Table 5: time to reach AFLNet's final coverage")


# ----------------------------------------------------------------------
# Figures 5/7: coverage over time
# ----------------------------------------------------------------------


def coverage_series_csv(matrix: MatrixResult,
                        fuzzers: Sequence[str] = FUZZER_NAMES) -> str:
    """Coverage-over-time series as CSV (the Figure 5/7 data)."""
    lines = ["target,fuzzer,seed,sim_time,edges"]
    for (fuzzer, target), runs in sorted(matrix.runs.items()):
        if fuzzer not in fuzzers:
            continue
        for run in runs:
            for t, edges in run.stats.coverage_series:
                lines.append("%s,%s,%d,%.3f,%d"
                             % (target, fuzzer, run.seed, t, edges))
    return "\n".join(lines)


def median_final_coverage(matrix: MatrixResult, fuzzer: str,
                          target: str) -> float:
    runs = matrix.of(fuzzer, target)
    if not runs:
        return 0.0
    return median([r.final_coverage for r in runs])
