"""Unit tests for guest physical memory and dirty logging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.memory import (PAGE_SIZE, GuestMemory, MemoryError_,
                             RegionAllocator, iter_page_chunks, pages_for)


class TestGeometry:
    def test_rounds_up_to_pages(self):
        mem = GuestMemory(PAGE_SIZE + 1)
        assert mem.num_pages == 2
        assert mem.size_bytes == 2 * PAGE_SIZE

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            GuestMemory(0)

    def test_starts_zeroed_and_clean(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        assert mem.read(0, 16) == bytes(16)
        assert mem.dirty_count == 0


class TestReadWrite:
    def test_write_read_roundtrip(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.write(100, b"hello world")
        assert mem.read(100, 11) == b"hello world"

    def test_write_spanning_pages(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        data = bytes(range(256)) * 20  # 5120 bytes, crosses a boundary
        mem.write(PAGE_SIZE - 100, data)
        assert mem.read(PAGE_SIZE - 100, len(data)) == data
        assert sorted(mem.dirty_stack) == [0, 1, 2]

    def test_out_of_range_read_raises(self):
        mem = GuestMemory(PAGE_SIZE)
        with pytest.raises(MemoryError_):
            mem.read(PAGE_SIZE - 1, 2)

    def test_out_of_range_write_raises(self):
        mem = GuestMemory(PAGE_SIZE)
        with pytest.raises(MemoryError_):
            mem.write(PAGE_SIZE, b"x")

    def test_zero_length_read(self):
        mem = GuestMemory(PAGE_SIZE)
        assert mem.read(0, 0) == b""


class TestDirtyLogging:
    def test_first_write_pushes_stack_once(self):
        mem = GuestMemory(8 * PAGE_SIZE)
        mem.write(0, b"a")
        mem.write(1, b"b")
        mem.write(10, b"c")
        assert mem.dirty_stack == [0]
        assert mem.dirty_count == 1

    def test_take_dirty_clears_both_structures(self):
        mem = GuestMemory(8 * PAGE_SIZE)
        mem.write(0, b"a")
        mem.write(PAGE_SIZE * 3, b"b")
        pages = mem.take_dirty()
        assert sorted(pages) == [0, 3]
        assert mem.dirty_count == 0
        assert not any(mem.dirty_bitmap)

    def test_scan_bitmap_matches_stack(self):
        mem = GuestMemory(16 * PAGE_SIZE)
        for page in (1, 5, 9):
            mem.write(page * PAGE_SIZE, b"x")
        assert mem.scan_bitmap() == [1, 5, 9]
        assert mem.dirty_count == 0

    def test_redirty_after_flush_is_logged_again(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.write(0, b"a")
        mem.take_dirty()
        mem.write(0, b"b")
        assert mem.dirty_stack == [0]

    def test_set_page_without_log(self):
        mem = GuestMemory(4 * PAGE_SIZE)
        mem.set_page(2, bytes(PAGE_SIZE), log=False)
        assert mem.dirty_count == 0

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
    @settings(max_examples=50)
    def test_stack_is_exact_set_of_dirty_pages(self, pages):
        mem = GuestMemory(64 * PAGE_SIZE)
        for page in pages:
            mem.write(page * PAGE_SIZE, b"\xff")
        assert sorted(set(pages)) == sorted(mem.dirty_stack)

    @given(st.binary(min_size=1, max_size=3 * PAGE_SIZE),
           st.integers(min_value=0, max_value=PAGE_SIZE))
    @settings(max_examples=50)
    def test_roundtrip_any_offset(self, data, offset):
        mem = GuestMemory(8 * PAGE_SIZE)
        mem.write(offset, data)
        assert mem.read(offset, len(data)) == data


class TestRegionAllocator:
    def test_alloc_is_page_aligned_and_disjoint(self):
        mem = GuestMemory(64 * PAGE_SIZE)
        alloc = RegionAllocator(mem)
        r1 = alloc.alloc(100)
        r2 = alloc.alloc(PAGE_SIZE + 1)
        assert r1.num_pages == 1
        assert r2.num_pages == 2
        assert r2.start_page == r1.start_page + r1.num_pages

    def test_blob_roundtrip(self):
        mem = GuestMemory(64 * PAGE_SIZE)
        alloc = RegionAllocator(mem)
        region = alloc.alloc(1000)
        alloc.write_blob(region, b"state blob")
        assert alloc.read_blob(region) == b"state blob"

    def test_blob_too_large_raises(self):
        mem = GuestMemory(64 * PAGE_SIZE)
        alloc = RegionAllocator(mem)
        region = alloc.alloc(100)  # one page
        with pytest.raises(MemoryError_):
            alloc.write_blob(region, bytes(PAGE_SIZE))

    def test_oom(self):
        mem = GuestMemory(2 * PAGE_SIZE)
        alloc = RegionAllocator(mem)
        alloc.alloc(2 * PAGE_SIZE)
        with pytest.raises(MemoryError_):
            alloc.alloc(1)

    def test_bump_pointer_state_roundtrip(self):
        mem = GuestMemory(8 * PAGE_SIZE)
        alloc = RegionAllocator(mem)
        alloc.alloc(PAGE_SIZE)
        saved = alloc.state()
        alloc.alloc(PAGE_SIZE)
        alloc.set_state(saved)
        assert alloc.state() == saved


def test_pages_for():
    assert pages_for(1) == 1
    assert pages_for(PAGE_SIZE) == 1
    assert pages_for(PAGE_SIZE + 1) == 2


def test_iter_page_chunks_pads_last():
    chunks = list(iter_page_chunks(b"x" * (PAGE_SIZE + 5)))
    assert len(chunks) == 2
    assert all(len(c) == PAGE_SIZE for c in chunks)
    assert chunks[1][:5] == b"xxxxx"
