"""Property-based tests on corpus scheduling invariants.

The queue is the multiplier under every campaign — single-instance or
parallel — so its scheduling contract is pinned down here: scores rank
deterministically, favored entries are never starved, snapshot
placement never indexes past the packet list, and cross-instance sync
neither duplicates coverage nor invents entries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.input import packets_input
from repro.fuzz.queue import Corpus, QueueEntry
from repro.sim.rng import DeterministicRandom

#: (exec_time, new_edges) pairs describing one corpus entry each.
entry_meta = st.tuples(st.floats(min_value=0.0, max_value=10.0,
                                 allow_nan=False),
                       st.integers(0, 1000))
corpus_meta = st.lists(entry_meta, min_size=1, max_size=24)


def build_corpus(metas, seed=0):
    corpus = Corpus(DeterministicRandom(seed))
    for i, (exec_time, new_edges) in enumerate(metas):
        corpus.add(packets_input([b"pkt-%d" % i]), exec_time=exec_time,
                   new_edges=new_edges, checksum=i)
    return corpus


@given(corpus_meta)
@settings(max_examples=100)
def test_score_formula_and_stable_ordering(metas):
    """score == exec_time / (1 + new_edges), and ranking by it is
    deterministic: two sorts of the same corpus agree entry-for-entry."""
    corpus = build_corpus(metas)
    for entry in corpus.entries:
        assert entry.score == entry.exec_time / (1.0 + entry.new_edges)
    first = [e.entry_id for e in sorted(corpus.entries, key=lambda e: e.score)]
    second = [e.entry_id for e in sorted(corpus.entries, key=lambda e: e.score)]
    assert first == second
    # sorted() is stable: equal scores keep insertion (discovery) order.
    scores = [e.score for e in sorted(corpus.entries, key=lambda e: e.score)]
    assert scores == sorted(scores)


@given(corpus_meta, st.integers(0, 2**31))
@settings(max_examples=100)
def test_favored_set_is_best_quartile_and_idempotent(metas, seed):
    corpus = build_corpus(metas, seed)
    ranked = sorted(corpus.entries, key=lambda e: e.score)
    cutoff = max(1, len(ranked) // 4)
    favored_ids = {e.entry_id for e in corpus.entries if e.favored}
    assert favored_ids == {e.entry_id for e in ranked[:cutoff]}
    # Refreshing without membership changes must not reshuffle.
    corpus._refresh_favored()
    assert favored_ids == {e.entry_id for e in corpus.entries if e.favored}


@given(corpus_meta, st.integers(0, 2**31))
@settings(max_examples=60)
def test_favored_entries_never_starved(metas, seed):
    """Every favored entry is scheduled at least once within any window
    of draws that sweeps the cursor over the whole queue — AFL's skip
    heuristic only ever skips the non-favored."""
    corpus = build_corpus(metas, seed)
    draws = 3 * len(corpus.entries)
    for _ in range(draws):
        corpus.next_entry()
    for entry in corpus.entries:
        if entry.favored:
            assert entry.times_scheduled >= 1
    # The cursor really cycled (no livelock on skip rolls).
    assert corpus.cycles_done >= 1


@given(st.integers(1, 12), st.integers(-5, 40))
@settings(max_examples=100)
def test_fuzzable_packets_never_exceeds_num_packets(n_packets, consumed):
    entry = QueueEntry(0, packets_input([b"x"] * n_packets),
                       effective_packets=consumed)
    fuzzable = entry.fuzzable_packets()
    assert 0 <= fuzzable <= entry.input.num_packets
    if 0 < consumed < n_packets:
        assert fuzzable == consumed


@given(corpus_meta, st.integers(0, 24))
@settings(max_examples=60)
def test_export_watermark_partitions_the_queue(metas, since):
    corpus = build_corpus(metas)
    exported = corpus.export_entries(since)
    assert [e.entry_id for e in exported] == \
        [e.entry_id for e in corpus.entries if e.entry_id >= since]
    assert corpus.export_entries(corpus.next_id) == []


@given(corpus_meta, corpus_meta)
@settings(max_examples=60)
def test_import_foreign_dedups_by_checksum(ours, theirs):
    """Importing a peer's corpus adopts exactly the checksums we have
    not seen, exactly once, and never mutates the peer's entries."""
    mine = build_corpus(ours)
    peer = build_corpus(theirs, seed=1)
    # Give the peer's entries checksums offset to overlap partially.
    for entry in peer.entries:
        entry.checksum = entry.entry_id + len(ours) // 2
    before = {(id(e.input), e.entry_id) for e in peer.entries}
    known = set(range(len(ours)))
    adopted = mine.import_foreign(peer.entries, found_at=3.0)
    expected = [e for e in peer.entries if e.checksum not in known]
    assert len(adopted) == len(expected)
    for got, src in zip(adopted, expected):
        assert got.input is not src.input          # deep-copied, not aliased
        assert got.input.origin == "import"
        assert got.found_at == 3.0
        assert got.checksum == src.checksum
    # Importing the same batch again is a no-op.
    assert mine.import_foreign(peer.entries) == []
    assert {(id(e.input), e.entry_id) for e in peer.entries} == before
