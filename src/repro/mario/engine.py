"""The platformer engine: SMB-style physics on a tile grid.

Deterministic, integer-frame simulation.  Tiles:

* ``#`` — solid ground/wall
* ``P`` — pipe (solid, two tiles tall as drawn)
* ``E`` — enemy spawn (patrols left/right, lethal on side contact,
  squashed by landing on it)
* ``F`` — the flag pole (reaching its column wins the level)
* ``.`` / space — air; falling below the grid is a pit death

Physics constants are tuned so a full-speed run jump clears a 6-tile
pit, and the **wall-jump glitch** is modelled after the SMB original:
while airborne, moving into a wall and pressing A within the same
frame grants a fresh jump ("Nyx-Net is routinely able to solve 2-1 by
exploiting a wall jump glitch").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

#: Seconds of simulated game time per frame (60 FPS).
FRAME_DT = 1.0 / 60.0

GRAVITY = 0.045
JUMP_VELOCITY = -0.62
WALK_ACCEL = 0.014
RUN_ACCEL = 0.024
MAX_WALK = 0.14
MAX_RUN = 0.24
FRICTION = 0.010
ENEMY_SPEED = 0.04


class Buttons(enum.IntFlag):
    """NES controller bits (one input byte per frame)."""

    NONE = 0
    LEFT = 1
    RIGHT = 2
    A = 4      # jump
    B = 8      # run
    DOWN = 16


# Plain-int masks for the per-frame hot path (IntFlag.__and__ is ~10x
# slower than int ops and the engine runs hundreds of thousands of
# frames per campaign).
_LEFT = 1
_RIGHT = 2
_A = 4
_B = 8


@dataclass
class Enemy:
    x: float
    y: float
    direction: int = -1
    alive: bool = True


@dataclass
class Level:
    """Immutable level geometry."""

    name: str
    width: int
    height: int
    solids: frozenset            # set of (col, row) solid tiles
    enemy_spawns: Tuple[Tuple[int, int], ...]
    flag_x: int
    start: Tuple[int, int] = (2, 2)


@dataclass
class GameState:
    """Everything that changes during play (picklable)."""

    x: float
    y: float
    vx: float = 0.0
    vy: float = 0.0
    on_ground: bool = False
    alive: bool = True
    won: bool = False
    frame: int = 0
    max_x: float = 0.0
    enemies: List[Enemy] = field(default_factory=list)
    deaths_by: str = ""


class MarioEngine:
    """Steps a :class:`GameState` through a :class:`Level`."""

    def __init__(self, level: Level) -> None:
        self.level = level

    def new_game(self) -> GameState:
        col, row = self.level.start
        state = GameState(x=float(col), y=float(row))
        state.enemies = [Enemy(float(c), float(r))
                         for c, r in self.level.enemy_spawns]
        state.max_x = state.x
        return state

    # ------------------------------------------------------------------

    def step(self, state: GameState, buttons: int) -> None:
        """Advance one frame."""
        if not state.alive or state.won:
            return
        state.frame += 1
        self._horizontal(state, buttons)
        self._vertical(state, buttons)
        self._enemies(state)
        if state.x >= self.level.flag_x:
            state.won = True
        if state.y > self.level.height + 2:
            state.alive = False
            state.deaths_by = "pit"
        state.max_x = max(state.max_x, state.x)

    def run(self, state: GameState, frames: bytes) -> None:
        """Advance one frame per input byte."""
        for byte in frames:
            if not state.alive or state.won:
                return
            self.step(state, byte)

    # -- movement -----------------------------------------------------------

    def _horizontal(self, state: GameState, buttons: int) -> None:
        accel = RUN_ACCEL if buttons & _B else WALK_ACCEL
        vmax = MAX_RUN if buttons & _B else MAX_WALK
        if buttons & _RIGHT and not buttons & _LEFT:
            state.vx = min(state.vx + accel, vmax)
        elif buttons & _LEFT and not buttons & _RIGHT:
            state.vx = max(state.vx - accel, -vmax)
        elif state.on_ground:
            if state.vx > 0:
                state.vx = max(0.0, state.vx - FRICTION)
            else:
                state.vx = min(0.0, state.vx + FRICTION)
        new_x = state.x + state.vx
        # y is the feet coordinate; standing on row R means y == R, so
        # the body occupies (y-1, y) and solidity probes sit just
        # inside it.
        lead = new_x + (0.4 if state.vx > 0 else -0.4)
        wall_contact = self._solid_at(lead, state.y - 0.05) or \
            self._solid_at(lead, state.y - 0.9)
        if wall_contact:
            # Blocked by a wall.  The wall-jump glitch: airborne, still
            # pushing into the wall, A pressed this frame -> new jump.
            if (not state.on_ground and buttons & _A
                    and state.vy > -0.1):
                state.vy = JUMP_VELOCITY
                state.vx = -state.vx * 0.5  # kicked away from the wall
            else:
                state.vx = 0.0
        else:
            state.x = max(0.0, new_x)

    def _vertical(self, state: GameState, buttons: int) -> None:
        if buttons & _A and state.on_ground:
            state.vy = JUMP_VELOCITY
            state.on_ground = False
        state.vy = min(state.vy + GRAVITY, 0.9)
        if state.vy < 0 and not buttons & _A:
            state.vy += GRAVITY * 0.8  # variable jump height
        new_y = state.y + state.vy
        if state.vy >= 0:
            # Falling: land on top of solids.
            if self._solid_at(state.x, new_y + 0.001) or \
                    self._solid_at(state.x + 0.35, new_y + 0.001) or \
                    self._solid_at(state.x - 0.35, new_y + 0.001):
                state.y = float(int(new_y + 0.001))
                state.vy = 0.0
                state.on_ground = True
                return
            state.on_ground = False
            state.y = new_y
        else:
            # Rising: bonk on ceilings.
            if self._solid_at(state.x, new_y - 1.0):
                state.vy = 0.0
            else:
                state.y = new_y
            state.on_ground = False

    def _enemies(self, state: GameState) -> None:
        px = state.x
        for enemy in state.enemies:
            # Off-screen enemies are frozen, like the NES original
            # (also keeps the host cost of a frame bounded).
            ex = enemy.x
            if ex - px > 24.0 or px - ex > 24.0 or not enemy.alive:
                continue
            nx = enemy.x + ENEMY_SPEED * enemy.direction
            if self._solid_at(nx, enemy.y - 0.5) or \
                    not self._solid_at(nx, enemy.y + 0.05):
                enemy.direction = -enemy.direction
            else:
                enemy.x = nx
            dx = abs(enemy.x - state.x)
            dy = state.y - enemy.y
            if dx < 0.6 and abs(dy) < 0.8:
                if state.vy > 0.05 and dy < -0.2:
                    enemy.alive = False       # squashed from above
                    state.vy = JUMP_VELOCITY * 0.5
                else:
                    state.alive = False
                    state.deaths_by = "enemy"

    def _solid_at(self, x: float, y: float) -> bool:
        if x < 0:
            return True
        return (int(x), int(y)) in self.level.solids

    # -- feedback -----------------------------------------------------------

    def ijon_slot(self, state: GameState) -> int:
        """IJON-MAX feedback: the furthest x bucket reached."""
        return int(state.max_x) // 2
